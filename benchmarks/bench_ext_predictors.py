"""Extension: future-work predictors vs the paper's Simple config.

The paper's Section 7 proposes stride detection and branch-history
indexing as refinements.  This bench compares both (sized identically
to Simple) against Simple itself, per benchmark, on prediction
coverage and 620 speedup.
"""

from repro.analysis import (
    TextTable,
    format_percent,
    format_speedup,
    geometric_mean,
)
from repro.lvp import GSHARE, LoadOutcome, SIMPLE, STRIDE
from repro.uarch import PPC620, PPC620Model

from conftest import emit

CONFIGS = (SIMPLE, STRIDE, GSHARE)


def _coverage(stats):
    correct = (stats.outcomes[LoadOutcome.CORRECT]
               + stats.outcomes[LoadOutcome.CONSTANT])
    return correct / stats.loads if stats.loads else 0.0


def _sweep(session):
    rows = {}
    for name in session.benchmark_names:
        per_config = {}
        base = session.ppc_result(name, PPC620, None)
        for config in CONFIGS:
            annotated = session.annotated(name, "ppc", config)
            lvp = PPC620Model(PPC620).run(annotated, use_lvp=True)
            per_config[config.name] = (
                _coverage(annotated.stats),
                base.cycles / lvp.cycles,
            )
        rows[name] = per_config
    return rows


def test_ext_predictors(benchmark, session, report_dir):
    rows = benchmark.pedantic(lambda: _sweep(session),
                              rounds=1, iterations=1)
    table = TextTable(
        ["benchmark"] + [f"{c.name} cov/speedup" for c in CONFIGS],
        title="Extension: stride and gshare predictors vs Simple (620)",
    )
    for name, per_config in rows.items():
        table.add_row([name] + [
            f"{format_percent(per_config[c.name][0], 0)} / "
            f"{format_speedup(per_config[c.name][1])}"
            for c in CONFIGS
        ])
    gm_row = ["GM"]
    for config in CONFIGS:
        gm = geometric_mean([per[config.name][1] for per in rows.values()])
        gm_row.append(format_speedup(gm))
    table.add_separator()
    table.add_row(gm_row)
    emit(report_dir, "ext_predictors", table.render())
    # Stride subsumes last-value on arithmetic sequences: its mean
    # coverage should at least match Simple's.
    mean_cov = lambda c: sum(  # noqa: E731
        per[c.name][0] for per in rows.values()) / len(rows)
    assert mean_cov(STRIDE) >= mean_cov(SIMPLE) - 0.01
