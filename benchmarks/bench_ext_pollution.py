"""Extension: profile-guided value-table pollution control.

The paper proposes "removing loads that are not latency-critical from
the table" to control pollution.  This bench trains a per-load filter
on each benchmark's own trace and compares a deliberately small LVP
unit (128-entry LVPT, where pollution bites) with and without it.
"""

import dataclasses

from repro.analysis import TextTable, format_percent
from repro.lvp import LVPConfig, LoadOutcome, build_table_filter
from repro.trace import annotate_trace

from conftest import emit

SMALL = LVPConfig(name="small", lvpt_entries=128, lct_entries=128,
                  lct_bits=2, cvu_entries=32)


def _coverage(stats):
    correct = (stats.outcomes[LoadOutcome.CORRECT]
               + stats.outcomes[LoadOutcome.CONSTANT])
    return correct / stats.loads if stats.loads else 0.0


def _sweep(session):
    rows = {}
    for name in session.benchmark_names:
        trace = session.trace(name, "ppc")
        chosen = build_table_filter(trace)
        filtered_config = dataclasses.replace(
            SMALL, name="small+filter", profile_filter=chosen)
        base = annotate_trace(trace, SMALL).stats
        filtered = annotate_trace(trace, filtered_config).stats
        rows[name] = (
            base.prediction_accuracy, _coverage(base),
            filtered.prediction_accuracy, _coverage(filtered),
        )
    return rows


def test_ext_pollution_control(benchmark, session, report_dir):
    rows = benchmark.pedantic(lambda: _sweep(session),
                              rounds=1, iterations=1)
    table = TextTable(
        ["benchmark", "acc", "cov", "acc+filter", "cov+filter"],
        title="Extension: profile-guided pollution control (128-entry LVPT)",
    )
    for name, (acc, cov, facc, fcov) in rows.items():
        table.add_row([name, format_percent(acc), format_percent(cov),
                       format_percent(facc), format_percent(fcov)])
    emit(report_dir, "ext_pollution", table.render())
    # Filtering trades a little coverage for accuracy: on average the
    # misprediction *rate* must not get worse.
    accs = [row[0] for row in rows.values() if row[0] > 0]
    faccs = [row[2] for row in rows.values() if row[2] > 0]
    assert sum(faccs) / len(faccs) >= sum(accs) / len(accs) - 0.02
