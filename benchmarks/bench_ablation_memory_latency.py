"""Ablation: LVP benefit vs the processor-memory gap (paper S1).

The paper's opening motivation is that "the gap between main memory
and processor clock speeds is growing at an alarming rate".  This
ablation widens the modelled gap (L2 and memory service latencies) and
reports both relative speedup and absolute cycles saved.

Finding: on the 620, *absolute* cycles saved by LVP grow with the gap
(more latency to hide), but *relative* speedup shrinks -- the in-order
completion buffer exposes every miss regardless of prediction, so the
unhidden miss time dilutes the ratio.  The piece of the design that
scales with the gap is the CVU (constants bypass misses entirely),
which is why the paper positions LVP as a latency *and* bandwidth
mechanism rather than a miss-tolerance mechanism.
"""

import dataclasses

from repro.analysis import TextTable, format_speedup, geometric_mean
from repro.lvp import PERFECT, SIMPLE
from repro.uarch import PPC620, PPC620Model

from conftest import emit

#: (L2 latency, memory latency) points, from friendly to hostile.
GAPS = ((4, 20), (8, 40), (16, 80), (32, 160))
NAMES = ("compress", "gawk", "grep", "xlisp", "eqntott")


def _sweep(session):
    rows = {}
    for l2, memory in GAPS:
        machine = dataclasses.replace(
            PPC620, name=f"620-l2{l2}", l2_latency=l2,
            memory_latency=memory)
        speedups = {"Simple": [], "Perfect": []}
        saved = 0
        for name in NAMES:
            base = PPC620Model(machine).run(
                session.annotated(name, "ppc", SIMPLE), use_lvp=False)
            for config in (SIMPLE, PERFECT):
                annotated = session.annotated(name, "ppc", config)
                lvp = PPC620Model(machine).run(annotated, use_lvp=True)
                speedups[config.name].append(base.cycles / lvp.cycles)
                if config is PERFECT:
                    saved += base.cycles - lvp.cycles
        rows[(l2, memory)] = {
            "Simple": geometric_mean(speedups["Simple"]),
            "Perfect": geometric_mean(speedups["Perfect"]),
            "saved": saved,
        }
    return rows


def test_ablation_memory_latency(benchmark, session, report_dir):
    rows = benchmark.pedantic(lambda: _sweep(session),
                              rounds=1, iterations=1)
    table = TextTable(
        ["L2 / memory latency", "GM Simple", "GM Perfect",
         "cycles saved (Perfect)"],
        title="Ablation: LVP benefit vs memory gap (620, 5 benchmarks)",
    )
    for (l2, memory), gms in rows.items():
        table.add_row([f"{l2} / {memory}", format_speedup(gms["Simple"]),
                       format_speedup(gms["Perfect"]), gms["saved"]])
    emit(report_dir, "ablation_memory_latency", table.render())
    saved = [gms["saved"] for gms in rows.values()]
    # Absolute savings grow with the gap (more latency worth hiding)...
    assert saved[-1] >= saved[0]
    # ...even though the ratio dilutes as unhidden miss time dominates.
    perfect = [gms["Perfect"] for gms in rows.values()]
    assert perfect[-1] <= perfect[0] + 0.005
