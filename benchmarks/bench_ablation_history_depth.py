"""Ablation: history depth with realistic (MRU) vs oracle selection.

The paper's Limit study assumes perfect selection among 16 values; this
ablation shows how much of that is the oracle: with realistic MRU
selection, extra depth alone buys almost nothing.
"""

from repro.analysis import TextTable, format_percent
from repro.lvp import LVPConfig, LoadOutcome
from repro.trace import annotate_trace

from conftest import emit

DEPTHS = (1, 2, 4, 8, 16)
NAMES = ("compress", "gawk", "eqntott", "xlisp")


def _sweep(session):
    rows = {}
    for name in NAMES:
        trace = session.trace(name, "ppc")
        for selection in ("mru", "perfect"):
            coverages = []
            for depth in DEPTHS:
                config = LVPConfig(
                    name=f"{selection}{depth}", lvpt_entries=4096,
                    history_depth=depth, selection=selection,
                    lct_entries=1024,
                )
                stats = annotate_trace(trace, config).stats
                correct = (stats.outcomes[LoadOutcome.CORRECT]
                           + stats.outcomes[LoadOutcome.CONSTANT])
                coverages.append(correct / stats.loads)
            rows[(name, selection)] = coverages
    return rows


def test_ablation_history_depth(benchmark, session, report_dir):
    rows = benchmark.pedantic(lambda: _sweep(session),
                              rounds=1, iterations=1)
    table = TextTable(
        ["benchmark/selection"] + [f"d{d}" for d in DEPTHS],
        title=("Ablation: correctly-predicted load fraction vs history "
               "depth (MRU vs oracle selection)"),
    )
    for (name, selection), coverages in rows.items():
        table.add_row([f"{name}/{selection}"]
                      + [format_percent(c) for c in coverages])
    emit(report_dir, "ablation_history_depth", table.render())
    for name in NAMES:
        oracle = rows[(name, "perfect")]
        mru = rows[(name, "mru")]
        # The oracle's coverage grows with depth and dominates MRU's;
        # with realistic MRU selection extra depth buys nearly nothing.
        assert oracle[-1] >= oracle[0] - 0.01
        assert oracle[-1] >= mru[-1] - 0.01
        assert abs(mru[-1] - mru[0]) < 0.15
