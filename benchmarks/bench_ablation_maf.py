"""Ablation: restoring the 21164's miss address file (paper S4.2).

The paper *removes* the MAF from its 21164 model "to accentuate the
in-order aspects", making every L1 miss blocking.  This ablation puts
it back (misses stall only their dependents) and measures how much of
the baseline's miss cost, and of LVP's relative benefit, that modeling
decision accounts for.
"""

import dataclasses

from repro.analysis import TextTable, format_speedup, geometric_mean
from repro.lvp import SIMPLE
from repro.uarch import AXP21164Model
from repro.uarch.axp21164.config import AXP21164

from conftest import emit

WITH_MAF = dataclasses.replace(AXP21164, name="21164+MAF", maf=True)


def _sweep(session):
    rows = {}
    for name in session.benchmark_names:
        annotated = session.annotated(name, "alpha", SIMPLE)
        per = {}
        for machine in (AXP21164, WITH_MAF):
            base = AXP21164Model(machine).run(annotated, use_lvp=False)
            lvp = AXP21164Model(machine).run(annotated, use_lvp=True)
            per[machine.name] = (base.cycles, base.cycles / lvp.cycles)
        rows[name] = per
    return rows


def test_ablation_maf(benchmark, session, report_dir):
    rows = benchmark.pedantic(lambda: _sweep(session),
                              rounds=1, iterations=1)
    table = TextTable(
        ["benchmark", "base cycles (no MAF)", "LVP speedup",
         "base cycles (MAF)", "LVP speedup (MAF)"],
        title="Ablation: restoring the 21164 miss address file",
    )
    for name, per in rows.items():
        no_maf = per["21164"]
        with_maf = per["21164+MAF"]
        table.add_row([name, no_maf[0], format_speedup(no_maf[1]),
                       with_maf[0], format_speedup(with_maf[1])])
    emit(report_dir, "ablation_maf", table.render())
    for name, per in rows.items():
        # Non-blocking misses can only help the baseline.
        assert per["21164+MAF"][0] <= per["21164"][0], name
    gm_no_maf = geometric_mean([p["21164"][1] for p in rows.values()])
    gm_maf = geometric_mean([p["21164+MAF"][1] for p in rows.values()])
    # Blocking misses shrink the pie LVP can win; the paper's MAF-less
    # model therefore *understates* LVP gains on miss-heavy benchmarks.
    assert gm_maf >= gm_no_maf - 0.05
