"""Regenerate paper Figure 9: cycles with bank conflicts.

Expected shape (paper): conflicts occur in a few percent of 620 cycles
and more on the 620+ (three ports contending for two banks); the
Constant configuration removes relatively more conflicts than Simple.
"""

from repro.harness import run_experiment

from conftest import emit


def test_fig9_bank_conflicts(benchmark, session, report_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("fig9", session), rounds=1, iterations=1)
    emit(report_dir, "fig9", result.text)
    data = result.data
    base_620 = data["620"]["ALL"]["base"]
    base_plus = data["620+"]["ALL"]["base"]
    assert base_plus >= base_620  # wider machine aggravates banking
    # LVP reduces (or at worst leaves unchanged) aggregate conflicts.
    assert data["620"]["ALL"]["Constant"] <= base_620 * 1.05
