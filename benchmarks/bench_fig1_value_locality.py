"""Regenerate paper Figure 1: load value locality, depth 1 vs 16.

Expected shape (paper): most integer benchmarks land near 50% at
depth 1 and above 80% at depth 16; cjpeg, swm256, and tomcatv are poor.
"""

from repro.harness import run_experiment

from conftest import emit


def test_fig1_value_locality(benchmark, session, report_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("fig1", session), rounds=1, iterations=1)
    emit(report_dir, "fig1", result.text)
    ppc = result.data["ppc"]
    # Paper shape: the three poor benchmarks stay poor...
    for name in ("cjpeg", "swm256", "tomcatv"):
        assert ppc[name][0] < 45.0, name
    # ...and depth 16 dominates depth 1 everywhere.
    for target_data in result.data.values():
        for name, (d1, d16) in target_data.items():
            assert d16 >= d1, name
