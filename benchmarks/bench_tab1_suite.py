"""Regenerate paper Table 1: benchmark descriptions and trace sizes."""

from repro.harness import run_experiment

from conftest import emit


def test_tab1_suite(benchmark, session, report_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("tab1", session), rounds=1, iterations=1)
    emit(report_dir, "tab1", result.text)
    assert len(result.data) == len(session.benchmark_names)
