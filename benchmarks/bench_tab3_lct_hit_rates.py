"""Regenerate paper Table 3: LCT classification hit rates.

Expected shape (paper): geometric means in the 70-90% band for both the
unpredictable and predictable columns, on both machines.
"""

from repro.analysis import geometric_mean
from repro.harness import run_experiment

from conftest import emit


def test_tab3_lct_hit_rates(benchmark, session, report_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("tab3", session), rounds=1, iterations=1)
    emit(report_dir, "tab3", result.text)
    for combo in ("ppc/Simple", "ppc/Limit", "alpha/Simple", "alpha/Limit"):
        preds = [rows[combo][1] for rows in result.data.values()]
        nonzero = [p for p in preds if p > 0]
        assert geometric_mean(nonzero) > 0.5, combo
