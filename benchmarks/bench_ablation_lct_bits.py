"""Ablation: LCT counter width (beyond the paper's 1- and 2-bit points).

Wider counters are slower to enter (and leave) the constant state.
Reports misprediction rate and constant coverage per width.
"""

from repro.analysis import TextTable, format_percent
from repro.lvp import LVPConfig, LoadOutcome
from repro.trace import annotate_trace

from conftest import emit

BITS = (1, 2, 3, 4)
NAMES = ("compress", "sc", "gperf", "quick")


def _sweep(session):
    rows = {}
    for name in NAMES:
        trace = session.trace(name, "ppc")
        for bits in BITS:
            config = LVPConfig(name=f"lct{bits}", lct_bits=bits,
                               cvu_entries=128)
            stats = annotate_trace(trace, config).stats
            incorrect = stats.outcomes[LoadOutcome.INCORRECT]
            rows[(name, bits)] = (
                incorrect / stats.loads if stats.loads else 0.0,
                stats.constant_fraction,
            )
    return rows


def test_ablation_lct_bits(benchmark, session, report_dir):
    rows = benchmark.pedantic(lambda: _sweep(session),
                              rounds=1, iterations=1)
    table = TextTable(
        ["benchmark", "bits", "mispredict rate", "constant fraction"],
        title="Ablation: LCT counter width",
    )
    for (name, bits), (mispredicts, constants) in rows.items():
        table.add_row([name, bits, format_percent(mispredicts, 2),
                       format_percent(constants)])
    emit(report_dir, "ablation_lct_bits", table.render())
    for name in NAMES:
        # Wider counters never increase the misprediction rate much.
        assert rows[(name, 4)][0] <= rows[(name, 1)][0] + 0.02
