"""Regenerate paper Table 4: constant identification rates.

Expected shape (paper): constants are a modest fraction of dynamic
loads overall; quick and tomcatv sit at (nearly) zero; compress, sc,
and gperf are among the higher rows.
"""

from repro.harness import run_experiment

from conftest import emit


def test_tab4_constant_rates(benchmark, session, report_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("tab4", session), rounds=1, iterations=1)
    emit(report_dir, "tab4", result.text)
    data = result.data
    for name in ("quick", "tomcatv"):
        assert data[name]["ppc/Simple"] < 0.10, name
    assert data["compress"]["ppc/Constant"] > 0.05
