"""Regenerate paper Figure 6: base machine model speedups.

Expected shape (paper): positive geometric-mean speedups on both
machines for every configuration; grep and gawk stand out dramatically;
Perfect bounds Simple on the 620.
"""

from repro.analysis import geometric_mean
from repro.harness import run_experiment

from conftest import emit


def test_fig6_base_speedups(benchmark, session, report_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("fig6", session), rounds=1, iterations=1)
    emit(report_dir, "fig6", result.text)
    data = result.data
    for machine in ("620", "21164"):
        for config, rows in data[machine].items():
            assert geometric_mean(rows.values()) > 0.97, (machine, config)
    # grep is a standout on both machines.
    simple_620 = data["620"]["Simple"]
    assert simple_620["grep"] >= sorted(simple_620.values())[-3]
    # Perfect's GM is at least Simple's on the 620.
    assert geometric_mean(data["620"]["Perfect"].values()) >= \
        geometric_mean(data["620"]["Simple"].values())
