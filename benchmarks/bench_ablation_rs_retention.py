"""Ablation: the cost of reservation-station retention (paper S4.1).

The paper notes that even *correct* predictions cost something: since
speculative values verify one cycle after the actual value returns,
dependents "may end up occupying their reservation stations for one
cycle longer".  This ablation idealizes release-at-issue and measures
how much of LVP's potential that retention overhead eats.
"""

import dataclasses

from repro.analysis import TextTable, format_speedup, geometric_mean
from repro.lvp import LIMIT, SIMPLE
from repro.uarch import PPC620, PPC620Model

from conftest import emit

NO_RETENTION = dataclasses.replace(PPC620, name="620-no-retention",
                                   rs_retention=False)


def _sweep(session):
    rows = {}
    for name in session.benchmark_names:
        base = session.ppc_result(name, PPC620, None)
        per = {}
        for config in (SIMPLE, LIMIT):
            annotated = session.annotated(name, "ppc", config)
            held = PPC620Model(PPC620).run(annotated, use_lvp=True)
            ideal = PPC620Model(NO_RETENTION).run(annotated, use_lvp=True)
            per[config.name] = (base.cycles / held.cycles,
                                base.cycles / ideal.cycles)
        rows[name] = per
    return rows


def test_ablation_rs_retention(benchmark, session, report_dir):
    rows = benchmark.pedantic(lambda: _sweep(session),
                              rounds=1, iterations=1)
    table = TextTable(
        ["benchmark", "Simple", "Simple (ideal RS)",
         "Limit", "Limit (ideal RS)"],
        title="Ablation: reservation-station retention cost (620)",
    )
    for name, per in rows.items():
        table.add_row([
            name,
            format_speedup(per["Simple"][0]), format_speedup(per["Simple"][1]),
            format_speedup(per["Limit"][0]), format_speedup(per["Limit"][1]),
        ])
    gm = lambda key, idx: geometric_mean(  # noqa: E731
        [per[key][idx] for per in rows.values()])
    table.add_separator()
    table.add_row(["GM", format_speedup(gm("Simple", 0)),
                   format_speedup(gm("Simple", 1)),
                   format_speedup(gm("Limit", 0)),
                   format_speedup(gm("Limit", 1))])
    emit(report_dir, "ablation_rs_retention", table.render())
    # Releasing at issue can only help (the paper's overhead vanishes).
    assert gm("Simple", 1) >= gm("Simple", 0) - 0.002
