"""Extension: general (all-instruction) value locality.

The paper's final future-work item is "speculating on values generated
by instructions other than loads" -- the direction the authors took
next.  This bench measures register value locality for every
result-producing instruction class.
"""

from repro.analysis import TextTable, format_percent
from repro.isa import OpClass
from repro.lvp import measure_general_value_locality

from conftest import emit


def _sweep(session):
    rows = {}
    for name in session.benchmark_names:
        trace = session.trace(name, "ppc")
        rows[name] = (
            measure_general_value_locality(trace, depth=1),
            measure_general_value_locality(trace, depth=16),
        )
    return rows


def test_ext_general_locality(benchmark, session, report_dir):
    rows = benchmark.pedantic(lambda: _sweep(session),
                              rounds=1, iterations=1)
    table = TextTable(
        ["benchmark", "all d1", "all d16", "loads d1", "ALU d1", "FP d1"],
        title="Extension: general value locality (all instructions)",
    )
    for name, (d1, d16) in rows.items():
        table.add_row([
            name,
            format_percent(d1.overall.locality),
            format_percent(d16.overall.locality),
            format_percent(d1.by_class[OpClass.LOAD].locality),
            format_percent(d1.by_class[OpClass.SIMPLE_INT].locality),
            format_percent(d1.by_class[OpClass.FP_SIMPLE].locality)
            if d1.by_class[OpClass.FP_SIMPLE].total_loads else "-",
        ])
    emit(report_dir, "ext_general_locality", table.render())
    for name, (d1, d16) in rows.items():
        assert d16.overall.locality >= d1.overall.locality, name
