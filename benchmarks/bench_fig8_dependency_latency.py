"""Regenerate paper Figure 8: dependency resolution latencies.

Expected shape (paper): LSU, FPU, and SCFX instructions see the largest
reductions in reservation-station operand wait (their operands are the
predicted ones); BRU/MCFX see the least.
"""

from repro.harness import run_experiment

from conftest import emit


def test_fig8_dependency_latency(benchmark, session, report_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("fig8", session), rounds=1, iterations=1)
    emit(report_dir, "fig8", result.text)
    for machine in ("620", "620+"):
        normalized = result.data[machine]["Limit"]
        assert normalized["LSU"] <= 1.0
        assert normalized["SCFX"] <= 1.02
