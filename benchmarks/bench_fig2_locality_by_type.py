"""Regenerate paper Figure 2: PowerPC value locality by data type.

Expected shape (paper): address loads beat data loads; instruction
addresses hold a slight edge over data addresses; integer data beats
floating-point data.
"""

from repro.harness import run_experiment

from conftest import emit


def _weighted_average(rows, depth_index):
    total = sum(loads for _, _, loads in rows.values())
    if not total:
        return 0.0
    return sum(row[depth_index] * row[2] for row in rows.values()) / total


def test_fig2_locality_by_type(benchmark, session, report_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("fig2", session), rounds=1, iterations=1)
    emit(report_dir, "fig2", result.text)
    data = result.data
    # Paper shape at depth 16: addresses >= integer data >= FP data.
    instr_addr = _weighted_average(data["INSTR_ADDR"], 1)
    data_addr = _weighted_average(data["DATA_ADDR"], 1)
    int_data = _weighted_average(data["INT_DATA"], 1)
    fp_data = _weighted_average(data["FP_DATA"], 1)
    assert instr_addr > int_data > fp_data
    assert data_addr > fp_data
    # At depth 1 data addresses (TOC/pointer tables) already shine.
    assert _weighted_average(data["DATA_ADDR"], 0) > \
        _weighted_average(data["FP_DATA"], 0)
