"""Ablation: LVPT size sweep (beyond the paper).

Sweeps the prediction-table size from 256 to 8192 entries and reports
prediction accuracy per benchmark.  Expected: accuracy grows with table
size (less destructive interference) and saturates once the static-load
working set fits.
"""

from repro.analysis import TextTable, format_percent
from repro.lvp import LVPConfig
from repro.trace import annotate_trace

from conftest import emit

SIZES = (256, 512, 1024, 2048, 4096, 8192)
NAMES = ("ccl-271", "compress", "gawk", "perl", "xlisp")


def _sweep(session):
    rows = {}
    for name in NAMES:
        trace = session.trace(name, "ppc")
        rows[name] = []
        for size in SIZES:
            config = LVPConfig(name=f"lvpt{size}", lvpt_entries=size)
            stats = annotate_trace(trace, config).stats
            rows[name].append(stats.prediction_accuracy)
    return rows


def test_ablation_lvpt_size(benchmark, session, report_dir):
    rows = benchmark.pedantic(lambda: _sweep(session),
                              rounds=1, iterations=1)
    table = TextTable(["benchmark"] + [str(s) for s in SIZES],
                      title="Ablation: prediction accuracy vs LVPT entries")
    for name, accuracies in rows.items():
        table.add_row([name] + [format_percent(a) for a in accuracies])
    emit(report_dir, "ablation_lvpt_size", table.render())
    for name, accuracies in rows.items():
        assert accuracies[-1] >= accuracies[0] - 0.02, name
