"""Benchmark-harness fixtures.

One memoized :class:`Session` over the full 17-benchmark suite is shared
by every exhibit bench, exactly as the paper's numbers all derive from
one set of simulations.  Set ``REPRO_SCALE`` to ``tiny`` for a fast
smoke pass or ``reference`` for long runs (default: ``small``), and
``REPRO_JOBS=N`` to precompute the session with the parallel engine
(the exhibits then render from warmed memos with bit-identical output).

Rendered exhibit text is also written to ``benchmarks/reports/`` so a
benchmark run leaves the reproduced tables/figures behind as artifacts.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness import Session

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def session() -> Session:
    """The shared full-suite session (parallel-warmed under REPRO_JOBS)."""
    from repro.harness.parallel import jobs_from_env

    scale = os.environ.get("REPRO_SCALE", "small")
    shared = Session(scale=scale)
    report = shared.warm(jobs_from_env())
    if report is not None:
        print()
        print(report.render())
    return shared


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    """Directory collecting the rendered exhibits."""
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


def emit(report_dir: pathlib.Path, exp_id: str, text: str) -> None:
    """Print an exhibit and persist it under benchmarks/reports/."""
    print()
    print(text)
    (report_dir / f"{exp_id}.txt").write_text(text + "\n")
