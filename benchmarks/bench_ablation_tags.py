"""Ablation: tagged vs untagged LVPT (interference study).

The paper's LVPT is untagged, accepting both constructive and
destructive interference.  Tags eliminate cross-PC pollution at the
cost of losing constructive hits; this quantifies the trade.
"""

from repro.analysis import TextTable, format_percent
from repro.lvp import LVPConfig
from repro.trace import annotate_trace

from conftest import emit

NAMES = ("ccl-271", "compress", "gawk", "sc", "xlisp")


def _sweep(session):
    rows = {}
    for name in NAMES:
        trace = session.trace(name, "ppc")
        accuracies = []
        for tagged in (False, True):
            config = LVPConfig(name=f"tag{tagged}", lvpt_entries=256,
                               lvpt_tagged=tagged)
            stats = annotate_trace(trace, config).stats
            accuracies.append(stats.prediction_accuracy)
        rows[name] = accuracies
    return rows


def test_ablation_tags(benchmark, session, report_dir):
    rows = benchmark.pedantic(lambda: _sweep(session),
                              rounds=1, iterations=1)
    table = TextTable(["benchmark", "untagged", "tagged"],
                      title="Ablation: tagged vs untagged LVPT (256 entries)")
    for name, (untagged, tagged) in rows.items():
        table.add_row([name, format_percent(untagged),
                       format_percent(tagged)])
    emit(report_dir, "ablation_tags", table.render())
    for name, (untagged, tagged) in rows.items():
        assert 0.0 <= untagged <= 1.0 and 0.0 <= tagged <= 1.0
