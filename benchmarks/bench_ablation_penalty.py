"""Ablation: 21164 value-misprediction penalty sensitivity.

The paper's reissue buffer holds the squash penalty to one cycle; this
sweep shows how speedups erode as redispatch gets more expensive.
"""

import dataclasses

from repro.analysis import TextTable, format_speedup, geometric_mean
from repro.lvp import SIMPLE
from repro.uarch import AXP21164Model
from repro.uarch.axp21164.config import AXP21164

from conftest import emit

PENALTIES = (1, 2, 4, 8)
NAMES = ("grep", "gawk", "compress", "eqntott", "quick")


def _sweep(session):
    rows = {}
    for name in NAMES:
        annotated = session.annotated(name, "alpha", SIMPLE)
        base = AXP21164Model().run(annotated, use_lvp=False)
        speedups = []
        for penalty in PENALTIES:
            config = dataclasses.replace(
                AXP21164, name=f"pen{penalty}",
                value_mispredict_penalty=penalty)
            result = AXP21164Model(config).run(annotated, use_lvp=True)
            speedups.append(base.cycles / result.cycles)
        rows[name] = speedups
    return rows


def test_ablation_penalty(benchmark, session, report_dir):
    rows = benchmark.pedantic(lambda: _sweep(session),
                              rounds=1, iterations=1)
    table = TextTable(
        ["benchmark"] + [f"penalty={p}" for p in PENALTIES],
        title="Ablation: 21164 speedup vs value-mispredict penalty",
    )
    for name, speedups in rows.items():
        table.add_row([name] + [format_speedup(s) for s in speedups])
    emit(report_dir, "ablation_penalty", table.render())
    for name, speedups in rows.items():
        # Higher penalty can only hurt.
        assert speedups[0] >= speedups[-1] - 1e-9, name
    assert geometric_mean(rows["grep"]) > 0.9
