"""Regenerate paper Table 6: PowerPC 620+ speedups.

Expected shape (paper): the 620+ alone gains ~6% GM over the 620; LVP
adds further GM gains on the 620+ that are at least comparable to those
on the base 620 (the paper finds them ~50% larger); grep and gawk
benefit most.
"""

from repro.harness import run_experiment

from conftest import emit


def test_tab6_620plus_speedups(benchmark, session, report_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("tab6", session), rounds=1, iterations=1)
    emit(report_dir, "tab6", result.text)
    gm = result.data["GM"]
    assert gm["620+"] > 1.0
    assert gm["Simple"] > 1.0
    assert gm["Perfect"] >= gm["Simple"] * 0.98
    # grep/gawk among the biggest Simple gains.
    simple = {name: row["Simple"] for name, row in result.data.items()
              if name != "GM"}
    top3 = sorted(simple, key=simple.get, reverse=True)[:3]
    assert {"grep", "gawk"} & set(top3)
