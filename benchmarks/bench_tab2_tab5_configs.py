"""Regenerate paper Tables 2 and 5 (configuration tables).

Rendered from the live configuration objects, so the documented
hardware can never drift from what the models simulate.
"""

from repro.harness import run_experiment

from conftest import emit


def test_tab2_configurations(benchmark, session, report_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("tab2", session), rounds=1, iterations=1)
    emit(report_dir, "tab2", result.text)
    assert "Simple" in result.text
    assert "16/Perf" in result.text  # the Limit row's oracle marker


def test_tab5_latencies(benchmark, session, report_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("tab5", session), rounds=1, iterations=1)
    emit(report_dir, "tab5", result.text)
    assert "Load/Store" in result.text
