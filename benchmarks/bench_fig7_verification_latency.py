"""Regenerate paper Figure 7: load verification latency distribution.

Expected shape (paper): the distributions look nearly identical across
the four LVP configurations, and the 620+ distribution is shifted right
relative to the 620 (time dilation from its higher performance).
"""

from repro.harness import run_experiment

from conftest import emit

_WEIGHT = {"<4": 3, "4": 4, "5": 5, "6": 6, "7": 7, ">7": 8}


def _mean_bucket(histogram):
    return sum(_WEIGHT[bucket] * share
               for bucket, share in histogram.items())


def test_fig7_verification_latency(benchmark, session, report_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("fig7", session), rounds=1, iterations=1)
    emit(report_dir, "fig7", result.text)
    data = result.data
    # Configurations look alike within a machine...
    for machine in ("620", "620+"):
        means = [_mean_bucket(h) for h in data[machine].values()]
        assert max(means) - min(means) < 2.0
    # ...and the 620+ distribution is shifted right vs the 620.
    mean_620 = _mean_bucket(data["620"]["Simple"])
    mean_plus = _mean_bucket(data["620+"]["Simple"])
    assert mean_plus >= mean_620 - 0.25
