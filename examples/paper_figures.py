"""Regenerate any of the paper's tables and figures from the command line.

Usage::

    python examples/paper_figures.py                 # list exhibits
    python examples/paper_figures.py fig1            # one exhibit
    python examples/paper_figures.py all             # everything
    python examples/paper_figures.py fig6 --scale tiny --benchmarks grep,gawk
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import EXPERIMENTS, Session, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures.")
    parser.add_argument("exhibit", nargs="?",
                        help="exhibit id (fig1, tab3, ...) or 'all'")
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "reference"),
                        help="workload input scale (default: small)")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset")
    args = parser.parse_args(argv)

    if not args.exhibit:
        print("Available exhibits:")
        for exp_id, runner in EXPERIMENTS.items():
            summary = (runner.__doc__ or "").strip().splitlines()[0]
            print(f"  {exp_id:6s} {summary}")
        return 0

    names = tuple(args.benchmarks.split(",")) if args.benchmarks else None
    session = Session(scale=args.scale, benchmarks=names)
    exhibits = list(EXPERIMENTS) if args.exhibit == "all" \
        else [args.exhibit]
    for exp_id in exhibits:
        started = time.time()
        result = run_experiment(exp_id, session)
        print(result.text)
        print(f"[{exp_id} reproduced in {time.time() - started:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
