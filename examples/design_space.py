"""Design-space exploration: beyond the paper's four LVP design points.

The paper picks four configurations (Table 2) and leaves "an exhaustive
investigation of LVP Unit design parameters" to future work.  This
example is that exploration in miniature: it sweeps LVPT size, LCT
geometry, and CVU capacity over a benchmark subset and reports, for
every design point, the prediction coverage, misprediction rate,
constant coverage, and the resulting 620 speedup.

Usage::

    python examples/design_space.py
"""

from __future__ import annotations

from repro import (
    LoadOutcome,
    PPC620,
    PPC620Model,
    Session,
)
from repro.analysis import TextTable, format_percent, geometric_mean
from repro.lvp import LVPConfig
from repro.trace import annotate_trace
from repro.uarch.ppc620.model import PPC620Model

BENCHMARKS = ("compress", "gawk", "grep", "sc", "xlisp")

DESIGN_POINTS = (
    LVPConfig(name="tiny", lvpt_entries=256, lct_entries=64,
              lct_bits=2, cvu_entries=16),
    LVPConfig(name="Simple(paper)", lvpt_entries=1024, lct_entries=256,
              lct_bits=2, cvu_entries=32),
    LVPConfig(name="big-lvpt", lvpt_entries=8192, lct_entries=256,
              lct_bits=2, cvu_entries=32),
    LVPConfig(name="big-lct", lvpt_entries=1024, lct_entries=4096,
              lct_bits=2, cvu_entries=32),
    LVPConfig(name="big-cvu", lvpt_entries=1024, lct_entries=256,
              lct_bits=2, cvu_entries=512),
    LVPConfig(name="all-big", lvpt_entries=8192, lct_entries=4096,
              lct_bits=2, cvu_entries=512),
)


def main() -> None:
    session = Session(scale="small", benchmarks=BENCHMARKS)
    table = TextTable(
        ["design point", "coverage", "mispredict", "constant", "GM speedup"],
        title="LVP design-space sweep (5-benchmark subset, PowerPC 620)",
    )
    for config in DESIGN_POINTS:
        covered = incorrect = constant = loads = 0
        speedups = []
        for name in BENCHMARKS:
            annotated = annotate_trace(session.trace(name, "ppc"), config)
            stats = annotated.stats
            covered += (stats.outcomes[LoadOutcome.CORRECT]
                        + stats.outcomes[LoadOutcome.CONSTANT])
            incorrect += stats.outcomes[LoadOutcome.INCORRECT]
            constant += stats.outcomes[LoadOutcome.CONSTANT]
            loads += stats.loads
            base = session.ppc_result(name, PPC620, None)
            lvp = PPC620Model(PPC620).run(annotated, use_lvp=True)
            speedups.append(base.cycles / lvp.cycles)
        table.add_row([
            config.name,
            format_percent(covered / loads),
            format_percent(incorrect / loads, 2),
            format_percent(constant / loads),
            f"{geometric_mean(speedups):.3f}",
        ])
    print(table.render())


if __name__ == "__main__":
    main()
