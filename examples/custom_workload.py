"""Write your own VRISC workload and study its value locality.

Demonstrates the :class:`repro.isa.CodeBuilder` code-generation DSL on
a program the suite does not include: a linked-list symbol table with
repeated lookups -- the pointer-chasing pattern behind the paper's
"memory alias resolution" and "addressability" observations.  The list
nodes never move, so the next-pointer loads are run-time constants: the
LVP unit should classify many of them as constant loads and the CVU
should verify them without touching the cache.

Usage::

    python examples/custom_workload.py
"""

from __future__ import annotations

from repro import (
    CONSTANT,
    LoadOutcome,
    PPC620,
    PPC620Model,
    annotate_trace,
    measure_value_locality,
    run_program,
)
from repro.isa import CodeBuilder, ValueKind
from repro.workloads.support import Lcg, if_cond, while_loop

NUM_NODES = 48
NUM_LOOKUPS = 300


def build_program() -> "CodeBuilder":
    """A linked-list of (key, value) nodes plus a lookup loop."""
    rng = Lcg(seed=0x11ED)
    b = CodeBuilder("llist", target="ppc")
    data = b.data

    # Nodes: [key, value, next]; built back to front so each node can
    # point at the previously emitted one.
    next_addr = 0
    keys = list(range(NUM_NODES))
    for key in reversed(keys):
        addr = data.word(key)
        data.word(key * 1000 + 7)
        data.word(next_addr, ValueKind.DATA_ADDR)
        next_addr = addr
    data.label("head")
    data.word(next_addr, ValueKind.DATA_ADDR)
    data.label("queries")
    # Real symbol tables see heavily skewed lookups: most queries hit a
    # handful of hot symbols near the head of the chain.
    queries = [rng.below(4) if rng.below(5) else rng.below(NUM_NODES)
               for _ in range(NUM_LOOKUPS)]
    data.words(queries)
    data.label("hits_sum")
    data.word(0)

    # lookup(r3 = key) -> r3 = value (0 if absent): walk the chain.
    with b.function("lookup", leaf=True):
        b.load_addr(5, "head")
        b.ld(5, 5, 0)  # current node
        with while_loop(b) as (_, done):
            b.beqz(5, done)
            b.ld(6, 5, 0)  # key -- node fields are run-time constants
            with if_cond(b, "eq", 6, 3):
                b.ld(3, 5, 8)  # value
                b.return_from_function()
            b.ld(5, 5, 16)  # next pointer -- a constant load
        b.li(3, 0)

    # main: run all queries, accumulate the values found.
    with b.function("main", save=(24, 25, 26)):
        b.load_addr(24, "queries")
        b.li(25, NUM_LOOKUPS)
        b.li(26, 0)
        loop = b.fresh_label("q")
        done = b.fresh_label("q_done")
        b.label(loop)
        b.beqz(25, done)
        b.ld(3, 24, 0)
        b.call("lookup")
        b.add(26, 26, 3)
        b.addi(24, 24, 8)
        b.addi(25, 25, -1)
        b.j(loop)
        b.label(done)
        b.load_addr(4, "hits_sum")
        b.st(26, 4, 0)
    return b


def main() -> None:
    builder = build_program()
    program = builder.build()
    result = run_program(program, name="llist", target="ppc")

    # Verify against the obvious Python model.
    rng = Lcg(seed=0x11ED)
    queries = [rng.below(4) if rng.below(5) else rng.below(NUM_NODES)
               for _ in range(NUM_LOOKUPS)]
    expected = sum(key * 1000 + 7 for key in queries)
    got = result.memory.read_word(program.symbols["hits_sum"])[0]
    assert got == expected, (got, expected)
    print(f"== linked-list workload: {result.instruction_count:,} "
          "instructions, output verified")

    trace = result.trace
    for depth in (1, 16):
        locality = measure_value_locality(trace, depth)
        print(f"   value locality (depth {depth:>2}): "
              f"{locality.percent:5.1f}%")

    annotated = annotate_trace(trace, CONSTANT)
    stats = annotated.stats
    print(f"   constant loads: {stats.constant_fraction:.1%} of "
          f"{stats.loads:,} dynamic loads "
          "(pointer chains verified by the CVU)")

    model = PPC620Model(PPC620)
    base = model.run(annotated, use_lvp=False)
    lvp = PPC620Model(PPC620).run(annotated, use_lvp=True)
    print(f"   620 speedup with the Constant LVP unit: "
          f"{base.cycles / lvp.cycles:.3f}x "
          f"({base.cycles:,} -> {lvp.cycles:,} cycles)")
    saved = base.l1_stats.accesses - lvp.l1_stats.accesses
    print(f"   L1 accesses avoided: {saved:,} "
          f"({saved / max(1, base.l1_stats.accesses):.1%} of baseline)")


if __name__ == "__main__":
    main()
