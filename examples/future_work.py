"""The paper's Section-7 future work, exercised on one benchmark.

The paper closes with five research directions; four are implemented
in this repo.  This example runs them all on one benchmark:

1. stride value prediction ("computed predictions"),
2. branch-history-indexed prediction tables,
3. profile-guided pollution control of the value table,
4. general value locality ("instructions other than loads").

Usage::

    python examples/future_work.py [benchmark-name]
"""

from __future__ import annotations

import dataclasses
import sys

from repro import SIMPLE, get_benchmark, run_program
from repro.lvp import (
    GSHARE,
    LoadOutcome,
    STRIDE,
    build_table_filter,
    measure_general_value_locality,
)
from repro.trace import annotate_trace


def coverage(stats):
    correct = (stats.outcomes[LoadOutcome.CORRECT]
               + stats.outcomes[LoadOutcome.CONSTANT])
    return correct / stats.loads if stats.loads else 0.0


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gawk"
    bench = get_benchmark(name)
    program = bench.build_program("ppc", "small")
    result = run_program(program, name=name, target="ppc")
    bench.verify(program, result, "small")
    trace = result.trace
    print(f"== {name}: {trace.num_loads:,} loads")

    # 1 & 2: alternative predictors, sized identically to Simple.
    for config in (SIMPLE, STRIDE, GSHARE):
        stats = annotate_trace(trace, config).stats
        print(f"   {config.name:7s}: coverage {coverage(stats):6.1%}, "
              f"accuracy {stats.prediction_accuracy:6.1%}")

    # 3: pollution control on a deliberately small table.
    small = dataclasses.replace(SIMPLE, name="small", lvpt_entries=128,
                                lct_entries=128)
    filtered = dataclasses.replace(
        small, name="small+filter",
        profile_filter=build_table_filter(trace))
    for config in (small, filtered):
        stats = annotate_trace(trace, config).stats
        print(f"   {config.name:12s} (128-entry): "
              f"coverage {coverage(stats):6.1%}, "
              f"accuracy {stats.prediction_accuracy:6.1%}")

    # 4: value locality beyond loads.
    for depth in (1, 16):
        general = measure_general_value_locality(trace, depth=depth)
        print(f"   general value locality (depth {depth:>2}): "
              f"{100 * general.overall.locality:5.1f}% over "
              f"{general.overall.total_loads:,} instructions")


if __name__ == "__main__":
    main()
