"""Quickstart: trace a benchmark, measure value locality, predict loads.

Runs the paper's core pipeline end to end on one benchmark:

1. build and functionally execute the ``compress`` workload (verifying
   its output against the Python reference),
2. measure its load value locality at history depths 1 and 16 (Fig. 1),
3. annotate every dynamic load with the Simple LVP unit's prediction
   state (no prediction / incorrect / correct / constant),
4. run the PowerPC 620 cycle model with and without LVP and report the
   speedup.

Usage::

    python examples/quickstart.py [benchmark-name]
"""

from __future__ import annotations

import sys

from repro import (
    LoadOutcome,
    PPC620,
    PPC620Model,
    SIMPLE,
    annotate_trace,
    get_benchmark,
    measure_value_locality,
    run_program,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "compress"
    bench = get_benchmark(name)
    print(f"== {bench.name}: {bench.description}")

    # 1. Build and execute (the tracing tool of paper Section 5).
    program = bench.build_program(target="ppc", scale="small")
    result = run_program(program, name=bench.name, target="ppc")
    bench.verify(program, result, "small")
    trace = result.trace
    print(f"   executed {trace.num_instructions:,} instructions "
          f"({trace.num_loads:,} loads) -- output verified")

    # 2. Value locality (paper Figure 1).
    for depth in (1, 16):
        locality = measure_value_locality(trace, depth=depth)
        print(f"   value locality, history depth {depth:>2}: "
              f"{locality.percent:5.1f}%")

    # 3. LVP annotation (paper Section 5's middle phase).
    annotated = annotate_trace(trace, SIMPLE)
    outcomes = annotated.stats.outcomes
    for outcome in LoadOutcome:
        share = outcomes[outcome] / max(1, annotated.stats.loads)
        print(f"   {outcome.name.lower():>14}: {share:6.1%}")

    # 4. Cycle-level speedup on the 620 (paper Figure 6).
    model = PPC620Model(PPC620)
    base = model.run(annotated, use_lvp=False)
    lvp = PPC620Model(PPC620).run(annotated, use_lvp=True)
    print(f"   620 base: {base.cycles:,} cycles (IPC {base.ipc:.2f})")
    print(f"   620+LVP : {lvp.cycles:,} cycles (IPC {lvp.ipc:.2f})")
    print(f"   speedup : {base.cycles / lvp.cycles:.3f}x")


if __name__ == "__main__":
    main()
