"""Compare LVP across all three machine models, side by side.

Reproduces the paper's central comparison — the same LVP hardware on a
"brainiac" (620), a wider brainiac (620+), and a "speed demon" (21164)
— on a chosen benchmark subset, printing base IPC and the speedup of
each Table-2 configuration.

Usage::

    python examples/machine_comparison.py [bench1,bench2,...]
"""

from __future__ import annotations

import sys

from repro import PPC620, PPC620_PLUS, Session
from repro.analysis import TextTable, format_speedup, geometric_mean
from repro.lvp import CONSTANT, LIMIT, PERFECT, SIMPLE

DEFAULT_BENCHMARKS = ("compress", "gawk", "grep", "sc", "xlisp", "tomcatv")
CONFIGS = (SIMPLE, CONSTANT, LIMIT, PERFECT)


def main() -> None:
    names = (tuple(sys.argv[1].split(",")) if len(sys.argv) > 1
             else DEFAULT_BENCHMARKS)
    session = Session(scale="small", benchmarks=names)

    table = TextTable(
        ["machine", "base IPC (GM)"] + [c.name for c in CONFIGS],
        title=f"LVP across machine models ({', '.join(names)})",
    )
    for machine in (PPC620, PPC620_PLUS):
        ipcs = [session.ppc_result(n, machine, None).ipc for n in names]
        row = [machine.name, f"{geometric_mean(ipcs):.2f}"]
        for config in CONFIGS:
            gm = geometric_mean(
                [session.ppc_speedup(n, machine, config) for n in names])
            row.append(format_speedup(gm))
        table.add_row(row)
    # The 21164 (the paper omits its Constant column; we include it).
    ipcs = [session.alpha_result(n, None).ipc for n in names]
    row = ["21164", f"{geometric_mean(ipcs):.2f}"]
    for config in CONFIGS:
        gm = geometric_mean(
            [session.alpha_speedup(n, config) for n in names])
        row.append(format_speedup(gm))
    table.add_row(row)
    print(table.render())
    print("\nThe paper's reading: the in-order 21164 leans on LVP for "
          "latency it cannot\nschedule around, while the out-of-order "
          "620 finds independent work itself and\nthe wider 620+ has "
          "the machine parallelism to exploit what LVP exposes.")


if __name__ == "__main__":
    main()
