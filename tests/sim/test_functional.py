"""Functional-simulator semantics: one test (or more) per opcode group."""

import pytest

from repro.errors import ExecutionError, ExecutionLimitExceeded
from repro.isa import CodeBuilder, FPR_BASE, STACK_TOP, assemble
from repro.sim import FunctionalSimulator, run_program

U64 = (1 << 64) - 1
F = FPR_BASE


def run_main(body, target="ppc"):
    """Build main() around *body* (leaf) and return the ExecutionResult."""
    b = CodeBuilder("t", target=target)
    b.label("main")
    body(b)
    b.halt()
    return run_program(b.build())


def reg3(body):
    return run_main(body).registers[3]


class TestIntegerAlu:
    def test_add_wraps(self):
        def body(b):
            b.li(4, U64)
            b.li(5, 2)
            b.add(3, 4, 5)
        assert reg3(body) == 1

    def test_sub_wraps(self):
        def body(b):
            b.li(4, 0)
            b.li(5, 1)
            b.sub(3, 4, 5)
        assert reg3(body) == U64

    def test_addi_negative(self):
        def body(b):
            b.li(4, 10)
            b.addi(3, 4, -15)
        assert reg3(body) == (-5) & U64

    @pytest.mark.parametrize("op,a,b_,expected", [
        ("and_", 0b1100, 0b1010, 0b1000),
        ("or_", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
    ])
    def test_bitwise(self, op, a, b_, expected):
        def body(b):
            b.li(4, a)
            b.li(5, b_)
            getattr(b, op)(3, 4, 5)
        assert reg3(body) == expected

    @pytest.mark.parametrize("op,a,imm,expected", [
        ("andi", 0xFF, 0x0F, 0x0F),
        ("ori", 0xF0, 0x0F, 0xFF),
        ("xori", 0xFF, 0x0F, 0xF0),
    ])
    def test_bitwise_immediate(self, op, a, imm, expected):
        def body(b):
            b.li(4, a)
            getattr(b, op)(3, 4, imm)
        assert reg3(body) == expected

    def test_shifts(self):
        def body(b):
            b.li(4, 1)
            b.slli(5, 4, 63)
            b.srli(6, 5, 62)
            b.add(3, 5, 6)
        assert reg3(body) == ((1 << 63) + 2) & U64

    def test_sra_sign_extends(self):
        def body(b):
            b.li(4, -8)
            b.srai(3, 4, 2)
        assert reg3(body) == (-2) & U64

    def test_shift_amount_masked(self):
        def body(b):
            b.li(4, 1)
            b.li(5, 64)  # masked to 0
            b.sll(3, 4, 5)
        assert reg3(body) == 1

    def test_slt_signed(self):
        def body(b):
            b.li(4, -1)
            b.li(5, 1)
            b.slt(3, 4, 5)
        assert reg3(body) == 1

    def test_sltu_unsigned(self):
        def body(b):
            b.li(4, -1)  # max u64
            b.li(5, 1)
            b.sltu(3, 4, 5)
        assert reg3(body) == 0

    def test_slti(self):
        def body(b):
            b.li(4, 3)
            b.slti(3, 4, 5)
        assert reg3(body) == 1

    def test_seq(self):
        def body(b):
            b.li(4, 7)
            b.li(5, 7)
            b.seq(3, 4, 5)
        assert reg3(body) == 1

    def test_r0_always_zero(self):
        def body(b):
            b.li(0, 99)  # write to r0 must be ignored
            b.mov(3, 0)
        assert reg3(body) == 0

    def test_mov_copies(self):
        def body(b):
            b.li(4, 1234)
            b.mov(3, 4)
        assert reg3(body) == 1234


class TestComplexInteger:
    def test_mul(self):
        def body(b):
            b.li(4, -3)
            b.li(5, 7)
            b.mul(3, 4, 5)
        assert reg3(body) == (-21) & U64

    @pytest.mark.parametrize("a,b_,q", [
        (7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3), (5, 0, 0),
    ])
    def test_div_truncates(self, a, b_, q):
        def body(b):
            b.li(4, a)
            b.li(5, b_)
            b.div(3, 4, 5)
        assert reg3(body) == q & U64

    @pytest.mark.parametrize("a,b_,r", [
        (7, 3, 1), (-7, 3, -1), (7, -3, 1), (5, 0, 0),
    ])
    def test_rem_sign_follows_dividend(self, a, b_, r):
        def body(b):
            b.li(4, a)
            b.li(5, b_)
            b.rem(3, 4, 5)
        assert reg3(body) == r & U64

    def test_lr_moves(self):
        def body(b):
            b.li(4, 0x5555)
            b.mtlr(4)
            b.mflr(3)
        assert reg3(body) == 0x5555

    def test_ctr_moves(self):
        def body(b):
            b.li(4, 0x7777)
            b.mtctr(4)
            b.mfctr(3)
        assert reg3(body) == 0x7777


class TestMemoryOps:
    def test_ld_st_roundtrip(self):
        def body(b):
            b.load_addr(4, "buf")
            b.li(5, 0xCAFE)
            b.st(5, 4, 0)
            b.ld(3, 4, 0)

        def data(b):
            b.data.label("buf")
            b.data.space(1)

        b = CodeBuilder("t")
        data(b)
        b.label("main")
        body(b)
        b.halt()
        assert run_program(b.build()).registers[3] == 0xCAFE

    def test_lw_sign_extends(self):
        result = run_program(assemble("""
        .data
        x: .word 0xFFFFFFFF
        .text
        main:
            la r4, x
            lw r3, 0(r4)
            halt
        """))
        assert result.registers[3] == U64  # -1 sign-extended

    def test_stw_truncates(self):
        result = run_program(assemble("""
        .data
        x: .word 0
        .text
        main:
            la r4, x
            li r5, 0x1_0000_0001
            stw r5, 0(r4)
            ld r3, 0(r4)
            halt
        """))
        assert result.registers[3] == 1

    def test_lbu_zero_extends(self):
        result = run_program(assemble("""
        .data
        x: .word 0xFF
        .text
        main:
            la r4, x
            lbu r3, 0(r4)
            halt
        """))
        assert result.registers[3] == 0xFF

    def test_sb_byte_store(self):
        result = run_program(assemble("""
        .data
        x: .word 0
        .text
        main:
            la r4, x
            li r5, 0xAB
            sb r5, 3(r4)
            ld r3, 0(r4)
            halt
        """))
        assert result.registers[3] == 0xAB << 24

    def test_fld_fst_roundtrip(self):
        result = run_program(assemble("""
        .data
        x: .double 1.5
        y: .space 1
        .text
        main:
            la r4, x
            fld f1, 0(r4)
            la r5, y
            fst f1, 0(r5)
            ld r3, 0(r5)
            halt
        """))
        assert result.registers[3] == 0x3FF8000000000000  # bits of 1.5

    def test_negative_offset(self):
        result = run_program(assemble("""
        .data
        a: .word 11
        b: .word 22
        .text
        main:
            la r4, b
            ld r3, -8(r4)
            halt
        """))
        assert result.registers[3] == 11


class TestFloatingPoint:
    def _fp_result(self, body):
        def wrapped(b):
            body(b)
            b.ftrunc(3, F + 1)
        return reg3(wrapped)

    def test_fadd(self):
        def body(b):
            b.load_fconst(F + 2, 1.25)
            b.load_fconst(F + 3, 2.75)
            b.fadd(F + 1, F + 2, F + 3)
        assert self._fp_result(body) == 4

    def test_fsub_fmul(self):
        def body(b):
            b.load_fconst(F + 2, 10.0)
            b.load_fconst(F + 3, 4.0)
            b.fsub(F + 1, F + 2, F + 3)  # 6.0
            b.fmul(F + 1, F + 1, F + 3)  # 24.0
        assert self._fp_result(body) == 24

    def test_fdiv(self):
        def body(b):
            b.load_fconst(F + 2, 7.0)
            b.load_fconst(F + 3, 2.0)
            b.fdiv(F + 1, F + 2, F + 3)
        assert self._fp_result(body) == 3  # trunc(3.5)

    def test_fdiv_by_zero_yields_zero(self):
        def body(b):
            b.load_fconst(F + 2, 7.0)
            b.load_fconst(F + 3, 0.0)
            b.fdiv(F + 1, F + 2, F + 3)
        assert self._fp_result(body) == 0

    def test_fneg_fabs(self):
        def body(b):
            b.load_fconst(F + 2, 3.5)
            b.fneg(F + 1, F + 2)
            b.fabs_(F + 1, F + 1)
        assert self._fp_result(body) == 3

    def test_fsqrt(self):
        def body(b):
            b.load_fconst(F + 2, 16.0)
            b.fsqrt(F + 1, F + 2)
        assert self._fp_result(body) == 4

    def test_fsqrt_negative_yields_zero(self):
        def body(b):
            b.load_fconst(F + 2, -4.0)
            b.fsqrt(F + 1, F + 2)
        assert self._fp_result(body) == 0

    def test_fcvt_ftrunc_roundtrip(self):
        def body(b):
            b.li(4, -17)
            b.fcvt(F + 1, 4)
        assert self._fp_result(body) == (-17) & U64

    @pytest.mark.parametrize("op,a,b_,expected", [
        ("flt", 1.0, 2.0, 1), ("flt", 2.0, 1.0, 0),
        ("feq", 1.5, 1.5, 1), ("feq", 1.5, 1.6, 0),
        ("fle", 1.5, 1.5, 1), ("fle", 1.6, 1.5, 0),
    ])
    def test_fp_compares(self, op, a, b_, expected):
        def body(b):
            b.load_fconst(F + 2, a)
            b.load_fconst(F + 3, b_)
            getattr(b, op)(3, F + 2, F + 3)
        assert reg3(body) == expected


class TestControlFlow:
    @pytest.mark.parametrize("op,a,b_,taken", [
        ("beq", 1, 1, True), ("beq", 1, 2, False),
        ("bne", 1, 2, True), ("bne", 1, 1, False),
        ("blt", -1, 1, True), ("blt", 1, -1, False),
        ("bge", 1, 1, True), ("bge", -1, 1, False),
        ("bltu", 1, 2, True), ("bltu", U64, 1, False),
        ("bgeu", U64, 1, True), ("bgeu", 1, 2, False),
    ])
    def test_conditional_branch(self, op, a, b_, taken):
        def body(b):
            b.li(4, a)
            b.li(5, b_)
            getattr(b, op)(4, 5, "t")
            b.li(3, 0)
            b.halt()
            b.label("t")
            b.li(3, 1)
        assert reg3(body) == (1 if taken else 0)

    def test_jal_sets_lr(self):
        result = run_program(assemble("""
        main:
            jal f
            halt
        f:
            mflr r3
            ret
        """))
        # JAL at index 0; return address is index 1's pc
        from repro.isa import TEXT_BASE
        assert result.registers[3] == TEXT_BASE + 4

    def test_jr_indirect(self):
        def body(b):
            b.la(4, "dest")
            b.jr(4)
            b.li(3, 0)
            b.halt()
            b.label("dest")
            b.li(3, 1)
        assert reg3(body) == 1

    def test_return_to_exit_sentinel_halts(self):
        # main's epilogue returns to LR=0, which terminates execution
        b = CodeBuilder("t")
        with b.function("main"):
            b.li(3, 55)
        assert run_program(b.build()).registers[3] == 55

    def test_halt_is_recorded(self):
        def body(b):
            b.li(3, 1)
        trace = run_main(body).trace
        from repro.isa import Opcode
        assert trace.opcode[-1] == int(Opcode.HALT)


class TestInitialState:
    def test_sp_initialized(self):
        def body(b):
            b.mov(3, 1)
        assert reg3(body) == STACK_TOP

    def test_toc_initialized(self):
        from repro.isa import DATA_BASE

        def body(b):
            b.mov(3, 2)
        assert reg3(body) == DATA_BASE


class TestLimitsAndErrors:
    def test_instruction_budget(self):
        b = CodeBuilder("t")
        b.label("main")
        b.label("spin")
        b.j("spin")
        program = b.build()
        sim = FunctionalSimulator(program, max_instructions=1000)
        with pytest.raises(ExecutionLimitExceeded):
            sim.run()

    def test_wild_jump_detected(self):
        def body(b):
            b.li(4, 0x9999_0000)
            b.jr(4)
        with pytest.raises(ExecutionError):
            run_main(body)

    def test_no_trace_mode(self):
        def body(b):
            b.li(3, 1)
        b = CodeBuilder("t")
        b.label("main")
        body(b)
        b.halt()
        result = FunctionalSimulator(b.build()).run(collect_trace=False)
        assert result.trace is None
        assert result.instruction_count == 2
