"""Regression tests for the FP-write-to-r0 bug.

An FP-writing instruction whose destination decoded to r0 used to
clobber the hardwired zero register in the functional simulator, after
which every later read of r0 saw garbage.  The fix is layered: the
assembler rejects such instructions outright, and both execution
engines discard the write if one is constructed anyway (e.g. by
hand-built test programs or a future buggy code generator).
"""

import pytest

from repro.errors import AssemblyError
from repro.isa import (
    DataSegment,
    FPR_BASE,
    Instruction,
    Opcode,
    Program,
    assemble,
    float_to_bits,
)
from repro.sim import run_program

#: Every FP-writing opcode the assembler must police.
FP_WRITERS = ("fld", "fadd", "fsub", "fmul", "fdiv", "fneg", "fabs",
              "fsqrt", "fcvt")


class TestAssemblerRejection:
    @pytest.mark.parametrize("mnemonic", FP_WRITERS)
    def test_r0_destination_rejected(self, mnemonic):
        if mnemonic == "fld":
            line = "fld r0, 0(r4)"
        elif mnemonic in ("fneg", "fabs", "fsqrt", "fcvt"):
            line = f"{mnemonic} r0, f1"
        else:
            line = f"{mnemonic} r0, f1, f2"
        with pytest.raises(AssemblyError, match="zero register"):
            assemble(f"main:\n {line}\n halt")

    def test_integer_r0_destination_still_allowed(self):
        # Integer writes to r0 are architecturally discarded, not errors.
        result = run_program(assemble("main:\n addi r0, r0, 5\n halt"))
        assert result.registers[0] == 0

    def test_fp_register_destinations_still_allowed(self):
        result = run_program(assemble("""
        main:
            fadd f3, f1, f2
            halt
        """))
        assert result.registers[0] == 0


def _rogue_program(opcode: Opcode) -> Program:
    """Hand-build the program the assembler refuses to produce."""
    f1 = FPR_BASE + 1
    instructions = [
        Instruction(Opcode.FADD, dst=f1, src1=f1, src2=f1),
        Instruction(opcode, dst=0, src1=f1, src2=f1),
        Instruction(Opcode.ADD, dst=3, src1=0, src2=0),
        Instruction(Opcode.HALT),
    ]
    return Program(instructions, DataSegment(), {"main": 0},
                   name="rogue").link()


class TestSimulatorGuard:
    @pytest.mark.parametrize("engine", ("interp", "compiled"))
    @pytest.mark.parametrize("opcode", (Opcode.FADD, Opcode.FMUL,
                                        Opcode.FNEG, Opcode.FABS))
    def test_rogue_fp_write_discarded(self, opcode, engine):
        result = run_program(_rogue_program(opcode), engine=engine)
        assert result.registers[0] == 0
        assert result.registers[3] == 0

    def test_engines_agree_on_rogue_program(self):
        interp = run_program(_rogue_program(Opcode.FADD), engine="interp")
        compiled = run_program(_rogue_program(Opcode.FADD),
                               engine="compiled")
        assert interp.registers == compiled.registers
        assert (interp.trace.value == compiled.trace.value).all()


def test_fp_pipeline_unaffected():
    """A normal FP program computes the same answer on both engines."""
    source = """
    .data
    x: .double 1.5
    .text
    main:
        la r4, x
        fld f1, 0(r4)
        fadd f2, f1, f1
        fmul f3, f2, f2
        halt
    """
    interp = run_program(assemble(source), engine="interp")
    compiled = run_program(assemble(source), engine="compiled")
    expected = float_to_bits(9.0)
    assert interp.registers[FPR_BASE + 3] == expected
    assert compiled.registers[FPR_BASE + 3] == expected
