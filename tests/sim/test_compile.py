"""Differential suite: the AOT basic-block compiler vs the interpreter.

The compiled engine is only allowed to exist because it is bit-identical
to the interpreter.  These tests hold it to that: every workload in the
suite, on both codegen targets, must produce byte-for-byte equal traces,
register files, and instruction counts under both engines.
"""

import pytest

from repro.errors import ConfigError
from repro.sim import (
    CompiledProgram,
    ENGINES,
    compiled_engine_for,
    resolve_engine,
    run_program,
)
from repro.trace.records import TRACE_COLUMNS
from repro.workloads.suite import BENCHMARKS, NAMES


def assert_traces_equal(a, b):
    assert len(a) == len(b)
    for name, _ in TRACE_COLUMNS:
        assert (getattr(a, name) == getattr(b, name)).all(), \
            f"column {name!r} differs"


def _both_engines(program, name):
    interp = run_program(program, name=name, engine="interp")
    compiled = run_program(program, name=name, engine="compiled")
    return interp, compiled


class TestEngineResolution:
    def test_auto_selects_compiled(self):
        assert resolve_engine("auto") == "compiled"

    def test_explicit_engines_pass_through(self):
        assert resolve_engine("interp") == "interp"
        assert resolve_engine("compiled") == "compiled"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            resolve_engine("jit")

    def test_env_overrides_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "interp")
        assert resolve_engine("compiled") == "interp"

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        with pytest.raises(ConfigError, match="unknown"):
            resolve_engine("auto")

    def test_engines_tuple(self):
        assert ENGINES == ("auto", "interp", "compiled")


class TestCompiledProgramCache:
    def test_engine_memoized_per_program(self):
        program = BENCHMARKS[7].build_program("ppc", "tiny")
        engine = compiled_engine_for(program)
        assert isinstance(engine, CompiledProgram)
        assert compiled_engine_for(program) is engine

    def test_distinct_programs_distinct_engines(self):
        a = BENCHMARKS[7].build_program("ppc", "tiny")
        b = BENCHMARKS[7].build_program("ppc", "tiny")
        assert compiled_engine_for(a) is not compiled_engine_for(b)


@pytest.mark.parametrize("name", NAMES)
def test_trace_bit_identical_ppc(name):
    from repro.workloads.suite import get_benchmark
    program = get_benchmark(name).build_program("ppc", "tiny")
    interp, compiled = _both_engines(program, name)
    assert interp.instruction_count == compiled.instruction_count
    assert interp.registers == compiled.registers
    assert_traces_equal(interp.trace, compiled.trace)


@pytest.mark.parametrize("name", ("grep", "compress", "quick", "xlisp",
                                  "tomcatv", "doduc"))
def test_trace_bit_identical_alpha(name):
    from repro.workloads.suite import get_benchmark
    program = get_benchmark(name).build_program("alpha", "tiny")
    interp, compiled = _both_engines(program, name)
    assert interp.registers == compiled.registers
    assert_traces_equal(interp.trace, compiled.trace)


def test_no_trace_mode_matches():
    program = BENCHMARKS[7].build_program("ppc", "tiny")
    interp = run_program(program, collect_trace=False, engine="interp")
    compiled = run_program(program, collect_trace=False, engine="compiled")
    assert interp.trace is None and compiled.trace is None
    assert interp.registers == compiled.registers
    assert interp.instruction_count == compiled.instruction_count
