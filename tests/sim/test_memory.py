"""Unit tests for the flat memory model."""

import pytest

from repro.errors import ExecutionError
from repro.isa import ValueKind
from repro.sim import Memory


class TestWordAccess:
    def test_uninitialized_reads_zero(self):
        mem = Memory()
        value, kind = mem.read_word(0x1000)
        assert value == 0
        assert kind == int(ValueKind.INT_DATA)

    def test_write_read_roundtrip(self):
        mem = Memory()
        mem.write_word(0x1000, 0xDEADBEEF, int(ValueKind.DATA_ADDR))
        value, kind = mem.read_word(0x1000)
        assert value == 0xDEADBEEF
        assert kind == int(ValueKind.DATA_ADDR)

    def test_value_masked_to_64_bits(self):
        mem = Memory()
        mem.write_word(0x1000, 1 << 70, 0)
        assert mem.read_word(0x1000)[0] == 0

    def test_misaligned_word_rejected(self):
        mem = Memory()
        with pytest.raises(ExecutionError):
            mem.read_word(0x1001)
        with pytest.raises(ExecutionError):
            mem.write_word(0x1004, 1, 0)

    def test_negative_address_rejected(self):
        mem = Memory()
        with pytest.raises(ExecutionError):
            mem.read_word(-8)

    def test_from_image(self):
        mem = Memory.from_image({0x10: 5}, {0x10: 2})
        assert mem.read_word(0x10) == (5, 2)


class TestSubWordAccess:
    def test_u32_halves(self):
        mem = Memory()
        mem.write_word(0x1000, 0x1122334455667788, 0)
        assert mem.read_u32(0x1000) == 0x55667788
        assert mem.read_u32(0x1004) == 0x11223344

    def test_u32_write_preserves_other_half(self):
        mem = Memory()
        mem.write_word(0x1000, 0xAAAAAAAABBBBBBBB, 0)
        mem.write_u32(0x1000, 0x11111111)
        assert mem.read_word(0x1000)[0] == 0xAAAAAAAA11111111

    def test_u32_write_resets_kind(self):
        mem = Memory()
        mem.write_word(0x1000, 0, int(ValueKind.DATA_ADDR))
        mem.write_u32(0x1000, 1)
        assert mem.read_word(0x1000)[1] == int(ValueKind.INT_DATA)

    def test_u32_misaligned_rejected(self):
        mem = Memory()
        with pytest.raises(ExecutionError):
            mem.read_u32(0x1002)

    def test_byte_positions(self):
        mem = Memory()
        mem.write_word(0x1000, 0x0807060504030201, 0)
        for i in range(8):
            assert mem.read_u8(0x1000 + i) == i + 1

    def test_byte_write_rmw(self):
        mem = Memory()
        mem.write_word(0x1000, 0xFFFFFFFFFFFFFFFF, 0)
        mem.write_u8(0x1003, 0)
        assert mem.read_word(0x1000)[0] == 0xFFFFFFFF00FFFFFF

    def test_byte_any_alignment(self):
        mem = Memory()
        mem.write_u8(0x1007, 0xAB)
        assert mem.read_u8(0x1007) == 0xAB


class TestBulkHelpers:
    def test_read_bytes(self):
        mem = Memory()
        for i, byte in enumerate(b"hello world"):
            mem.write_u8(0x2000 + i, byte)
        assert mem.read_bytes(0x2000, 11) == b"hello world"

    def test_read_cstring(self):
        mem = Memory()
        for i, byte in enumerate(b"abc\x00xyz"):
            mem.write_u8(0x2000 + i, byte)
        assert mem.read_cstring(0x2000) == b"abc"

    def test_unterminated_cstring_raises(self):
        mem = Memory()
        for i in range(4):
            mem.write_u8(0x2000 + i, 0xFF)
        with pytest.raises(ExecutionError):
            mem.read_cstring(0x2000, limit=4)
