"""Value-kind propagation tests (the shadow behind Figure 2)."""

from repro.isa import CodeBuilder, FPR_BASE, Opcode, ValueKind, assemble
from repro.sim import run_program

F = FPR_BASE


def load_kinds(source: str) -> list[int]:
    """Run assembly and return the kind column of its load records."""
    trace = run_program(assemble(source)).trace
    return trace.kind[trace.is_load].tolist()


class TestMemoryKinds:
    def test_int_data_load(self):
        kinds = load_kinds("""
        .data
        x: .word 5
        .text
        main:
            la r4, x
            ld r3, 0(r4)
            halt
        """)
        assert kinds == [int(ValueKind.INT_DATA)]

    def test_fp_data_load(self):
        kinds = load_kinds("""
        .data
        x: .double 2.0
        .text
        main:
            la r4, x
            fld f1, 0(r4)
            halt
        """)
        assert kinds == [int(ValueKind.FP_DATA)]

    def test_pointer_load_is_data_addr(self):
        kinds = load_kinds("""
        .data
        p: .ptr v
        v: .word 0
        .text
        main:
            la r4, p
            ld r3, 0(r4)
            halt
        """)
        assert kinds == [int(ValueKind.DATA_ADDR)]

    def test_stored_address_keeps_kind(self):
        kinds = load_kinds("""
        .data
        v: .word 1
        slot: .word 0
        .text
        main:
            la r4, v
            la r5, slot
            st r4, 0(r5)
            ld r3, 0(r5)
            halt
        """)
        assert kinds == [int(ValueKind.DATA_ADDR)]

    def test_byte_load_is_int(self):
        kinds = load_kinds("""
        .data
        p: .ptr p
        .text
        main:
            la r4, p
            lbu r3, 0(r4)
            halt
        """)
        assert kinds == [int(ValueKind.INT_DATA)]


class TestReturnAddressKinds:
    def test_saved_link_register_is_instr_addr(self):
        """The prologue/epilogue LR save/reload carries INSTR_ADDR."""
        b = CodeBuilder("t")
        with b.function("callee"):
            b.nop()
        with b.function("main"):
            b.call("callee")
        trace = run_program(b.build()).trace
        instr_addr_loads = (
            trace.kind[trace.is_load] == int(ValueKind.INSTR_ADDR)
        ).sum()
        assert instr_addr_loads >= 2  # callee's and main's LR reloads

    def test_function_descriptor_is_instr_addr(self):
        b = CodeBuilder("t", target="ppc")
        with b.function("callee", leaf=True):
            b.li(3, 1)
        with b.function("main"):
            b.call_far("callee")
        trace = run_program(b.build()).trace
        kinds = trace.kind[trace.is_load].tolist()
        assert int(ValueKind.INSTR_ADDR) in kinds


class TestRegisterKindPropagation:
    def test_pointer_arithmetic_stays_addr(self):
        kinds = load_kinds("""
        .data
        arr: .word 10, 20
        ptrs: .ptr arr
        .text
        main:
            la r4, ptrs
            ld r5, 0(r4)     ; DATA_ADDR
            addi r5, r5, 8   ; still an address
            la r6, scratch
            st r5, 0(r6)
            ld r3, 0(r6)     ; loaded back: DATA_ADDR
            halt
        .data
        scratch: .word 0
        """)
        assert kinds[-1] == int(ValueKind.DATA_ADDR)

    def test_alu_on_data_is_int(self):
        b = CodeBuilder("t")
        b.data.label("slot")
        b.data.space(1)
        b.label("main")
        b.li(4, 1)
        b.li(5, 2)
        b.xor(6, 4, 5)  # INT_DATA
        b.load_addr(7, "slot")
        b.st(6, 7, 0)
        b.ld(3, 7, 0)
        b.halt()
        trace = run_program(b.build()).trace
        assert trace.kind[trace.is_load].tolist()[-1] == \
            int(ValueKind.INT_DATA)

    def test_fp_result_stored_is_fp(self):
        b = CodeBuilder("t")
        b.data.label("slot")
        b.data.space(1)
        b.label("main")
        b.load_fconst(F + 1, 1.0)
        b.fadd(F + 2, F + 1, F + 1)
        b.load_addr(4, "slot")
        b.fst(F + 2, 4, 0)
        b.fld(F + 3, 4, 0)
        b.halt()
        trace = run_program(b.build()).trace
        assert trace.kind[trace.is_load].tolist()[-1] == \
            int(ValueKind.FP_DATA)
