"""Unit tests for the Constant Verification Unit."""

from repro.lvp import CVU


class TestMatchInsert:
    def test_empty_no_match(self):
        cvu = CVU(8)
        assert not cvu.match(0x2000, 5)

    def test_insert_then_match(self):
        cvu = CVU(8)
        cvu.insert(0x2000, 5)
        assert cvu.match(0x2000, 5)

    def test_match_requires_both_fields(self):
        cvu = CVU(8)
        cvu.insert(0x2000, 5)
        assert not cvu.match(0x2000, 6)
        assert not cvu.match(0x2008, 5)

    def test_word_granularity(self):
        cvu = CVU(8)
        cvu.insert(0x2003, 5)  # sub-word address normalizes
        assert cvu.match(0x2000, 5)
        assert cvu.match(0x2007, 5)

    def test_duplicate_insert_no_growth(self):
        cvu = CVU(8)
        cvu.insert(0x2000, 5)
        cvu.insert(0x2000, 5)
        assert len(cvu) == 1

    def test_zero_capacity_never_stores(self):
        cvu = CVU(0)
        cvu.insert(0x2000, 5)
        assert not cvu.match(0x2000, 5)
        assert len(cvu) == 0


class TestStoreInvalidation:
    def test_store_invalidates_matching_word(self):
        cvu = CVU(8)
        cvu.insert(0x2000, 5)
        removed = cvu.snoop_store(0x2000, 8)
        assert removed == 1
        assert not cvu.match(0x2000, 5)

    def test_store_elsewhere_keeps_entry(self):
        cvu = CVU(8)
        cvu.insert(0x2000, 5)
        assert cvu.snoop_store(0x3000, 8) == 0
        assert cvu.match(0x2000, 5)

    def test_subword_store_invalidates_containing_word(self):
        cvu = CVU(8)
        cvu.insert(0x2000, 5)
        assert cvu.snoop_store(0x2005, 1) == 1
        assert not cvu.match(0x2000, 5)

    def test_store_invalidates_all_indices_at_address(self):
        cvu = CVU(8)
        cvu.insert(0x2000, 5)
        cvu.insert(0x2000, 6)
        assert cvu.snoop_store(0x2000, 8) == 2
        assert len(cvu) == 0

    def test_unaligned_store_spans_two_words(self):
        cvu = CVU(8)
        cvu.insert(0x2000, 5)
        cvu.insert(0x2008, 6)
        # 8-byte store at 0x2004 touches both words
        assert cvu.snoop_store(0x2004, 8) == 2


class TestCapacityLru:
    def test_eviction_at_capacity(self):
        cvu = CVU(2)
        cvu.insert(0x2000, 1)
        cvu.insert(0x2008, 2)
        cvu.insert(0x2010, 3)  # evicts 0x2000 (LRU)
        assert not cvu.match(0x2000, 1)
        assert cvu.match(0x2008, 2)
        assert cvu.match(0x2010, 3)
        assert len(cvu) == 2

    def test_match_refreshes_lru(self):
        cvu = CVU(2)
        cvu.insert(0x2000, 1)
        cvu.insert(0x2008, 2)
        cvu.match(0x2000, 1)  # refresh
        cvu.insert(0x2010, 3)  # evicts 0x2008 now
        assert cvu.match(0x2000, 1)
        assert not cvu.match(0x2008, 2)

    def test_explicit_invalidate(self):
        cvu = CVU(8)
        cvu.insert(0x2000, 5)
        cvu.invalidate(0x2000, 5)
        assert not cvu.match(0x2000, 5)
        # idempotent
        cvu.invalidate(0x2000, 5)

    def test_invalidate_subword_address(self):
        # invalidate derives its key through the same key_of helper as
        # insert/match, so a sub-word address removes the entry placed
        # under the containing word.
        cvu = CVU(8)
        cvu.insert(0x2000, 5)
        cvu.invalidate(0x2003, 5)
        assert not cvu.match(0x2000, 5)

    def test_insert_reports_placement(self):
        cvu = CVU(8)
        assert cvu.insert(0x2000, 5)
        assert cvu.insert(0x2000, 5)  # refresh still counts as present
        assert not CVU(0).insert(0x2000, 5)
        assert len(CVU(0)) == 0

    def test_flush(self):
        cvu = CVU(8)
        cvu.insert(0x2000, 5)
        cvu.flush()
        assert len(cvu) == 0
        assert not cvu.match(0x2000, 5)
