"""Unit tests for the Load Value Prediction Table."""

from repro.lvp import LVPT


class TestBasicPrediction:
    def test_empty_table_no_prediction(self):
        table = LVPT(16)
        assert table.predict(0x100) is None
        assert not table.would_be_correct(0x100, 5)

    def test_predicts_last_value(self):
        table = LVPT(16)
        table.update(0x100, 42)
        assert table.predict(0x100) == 42
        assert table.would_be_correct(0x100, 42)
        assert not table.would_be_correct(0x100, 43)

    def test_update_replaces_mru(self):
        table = LVPT(16, history_depth=1)
        table.update(0x100, 1)
        table.update(0x100, 2)
        assert table.predict(0x100) == 2
        assert not table.would_be_correct(0x100, 1)

    def test_index_uses_low_pc_bits(self):
        table = LVPT(16)
        assert table.index_of(0x100) == table.index_of(0x100 + 16 * 4)

    def test_flush(self):
        table = LVPT(16)
        table.update(0x100, 42)
        table.flush()
        assert table.predict(0x100) is None


class TestInterference:
    def test_untagged_aliasing(self):
        """Two PCs mapping to one entry interfere (paper footnote 1)."""
        table = LVPT(16)
        pc_a, pc_b = 0x100, 0x100 + 16 * 4
        table.update(pc_a, 1)
        table.update(pc_b, 2)
        # Destructive: pc_a's value was displaced by pc_b's.
        assert table.predict(pc_a) == 2
        # Constructive: pc_b benefits from whatever is there.
        assert table.would_be_correct(pc_b, 2)

    def test_tagged_table_isolates(self):
        table = LVPT(16, tagged=True)
        pc_a, pc_b = 0x100, 0x100 + 16 * 4
        table.update(pc_a, 1)
        table.update(pc_b, 2)
        # pc_a's entry was evicted by the tag mismatch, not shared.
        assert table.lookup(pc_a) == []
        assert table.predict(pc_b) == 2


class TestHistoryDepth:
    def test_depth_keeps_distinct_values(self):
        table = LVPT(16, history_depth=4, selection="perfect")
        for value in (1, 2, 3, 4):
            table.update(0x100, value)
        for value in (1, 2, 3, 4):
            assert table.would_be_correct(0x100, value)
        assert not table.would_be_correct(0x100, 5)

    def test_lru_eviction(self):
        table = LVPT(16, history_depth=2, selection="perfect")
        table.update(0x100, 1)
        table.update(0x100, 2)
        table.update(0x100, 3)  # evicts 1
        assert not table.would_be_correct(0x100, 1)
        assert table.would_be_correct(0x100, 2)
        assert table.would_be_correct(0x100, 3)

    def test_rereference_refreshes_lru(self):
        table = LVPT(16, history_depth=2, selection="perfect")
        table.update(0x100, 1)
        table.update(0x100, 2)
        table.update(0x100, 1)  # 1 back to MRU
        table.update(0x100, 3)  # evicts 2
        assert table.would_be_correct(0x100, 1)
        assert not table.would_be_correct(0x100, 2)

    def test_duplicate_update_no_growth(self):
        table = LVPT(16, history_depth=4)
        for _ in range(10):
            table.update(0x100, 7)
        assert table.lookup(0x100) == [7]

    def test_mru_selection_uses_front_only(self):
        table = LVPT(16, history_depth=4, selection="mru")
        table.update(0x100, 1)
        table.update(0x100, 2)
        assert not table.would_be_correct(0x100, 1)
        assert table.would_be_correct(0x100, 2)

    def test_history_never_exceeds_depth(self):
        table = LVPT(16, history_depth=3)
        for value in range(10):
            table.update(0x100, value)
        assert len(table.lookup(0x100)) == 3
