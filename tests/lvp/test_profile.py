"""Tests for profile-guided value-table pollution control."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.isa import OpClass
from repro.lvp import (
    LVPConfig,
    LVPUnit,
    LoadOutcome,
    SIMPLE,
    build_table_filter,
    profile_loads,
)
from repro.trace import annotate_trace

from tests.trace.test_records import make_trace


def loads_trace(pc_value_pairs):
    return make_trace([
        (pc, OpClass.LOAD, 0x2000, value) for pc, value in pc_value_pairs
    ])


class TestProfiling:
    def test_counts_and_hits(self):
        trace = loads_trace([(0x100, 7)] * 5 + [(0x104, 1), (0x104, 2)])
        profiles = profile_loads(trace)
        assert profiles[0x100].dynamic_count == 5
        assert profiles[0x100].hits == 4
        assert profiles[0x100].predictability == pytest.approx(0.8)
        assert profiles[0x104].hits == 0

    def test_no_cross_pc_interference(self):
        """Profiling is exact per PC, unlike the hardware table."""
        stride = 1024 * 4  # would alias in a 1K-entry table
        trace = loads_trace([(0x100, 1), (0x100 + stride, 2)] * 6)
        profiles = profile_loads(trace)
        assert profiles[0x100].predictability > 0.8
        assert profiles[0x100 + stride].predictability > 0.8

    def test_empty_trace(self):
        assert profile_loads(loads_trace([])) == {}


class TestFilterConstruction:
    def test_keeps_predictable_drops_noisy(self):
        rows = [(0x100, 7)] * 20  # predictable
        rows += [(0x104, i) for i in range(20)]  # noise
        chosen = build_table_filter(loads_trace(rows))
        assert 0x100 in chosen
        assert 0x104 not in chosen

    def test_min_count_threshold(self):
        rows = [(0x100, 7)] * 2  # predictable but rare
        chosen = build_table_filter(loads_trace(rows), min_count=4)
        assert 0x100 not in chosen

    def test_thresholds_configurable(self):
        rows = [(0x100, i % 2) for i in range(20)]  # 0% last-value
        permissive = build_table_filter(loads_trace(rows),
                                        min_predictability=0.0)
        assert 0x100 in permissive


class TestFilteredUnit:
    def test_filtered_loads_never_predict(self):
        config = dataclasses.replace(
            SIMPLE, name="filtered", profile_filter=frozenset({0x100}))
        unit = LVPUnit(config)
        for _ in range(10):
            outcome = unit.process_load(0x104, 0x2000, 7)
            assert outcome is LoadOutcome.NO_PREDICTION

    def test_allowed_loads_predict_normally(self):
        config = dataclasses.replace(
            SIMPLE, name="filtered", profile_filter=frozenset({0x100}))
        unit = LVPUnit(config)
        outcomes = [unit.process_load(0x100, 0x2000, 7) for _ in range(10)]
        assert LoadOutcome.CONSTANT in outcomes

    def test_filter_prevents_pollution(self):
        """With a 1-entry LVPT, filtering the noisy alias preserves the
        predictable load's accuracy."""
        tiny = LVPConfig(name="tiny", lvpt_entries=1, lct_entries=1,
                         cvu_entries=8)
        filtered = dataclasses.replace(
            tiny, name="tiny-filtered", profile_filter=frozenset({0x100}))
        streams = []
        for config in (tiny, filtered):
            unit = LVPUnit(config)
            correct = 0
            for i in range(60):
                # Noisy aliasing load pollutes the shared entry.
                unit.process_load(0x104, 0x3000, i)
                if unit.process_load(0x100, 0x2000, 7) in (
                        LoadOutcome.CORRECT, LoadOutcome.CONSTANT):
                    correct += 1
            streams.append(correct)
        unfiltered_correct, filtered_correct = streams
        assert filtered_correct > unfiltered_correct

    def test_stats_quadrants_still_sum(self):
        config = dataclasses.replace(
            SIMPLE, name="filtered", profile_filter=frozenset({0x100}))
        unit = LVPUnit(config)
        for i in range(20):
            unit.process_load(0x100 + 4 * (i % 3), 0x2000, 7)
        stats = unit.stats
        quadrants = (stats.predictable_predicted
                     + stats.predictable_not_predicted
                     + stats.unpredictable_predicted
                     + stats.unpredictable_not_predicted)
        assert quadrants == stats.loads == 20

    def test_annotation_with_filter(self, compress_trace):
        chosen = build_table_filter(compress_trace)
        config = dataclasses.replace(SIMPLE, name="filtered",
                                     profile_filter=chosen)
        annotated = annotate_trace(compress_trace, config)
        assert annotated.stats.loads == compress_trace.num_loads

    def test_bad_filter_type_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(SIMPLE, name="bad",
                                profile_filter={0x100})  # set, not frozenset
