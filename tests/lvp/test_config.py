"""Unit tests for LVP configurations (paper Table 2)."""

import pytest

from repro.errors import ConfigError
from repro.lvp import (
    CONSTANT,
    LIMIT,
    LVPConfig,
    PAPER_CONFIGS,
    PERFECT,
    REALISTIC_CONFIGS,
    SIMPLE,
    config_by_name,
)


class TestPaperTable2:
    def test_simple_row(self):
        assert SIMPLE.lvpt_entries == 1024
        assert SIMPLE.history_depth == 1
        assert SIMPLE.lct_entries == 256
        assert SIMPLE.lct_bits == 2
        assert SIMPLE.cvu_entries == 32

    def test_constant_row(self):
        assert CONSTANT.lvpt_entries == 1024
        assert CONSTANT.lct_bits == 1
        assert CONSTANT.cvu_entries == 128

    def test_limit_row(self):
        assert LIMIT.lvpt_entries == 4096
        assert LIMIT.history_depth == 16
        assert LIMIT.selection == "perfect"
        assert LIMIT.lct_entries == 1024
        assert LIMIT.cvu_entries == 128

    def test_perfect_row(self):
        assert PERFECT.perfect
        assert PERFECT.cvu_entries == 0

    def test_four_configs_in_order(self):
        assert [c.name for c in PAPER_CONFIGS] == \
            ["Simple", "Constant", "Limit", "Perfect"]

    def test_realistic_subset(self):
        assert REALISTIC_CONFIGS == (SIMPLE, CONSTANT)


class TestValidation:
    def test_non_power_of_two_lvpt(self):
        with pytest.raises(ConfigError):
            LVPConfig(name="bad", lvpt_entries=100)

    def test_non_power_of_two_lct(self):
        with pytest.raises(ConfigError):
            LVPConfig(name="bad", lct_entries=100)

    def test_zero_history_depth(self):
        with pytest.raises(ConfigError):
            LVPConfig(name="bad", history_depth=0)

    def test_bad_selection(self):
        with pytest.raises(ConfigError):
            LVPConfig(name="bad", selection="oracle")

    def test_bad_lct_bits(self):
        with pytest.raises(ConfigError):
            LVPConfig(name="bad", lct_bits=9)

    def test_negative_cvu(self):
        with pytest.raises(ConfigError):
            LVPConfig(name="bad", cvu_entries=-1)

    def test_perfect_still_validates_fields(self):
        # Regression: perfect=True used to skip *all* field validation,
        # so nonsense like lct_bits=99 or a negative CVU slipped
        # through and poisoned anything derived from the config later.
        with pytest.raises(ConfigError):
            LVPConfig(name="oracle", perfect=True, lvpt_entries=0)
        with pytest.raises(ConfigError):
            LVPConfig(name="oracle", perfect=True, lct_bits=99)
        with pytest.raises(ConfigError):
            LVPConfig(name="oracle", perfect=True, cvu_entries=-1)
        with pytest.raises(ConfigError):
            LVPConfig(name="oracle", perfect=True, predictor="nope")

    def test_perfect_accepts_valid_fields(self):
        config = LVPConfig(name="oracle", perfect=True, cvu_entries=0)
        assert config.perfect

    def test_new_predictor_families_validate(self):
        LVPConfig(name="f", predictor="fcm", history_depth=4)
        LVPConfig(name="n", predictor="lastn", history_depth=8)
        LVPConfig(name="h", predictor="hybrid")
        with pytest.raises(ConfigError):
            LVPConfig(name="h2", predictor="hybrid", history_depth=2)
        with pytest.raises(ConfigError):
            LVPConfig(name="fg", predictor="fcm", index_mode="gshare")


class TestLookup:
    def test_by_name(self):
        assert config_by_name("simple") is SIMPLE
        assert config_by_name("LIMIT") is LIMIT

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            config_by_name("huge")
