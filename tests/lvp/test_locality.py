"""Unit tests for the value-locality measurement (Figures 1-2)."""

from repro.isa import OpClass, ValueKind
from repro.lvp import measure_locality_by_kind, measure_value_locality

from tests.trace.test_records import make_trace


def load_trace(pc_value_pairs):
    """Trace of just loads from (pc, value) pairs."""
    return make_trace([
        (pc, OpClass.LOAD, 0x2000, value) for pc, value in pc_value_pairs
    ])


class TestDepthOne:
    def test_constant_stream_near_perfect(self):
        trace = load_trace([(0x100, 7)] * 10)
        result = measure_value_locality(trace, depth=1)
        assert result.hits == 9  # all but the cold first
        assert result.total_loads == 10

    def test_fresh_values_zero(self):
        trace = load_trace([(0x100, i) for i in range(10)])
        assert measure_value_locality(trace, depth=1).hits == 0

    def test_alternating_zero_at_depth_one(self):
        trace = load_trace([(0x100, i % 2) for i in range(10)])
        assert measure_value_locality(trace, depth=1).hits == 0

    def test_per_static_load_isolation(self):
        trace = load_trace([(0x100, 1), (0x104, 2)] * 5)
        result = measure_value_locality(trace, depth=1)
        assert result.hits == 8  # both streams constant after cold start

    def test_empty_trace(self):
        result = measure_value_locality(load_trace([]), depth=1)
        assert result.locality == 0.0

    def test_percent_property(self):
        trace = load_trace([(0x100, 7)] * 4)
        result = measure_value_locality(trace, depth=1)
        assert result.percent == 75.0


class TestDepthSixteen:
    def test_alternation_caught(self):
        trace = load_trace([(0x100, i % 4) for i in range(20)])
        d1 = measure_value_locality(trace, depth=1)
        d16 = measure_value_locality(trace, depth=16)
        assert d1.hits == 0
        assert d16.hits == 16  # all after the 4 cold values

    def test_depth_monotonicity(self, compress_trace):
        """Deeper history can only help (paper Figure 1's two bars)."""
        previous = -1.0
        for depth in (1, 2, 4, 8, 16):
            locality = measure_value_locality(compress_trace, depth).locality
            assert locality >= previous
            previous = locality

    def test_interference_between_aliasing_pcs(self):
        """PCs 1024 instructions apart share a table entry."""
        stride = 1024 * 4
        trace = load_trace(
            [(0x100, 1), (0x100 + stride, 2)] * 8
        )
        d1 = measure_value_locality(trace, depth=1, entries=1024)
        # Destructive interference: each load sees the other's value.
        assert d1.hits == 0
        big = measure_value_locality(trace, depth=1, entries=4096)
        assert big.hits == 14


class TestByKind:
    def test_kinds_partition_loads(self):
        trace = make_trace([
            (0x100, OpClass.LOAD, 0x2000, 1),
            (0x104, OpClass.LOAD, 0x2008, 2),
        ])
        trace.kind[0] = int(ValueKind.DATA_ADDR)
        trace.kind[1] = int(ValueKind.FP_DATA)
        by_kind = measure_locality_by_kind(trace, depth=1)
        totals = sum(r.total_loads for r in by_kind.values())
        assert totals == 2
        assert by_kind[ValueKind.DATA_ADDR].total_loads == 1
        assert by_kind[ValueKind.FP_DATA].total_loads == 1

    def test_real_trace_partition(self, compress_trace):
        by_kind = measure_locality_by_kind(compress_trace, depth=1)
        assert sum(r.total_loads for r in by_kind.values()) == \
            compress_trace.num_loads

    def test_hits_bounded_by_totals(self, grep_trace):
        for result in measure_locality_by_kind(grep_trace, 16).values():
            assert 0 <= result.hits <= result.total_loads
