"""Unit tests for the Load Classification Table."""

from repro.lvp import LCT, LoadClass


class TestTwoBitCounter:
    """Paper: states 0,1 = don't predict; 2 = predict; 3 = constant."""

    def test_initial_state_dont_predict(self):
        lct = LCT(16, bits=2)
        assert lct.classify(0x100) is LoadClass.DONT_PREDICT

    def test_state_progression(self):
        lct = LCT(16, bits=2)
        lct.update(0x100, True)
        assert lct.classify(0x100) is LoadClass.DONT_PREDICT  # state 1
        lct.update(0x100, True)
        assert lct.classify(0x100) is LoadClass.PREDICT  # state 2
        lct.update(0x100, True)
        assert lct.classify(0x100) is LoadClass.CONSTANT  # state 3

    def test_saturation_high(self):
        lct = LCT(16, bits=2)
        for _ in range(10):
            lct.update(0x100, True)
        assert lct.counter(0x100) == 3
        lct.update(0x100, False)
        assert lct.classify(0x100) is LoadClass.PREDICT

    def test_saturation_low(self):
        lct = LCT(16, bits=2)
        lct.update(0x100, False)
        assert lct.counter(0x100) == 0

    def test_oscillation_stays_unpredicted(self):
        lct = LCT(16, bits=2)
        for i in range(20):
            lct.update(0x100, i % 2 == 0)
        assert lct.classify(0x100) in (LoadClass.DONT_PREDICT,
                                       LoadClass.PREDICT)


class TestOneBitCounter:
    """Paper: states are "don't predict" and "constant" only."""

    def test_states(self):
        lct = LCT(16, bits=1)
        assert lct.classify(0x100) is LoadClass.DONT_PREDICT
        lct.update(0x100, True)
        assert lct.classify(0x100) is LoadClass.CONSTANT
        lct.update(0x100, False)
        assert lct.classify(0x100) is LoadClass.DONT_PREDICT

    def test_never_plain_predict(self):
        lct = LCT(16, bits=1)
        seen = set()
        for i in range(8):
            lct.update(0x100, i % 3 != 0)
            seen.add(lct.classify(0x100))
        assert LoadClass.PREDICT not in seen


class TestIndexing:
    def test_aliasing(self):
        lct = LCT(16, bits=2)
        pc_a, pc_b = 0x100, 0x100 + 16 * 4
        for _ in range(3):
            lct.update(pc_a, True)
        # pc_b aliases to the same counter.
        assert lct.classify(pc_b) is LoadClass.CONSTANT

    def test_distinct_entries_independent(self):
        lct = LCT(16, bits=2)
        for _ in range(3):
            lct.update(0x100, True)
        assert lct.classify(0x104) is LoadClass.DONT_PREDICT

    def test_flush(self):
        lct = LCT(16, bits=2)
        for _ in range(3):
            lct.update(0x100, True)
        lct.flush()
        assert lct.classify(0x100) is LoadClass.DONT_PREDICT
