"""Unit tests for the composed LVP unit and its outcome states."""

import pytest

from repro.lvp import (
    CONSTANT,
    LIMIT,
    LVPConfig,
    LVPUnit,
    LoadOutcome,
    PERFECT,
    SIMPLE,
)


def drive(unit, pc, value, times, addr=0x2000):
    """Feed the same (pc, addr, value) load *times* times."""
    outcome = None
    for _ in range(times):
        outcome = unit.process_load(pc, addr, value)
    return outcome


class TestOutcomeProgression:
    def test_cold_load_not_predicted(self):
        unit = LVPUnit(SIMPLE)
        assert unit.process_load(0x100, 0x2000, 5) is \
            LoadOutcome.NO_PREDICTION

    def test_warm_load_becomes_correct(self):
        # Cold miss leaves the counter at 0; two correct comparisons
        # bring it to the "predict" state for the fourth access.
        unit = LVPUnit(SIMPLE)
        drive(unit, 0x100, 5, 3)
        assert drive(unit, 0x100, 5, 1) is LoadOutcome.CORRECT

    def test_stable_load_becomes_constant(self):
        unit = LVPUnit(SIMPLE)
        outcomes = [unit.process_load(0x100, 0x2000, 5) for _ in range(8)]
        assert outcomes[-1] is LoadOutcome.CONSTANT
        # First CONSTANT classification misses the CVU (demotion), then hits.
        assert LoadOutcome.CORRECT in outcomes

    def test_changing_value_mispredicts(self):
        unit = LVPUnit(SIMPLE)
        drive(unit, 0x100, 5, 3)
        assert unit.process_load(0x100, 0x2000, 6) in (
            LoadOutcome.INCORRECT,)

    def test_alternating_values_suppressed(self):
        unit = LVPUnit(SIMPLE)
        outcomes = [unit.process_load(0x100, 0x2000, i % 2)
                    for i in range(40)]
        # After warmup the LCT should mostly say "don't predict".
        tail = outcomes[8:]
        assert tail.count(LoadOutcome.INCORRECT) < len(tail) / 2


class TestConstantVerification:
    def test_store_breaks_constant(self):
        unit = LVPUnit(SIMPLE)
        assert drive(unit, 0x100, 5, 8) is LoadOutcome.CONSTANT
        unit.process_store(0x2000)
        # CVU entry invalidated: next access demotes to predictable.
        assert unit.process_load(0x100, 0x2000, 5) is LoadOutcome.CORRECT
        # ...and the one after is constant again.
        assert unit.process_load(0x100, 0x2000, 5) is LoadOutcome.CONSTANT

    def test_unrelated_store_keeps_constant(self):
        unit = LVPUnit(SIMPLE)
        drive(unit, 0x100, 5, 8)
        unit.process_store(0x9000)
        assert unit.process_load(0x100, 0x2000, 5) is LoadOutcome.CONSTANT

    def test_constant_never_wrong_value(self):
        """CONSTANT outcomes must always carry the correct value."""
        unit = LVPUnit(SIMPLE)
        value = 5
        for step in range(100):
            if step % 17 == 16:
                value += 1  # a store would accompany this in real code
                unit.process_store(0x2000)
            outcome = unit.process_load(0x100, 0x2000, value)
            if outcome is LoadOutcome.CONSTANT:
                assert unit.lvpt.predict(0x100) == value

    def test_stale_cvu_hit_detected(self):
        """LVPT interference while a CVU entry lives = misprediction."""
        config = LVPConfig(name="tiny", lvpt_entries=1, lct_entries=1,
                           history_depth=1, lct_bits=1, cvu_entries=8)
        unit = LVPUnit(config)
        # Train pc A to constant at addr 0x2000.
        for _ in range(4):
            unit.process_load(0x100, 0x2000, 5)
        # Aliasing pc B overwrites the single LVPT entry with value 9
        # (same LCT counter too, stays constant-classified).
        unit.process_load(0x104, 0x3000, 9)
        outcome = unit.process_load(0x100, 0x2000, 5)
        assert outcome is not LoadOutcome.CONSTANT
        assert unit.stats.cvu_stale_hits >= 0  # accounting exists


class TestPerfectConfig:
    def test_everything_correct(self):
        unit = LVPUnit(PERFECT)
        import random
        rng = random.Random(1)
        for _ in range(50):
            outcome = unit.process_load(rng.randrange(1 << 20) * 4,
                                        0x2000, rng.randrange(1 << 30))
            assert outcome is LoadOutcome.CORRECT

    def test_no_constants(self):
        unit = LVPUnit(PERFECT)
        for _ in range(50):
            assert unit.process_load(0x100, 0x2000, 5) is \
                LoadOutcome.CORRECT


class TestStats:
    def test_outcome_counts_sum_to_loads(self):
        unit = LVPUnit(SIMPLE)
        import random
        rng = random.Random(7)
        for _ in range(500):
            unit.process_load(rng.randrange(64) * 4, 0x2000,
                              rng.randrange(4))
        assert sum(unit.stats.outcomes.values()) == unit.stats.loads == 500

    def test_table3_quadrants_sum_to_loads(self):
        unit = LVPUnit(SIMPLE)
        import random
        rng = random.Random(7)
        for _ in range(300):
            unit.process_load(rng.randrange(64) * 4, 0x2000,
                              rng.randrange(4))
        stats = unit.stats
        quadrants = (stats.predictable_predicted
                     + stats.predictable_not_predicted
                     + stats.unpredictable_predicted
                     + stats.unpredictable_not_predicted)
        assert quadrants == stats.loads

    def test_constant_fraction(self):
        unit = LVPUnit(SIMPLE)
        drive(unit, 0x100, 5, 10)
        assert 0.0 < unit.stats.constant_fraction < 1.0

    def test_accuracy_perfect_for_stable_stream(self):
        unit = LVPUnit(SIMPLE)
        drive(unit, 0x100, 5, 50)
        assert unit.stats.prediction_accuracy == 1.0

    def test_store_counting(self):
        unit = LVPUnit(SIMPLE)
        unit.process_store(0x2000)
        unit.process_store(0x2008)
        assert unit.stats.stores == 2

    def test_flush_preserves_stats(self):
        unit = LVPUnit(SIMPLE)
        drive(unit, 0x100, 5, 5)
        unit.flush()
        assert unit.stats.loads == 5
        assert unit.process_load(0x100, 0x2000, 5) is \
            LoadOutcome.NO_PREDICTION


class TestLimitOracle:
    def test_limit_catches_alternation(self):
        """16-deep history with perfect selection predicts any recurring
        value (the paper's limit-study premise)."""
        unit = LVPUnit(LIMIT)
        values = [1, 2, 3, 4] * 20
        outcomes = [unit.process_load(0x100, 0x2000, v) for v in values]
        tail = outcomes[16:]
        correct = [o for o in tail if o in (LoadOutcome.CORRECT,
                                            LoadOutcome.CONSTANT)]
        assert len(correct) > 0.8 * len(tail)

    def test_simple_cannot_catch_alternation(self):
        unit = LVPUnit(SIMPLE)
        values = [1, 2, 3, 4] * 20
        outcomes = [unit.process_load(0x100, 0x2000, v) for v in values]
        correct = [o for o in outcomes if o is LoadOutcome.CORRECT]
        assert len(correct) < len(outcomes) * 0.2
