"""Shared fixtures for the test suite.

Trace generation dominates test time, so traces and annotations are
produced once per session via cached fixtures; workload-verification
tests request the same cache.
"""

from __future__ import annotations

import pytest

from repro.harness import Session
from repro.isa import CodeBuilder
from repro.sim import run_program


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden exhibit JSON under tests/golden/ from "
             "the current code instead of comparing against it")


@pytest.fixture(scope="session")
def update_golden(request) -> bool:
    """True when this run should regenerate the golden files."""
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def tiny_session() -> Session:
    """A verifying session over a fast subset at tiny scale."""
    return Session(
        scale="tiny",
        benchmarks=("grep", "compress", "quick", "xlisp", "tomcatv"),
    )


@pytest.fixture(scope="session")
def small_session() -> Session:
    """A verifying session over the full suite at small scale."""
    return Session(scale="small")


@pytest.fixture(scope="session")
def grep_trace(tiny_session):
    """The grep trace at tiny scale (ppc target)."""
    return tiny_session.trace("grep", "ppc")


@pytest.fixture(scope="session")
def compress_trace(tiny_session):
    """The compress trace at tiny scale (ppc target)."""
    return tiny_session.trace("compress", "ppc")


def build_and_run(body, *, target: str = "ppc", data=None, name: str = "t",
                  save=(), frame_words: int = 0):
    """Assemble a one-function program around *body* and run it.

    *body* receives the :class:`CodeBuilder`; *data* (if given) receives
    it first to populate the data segment.  Returns the ExecutionResult.
    """
    builder = CodeBuilder(name, target=target)
    if data is not None:
        data(builder)
    with builder.function("main", save=tuple(save),
                          frame_words=frame_words):
        body(builder)
    program = builder.build()
    return run_program(program, name=name, target=target)
