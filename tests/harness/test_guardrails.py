"""Tests for the resource guardrails: cache budgets, disk-full
degradation in cache and journal, and the per-worker RSS watchdog."""

from __future__ import annotations

import errno
import os

import numpy as np
import pytest

from repro.errors import (
    MemoryBudgetError,
    ResourceExhaustedError,
    is_resource_exhaustion,
)
from repro.harness.cache import TraceCache
from repro.harness.journal import RunJournal
from repro.harness.parallel import (
    WorkUnit,
    _check_rss,
    _ShardResult,
    _ShardSpec,
    current_rss_mb,
    rss_limit_from_env,
)


def _enospc(*args, **kwargs):
    raise OSError(errno.ENOSPC, "No space left on device")


class TestErrnoTaxonomy:
    def test_resource_errnos_recognized(self):
        for code in (errno.ENOSPC, errno.EDQUOT, errno.EMFILE,
                     errno.ENFILE):
            assert is_resource_exhaustion(OSError(code, "x"))

    def test_other_errors_are_not_resource_exhaustion(self):
        assert not is_resource_exhaustion(OSError(errno.EIO, "x"))
        assert not is_resource_exhaustion(ValueError("x"))
        assert not is_resource_exhaustion(OSError("no errno"))


class TestCacheBudget:
    def test_lru_eviction_keeps_within_budget(self, tmp_path, grep_trace,
                                              compress_trace):
        cache = TraceCache(tmp_path, budget=1)
        cache.store(grep_trace, "tiny")
        cache.store(compress_trace, "tiny")
        bundles = list(tmp_path.glob("*.rtc"))
        assert len(bundles) == 1
        # The newest store survives; the LRU bundle was evicted.
        assert bundles[0] == cache.path_for("compress", "ppc", "tiny")
        assert cache.counters.evictions == 1

    def test_loads_refresh_recency(self, tmp_path, grep_trace,
                                   compress_trace):
        cache = TraceCache(tmp_path, budget=10 ** 9)
        cache.store(grep_trace, "tiny")
        cache.store(compress_trace, "tiny")
        grep_path = cache.path_for("grep", "ppc", "tiny")
        compress_path = cache.path_for("compress", "ppc", "tiny")
        # Make grep look stale, then read it: the load must bump its
        # recency so compress becomes the eviction victim.
        os.utime(grep_path, (1, 1))
        os.utime(compress_path, (2, 2))
        assert cache.load("grep", "ppc", "tiny") is not None
        cache.budget = grep_path.stat().st_size
        cache._enforce_budget()
        assert grep_path.exists()
        assert not compress_path.exists()

    def test_budget_env_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BUDGET", "123")
        assert TraceCache(tmp_path).budget == 123
        monkeypatch.setenv("REPRO_CACHE_BUDGET", "junk")
        assert TraceCache(tmp_path).budget == 0

    def test_zero_budget_means_unlimited(self, tmp_path, grep_trace,
                                         compress_trace):
        cache = TraceCache(tmp_path, budget=0)
        cache.store(grep_trace, "tiny")
        cache.store(compress_trace, "tiny")
        assert len(list(tmp_path.glob("*.rtc"))) == 2
        assert cache.counters.evictions == 0


class TestCacheResourceExhaustion:
    def test_store_on_full_disk_raises_retryable(self, tmp_path,
                                                 grep_trace, monkeypatch):
        cache = TraceCache(tmp_path)
        monkeypatch.setattr(TraceCache, "_write_bundle",
                            lambda self, *args: _enospc())
        with pytest.raises(ResourceExhaustedError):
            cache.store(grep_trace, "tiny")
        # No debris: the temp file never survives a failed store.
        assert list(tmp_path.glob("*.tmp.rtc")) == []

    def test_store_evicts_and_retries_before_raising(self, tmp_path,
                                                     grep_trace,
                                                     compress_trace,
                                                     monkeypatch):
        cache = TraceCache(tmp_path)
        cache.store(grep_trace, "tiny")
        real = TraceCache._write_bundle
        calls = {"n": 0}

        def once(self, temporary, path, trace):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError(errno.ENOSPC, "No space left on device")
            return real(self, temporary, path, trace)

        monkeypatch.setattr(TraceCache, "_write_bundle", once)
        cache.store(compress_trace, "tiny")  # succeeds on the retry
        assert calls["n"] == 2
        # Emergency eviction sacrificed the other bundle for room.
        assert not cache.path_for("grep", "ppc", "tiny").exists()
        assert cache.path_for("compress", "ppc", "tiny").exists()

    def test_load_resource_error_does_not_quarantine(self, tmp_path,
                                                     grep_trace,
                                                     monkeypatch):
        cache = TraceCache(tmp_path)
        cache.store(grep_trace, "tiny")

        def emfile(self, *args, **kwargs):
            raise OSError(errno.EMFILE, "Too many open files")

        monkeypatch.setattr(TraceCache, "_read_v2", emfile)
        with pytest.raises(ResourceExhaustedError):
            cache.load("grep", "ppc", "tiny")
        assert cache.path_for("grep", "ppc", "tiny").exists()
        assert not (tmp_path / "quarantine").exists()

    def test_session_degrades_store_failures(self, tmp_path, grep_trace,
                                             monkeypatch, capsys):
        from repro.harness.session import Session
        session = Session(scale="tiny", benchmarks=("grep",),
                          cache_dir=str(tmp_path))
        monkeypatch.setattr(TraceCache, "_write_bundle",
                            lambda self, *args: _enospc())
        session._store_trace(grep_trace)  # must not raise
        assert "trace cache store skipped" in capsys.readouterr().err


class TestJournalDegradation:
    MANIFEST = {"version": "t", "exhibits": [], "scale": "tiny",
                "benchmarks": ["b1"], "verify": True}

    def test_append_survives_disk_full(self, tmp_path, monkeypatch,
                                       capsys):
        journal = RunJournal.create(tmp_path, "run", self.MANIFEST)
        monkeypatch.setattr(os, "write", _enospc)
        journal.append({"type": "done", "benchmark": "b1"})  # no raise
        err = capsys.readouterr().err
        assert "resume" in err and journal.run_id in err
        # Degraded: later appends are silent no-ops, hint prints once.
        journal.append({"type": "done", "benchmark": "b2"})
        assert capsys.readouterr().err == ""
        monkeypatch.undo()
        journal.close()
        # Everything before the failure replays cleanly.
        types = [r["type"] for r in journal.replay()]
        assert types == ["run_started", "planned"]

    def test_append_reraises_real_errors(self, tmp_path, monkeypatch):
        journal = RunJournal.create(tmp_path, "run", self.MANIFEST)

        def eio(*args, **kwargs):
            raise OSError(errno.EIO, "I/O error")

        monkeypatch.setattr(os, "write", eio)
        with pytest.raises(OSError):
            journal.append({"type": "done", "benchmark": "b1"})

    def test_checkpoint_failure_skips_done_record(self, tmp_path,
                                                  monkeypatch, capsys):
        journal = RunJournal.create(tmp_path, "run", self.MANIFEST)
        result = _ShardResult(benchmark="b1", traces={}, annotated={},
                              ppc_runs={}, alpha_runs={}, failed={},
                              timings=[])
        spec = _ShardSpec(benchmark="b1", scale="tiny", verify=True,
                          cache_dir=None, units=(), unit_timeout=0.0)
        monkeypatch.setattr(
            journal, "_write_checkpoint",
            lambda result: (_ for _ in ()).throw(
                ResourceExhaustedError("disk full")))
        journal.shard_finished(spec, result)
        journal.close()
        records = journal.replay()
        types = [r["type"] for r in records]
        assert "checkpoint_failed" in types
        assert "done" not in types
        # A failed checkpoint means that benchmark simply re-runs.
        assert journal.completed() == {}

    def test_checkpoint_write_cleans_temp_on_enospc(self, tmp_path,
                                                    monkeypatch):
        journal = RunJournal.create(tmp_path, "run", self.MANIFEST)
        result = _ShardResult(benchmark="b1", traces={}, annotated={},
                              ppc_runs={}, alpha_runs={}, failed={},
                              timings=[])
        real_open = os.open

        def enospc_open(path, *args, **kwargs):
            if str(path).endswith(".tmp"):
                raise OSError(errno.ENOSPC, "No space left on device")
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr(os, "open", enospc_open)
        with pytest.raises(ResourceExhaustedError):
            journal._write_checkpoint(result)
        assert list((tmp_path / "run" / "checkpoints").iterdir()) == []

    def test_demotions_are_journalled(self, tmp_path):
        from repro.harness.guard import TierDemotion
        journal = RunJournal.create(tmp_path, "run", self.MANIFEST)
        demotion = TierDemotion(
            benchmark="b1", stage="trace", target="ppc",
            unit="b1/trace/ppc", from_tier="compiled", to_tier="interp",
            reason="test")
        result = _ShardResult(benchmark="b1", traces={}, annotated={},
                              ppc_runs={}, alpha_runs={}, failed={},
                              timings=[], demotions=[demotion])
        spec = _ShardSpec(benchmark="b1", scale="tiny", verify=True,
                          cache_dir=None, units=(), unit_timeout=0.0)
        journal.shard_finished(spec, result)
        journal.close()
        demoted = [r for r in journal.replay()
                   if r["type"] == "demoted"]
        assert len(demoted) == 1
        assert demoted[0]["from_tier"] == "compiled"
        assert demoted[0]["unit"] == "b1/trace/ppc"


class TestRssWatchdog:
    def test_current_rss_is_sane(self):
        rss = current_rss_mb()
        assert rss is None or 1.0 < rss < 1_000_000.0

    def test_limit_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_RSS_LIMIT_MB", raising=False)
        assert rss_limit_from_env() == 0.0
        monkeypatch.setenv("REPRO_RSS_LIMIT_MB", "512")
        assert rss_limit_from_env() == 512.0

    def test_malformed_limit_warns_and_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_RSS_LIMIT_MB", "junk")
        with pytest.warns(RuntimeWarning,
                          match="REPRO_RSS_LIMIT_MB='junk'"):
            assert rss_limit_from_env() == 0.0
        with pytest.warns(RuntimeWarning, match="using the default"):
            assert rss_limit_from_env(256.0) == 256.0

    def test_check_raises_over_budget(self):
        unit = WorkUnit("grep", "trace", "ppc")
        with pytest.raises(MemoryBudgetError) as caught:
            _check_rss(0.001, unit)
        message = str(caught.value)
        assert "grep" in message and "REPRO_RSS_LIMIT_MB" in message

    def test_check_disarmed_at_zero(self):
        _check_rss(0.0, WorkUnit("grep", "trace", "ppc"))  # no raise
