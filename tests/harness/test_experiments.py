"""Tests for the per-exhibit experiment runners.

Run against the tiny fixture session's benchmark subset; the assertions
check structural integrity plus the paper's qualitative claims that are
robust at tiny scale.
"""

import pytest

from repro.harness import EXPERIMENTS, run_experiment
from repro.isa import ValueKind


@pytest.fixture(scope="module")
def results(tiny_session):
    return {exp_id: run_experiment(exp_id, tiny_session)
            for exp_id in EXPERIMENTS}


class TestRegistry:
    def test_all_paper_exhibits_present(self):
        assert set(EXPERIMENTS) == {
            "tab1", "tab2", "tab5", "fig1", "fig2", "tab3", "tab4",
            "fig6", "tab6", "fig7", "fig8", "fig9",
        }

    def test_unknown_id_raises(self, tiny_session):
        with pytest.raises(KeyError):
            run_experiment("fig99", tiny_session)

    def test_results_render_text(self, results):
        for exp_id, result in results.items():
            assert result.exp_id == exp_id
            assert result.text.strip()
            assert result.data


class TestTab1(object):
    def test_counts_per_benchmark(self, results, tiny_session):
        data = results["tab1"].data
        assert set(data) == set(tiny_session.benchmark_names)
        for row in data.values():
            assert row["ppc_instructions"] > 0
            assert row["ppc_loads"] > 0


class TestFig1:
    def test_depth16_dominates_depth1(self, results):
        for target in ("ppc", "alpha"):
            for name, (d1, d16) in results["fig1"].data[target].items():
                assert d16 >= d1, name

    def test_percent_bounds(self, results):
        for target_data in results["fig1"].data.values():
            for d1, d16 in target_data.values():
                assert 0.0 <= d1 <= 100.0
                assert 0.0 <= d16 <= 100.0

    def test_tomcatv_is_poor(self, results):
        d1, _ = results["fig1"].data["ppc"]["tomcatv"]
        assert d1 < 50.0

    def test_compress_has_locality(self, results):
        d1, d16 = results["fig1"].data["ppc"]["compress"]
        assert d1 > 30.0
        assert d16 > 60.0


class TestFig2:
    def test_kind_loads_partition(self, results, tiny_session):
        data = results["fig2"].data
        for name in tiny_session.benchmark_names:
            total = sum(data[kind.name][name][2] for kind in ValueKind)
            trace = tiny_session.trace(name, "ppc")
            assert total == trace.num_loads

    def test_address_loads_high_locality(self, results):
        """Paper: address loads beat data loads in locality."""
        data = results["fig2"].data
        instr = [v[1] for v in data["INSTR_ADDR"].values() if v[2] > 50]
        ints = [v[1] for v in data["INT_DATA"].values() if v[2] > 50]
        if instr and ints:
            avg = lambda xs: sum(xs) / len(xs)  # noqa: E731
            assert avg(instr) >= avg(ints) - 5.0


class TestTab3:
    def test_rates_bounded(self, results):
        for rows in results["tab3"].data.values():
            for unpred, pred in rows.values():
                assert 0.0 <= unpred <= 1.0
                assert 0.0 <= pred <= 1.0

    def test_lct_identifies_majority(self, results):
        """Paper Table 3: GM of both columns lands well above half."""
        values = [v for rows in results["tab3"].data.values()
                  for v in rows.values()]
        predictable_rates = [pred for _, pred in values]
        assert sum(predictable_rates) / len(predictable_rates) > 0.5


class TestTab4:
    def test_fractions_bounded(self, results):
        for rows in results["tab4"].data.values():
            for fraction in rows.values():
                assert 0.0 <= fraction <= 1.0

    def test_quick_and_tomcatv_near_zero(self, results):
        """Paper Table 4 shows 0% constants for quick and tomcatv."""
        for name in ("quick", "tomcatv"):
            assert results["tab4"].data[name]["ppc/Simple"] < 0.10

    def test_compress_finds_constants(self, results):
        assert results["tab4"].data["compress"]["ppc/Constant"] > 0.05


class TestFig6:
    def test_speedups_positive(self, results):
        for machine in ("620", "21164"):
            for config_rows in results["fig6"].data[machine].values():
                for speedup in config_rows.values():
                    assert speedup > 0.5

    def test_grep_among_best_620(self, results):
        simple = results["fig6"].data["620"]["Simple"]
        assert simple["grep"] == max(simple.values())

    def test_perfect_beats_simple_on_average(self, results):
        from repro.analysis import geometric_mean
        data = results["fig6"].data["620"]
        assert geometric_mean(data["Perfect"].values()) >= \
            geometric_mean(data["Simple"].values())


class TestTab6:
    def test_620_plus_always_helps(self, results):
        for name, row in results["tab6"].data.items():
            if name == "GM":
                continue
            assert row["620+"] >= 1.0, name

    def test_gm_row_present(self, results):
        gm = results["tab6"].data["GM"]
        assert set(gm) == {"620+", "Simple", "Constant", "Limit", "Perfect"}


class TestFig7:
    def test_distributions_normalized(self, results):
        for machine_data in results["fig7"].data.values():
            for histogram in machine_data.values():
                total = sum(histogram.values())
                assert total == pytest.approx(1.0, abs=1e-9) or total == 0.0


class TestFig8:
    def test_baseline_and_normalized_present(self, results):
        for machine_data in results["fig8"].data.values():
            assert "baseline" in machine_data
            assert "Simple" in machine_data

    def test_lsu_wait_reduced(self, results):
        """Paper Figure 8: LSU waits roughly halve under Simple."""
        normalized = results["fig8"].data["620"]["Limit"]
        assert normalized["LSU"] <= 1.0


class TestFig9:
    def test_fractions_bounded(self, results):
        for machine_data in results["fig9"].data.values():
            for label, rows in machine_data.items():
                for value in rows.values():
                    assert 0.0 <= value <= 1.0
