"""Unit and integration tests for the tracked perf harness (repro bench)."""

import json

import pytest

from repro.harness.bench import (
    BENCH_SCHEMA_ID,
    DEFAULT_THRESHOLD,
    PHASES,
    QUICK_BENCHMARKS,
    compare_bench,
    load_bench,
    render_bench,
    run_bench,
    validate_bench,
    write_bench,
)


def _fake_document(fast=1.0, slow=3.0, e2e=True):
    entry = {"slow_s": slow, "fast_s": fast,
             "speedup": round(slow / fast, 3)}
    doc = {
        "schema": BENCH_SCHEMA_ID,
        "scale": "tiny",
        "trials": 1,
        "benchmarks": {"grep": {phase: dict(entry) for phase in PHASES}},
        "totals": {phase: dict(entry) for phase in PHASES},
        "e2e": None,
        "host": {"python": "3", "machine": "test"},
    }
    if e2e:
        doc["e2e"] = {"legacy_s": slow, "tiered_s": fast,
                      "speedup": round(slow / fast, 3),
                      "identical_exhibits": True,
                      "legacy_phases": {}, "tiered_phases": {}}
    return doc


class TestValidation:
    def test_good_document_validates(self):
        assert validate_bench(_fake_document()) == []

    def test_no_e2e_is_valid(self):
        assert validate_bench(_fake_document(e2e=False)) == []

    def test_wrong_schema_rejected(self):
        doc = _fake_document()
        doc["schema"] = "repro.bench/v0"
        assert any("schema" in e for e in validate_bench(doc))

    def test_missing_phase_rejected(self):
        doc = _fake_document()
        del doc["benchmarks"]["grep"]["model"]
        assert any("model" in e for e in validate_bench(doc))

    def test_negative_time_rejected(self):
        doc = _fake_document()
        doc["benchmarks"]["grep"]["trace"]["fast_s"] = -1.0
        assert any("fast_s" in e for e in validate_bench(doc))

    def test_empty_benchmarks_rejected(self):
        doc = _fake_document()
        doc["benchmarks"] = {}
        assert validate_bench(doc)

    def test_non_object_rejected(self):
        assert validate_bench([1, 2]) == ["document is not an object"]


class TestComparison:
    def test_identical_documents_pass(self):
        doc = _fake_document()
        assert compare_bench(doc, doc) == []

    def test_mild_slowdown_tolerated(self):
        base = _fake_document(fast=1.0)
        now = _fake_document(fast=1.8)
        assert compare_bench(now, base,
                             threshold=DEFAULT_THRESHOLD) == []

    def test_large_slowdown_flagged(self):
        base = _fake_document(fast=1.0)
        now = _fake_document(fast=2.5)
        regressions = compare_bench(now, base)
        assert any("grep/trace" in r for r in regressions)
        assert any(r.startswith("model:") for r in regressions)
        assert any("e2e" in r for r in regressions)

    def test_missing_e2e_skipped(self):
        base = _fake_document(e2e=False)
        now = _fake_document(fast=2.5, e2e=False)
        regressions = compare_bench(now, base)
        assert not any("e2e" in r for r in regressions)

    def test_tiny_absolute_slowdowns_ignored(self):
        # 5x slower but only 40ms in absolute terms: under the noise
        # floor, so a shared CI runner can't flake the gate.
        base = _fake_document(fast=0.01, slow=0.03)
        now = _fake_document(fast=0.05, slow=0.03)
        assert compare_bench(now, base) == []

    def test_subset_skips_totals_and_e2e(self):
        # CI's quick subset vs the full baseline: per-benchmark gates
        # still apply, aggregate ones don't.
        base = _fake_document(fast=1.0)
        base["benchmarks"]["compress"] = dict(
            base["benchmarks"]["grep"])
        now = _fake_document(fast=2.5)
        regressions = compare_bench(now, base)
        assert any("grep/model" in r for r in regressions)
        assert not any(r.startswith("model:") for r in regressions)
        assert not any("e2e" in r for r in regressions)

    def test_speedups_never_flagged(self):
        base = _fake_document(fast=2.0)
        now = _fake_document(fast=0.4)
        assert compare_bench(now, base) == []


class TestRoundTrip:
    def test_write_load(self, tmp_path):
        doc = _fake_document()
        path = write_bench(doc, tmp_path / "BENCH_PERF.json")
        assert load_bench(path) == doc
        assert not list(tmp_path.glob("*.tmp"))

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(OSError):
            load_bench(tmp_path / "nope.json")

    def test_load_damaged_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            load_bench(path)

    def test_render(self):
        text = render_bench(_fake_document())
        assert "grep" in text and "TOTAL" in text
        assert "byte-identical" in text


class TestRealRun:
    @pytest.fixture(scope="class")
    def document(self):
        return run_bench(["grep"], scale="tiny", e2e=False)

    def test_schema_valid(self, document):
        assert validate_bench(document) == []

    def test_phases_measured(self, document):
        record = document["benchmarks"]["grep"]
        for phase in PHASES:
            assert record[phase]["slow_s"] > 0
            assert record[phase]["fast_s"] > 0
            assert record[phase]["speedup"] > 0

    def test_self_comparison_clean(self, document):
        assert compare_bench(document, document) == []


def test_committed_baseline_is_valid():
    """The BENCH_PERF.json at the repo root must stay schema-valid and
    must document the tiered engines actually paying off."""
    import pathlib
    root = pathlib.Path(__file__).resolve().parents[2]
    document = load_bench(root / "BENCH_PERF.json")
    assert validate_bench(document) == []
    assert document["totals"]["trace"]["speedup"] >= 3.0
    assert document["e2e"]["speedup"] >= 2.0
    assert document["e2e"]["identical_exhibits"] is True


def test_cli_bench_writes_and_checks(tmp_path, capsys):
    from repro.cli import main
    output = tmp_path / "bench.json"
    code = main(["bench", "--scale", "tiny", "--benchmarks", "grep",
                 "--no-e2e", "--output", str(output)])
    assert code == 0
    assert validate_bench(json.loads(output.read_text())) == []
    code = main(["bench", "--scale", "tiny", "--benchmarks", "grep",
                 "--no-e2e", "--check", "--baseline", str(output)])
    assert code == 0
    out = capsys.readouterr().out
    assert "no regressions" in out


def test_cli_bench_check_missing_baseline(tmp_path, capsys):
    from repro.cli import main
    code = main(["bench", "--scale", "tiny", "--benchmarks", "grep",
                 "--no-e2e", "--check", "--baseline",
                 str(tmp_path / "absent.json")])
    assert code == 2


def test_quick_subset_is_real():
    from repro.workloads.suite import NAMES
    assert set(QUICK_BENCHMARKS) <= set(NAMES)
