"""Unit tests for the memoizing experiment session."""

from repro.lvp import SIMPLE
from repro.uarch import PPC620, PPC620_PLUS


class TestMemoization:
    def test_traces_cached(self, tiny_session):
        a = tiny_session.trace("grep", "ppc")
        b = tiny_session.trace("grep", "ppc")
        assert a is b

    def test_targets_distinct(self, tiny_session):
        ppc = tiny_session.trace("grep", "ppc")
        alpha = tiny_session.trace("grep", "alpha")
        assert ppc is not alpha
        assert ppc.target == "ppc"
        assert alpha.target == "alpha"

    def test_annotations_cached(self, tiny_session):
        a = tiny_session.annotated("grep", "ppc", SIMPLE)
        b = tiny_session.annotated("grep", "ppc", SIMPLE)
        assert a is b

    def test_model_runs_cached(self, tiny_session):
        a = tiny_session.ppc_result("grep", PPC620, SIMPLE)
        b = tiny_session.ppc_result("grep", PPC620, SIMPLE)
        assert a is b

    def test_baseline_and_lvp_distinct(self, tiny_session):
        base = tiny_session.ppc_result("grep", PPC620, None)
        lvp = tiny_session.ppc_result("grep", PPC620, SIMPLE)
        assert base is not lvp
        assert base.lvp_name == "none"

    def test_machines_distinct(self, tiny_session):
        base = tiny_session.ppc_result("grep", PPC620, None)
        plus = tiny_session.ppc_result("grep", PPC620_PLUS, None)
        assert base.config_name == "620"
        assert plus.config_name == "620+"


class TestSpeedups:
    def test_ppc_speedup_consistent(self, tiny_session):
        speedup = tiny_session.ppc_speedup("grep", PPC620, SIMPLE)
        base = tiny_session.ppc_result("grep", PPC620, None)
        lvp = tiny_session.ppc_result("grep", PPC620, SIMPLE)
        assert speedup == base.cycles / lvp.cycles

    def test_alpha_speedup_positive(self, tiny_session):
        assert tiny_session.alpha_speedup("grep", SIMPLE) > 0
