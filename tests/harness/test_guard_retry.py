"""RetryPolicy x TierGuard interaction: retries respect the ladder.

The session wraps each guarded stage in ``call_with_retries``; the
guard holds the sticky demotion table.  Their composition must satisfy
two properties:

* a unit that was demoted and then hits a transient fault on the
  oracle attempt retries **on the demoted tier** -- bouncing back to
  the fast tier would re-run the code the guard just proved wrong;
* a transient fault on the fast tier is *not* a demotion: the guard
  re-raises it untouched, and the retry runs the fast tier again.
"""

from __future__ import annotations

import pytest

from repro.errors import TransientFaultError
from repro.harness.guard import TierGuard
from repro.harness.retry import RetryPolicy, call_with_retries

POLICY = RetryPolicy(attempts=3, base=0.0, jitter=0.0)


class _FakeSession:
    def __init__(self):
        self.demotions = []
        self.metrics = None
        self.unit_timeout = 0.0


@pytest.fixture(autouse=True)
def _clean_knobs(monkeypatch):
    for name in ("REPRO_ENGINE", "REPRO_TIER_FAULT",
                 "REPRO_SENTINEL_RATE", "REPRO_SENTINEL_SEED"):
        monkeypatch.delenv(name, raising=False)


def _patched_run_program(monkeypatch, fake):
    # The guard imports run_program at call time, so a module-attribute
    # patch reaches it.
    import repro.sim.functional as functional
    monkeypatch.setattr(functional, "run_program", fake)


class TestDemotedTierRetry:
    def test_transient_on_oracle_retries_on_oracle(self, monkeypatch):
        """Fast-tier fault demotes; a transient during the oracle
        retry must re-run on the *oracle*, not the original fast
        tier."""
        calls: list[str] = []

        def fake(program, name, target, engine):
            calls.append(engine)
            if engine == "compiled":
                raise ValueError("planted fast-tier fault")
            if calls.count("interp") == 1:
                raise TransientFaultError("planted transient")
            return "oracle-result"

        _patched_run_program(monkeypatch, fake)
        session = _FakeSession()
        guard = TierGuard(session)
        result = call_with_retries(
            lambda: guard.run_trace("grep", "ppc", program=None),
            POLICY, sleep=lambda _s: None)
        assert result == "oracle-result"
        assert calls == ["compiled", "interp", "interp"]
        assert [d.to_tier for d in session.demotions] == ["interp"]

    def test_sticky_demotion_survives_later_retries(self, monkeypatch):
        """Once demoted, every later attempt of the key -- including
        retry re-entries -- goes straight to the oracle tier."""
        calls: list[str] = []

        def fake(program, name, target, engine):
            calls.append(engine)
            if engine == "compiled":
                raise ValueError("planted fast-tier fault")
            return "oracle-result"

        _patched_run_program(monkeypatch, fake)
        guard = TierGuard(_FakeSession())
        call_with_retries(
            lambda: guard.run_trace("grep", "ppc", program=None),
            POLICY, sleep=lambda _s: None)
        calls.clear()
        again = call_with_retries(
            lambda: guard.run_trace("grep", "ppc", program=None),
            POLICY, sleep=lambda _s: None)
        assert again == "oracle-result"
        assert calls == ["interp"]

    def test_transient_on_fast_tier_is_not_a_demotion(self, monkeypatch):
        """A RetryableError from the fast tier propagates un-demoted:
        the retry runs the fast tier again and no demotion is
        recorded."""
        monkeypatch.setenv("REPRO_SENTINEL_RATE", "0")
        calls: list[str] = []

        def fake(program, name, target, engine):
            calls.append(engine)
            if len(calls) == 1:
                raise TransientFaultError("planted transient")
            return "fast-result"

        _patched_run_program(monkeypatch, fake)
        session = _FakeSession()
        guard = TierGuard(session)
        result = call_with_retries(
            lambda: guard.run_trace("grep", "ppc", program=None),
            POLICY, sleep=lambda _s: None)
        assert result == "fast-result"
        assert calls == ["compiled", "compiled"]
        assert session.demotions == []

    def test_persistent_transient_exhausts_on_demoted_tier(
            self, monkeypatch):
        """If the oracle keeps failing transiently, the policy's
        attempts are spent on the oracle tier and the error finally
        propagates -- never silently reverting to the fast tier."""
        calls: list[str] = []

        def fake(program, name, target, engine):
            calls.append(engine)
            if engine == "compiled":
                raise ValueError("planted fast-tier fault")
            raise TransientFaultError("still transient")

        _patched_run_program(monkeypatch, fake)
        guard = TierGuard(_FakeSession())
        with pytest.raises(TransientFaultError):
            call_with_retries(
                lambda: guard.run_trace("grep", "ppc", program=None),
                POLICY, sleep=lambda _s: None)
        assert calls == ["compiled", "interp", "interp", "interp"]
