"""Tests for the tier guard: divergence sentinels + degradation ladder.

The differential classes drive the real CLI in subprocesses (like the
resume suite): a run with a planted fast-tier divergence must demote,
footnote the demotion, and -- with the "Tier notes" block stripped --
be byte-identical to an undisturbed run, serially, under ``--jobs 4``,
and across a crash/``--resume`` cycle.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.errors import TierDivergenceError
from repro.harness.guard import (
    DEFAULT_SENTINEL_RATE,
    TIER_LADDER,
    TierDemotion,
    sentinel_rate,
    sentinel_samples,
    strip_tier_notes,
    tier_fault_matches,
    tier_notes,
)
from repro.harness.session import Session

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src"))


def _env(extra=None):
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("REPRO_")}
    env["PYTHONPATH"] = SRC
    env.update(extra or {})
    return env


def _experiment(cwd, *extra, extra_env=None):
    return subprocess.run(
        [sys.executable, "-m", "repro", "experiment", "fig6",
         "--scale", "tiny", "--benchmarks", "grep,compress", *extra],
        capture_output=True, text=True, env=_env(extra_env),
        cwd=cwd, timeout=600)


@pytest.fixture(autouse=True)
def _clean_knobs(monkeypatch):
    for name in ("REPRO_ENGINE", "REPRO_ANNOTATE_KERNEL",
                 "REPRO_MODEL_ENGINE", "REPRO_TIER_FAULT",
                 "REPRO_SENTINEL_RATE", "REPRO_SENTINEL_SEED",
                 "REPRO_TRACE_CACHE"):
        monkeypatch.delenv(name, raising=False)


class TestSentinelSampling:
    def test_label_keyed_and_deterministic(self, monkeypatch):
        monkeypatch.setenv("REPRO_SENTINEL_RATE", "0.5")
        labels = [f"bench{i}/trace/ppc" for i in range(200)]
        first = [sentinel_samples(label) for label in labels]
        second = [sentinel_samples(label) for label in labels]
        assert first == second
        assert any(first) and not all(first)

    def test_rate_bounds(self, monkeypatch):
        monkeypatch.setenv("REPRO_SENTINEL_RATE", "0")
        assert not sentinel_samples("x")
        monkeypatch.setenv("REPRO_SENTINEL_RATE", "1")
        assert sentinel_samples("x")
    def test_malformed_rate_warns_and_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_SENTINEL_RATE", "not-a-number")
        with pytest.warns(RuntimeWarning,
                          match="REPRO_SENTINEL_RATE='not-a-number'"):
            assert sentinel_rate() == DEFAULT_SENTINEL_RATE
        with pytest.warns(RuntimeWarning, match="using the default"):
            assert isinstance(sentinel_samples("x"), bool)
        monkeypatch.delenv("REPRO_SENTINEL_RATE")
        assert sentinel_rate() == DEFAULT_SENTINEL_RATE

    def test_seed_changes_the_sample(self, monkeypatch):
        monkeypatch.setenv("REPRO_SENTINEL_RATE", "0.5")
        labels = [f"bench{i}/trace/ppc" for i in range(200)]
        base = [sentinel_samples(label) for label in labels]
        monkeypatch.setenv("REPRO_SENTINEL_SEED", "99")
        assert [sentinel_samples(label) for label in labels] != base

    def test_tier_fault_matching(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_FAULT", "grep")
        assert tier_fault_matches("grep", "trace")
        assert not tier_fault_matches("grep", "model")
        assert not tier_fault_matches("compress", "trace")
        monkeypatch.setenv("REPRO_TIER_FAULT", "grep:model")
        assert tier_fault_matches("grep", "model")


class TestTierNotes:
    DEMOTION = TierDemotion(
        benchmark="grep", stage="trace", target="ppc",
        unit="grep/trace/ppc", from_tier="compiled", to_tier="interp",
        reason="x" * 100)

    def test_notes_strip_to_nothing(self):
        text = "Figure 6\n========\nrows" + tier_notes([self.DEMOTION])
        assert "Tier notes:" in text
        assert strip_tier_notes(text) == "Figure 6\n========\nrows"

    def test_notes_sorted_and_deduped(self):
        other = TierDemotion(
            benchmark="compress", stage="model", target="alpha",
            unit="compress/model/alpha", from_tier="fast",
            to_tier="reference", reason="r")
        block = tier_notes([self.DEMOTION, other, self.DEMOTION])
        notes = block.splitlines()[3:]  # "", "", "Tier notes:", notes...
        assert notes.count(self.DEMOTION.note) == 1
        assert notes == sorted(notes) and len(notes) == 2

    def test_long_reasons_are_trimmed(self):
        assert "..." in self.DEMOTION.note
        assert len(self.DEMOTION.note) < 200


class TestSentinelCatchesCorruption:
    def test_corrupted_compiled_block_is_demoted(self, monkeypatch):
        """A compiled tier that lies is caught by a 100% sentinel and
        the unit is served the oracle's exact answer."""
        import numpy as np

        from repro.sim import functional

        real = functional.run_program

        def corrupting(program, **kwargs):
            result = real(program, **kwargs)
            if kwargs.get("engine") == "compiled":
                loads = np.nonzero(result.trace.is_load)[0]
                result.trace.value[loads[0]] ^= np.uint64(1)
            return result

        monkeypatch.setattr(functional, "run_program", corrupting)
        monkeypatch.setenv("REPRO_SENTINEL_RATE", "1.0")
        session = Session(scale="tiny", benchmarks=("grep",))
        trace = session.trace("grep", "ppc")
        assert len(session.demotions) == 1
        demotion = session.demotions[0]
        assert (demotion.from_tier, demotion.to_tier) == \
            TIER_LADDER["trace"]
        assert "diverged" in demotion.reason
        from repro.workloads.suite import get_benchmark
        oracle = real(get_benchmark("grep").build_program("ppc", "tiny"),
                      name="grep", target="ppc", engine="interp")
        assert np.array_equal(trace.value, oracle.trace.value)

    def test_fast_tier_crash_is_demoted_and_retried(self, monkeypatch):
        from repro.sim import functional

        real = functional.run_program

        def crashing(program, **kwargs):
            if kwargs.get("engine") == "compiled":
                raise ValueError("compiled tier exploded")
            return real(program, **kwargs)

        monkeypatch.setattr(functional, "run_program", crashing)
        session = Session(scale="tiny", benchmarks=("grep",))
        trace = session.trace("grep", "ppc")
        assert trace is not None
        assert len(session.demotions) == 1
        assert "ValueError" in session.demotions[0].reason

    def test_divergence_error_carries_structure(self):
        exc = TierDivergenceError("trace", "grep/trace/ppc",
                                  ["field 'a' differs"] * 5)
        assert exc.stage == "trace"
        assert exc.unit == "grep/trace/ppc"
        assert len(exc.differences) == 5
        assert "2 more" in str(exc)

    def test_pinned_tier_disables_the_guard(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_FAULT", "grep:trace")
        monkeypatch.setenv("REPRO_ENGINE", "interp")
        session = Session(scale="tiny", benchmarks=("grep",))
        session.trace("grep", "ppc")
        assert session.demotions == []

    def test_forced_fault_demotes_identically_across_sessions(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER_FAULT", "grep:trace")
        traces = []
        for _ in range(2):
            session = Session(scale="tiny", benchmarks=("grep",))
            traces.append(session.trace("grep", "ppc"))
            assert [d.unit for d in session.demotions] == \
                ["grep/trace/ppc"]
        assert len(traces[0]) == len(traces[1])


class TestDemotionByteIdentity:
    """Demoted runs must print the oracle's bytes plus only the notes."""

    @pytest.fixture(scope="class")
    def control(self, tmp_path_factory):
        cwd = tmp_path_factory.mktemp("guard-control")
        proc = _experiment(cwd)
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_serial_demotion_matches_oracle_run(self, tmp_path, control):
        proc = _experiment(
            tmp_path, extra_env={"REPRO_TIER_FAULT": "grep:trace"})
        assert proc.returncode == 0, proc.stderr
        assert "Tier notes:" in proc.stdout
        assert "trace tier demoted compiled -> interp" in proc.stdout
        assert strip_tier_notes(proc.stdout) == control

    def test_parallel_demotion_matches_oracle_run(self, tmp_path, control):
        proc = _experiment(
            tmp_path, "--jobs", "4",
            extra_env={"REPRO_TIER_FAULT": "grep:trace"})
        assert proc.returncode == 0, proc.stderr
        assert "Tier notes:" in proc.stdout
        assert strip_tier_notes(proc.stdout) == control

    def test_resume_after_kill_replays_demotions(self, tmp_path, control):
        crashed = _experiment(tmp_path, extra_env={
            "REPRO_TIER_FAULT": "grep:trace",
            "REPRO_JOURNAL_CRASH_AFTER": "1",
        })
        assert crashed.returncode == 23
        resumed = subprocess.run(
            [sys.executable, "-m", "repro", "experiment",
             "--resume", "latest"],
            capture_output=True, text=True, cwd=tmp_path, timeout=600,
            env=_env({"REPRO_TIER_FAULT": "grep:trace"}))
        assert resumed.returncode == 0, resumed.stderr
        assert "Tier notes:" in resumed.stdout
        assert strip_tier_notes(resumed.stdout) == control
        journal = next((tmp_path / ".repro" / "runs").glob(
            "*/journal.jsonl")).read_text()
        assert '"demoted"' in journal
