"""Regression tests for the locked ``LATEST`` run pointer.

``find_run("latest")`` used to scan the runs directory, which races
with concurrent run creation (a run directory appears before its
manifest is in place) and with pruning (an entry can vanish between
``iterdir`` and the manifest check).  The pointer file makes "latest"
an atomic, locked read; these tests pin the pointer's semantics and
replay the race the scan lost.
"""

from __future__ import annotations

import json
import multiprocessing
import pathlib

import pytest

from repro.errors import JournalError
from repro.harness.journal import (
    RunJournal,
    _LATEST,
    find_run,
    publish_latest,
)

MANIFEST = {"version": "t", "exhibits": [], "scale": "tiny",
            "benchmarks": ["b1"], "verify": True}


def _make_run(runs_dir: pathlib.Path, run_id: str) -> pathlib.Path:
    path = runs_dir / run_id
    path.mkdir(parents=True)
    (path / "manifest.json").write_text(json.dumps(MANIFEST))
    return path


class TestPointerSemantics:
    def test_publish_and_resolve(self, tmp_path):
        _make_run(tmp_path, "20260101-000000-1-000")
        publish_latest(tmp_path, "20260101-000000-1-000")
        assert (tmp_path / _LATEST).read_text().strip() == \
            "20260101-000000-1-000"
        assert find_run(tmp_path, "latest").name == \
            "20260101-000000-1-000"

    def test_move_forward_only(self, tmp_path):
        _make_run(tmp_path, "20260101-000000-1-000")
        _make_run(tmp_path, "20260102-000000-1-000")
        publish_latest(tmp_path, "20260102-000000-1-000")
        # The slow writer of an older run cannot move the pointer back.
        publish_latest(tmp_path, "20260101-000000-1-000")
        assert find_run(tmp_path, "latest").name == \
            "20260102-000000-1-000"

    def test_stale_target_is_overwritten(self, tmp_path):
        _make_run(tmp_path, "20260101-000000-1-000")
        publish_latest(tmp_path, "20260102-000000-1-000")  # no manifest
        publish_latest(tmp_path, "20260101-000000-1-000")
        assert find_run(tmp_path, "latest").name == \
            "20260101-000000-1-000"

    def test_dangling_pointer_falls_back_to_scan(self, tmp_path):
        _make_run(tmp_path, "20260101-000000-1-000")
        (tmp_path / _LATEST).write_text("20269999-000000-1-000\n")
        assert find_run(tmp_path, "latest").name == \
            "20260101-000000-1-000"

    def test_hostile_pointer_contents_are_ignored(self, tmp_path):
        run = _make_run(tmp_path, "20260101-000000-1-000")
        (tmp_path / _LATEST).write_text("../../etc/passwd\n")
        assert find_run(tmp_path, "latest") == run

    def test_no_pointer_no_runs_raises(self, tmp_path):
        with pytest.raises(JournalError, match="no runs found"):
            find_run(tmp_path, "latest")

    def test_create_publishes_immediately(self, tmp_path):
        journal = RunJournal.create(tmp_path, "run-a", MANIFEST)
        journal.close()
        assert find_run(tmp_path, "latest").name == "run-a"


def _racer(runs_dir: str, run_id: str) -> None:
    publish_latest(runs_dir, run_id)


class TestPointerRace:
    def test_concurrent_publishers_converge_on_newest(self, tmp_path):
        """N processes publishing distinct run ids in arbitrary order
        must leave the pointer on the lexicographically newest one --
        the locked read-modify-write is what prevents a slow older
        writer landing last."""
        run_ids = [f"20260101-00000{i}-1-000" for i in range(8)]
        for run_id in run_ids:
            _make_run(tmp_path, run_id)
        # Publish in reverse so the oldest id is the last *started*
        # process; without the lock + move-forward rule it would
        # frequently win the final write.
        procs = [multiprocessing.Process(
            target=_racer, args=(str(tmp_path), run_id))
            for run_id in reversed(run_ids)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        assert find_run(tmp_path, "latest").name == run_ids[-1]

    def test_resolution_ignores_manifestless_directories(self, tmp_path):
        """The race the scan lost: a half-created run directory (no
        manifest yet) must never resolve as latest."""
        _make_run(tmp_path, "20260101-000000-1-000")
        publish_latest(tmp_path, "20260101-000000-1-000")
        (tmp_path / "20260102-000000-1-000").mkdir()  # mid-creation
        assert find_run(tmp_path, "latest").name == \
            "20260101-000000-1-000"
