"""Concurrency stress test for the on-disk TraceCache.

PR 1 hardened the cache with fcntl advisory locks, per-column CRC-32
checksums, atomic rename stores, and quarantine of damaged bundles --
all "believed correct" under concurrency.  The parallel engine (this
PR) makes many processes share one cache directory for real, so this
test hammers one directory from several processes doing interleaved
stores, loads, deliberate byte-level corruption, and discards, and
asserts the two invariants that matter:

* a load NEVER returns a trace that differs from what was stored
  (corrupt bundles must surface as misses, not data); and
* no ``.tmp.rtc`` litter survives the stampede.

Corruption is planted the way the cache's own protocol replaces files
-- write-then-rename onto the key -- so a v2 bundle another process
has already memory-mapped keeps its original (verified) inode.
In-place scribbling over a live bundle is outside the cache's
contract (see docs/cache.md); bit rot is modelled as a damaged file
appearing at the key, which every *subsequent* load must catch.
"""

from __future__ import annotations

import multiprocessing
import os
import random

import numpy as np

from repro.harness.cache import TraceCache
from repro.trace.records import TRACE_COLUMNS, Trace

_KEYS = (("synth-a", "ppc", "tiny"), ("synth-b", "alpha", "tiny"))
_PROCESSES = 6
_ITERATIONS = 40


def _canonical_trace(name: str, target: str) -> Trace:
    """A small deterministic trace, unique per (name, target)."""
    seed = abs(hash((name, target))) % (2 ** 32)
    rng = np.random.default_rng(seed)
    length = 512
    columns = {
        key: rng.integers(0, 100, size=length).astype(dtype)
        for key, dtype in TRACE_COLUMNS
    }
    return Trace(columns, name=name, target=target)


def _traces_equal(a: Trace, b: Trace) -> bool:
    return all(np.array_equal(getattr(a, key), getattr(b, key))
               for key, _ in TRACE_COLUMNS)


def _hammer(directory: str, seed: int) -> None:
    """Worker: random store/load/corrupt/discard ops against one dir.

    Exits 0 when every load it observed was either a miss or the
    canonical bytes; any served corruption exits non-zero.
    """
    rng = random.Random(seed)
    cache = TraceCache(directory)
    canon = {key: _canonical_trace(key[0], key[1]) for key in _KEYS}
    for _ in range(_ITERATIONS):
        key = _KEYS[rng.randrange(len(_KEYS))]
        name, target, scale = key
        op = rng.random()
        if op < 0.35:
            cache.store(canon[key], scale)
        elif op < 0.75:
            loaded = cache.load(name, target, scale)
            if loaded is not None and not _traces_equal(loaded, canon[key]):
                os._exit(2)  # corrupt data served: the one fatal sin
        elif op < 0.90:
            # Replace the bundle with a byte-flipped copy (the cache's
            # own rename protocol, so live mappings keep their inode):
            # simulates bit rot surfacing at the key between sessions.
            path = cache.path_for(name, target, scale)
            try:
                data = bytearray(path.read_bytes())
                offset = rng.randrange(max(1, len(data)))
                for i in range(offset, min(offset + 8, len(data))):
                    data[i] = rng.randrange(256)
                rotted = path.with_suffix(f".rot{seed}")
                rotted.write_bytes(bytes(data))
                os.replace(rotted, path)
            except OSError:
                pass  # vanished mid-corruption (store/quarantine race)
        else:
            cache.discard(name, target, scale)
    os._exit(0)


def test_many_processes_never_see_corruption(tmp_path):
    directory = tmp_path / "cache"
    # Seed the cache so early readers have something to chew on.
    warm = TraceCache(directory)
    for name, target, scale in _KEYS:
        warm.store(_canonical_trace(name, target), scale)

    context = multiprocessing.get_context()
    workers = [
        context.Process(target=_hammer, args=(str(directory), seed))
        for seed in range(_PROCESSES)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=240)
    exit_codes = [worker.exitcode for worker in workers]
    assert exit_codes == [0] * _PROCESSES, \
        f"worker exit codes {exit_codes} (2 = corrupt bundle served)"

    # No interrupted-store litter may survive the stampede.
    assert list(directory.glob("*.tmp.rtc")) == []
    assert list(directory.glob("*.tmp.npz")) == []

    # Whatever survived on disk is clean: every load is either a miss
    # or exactly the canonical trace.
    cache = TraceCache(directory)
    for name, target, scale in _KEYS:
        loaded = cache.load(name, target, scale)
        if loaded is not None:
            assert _traces_equal(loaded, _canonical_trace(name, target))


def _map_and_verify(directory: str, seed: int) -> None:
    """Worker: map the shared v2 bundle read-only and verify it.

    Exit codes: 1 = load missed, 2 = data differs from canonical,
    3 = a column was writable (the mapping must be read-only),
    4 = an in-place write was NOT refused.
    """
    cache = TraceCache(directory)
    canon = _canonical_trace("synth-a", "ppc")
    for _ in range(10):
        loaded = cache.load("synth-a", "ppc", "tiny")
        if loaded is None:
            os._exit(1)
        if not _traces_equal(loaded, canon):
            os._exit(2)
        if any(getattr(loaded, key).flags.writeable
               for key, _ in TRACE_COLUMNS):
            os._exit(3)
        try:
            loaded.value[0] = 1
        except ValueError:
            pass
        else:
            os._exit(4)
        # The escape hatch must hand back private writable columns
        # without disturbing what the other processes are mapping.
        private = loaded.materialize()
        private.value[:] = seed
    os._exit(0)


def test_shared_mmap_across_processes(tmp_path):
    """Many processes map one v2 bundle concurrently: every reader
    sees identical bytes through read-only zero-copy columns, and
    materialize() stays private."""
    directory = tmp_path / "cache"
    warm = TraceCache(directory)
    warm.store(_canonical_trace("synth-a", "ppc"), "tiny")

    context = multiprocessing.get_context()
    workers = [
        context.Process(target=_map_and_verify,
                        args=(str(directory), seed))
        for seed in range(_PROCESSES)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120)
    exit_codes = [worker.exitcode for worker in workers]
    assert exit_codes == [0] * _PROCESSES, exit_codes


def test_parallel_engine_shares_one_cache(tmp_path, monkeypatch):
    """Workers populate the shared cache; a fresh serial session then
    hits it (and gets bit-identical traces)."""
    monkeypatch.delenv("REPRO_SABOTAGE", raising=False)
    monkeypatch.delenv("REPRO_PARALLEL_CRASH", raising=False)
    from repro.harness import Session, WorkUnit, ParallelEngine

    directory = tmp_path / "shared"
    benches = ("grep", "quick")
    units = [WorkUnit(b, "trace", t)
             for b in benches for t in ("ppc", "alpha")]
    warm = Session(scale="tiny", benchmarks=benches,
                   cache_dir=str(directory))
    ParallelEngine(warm, jobs=2, units=units).run()
    stored = sorted(p.name for p in directory.glob("*.rtc"))
    assert len(stored) == 4, stored

    cold = Session(scale="tiny", benchmarks=benches,
                   cache_dir=str(directory))
    for bench in benches:
        for target in ("ppc", "alpha"):
            hot = warm.trace(bench, target)
            cached = cold.trace(bench, target)
            assert _traces_equal(hot, cached)
