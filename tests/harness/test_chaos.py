"""Tests for the ``repro chaos`` soak harness.

The plan tests are pure and fast; the drill tests run a small number
of real drills (each is a full ``repro experiment`` subprocess, so
they are kept to the cheapest kinds -- the full 11-kind sweep runs in
CI's chaos-soak job and on demand via ``repro chaos``)."""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.harness.chaos import (
    DRILL_KINDS,
    FAIL,
    PASS,
    ChaosDrill,
    ChaosOutcome,
    ChaosReport,
    plan_drills,
    run_chaos,
)


class TestDrillPlan:
    def test_plan_is_deterministic(self):
        first = plan_drills(7, 20, ("grep", "compress"))
        second = plan_drills(7, 20, ("grep", "compress"))
        assert first == second

    def test_plan_cycles_every_kind(self):
        plan = plan_drills(0, len(DRILL_KINDS) * 2, ("grep",))
        kinds = [drill.kind for drill in plan]
        assert kinds == list(DRILL_KINDS) * 2

    def test_seed_varies_victims(self):
        benchmarks = ("grep", "compress", "quick")
        one = [d.victim for d in plan_drills(1, 30, benchmarks)]
        two = [d.victim for d in plan_drills(2, 30, benchmarks)]
        assert one != two
        assert set(one) <= set(benchmarks)

    def test_empty_benchmarks_rejected(self):
        with pytest.raises(FaultError):
            plan_drills(0, 5, ())


class TestReport:
    def _report(self, status):
        drill = ChaosDrill(index=0, kind="tier_trace", seed=1,
                           victim="grep")
        return ChaosReport(
            seed=0, exhibit="fig6", scale="tiny", benchmarks=("grep",),
            outcomes=[ChaosOutcome(drill, status, "detail text")],
            artifacts="/tmp/x")

    def test_ok_report(self):
        report = self._report(PASS)
        assert report.ok
        text = report.render()
        assert "verdict: OK" in text
        assert "tier_trace" in text

    def test_failing_report_names_artifacts(self):
        report = self._report(FAIL)
        assert not report.ok
        text = report.render()
        assert "verdict: FAIL" in text
        assert "!!" in text
        assert "/tmp/x" in text


class TestDrillsEndToEnd:
    def test_tier_and_transient_drills_pass(self, tmp_path):
        # Drills 0..3 of seed 0: the three tier stages plus transient.
        report = run_chaos(seed=0, drills=4, scale="tiny",
                           benchmarks=("grep",),
                           artifacts=str(tmp_path / "artifacts"))
        assert [o.drill.kind for o in report.outcomes] == \
            ["tier_trace", "tier_annotate", "tier_model", "transient"]
        assert report.ok, report.render()
