"""Tests for the hardened on-disk trace cache.

The round-trip itself is covered in tests/trace/test_validate.py; this
module covers the corruption paths: damaged bundles must read as
misses (with the bad file quarantined), stale bundles as plain misses,
and interrupted writes must leave no debris behind.  The v2 (``.rtc``)
format tests pick apart the on-disk framing -- header, page-aligned
column table, CRC footer -- and the legacy class covers transparent v1
``.npz`` reads plus ``TraceCache.migrate``.
"""

import json
import zlib

import numpy as np
import pytest

from repro.harness import Session, TraceCache
from repro.harness.cache import (
    ALIGNMENT,
    FOOTER_MAGIC,
    MAGIC_V2,
    write_v1_bundle,
)
from repro.trace.records import TRACE_COLUMNS


def _store_grep(tmp_path, grep_trace):
    cache = TraceCache(tmp_path)
    cache.store(grep_trace, "tiny")
    return cache, cache.path_for("grep", "ppc", "tiny")


def _header_of(path):
    data = path.read_bytes()
    header_len = int.from_bytes(data[8:12], "little")
    return json.loads(data[12:12 + header_len].decode()), data


def _rewrite_header(path, header):
    """Replace a bundle's header JSON *and* recompute the footer CRC,
    so only the structural checks (not the CRC layer) can object."""
    _, data = _header_of(path)
    old_len = int.from_bytes(data[8:12], "little")
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")).encode()
    assert 12 + len(header_bytes) <= ALIGNMENT  # stays inside the padding
    body = bytearray(data)
    body[8:12] = len(header_bytes).to_bytes(4, "little")
    body[12:12 + len(header_bytes)] = header_bytes
    # Zero the rest of the old header region.
    for i in range(12 + len(header_bytes), 12 + old_len):
        body[i] = 0
    crc = zlib.crc32(bytes(header_bytes)) & 0xFFFFFFFF
    body[-4:] = crc.to_bytes(4, "little")
    path.write_bytes(bytes(body))


class TestCorruptionRecovery:
    def test_truncated_bundle_regenerates_transparently(
            self, tmp_path, grep_trace):
        cache, path = _store_grep(tmp_path, grep_trace)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        # A session pointed at the damaged cache regenerates and the
        # caller never notices.
        session = Session(scale="tiny", benchmarks=("grep",),
                          cache_dir=str(tmp_path))
        regenerated = session.trace("grep", "ppc")
        assert (regenerated.value == grep_trace.value).all()
        assert session.failures == []
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert len(quarantined) == 1
        # ... and the regenerated trace was re-stored, intact.
        assert cache.load("grep", "ppc", "tiny") is not None

    def test_bitflipped_column_caught_by_checksum(
            self, tmp_path, grep_trace):
        cache, path = _store_grep(tmp_path, grep_trace)
        # Flip one byte inside a column's data region while leaving
        # the header (and so every recorded CRC) untouched: only the
        # per-column checksum layer can catch it.
        header, data = _header_of(path)
        spec = next(s for s in header["columns"] if s["name"] == "value")
        body = bytearray(data)
        body[spec["offset"]] ^= 1
        path.write_bytes(bytes(body))
        assert cache.load("grep", "ppc", "tiny") is None
        assert list((tmp_path / "quarantine").iterdir())
        session = Session(scale="tiny", benchmarks=("grep",),
                          cache_dir=str(tmp_path))
        assert (session.trace("grep", "ppc").value
                == grep_trace.value).all()

    def test_version_bump_is_clean_miss(self, tmp_path, grep_trace):
        cache, _ = _store_grep(tmp_path, grep_trace)
        cache.version = cache.version + "-stale"
        assert cache.load("grep", "ppc", "tiny") is None
        # Stale is not damaged: nothing quarantined, and a session
        # with the current version simply regenerates and overwrites.
        assert not (tmp_path / "quarantine").exists()
        session = Session(scale="tiny", benchmarks=("grep",),
                          cache_dir=str(tmp_path))
        assert session.trace("grep", "ppc") is not None

    def test_tampered_header_caught_by_footer_crc(
            self, tmp_path, grep_trace):
        cache, path = _store_grep(tmp_path, grep_trace)
        header, data = _header_of(path)
        # Rewrite the header without fixing the footer: the footer CRC
        # must refuse it even though the JSON still parses.
        body = bytearray(data)
        header["name"] = "imposter"
        header_bytes = json.dumps(
            header, sort_keys=True, separators=(",", ":")).encode()
        body[8:12] = len(header_bytes).to_bytes(4, "little")
        body[12:12 + len(header_bytes)] = header_bytes
        path.write_bytes(bytes(body))
        assert cache.load("grep", "ppc", "tiny") is None
        assert list((tmp_path / "quarantine").iterdir())

    def test_wrong_column_table_is_corrupt(self, tmp_path, grep_trace):
        cache, path = _store_grep(tmp_path, grep_trace)
        header, _ = _header_of(path)
        # Drop a column from the table (footer CRC recomputed, so only
        # the TRACE_COLUMNS structural check can object).
        header["columns"] = header["columns"][:-1]
        _rewrite_header(path, header)
        assert cache.load("grep", "ppc", "tiny") is None
        assert list((tmp_path / "quarantine").iterdir())

    def test_truncation_at_footer_detected(self, tmp_path, grep_trace):
        cache, path = _store_grep(tmp_path, grep_trace)
        # Cut exactly the footer off: the columns are all intact, only
        # the atomicity witness is missing.
        data = path.read_bytes()
        path.write_bytes(data[:-12])
        assert cache.load("grep", "ppc", "tiny") is None
        assert list((tmp_path / "quarantine").iterdir())

    def test_quarantine_names_do_not_collide(self, tmp_path, grep_trace):
        cache, path = _store_grep(tmp_path, grep_trace)
        for _ in range(3):
            path.write_bytes(b"garbage")
            assert cache.load("grep", "ppc", "tiny") is None
            cache.store(grep_trace, "tiny")
        assert len(list((tmp_path / "quarantine").iterdir())) == 3


class TestWriteHygiene:
    def test_stale_temporaries_swept_on_init(self, tmp_path):
        stale_v2 = tmp_path / "grep-ppc-tiny.tmp.rtc"
        stale_v2.write_bytes(b"half a bundle")
        stale_v1 = tmp_path / "grep-alpha-tiny.tmp.npz"
        stale_v1.write_bytes(b"older half a bundle")
        TraceCache(tmp_path)
        assert not stale_v2.exists()
        assert not stale_v1.exists()

    def test_failed_store_leaves_no_debris(self, tmp_path, grep_trace,
                                           monkeypatch):
        cache = TraceCache(tmp_path)

        def explode(self, temporary, path, trace):
            temporary.write_bytes(b"RTRACE02 partial")
            raise OSError("i/o error mid-write")

        monkeypatch.setattr(TraceCache, "_write_bundle", explode)
        with pytest.raises(OSError):
            cache.store(grep_trace, "tiny")
        assert list(tmp_path.glob("*.tmp.rtc")) == []
        assert cache.load("grep", "ppc", "tiny") is None

    def test_interrupted_store_leaves_no_debris(self, tmp_path, grep_trace,
                                                monkeypatch):
        cache = TraceCache(tmp_path)

        def interrupted(self, temporary, path, trace):
            # Write a partial file, then die, as a crash mid-write would.
            temporary.write_bytes(MAGIC_V2 + b" partial")
            raise KeyboardInterrupt

        monkeypatch.setattr(TraceCache, "_write_bundle", interrupted)
        with pytest.raises(KeyboardInterrupt):
            cache.store(grep_trace, "tiny")
        assert list(tmp_path.glob("*.tmp.rtc")) == []


class TestStoredFormat:
    def test_v2_framing(self, tmp_path, grep_trace):
        _, path = _store_grep(tmp_path, grep_trace)
        data = path.read_bytes()
        assert data[:8] == MAGIC_V2
        header, _ = _header_of(path)
        assert header["format"] == "repro.trace-cache/v2"
        assert "version" in header
        assert data[header["data_end"]:header["data_end"] + 8] \
            == FOOTER_MAGIC
        assert len(data) == header["data_end"] + 12

    def test_column_table_matches_trace_columns(self, tmp_path,
                                                grep_trace):
        _, path = _store_grep(tmp_path, grep_trace)
        header, _ = _header_of(path)
        specs = header["columns"]
        assert [s["name"] for s in specs] == \
            [key for key, _ in TRACE_COLUMNS]
        for spec, (key, code) in zip(specs, TRACE_COLUMNS):
            expected = np.dtype("<" + code)
            assert np.dtype(spec["dtype"]) == expected
            assert spec["nbytes"] == spec["count"] * expected.itemsize
            assert "crc32" in spec

    def test_columns_are_page_aligned(self, tmp_path, grep_trace):
        _, path = _store_grep(tmp_path, grep_trace)
        header, _ = _header_of(path)
        for spec in header["columns"]:
            assert spec["offset"] % ALIGNMENT == 0, spec["name"]

    def test_loaded_columns_are_read_only_views(self, tmp_path,
                                                grep_trace):
        cache, _ = _store_grep(tmp_path, grep_trace)
        loaded = cache.load("grep", "ppc", "tiny")
        for key, _ in TRACE_COLUMNS:
            column = getattr(loaded, key)
            assert not column.flags.writeable, key
            assert not column.flags.owndata, key
        # The escape hatch hands back private writable columns.
        private = loaded.materialize()
        for key, _ in TRACE_COLUMNS:
            assert getattr(private, key).flags.writeable, key
        assert np.array_equal(private.value, grep_trace.value)


class TestLegacyV1:
    def test_v1_bundle_reads_transparently(self, tmp_path, grep_trace):
        cache = TraceCache(tmp_path)
        write_v1_bundle(cache.legacy_path("grep", "ppc", "tiny"),
                        grep_trace, cache.version)
        loaded = cache.load("grep", "ppc", "tiny")
        assert loaded is not None
        assert np.array_equal(loaded.value, grep_trace.value)
        assert cache.counters.hits == 1

    def test_v2_store_supersedes_v1(self, tmp_path, grep_trace):
        cache = TraceCache(tmp_path)
        legacy = cache.legacy_path("grep", "ppc", "tiny")
        write_v1_bundle(legacy, grep_trace, cache.version)
        cache.store(grep_trace, "tiny")
        assert not legacy.exists()
        assert cache.path_for("grep", "ppc", "tiny").exists()

    def test_stale_v1_is_clean_miss(self, tmp_path, grep_trace):
        cache = TraceCache(tmp_path)
        write_v1_bundle(cache.legacy_path("grep", "ppc", "tiny"),
                        grep_trace, "ancient")
        assert cache.load("grep", "ppc", "tiny") is None
        assert not (tmp_path / "quarantine").exists()

    def test_corrupt_v1_quarantined(self, tmp_path, grep_trace):
        cache = TraceCache(tmp_path)
        legacy = cache.legacy_path("grep", "ppc", "tiny")
        write_v1_bundle(legacy, grep_trace, cache.version)
        data = legacy.read_bytes()
        legacy.write_bytes(data[: len(data) // 2])
        assert cache.load("grep", "ppc", "tiny") is None
        assert list((tmp_path / "quarantine").iterdir())

    def test_migrate_rewrites_v1_as_v2(self, tmp_path, grep_trace):
        cache = TraceCache(tmp_path)
        legacy = cache.legacy_path("grep", "ppc", "tiny")
        write_v1_bundle(legacy, grep_trace, cache.version)
        stats = cache.migrate()
        assert stats == {"migrated": 1, "skipped": 0, "failed": 0}
        assert not legacy.exists()
        migrated = cache.load("grep", "ppc", "tiny")
        assert migrated is not None
        for key, _ in TRACE_COLUMNS:
            assert np.array_equal(getattr(migrated, key),
                                  getattr(grep_trace, key)), key

    def test_migrate_skips_stale_and_quarantines_corrupt(
            self, tmp_path, grep_trace):
        cache = TraceCache(tmp_path)
        write_v1_bundle(cache.legacy_path("grep", "ppc", "tiny"),
                        grep_trace, "ancient")
        broken = cache.legacy_path("grep", "alpha", "tiny")
        write_v1_bundle(broken, grep_trace, cache.version)
        data = broken.read_bytes()
        broken.write_bytes(data[: len(data) // 2])
        (tmp_path / "notes.npz").write_bytes(b"not a cache key")
        stats = cache.migrate()
        assert stats == {"migrated": 0, "skipped": 2, "failed": 1}
        assert not broken.exists()
        assert list((tmp_path / "quarantine").iterdir())

    def test_migrate_is_idempotent(self, tmp_path, grep_trace):
        cache = TraceCache(tmp_path)
        write_v1_bundle(cache.legacy_path("grep", "ppc", "tiny"),
                        grep_trace, cache.version)
        assert cache.migrate()["migrated"] == 1
        assert cache.migrate() == {"migrated": 0, "skipped": 0,
                                   "failed": 0}
