"""Tests for the hardened on-disk trace cache.

The round-trip itself is covered in tests/trace/test_validate.py; this
module covers the corruption paths: damaged bundles must read as
misses (with the bad file quarantined), stale bundles as plain misses,
and interrupted writes must leave no debris behind.
"""

import numpy as np
import pytest

from repro.harness import Session, TraceCache
from repro.trace.records import TRACE_COLUMNS


def _store_grep(tmp_path, grep_trace):
    cache = TraceCache(tmp_path)
    cache.store(grep_trace, "tiny")
    return cache, cache.path_for("grep", "ppc", "tiny")


class TestCorruptionRecovery:
    def test_truncated_bundle_regenerates_transparently(
            self, tmp_path, grep_trace):
        cache, path = _store_grep(tmp_path, grep_trace)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        # A session pointed at the damaged cache regenerates and the
        # caller never notices.
        session = Session(scale="tiny", benchmarks=("grep",),
                          cache_dir=str(tmp_path))
        regenerated = session.trace("grep", "ppc")
        assert (regenerated.value == grep_trace.value).all()
        assert session.failures == []
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert len(quarantined) == 1
        # ... and the regenerated trace was re-stored, intact.
        assert cache.load("grep", "ppc", "tiny") is not None

    def test_bitflipped_column_caught_by_checksum(
            self, tmp_path, grep_trace):
        cache, path = _store_grep(tmp_path, grep_trace)
        # Rewrite one column element while keeping the recorded CRCs,
        # so only the per-column checksum layer can catch it.
        with np.load(path, allow_pickle=False) as bundle:
            arrays = {key: bundle[key].copy() for key in bundle.files}
        arrays["value"][0] ^= np.uint64(1)
        np.savez_compressed(path, **arrays)
        assert cache.load("grep", "ppc", "tiny") is None
        assert list((tmp_path / "quarantine").iterdir())
        session = Session(scale="tiny", benchmarks=("grep",),
                          cache_dir=str(tmp_path))
        assert (session.trace("grep", "ppc").value
                == grep_trace.value).all()

    def test_version_bump_is_clean_miss(self, tmp_path, grep_trace):
        cache, _ = _store_grep(tmp_path, grep_trace)
        cache.version = cache.version + "-stale"
        assert cache.load("grep", "ppc", "tiny") is None
        # Stale is not damaged: nothing quarantined, and a session
        # with the current version simply regenerates and overwrites.
        assert not (tmp_path / "quarantine").exists()
        session = Session(scale="tiny", benchmarks=("grep",),
                          cache_dir=str(tmp_path))
        assert session.trace("grep", "ppc") is not None

    def test_bundle_missing_checksums_is_corrupt(
            self, tmp_path, grep_trace):
        cache, path = _store_grep(tmp_path, grep_trace)
        with np.load(path, allow_pickle=False) as bundle:
            arrays = {key: bundle[key].copy() for key in bundle.files
                      if not key.startswith("crc_")}
        np.savez_compressed(path, **arrays)
        assert cache.load("grep", "ppc", "tiny") is None
        assert list((tmp_path / "quarantine").iterdir())

    def test_quarantine_names_do_not_collide(self, tmp_path, grep_trace):
        cache, path = _store_grep(tmp_path, grep_trace)
        for _ in range(3):
            path.write_bytes(b"garbage")
            assert cache.load("grep", "ppc", "tiny") is None
            cache.store(grep_trace, "tiny")
        assert len(list((tmp_path / "quarantine").iterdir())) == 3


class TestWriteHygiene:
    def test_stale_temporaries_swept_on_init(self, tmp_path):
        stale = tmp_path / "grep-ppc-tiny.tmp.npz"
        stale.write_bytes(b"half a bundle")
        TraceCache(tmp_path)
        assert not stale.exists()

    def test_failed_store_leaves_no_debris(self, tmp_path, grep_trace,
                                           monkeypatch):
        cache = TraceCache(tmp_path)

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", explode)
        with pytest.raises(OSError):
            cache.store(grep_trace, "tiny")
        assert list(tmp_path.glob("*.tmp.npz")) == []
        assert cache.load("grep", "ppc", "tiny") is None

    def test_interrupted_store_leaves_no_debris(self, tmp_path, grep_trace,
                                                monkeypatch):
        cache = TraceCache(tmp_path)

        def interrupted(path, **arrays):
            # Write a partial file, then die, as a crash mid-write would.
            with open(path, "wb") as handle:
                handle.write(b"PK\x03\x04 partial")
            raise KeyboardInterrupt

        monkeypatch.setattr(np, "savez_compressed", interrupted)
        with pytest.raises(KeyboardInterrupt):
            cache.store(grep_trace, "tiny")
        assert list(tmp_path.glob("*.tmp.npz")) == []


class TestStoredFormat:
    def test_bundle_carries_per_column_checksums(
            self, tmp_path, grep_trace):
        _, path = _store_grep(tmp_path, grep_trace)
        with np.load(path, allow_pickle=False) as bundle:
            keys = set(bundle.files)
        for key, _ in TRACE_COLUMNS:
            assert key in keys
            assert f"crc_{key}" in keys
        assert "version" in keys
