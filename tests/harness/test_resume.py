"""Differential resume suite: a crashed-and-resumed run must be
byte-identical to an uninterrupted one.

Every test here drives the real CLI in a subprocess (the journal's
crash-safety claims are about whole processes dying, so in-process
simulation would prove nothing): runs are killed with
``REPRO_JOURNAL_CRASH_AFTER`` (a hard ``os._exit`` right after the
k-th checkpoint), with genuine ``SIGKILL``, or interrupted with
``SIGINT``/``SIGTERM``, then resumed via ``--resume`` and diffed
against an uninterrupted control run -- serially and under ``--jobs
4``, with and without sabotage faults, and with a truncated trailing
journal line.  The watchdog drill wedges one benchmark with
``REPRO_PARALLEL_HANG`` and asserts ``--unit-timeout`` converts the
hang into an ordinary footnoted failure.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

BENCHES = "grep,compress,quick"
SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src"))


def _env(extra=None):
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("REPRO_")}
    env["PYTHONPATH"] = SRC
    env.update(extra or {})
    return env


def _cli(*argv, cwd, extra_env=None, timeout=600):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, env=_env(extra_env), cwd=cwd, timeout=timeout)


def _experiment(cwd, *extra, run_id=None, benches=BENCHES, extra_env=None):
    argv = ["experiment", "all", "--scale", "tiny",
            "--benchmarks", benches, *extra]
    if run_id:
        argv += ["--run-id", run_id]
    return _cli(*argv, cwd=cwd, extra_env=extra_env)


def _resume(cwd, run_id, *extra, extra_env=None):
    return _cli("experiment", "--resume", run_id, *extra,
                cwd=cwd, extra_env=extra_env)


@pytest.fixture(scope="module")
def control(tmp_path_factory):
    """Uninterrupted `experiment all` stdout (the oracle)."""
    cwd = tmp_path_factory.mktemp("control")
    done = _experiment(cwd, run_id="control")
    assert done.returncode == 0, done.stderr.decode()
    return done.stdout


class TestCrashResume:
    @pytest.mark.parametrize("k", [1, 2])
    def test_crash_after_k_checkpoints_serial(self, k, tmp_path, control):
        crashed = _experiment(tmp_path, run_id="crash",
                              extra_env={"REPRO_JOURNAL_CRASH_AFTER": str(k)})
        assert crashed.returncode == 23  # the chaos knob's exit code
        checkpoints = tmp_path / ".repro" / "runs" / "crash" / "checkpoints"
        assert len(list(checkpoints.glob("*.pkl"))) == k
        resumed = _resume(tmp_path, "crash")
        assert resumed.returncode == 0, resumed.stderr.decode()
        assert resumed.stdout == control

    def test_crash_resume_parallel(self, tmp_path, control):
        crashed = _experiment(tmp_path, "--jobs", "4", run_id="crash",
                              extra_env={"REPRO_JOURNAL_CRASH_AFTER": "1"})
        assert crashed.returncode == 23
        resumed = _resume(tmp_path, "crash", "--jobs", "4")
        assert resumed.returncode == 0, resumed.stderr.decode()
        assert resumed.stdout == control

    def test_truncated_trailing_journal_line(self, tmp_path, control):
        crashed = _experiment(tmp_path, run_id="crash",
                              extra_env={"REPRO_JOURNAL_CRASH_AFTER": "1"})
        assert crashed.returncode == 23
        journal = tmp_path / ".repro" / "runs" / "crash" / "journal.jsonl"
        with open(journal, "ab") as handle:  # crash mid-append
            handle.write(b'{"rec":{"type":"done","benchm')
        resumed = _resume(tmp_path, "crash")
        assert resumed.returncode == 0, resumed.stderr.decode()
        assert resumed.stdout == control

    def test_crash_resume_with_sabotage(self, tmp_path):
        sabotage = {"REPRO_SABOTAGE": "compress"}
        cwd_control = tmp_path / "control"
        cwd_control.mkdir()
        done = _experiment(cwd_control, run_id="control",
                           extra_env=sabotage)
        assert done.returncode == 1  # footnoted, not fatal
        crashed = _experiment(tmp_path, run_id="crash", extra_env={
            "REPRO_JOURNAL_CRASH_AFTER": "1", **sabotage})
        assert crashed.returncode == 23
        resumed = _resume(tmp_path, "crash", extra_env=sabotage)
        assert resumed.returncode == 1
        assert resumed.stdout == done.stdout
        assert b"Footnotes:" in resumed.stdout


def _spawn_hung_run(cwd, run_id):
    """Start `experiment all` with the last benchmark wedged; wait for
    the first checkpoint so the kill lands genuinely mid-suite."""
    argv = [sys.executable, "-m", "repro", "experiment", "all",
            "--scale", "tiny", "--benchmarks", BENCHES,
            "--run-id", run_id]
    proc = subprocess.Popen(
        argv, env=_env({"REPRO_PARALLEL_HANG": "quick:trace:300"}),
        cwd=cwd, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    checkpoints = cwd / ".repro" / "runs" / run_id / "checkpoints"
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if checkpoints.is_dir() and list(checkpoints.glob("*.pkl")):
            return proc
        if proc.poll() is not None:
            break
        time.sleep(0.1)
    out, err = proc.communicate(timeout=10)
    raise AssertionError(
        f"run never reached its first checkpoint: {err.decode()}")


class TestSignals:
    def test_sigkill_then_resume_is_identical(self, tmp_path, control):
        proc = _spawn_hung_run(tmp_path, "killed")
        proc.kill()  # SIGKILL: no handler, no journal record, nothing
        proc.communicate(timeout=30)
        resumed = _resume(tmp_path, "killed")
        assert resumed.returncode == 0, resumed.stderr.decode()
        assert resumed.stdout == control

    @pytest.mark.parametrize("signum,name", [
        (signal.SIGINT, "SIGINT"), (signal.SIGTERM, "SIGTERM")])
    def test_interrupt_journals_and_resumes(self, signum, name,
                                            tmp_path, control):
        proc = _spawn_hung_run(tmp_path, "stopped")
        proc.send_signal(signum)
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 128 + signum
        assert b"resume with" in err
        assert b"--resume stopped" in err
        journal = tmp_path / ".repro" / "runs" / "stopped" / "journal.jsonl"
        assert b'"interrupted"' in journal.read_bytes()
        assert f'"signal":{int(signum)}'.encode() in journal.read_bytes()
        resumed = _resume(tmp_path, "stopped")
        assert resumed.returncode == 0, resumed.stderr.decode()
        assert resumed.stdout == control


class TestWatchdogDrill:
    def test_hung_benchmark_is_footnoted_not_fatal(self, tmp_path):
        start = time.monotonic()
        result = _experiment(
            tmp_path, "--unit-timeout", "2", run_id="hang",
            extra_env={"REPRO_PARALLEL_HANG": "compress:trace:300"})
        wall = time.monotonic() - start
        assert result.returncode == 1  # degraded, not aborted
        assert b"Footnotes:" in result.stdout
        assert b"compress" in result.stdout
        assert b"UnitTimeoutError" in result.stdout
        assert wall < 200  # nowhere near the 300s hang

    def test_hang_drill_resume_preserves_footnote(self, tmp_path):
        hung = _experiment(
            tmp_path, "--unit-timeout", "2", run_id="hang",
            extra_env={"REPRO_PARALLEL_HANG": "quick:trace:300"})
        assert hung.returncode == 1
        # A timed-out benchmark is a *completed* (failed) unit: its
        # failure is part of the run's recorded result, so resuming
        # replays the identical footnoted output -- exactly like the
        # sabotage case -- rather than silently retrying the hang.
        resumed = _resume(tmp_path, "hang", "--unit-timeout", "2")
        assert resumed.returncode == 1
        assert resumed.stdout == hung.stdout
