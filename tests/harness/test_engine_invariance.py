"""Exhibit stdout is invariant under engine-tier selection.

The golden tests pin exhibit bytes on the default path; these tests pin
the stronger claim that the *tier knobs themselves* cannot move a byte
-- on healthy runs and on sabotaged runs, where the degraded path (and
the annotate kernel's fallback to the general path) must also render
identically under the legacy and tiered engines.
"""

from repro.harness.bench import LEGACY_ENV, TIERED_ENV
from repro.harness.experiments import EXPERIMENTS, run_experiments
from repro.harness.session import Session

BENCHES = ("grep", "compress")


def _exhibit_text(monkeypatch, env, sabotage=None):
    with monkeypatch.context() as patch:
        for name, value in env.items():
            patch.setenv(name, value)
        patch.delenv("REPRO_TRACE_CACHE", raising=False)
        if sabotage is not None:
            patch.setenv("REPRO_SABOTAGE", sabotage)
        session = Session(scale="tiny", benchmarks=BENCHES)
        results = run_experiments(list(EXPERIMENTS), session, jobs=1)
        failures = len(session.failures)
    return "\n\n".join(result.text for result in results), failures


def test_healthy_run_identical_across_tiers(monkeypatch):
    legacy, _ = _exhibit_text(monkeypatch, LEGACY_ENV)
    tiered, _ = _exhibit_text(monkeypatch, TIERED_ENV)
    assert legacy == tiered


def test_sabotaged_run_identical_across_tiers(monkeypatch):
    """Degraded exhibits (footnoted gaps) must not depend on the tier."""
    legacy, legacy_failures = _exhibit_text(monkeypatch, LEGACY_ENV,
                                            sabotage="compress")
    tiered, tiered_failures = _exhibit_text(monkeypatch, TIERED_ENV,
                                            sabotage="compress")
    assert legacy_failures > 0
    assert legacy_failures == tiered_failures
    assert legacy == tiered
    assert "compress" in legacy  # the gap is footnoted, not silent
