"""Tests for graceful per-benchmark degradation.

A broken benchmark must never take the whole run down: the session
records a BenchmarkFailure, exhibits render with the gap footnoted,
``experiment all`` finishes (and exits non-zero), and the paper-shape
checks report what they had to skip.
"""

import pytest

from repro.errors import BenchmarkFailure, FaultError, ReproError
from repro.harness import Session, run_experiment
from repro.harness.experiments import EXPERIMENTS
from repro.lvp.config import SIMPLE


@pytest.fixture
def sabotaged(monkeypatch):
    """A two-benchmark tiny session with compress sabotaged."""
    monkeypatch.setenv("REPRO_SABOTAGE", "compress")
    return Session(scale="tiny", benchmarks=("grep", "compress"))


class TestSessionIsolation:
    def test_failure_is_recorded_and_typed(self, sabotaged):
        with pytest.raises(BenchmarkFailure) as excinfo:
            sabotaged.trace("compress", "ppc")
        failure = excinfo.value
        assert failure.benchmark == "compress"
        assert failure.stage == "trace"
        assert failure.target == "ppc"
        assert isinstance(failure.cause, FaultError)
        assert isinstance(failure, ReproError)
        assert sabotaged.failures == [failure]

    def test_repeat_requests_reuse_recorded_failure(self, sabotaged):
        for _ in range(3):
            with pytest.raises(BenchmarkFailure):
                sabotaged.trace("compress", "ppc")
        # Negative memoization: one recorded failure, not three.
        assert len(sabotaged.failures) == 1

    def test_downstream_stages_propagate_unwrapped(self, sabotaged):
        with pytest.raises(BenchmarkFailure) as excinfo:
            sabotaged.annotated("compress", "ppc", SIMPLE)
        # The trace-stage failure propagates as itself, not re-wrapped
        # as an annotate-stage failure.
        assert excinfo.value.stage == "trace"
        assert len(sabotaged.failures) == 1

    def test_other_benchmarks_unaffected(self, sabotaged):
        trace = sabotaged.trace("grep", "ppc")
        assert trace.num_instructions > 0
        with pytest.raises(BenchmarkFailure):
            sabotaged.trace("compress", "ppc")

    def test_sabotage_stage_selector(self, monkeypatch):
        monkeypatch.setenv("REPRO_SABOTAGE", "grep:annotate")
        session = Session(scale="tiny", benchmarks=("grep",))
        # The trace stage is untouched...
        assert session.trace("grep", "ppc") is not None
        # ... the annotate stage fails.
        with pytest.raises(BenchmarkFailure) as excinfo:
            session.annotated("grep", "ppc", SIMPLE)
        assert excinfo.value.stage == "annotate"


class TestDegradedExhibits:
    def test_every_exhibit_renders_with_footnote(self, sabotaged):
        for exp_id in EXPERIMENTS:
            result = run_experiment(exp_id, sabotaged)
            assert result.text, exp_id
            if exp_id in ("tab2", "tab5"):  # configuration tables
                continue
            assert "compress" in result.text, exp_id
            assert "Footnotes:" in result.text, exp_id
            assert result.failures, exp_id
        assert sabotaged.failures

    def test_surviving_benchmark_still_reported(self, sabotaged):
        result = run_experiment("fig1", sabotaged)
        assert "grep" in result.text
        assert result.data["ppc"]["grep"][1] > 0

    def test_healthy_session_has_no_footnotes(self, tiny_session):
        result = run_experiment("tab4", tiny_session)
        assert "Footnotes:" not in result.text
        assert result.failures == ()


class TestDegradedChecks:
    def test_check_all_reports_skips(self, monkeypatch):
        from repro.analysis.expectations import (
            check_all,
            render_check_report,
        )
        monkeypatch.setenv("REPRO_SABOTAGE", "quick")
        session = Session(scale="tiny", benchmarks=("grep", "quick"))
        results = check_all(session)
        assert any(r.skipped for r in results)
        assert all(not r.passed for r in results if r.skipped)
        report = render_check_report(results)
        assert "[SKIP]" in report
        assert "skipped)" in report
