"""Observability differential tests (see docs/observability.md).

The metrics layer's two load-bearing promises:

* **Determinism** -- the ``benchmarks`` section of ``metrics.json`` is
  identical for a serial and a ``--jobs 4`` run of the same suite;
* **Invisibility** -- with metrics disabled (and enabled!) exhibit
  stdout is byte-identical to an unobserved run, because all metrics
  surfacing goes to the run directory and stderr.

Both are proven here end to end through the real CLI, plus in-process
engine-level checks that are cheaper to iterate on.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.harness.parallel import ParallelEngine, units_for_exhibits
from repro.harness.session import Session
from repro.obs import validate_metrics

BENCHES = "grep,compress"
SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src"))


def _env(extra=None):
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("REPRO_")}
    env["PYTHONPATH"] = SRC
    env.update(extra or {})
    return env


def _cli(*argv, cwd, extra_env=None, timeout=600):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, env=_env(extra_env), cwd=cwd, timeout=timeout)


def _experiment(cwd, run_id, *extra):
    return _cli("experiment", "fig6", "--scale", "tiny",
                "--benchmarks", BENCHES, "--run-id", run_id, *extra,
                cwd=cwd)


def _metrics_path(cwd, run_id):
    return os.path.join(cwd, ".repro", "runs", run_id, "metrics.json")


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """One directory holding --no-metrics, serial, and --jobs 4 runs.

    The unobserved run goes first so that ``latest`` resolves to a run
    that actually has a metrics.json.
    """
    cwd = tmp_path_factory.mktemp("obs")
    unobserved = _experiment(cwd, "0-unobserved", "--no-metrics")
    assert unobserved.returncode == 0, unobserved.stderr.decode()
    serial = _experiment(cwd, "1-serial")
    assert serial.returncode == 0, serial.stderr.decode()
    parallel = _experiment(cwd, "2-parallel", "--jobs", "4")
    assert parallel.returncode == 0, parallel.stderr.decode()
    return {"cwd": cwd, "0-unobserved": unobserved, "1-serial": serial,
            "2-parallel": parallel}


class TestCounterDeterminism:
    def test_serial_and_parallel_counters_identical(self, run_dir):
        with open(_metrics_path(run_dir["cwd"], "1-serial")) as handle:
            serial = json.load(handle)
        with open(_metrics_path(run_dir["cwd"], "2-parallel")) as handle:
            parallel = json.load(handle)
        # The deterministic section must match exactly; spans/run are
        # wall-clock-shaped and carry no such guarantee.
        assert serial["benchmarks"] == parallel["benchmarks"]
        assert serial["benchmarks"]  # non-trivially: counters exist
        for document in (serial, parallel):
            assert validate_metrics(document) == []

    def test_documents_cover_all_stages(self, run_dir):
        with open(_metrics_path(run_dir["cwd"], "1-serial")) as handle:
            document = json.load(handle)
        counters = document["benchmarks"]["grep"]
        prefixes = {name.split("/")[0] for name in counters}
        assert {"sim", "lvp", "model"} <= prefixes
        phases = document["phases"]["grep"]
        assert {"trace", "annotate", "model"} <= set(phases)

    def test_engine_merge_matches_inprocess_serial(self):
        """Library-level: engine jobs=1 vs jobs=2 merge to equal
        counters (cheaper to iterate on than the CLI runs above)."""
        units = units_for_exhibits(["fig6"], ("grep", "compress"))
        counters = []
        for jobs in (1, 2):
            session = Session(scale="tiny",
                              benchmarks=("grep", "compress"),
                              metrics=True)
            ParallelEngine(session, jobs=jobs, units=units).run()
            counters.append(session.metrics.benchmark_counters())
        assert counters[0] == counters[1]
        assert counters[0]["grep"]["sim/ppc/instructions"] > 0


class TestStdoutInvariance:
    def test_metrics_do_not_touch_stdout(self, run_dir):
        assert run_dir["0-unobserved"].stdout == run_dir["1-serial"].stdout
        assert not os.path.exists(
            _metrics_path(run_dir["cwd"], "0-unobserved"))

    def test_no_metrics_recorded_in_manifest(self, run_dir):
        manifest_path = os.path.join(run_dir["cwd"], ".repro", "runs",
                                     "0-unobserved", "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        assert manifest["metrics"] is False

    def test_session_defaults_stay_unobserved(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        assert Session(scale="tiny", benchmarks=("grep",)).metrics is None


class TestStatsCli:
    def test_stats_renders_latest(self, run_dir):
        done = _cli("stats", cwd=run_dir["cwd"])
        assert done.returncode == 0, done.stderr.decode()
        text = done.stdout.decode()
        assert "Phase seconds per benchmark" in text
        assert "grep" in text and "compress" in text

    def test_stats_validate_passes(self, run_dir):
        done = _cli("stats", "1-serial", "--validate", cwd=run_dir["cwd"])
        assert done.returncode == 0, done.stderr.decode()
        assert b"schema OK" in done.stdout

    def test_stats_full_lists_counters(self, run_dir):
        done = _cli("stats", "1-serial", "--full", cwd=run_dir["cwd"])
        assert done.returncode == 0
        assert b"sim/ppc/instructions" in done.stdout

    def test_stats_unknown_run_exits_2(self, run_dir):
        done = _cli("stats", "no-such-run", cwd=run_dir["cwd"])
        assert done.returncode == 2
        assert b"error" in done.stderr

    def test_stats_on_unobserved_run_exits_2(self, run_dir):
        done = _cli("stats", "0-unobserved", cwd=run_dir["cwd"])
        assert done.returncode == 2
        assert b"no metrics.json" in done.stderr

    def test_stats_on_damaged_document_exits_2(self, run_dir):
        path = _metrics_path(run_dir["cwd"], "2-parallel")
        original = open(path).read()
        try:
            with open(path, "w") as handle:
                handle.write("{not json")
            done = _cli("stats", "2-parallel", cwd=run_dir["cwd"])
            assert done.returncode == 2
            assert b"damaged" in done.stderr
        finally:
            with open(path, "w") as handle:
                handle.write(original)


class TestProfileCapture:
    def test_profile_writes_hottest_units(self, tmp_path):
        done = _cli("experiment", "fig2", "--scale", "tiny",
                    "--benchmarks", "grep", "--run-id", "prof",
                    "--profile", cwd=tmp_path)
        assert done.returncode == 0, done.stderr.decode()
        profile_dir = tmp_path / ".repro" / "runs" / "prof" / "profiles"
        captures = list(profile_dir.glob("*.txt"))
        assert captures
        assert len(captures) <= 5
        text = captures[0].read_text()
        assert "cumulative" in text  # pstats output, sorted as asked
