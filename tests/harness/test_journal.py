"""Unit tests for the write-ahead run journal, retry policy, cache
lock bounding, and the --jobs/--unit-timeout validation layer."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.errors import (
    CacheLockTimeout,
    JournalError,
    RetryableError,
    TransientFaultError,
    UnitTimeoutError,
)
from repro.harness.cache import TraceCache
from repro.harness.journal import (
    RunJournal,
    build_manifest,
    find_run,
    new_run_id,
    prune_runs,
    replay_journal,
    shard_digests,
)
from repro.harness.parallel import (
    WorkUnit,
    _ShardResult,
    default_workplan,
    jobs_from_env,
    unit_timeout_from_env,
    units_for_exhibits,
)
from repro.harness.retry import RetryPolicy, call_with_retries
from repro.harness.session import Session

try:
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None


def _clean_env(monkeypatch):
    for var in list(os.environ):
        if var.startswith("REPRO_"):
            monkeypatch.delenv(var, raising=False)


def _empty_shard(benchmark="b1") -> _ShardResult:
    return _ShardResult(benchmark=benchmark, traces={}, annotated={},
                        ppc_runs={}, alpha_runs={}, failed={}, timings=[])


def _manifest(**overrides) -> dict:
    from repro import __version__
    manifest = {"version": __version__, "exhibits": ["tab1"],
                "scale": "tiny", "benchmarks": ["b1", "b2"],
                "verify": True, "jobs": 1, "unit_timeout": 0.0,
                "cache_dir": None}
    manifest.update(overrides)
    return manifest


class TestJournalLines:
    def test_write_replay_round_trip(self, tmp_path):
        journal = RunJournal.create(tmp_path, "r1", _manifest())
        journal.append({"type": "done", "benchmark": "b1",
                        "checkpoint": "x", "digests": {}})
        journal.close()
        types = [r["type"] for r in replay_journal(journal.journal_path)]
        assert types == ["run_started", "planned", "planned", "done"]

    def test_truncated_trailing_line_tolerated(self, tmp_path):
        journal = RunJournal.create(tmp_path, "r1", _manifest())
        journal.close()
        path = journal.journal_path
        before = [r["type"] for r in replay_journal(path)]
        path.write_bytes(path.read_bytes() + b'{"rec":{"type":"done"')
        assert [r["type"] for r in replay_journal(path)] == before

    def test_interior_damage_raises(self, tmp_path):
        journal = RunJournal.create(tmp_path, "r1", _manifest())
        journal.close()
        path = journal.journal_path
        lines = path.read_bytes().split(b"\n")
        lines[0] = lines[0].replace(b"run_started", b"run_stirred")
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(JournalError):
            replay_journal(path)

    def test_crc_protects_payload(self, tmp_path):
        journal = RunJournal.create(tmp_path, "r1", _manifest())
        journal.close()
        path = journal.journal_path
        # Flip a byte inside the first record's payload but keep the
        # line syntactically valid JSON: the CRC must catch it.
        lines = path.read_bytes().split(b"\n")
        tampered = lines[0].replace(b'"run_id":"r1"', b'"run_id":"rX"')
        assert tampered != lines[0]
        path.write_bytes(b"\n".join([tampered] + lines[1:]))
        with pytest.raises(JournalError):
            replay_journal(path)

    def test_damaged_single_line_journal_replays_empty(self, tmp_path):
        # With only one (damaged) line, it IS the trailing line: the
        # truncation tolerance applies and replay yields nothing.
        path = tmp_path / "journal.jsonl"
        path.write_bytes(b'{"rec":{"type":"run_started"},"crc":1}\n')
        assert replay_journal(path) == []


class TestCheckpoints:
    def test_finished_shard_checkpoints_and_resumes(self, tmp_path):
        journal = RunJournal.create(tmp_path, "r1", _manifest())
        shard = _empty_shard()
        digest = journal._write_checkpoint(shard)
        journal.append({"type": "done", "benchmark": "b1",
                        "checkpoint": digest,
                        "digests": shard_digests(shard)})
        journal.close()
        reopened = RunJournal.open(tmp_path, "r1")
        loaded = reopened.load_checkpoints()
        assert set(loaded) == {"b1"}
        assert loaded["b1"].benchmark == "b1"

    def test_tampered_checkpoint_dropped(self, tmp_path):
        journal = RunJournal.create(tmp_path, "r1", _manifest())
        shard = _empty_shard()
        digest = journal._write_checkpoint(shard)
        journal.append({"type": "done", "benchmark": "b1",
                        "checkpoint": digest,
                        "digests": shard_digests(shard)})
        journal._checkpoint_path("b1").write_bytes(b"rotten")
        assert journal.load_checkpoints() == {}

    def test_missing_checkpoint_dropped(self, tmp_path):
        journal = RunJournal.create(tmp_path, "r1", _manifest())
        journal.append({"type": "done", "benchmark": "b1",
                        "checkpoint": "0" * 64, "digests": {}})
        assert journal.load_checkpoints() == {}


class TestManifest:
    def test_version_mismatch_refuses_resume(self, tmp_path):
        RunJournal.create(tmp_path, "r1", _manifest()).close()
        manifest_path = tmp_path / "r1" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = "0.0.0-other"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(JournalError):
            RunJournal.open(tmp_path, "r1")

    def test_build_manifest_records_identity(self):
        session = Session(scale="tiny", benchmarks=("grep",))
        manifest = build_manifest(["tab1"], session, jobs=2,
                                  unit_timeout=1.5)
        assert manifest["scale"] == "tiny"
        assert manifest["benchmarks"] == ["grep"]
        assert manifest["jobs"] == 2
        assert manifest["unit_timeout"] == 1.5


class TestRunDirectories:
    def test_find_run_latest_and_missing(self, tmp_path):
        RunJournal.create(tmp_path, "2025-a", _manifest()).close()
        RunJournal.create(tmp_path, "2025-b", _manifest()).close()
        assert find_run(tmp_path, "latest").name == "2025-b"
        assert find_run(tmp_path, "2025-a").name == "2025-a"
        with pytest.raises(JournalError):
            find_run(tmp_path, "nope")

    def test_prune_keeps_newest_and_protected(self, tmp_path):
        for name in ("r1", "r2", "r3", "r4"):
            RunJournal.create(tmp_path, name, _manifest()).close()
        removed = prune_runs(tmp_path, keep=2, protect="r1")
        # The LATEST pointer file lives beside the run directories and
        # is never pruned.
        survivors = sorted(p.name for p in tmp_path.iterdir()
                           if p.is_dir())
        assert removed == 1
        assert survivors == ["r1", "r3", "r4"]

    def test_new_run_ids_are_distinct_across_processes(self):
        assert f"-{os.getpid()}-" in new_run_id()

    def test_new_run_ids_distinct_within_one_second(self):
        # The timestamp is second-granular: a scripted sweep (or this
        # test suite) creates several runs in one second, and the ids
        # must not collide into a shared run directory.
        ids = [new_run_id() for _ in range(20)]
        assert len(set(ids)) == len(ids)


class TestRetryPolicy:
    def test_schedule_deterministic_and_bounded(self):
        policy = RetryPolicy(attempts=5, base=0.1, seed=3)
        first, second = policy.delays(), policy.delays()
        assert first == second
        assert len(first) == 4
        # Regression: the cap bounds the post-jitter sleep itself.  The
        # old code clamped before jittering, so sleeps could exceed the
        # cap by up to the jitter fraction (50%).
        assert all(0 <= d <= policy.cap for d in first)

    def test_cap_applies_after_jitter(self):
        # base * multiplier**i reaches the cap from i=1 on; with the
        # old clamp-then-jitter order every one of those delays would
        # (almost surely) exceed the cap.
        policy = RetryPolicy(attempts=6, base=1.0, multiplier=4.0,
                             cap=1.5, jitter=0.5, seed=7)
        delays = policy.delays()
        assert all(d <= policy.cap for d in delays)
        # Jitter still does its de-synchronization job below the cap.
        small = RetryPolicy(attempts=2, base=0.1, cap=10.0, jitter=0.5,
                            seed=7).delays()[0]
        assert 0.1 <= small <= 0.15

    def test_env_overrides(self, monkeypatch):
        _clean_env(monkeypatch)
        monkeypatch.setenv("REPRO_RETRIES", "5")
        monkeypatch.setenv("REPRO_RETRY_BASE", "0")
        policy = RetryPolicy.from_env(seed=1)
        assert policy.attempts == 5
        assert policy.base == 0.0

    def test_malformed_env_warns_and_falls_back(self, monkeypatch):
        _clean_env(monkeypatch)
        monkeypatch.setenv("REPRO_RETRIES", "three")
        monkeypatch.setenv("REPRO_RETRY_BASE", "fast")
        with pytest.warns(RuntimeWarning) as caught:
            policy = RetryPolicy.from_env()
        assert policy.attempts == RetryPolicy().attempts
        assert policy.base == RetryPolicy().base
        messages = [str(w.message) for w in caught]
        assert any("REPRO_RETRIES" in m and "'three'" in m
                   for m in messages)
        assert any("REPRO_RETRY_BASE" in m and "'fast'" in m
                   for m in messages)

    def test_unset_env_stays_silent(self, monkeypatch):
        _clean_env(monkeypatch)
        import warnings as warnings_module
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            policy = RetryPolicy.from_env()
        assert policy == RetryPolicy()

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base=-1.0)

    def test_retries_transient_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise CacheLockTimeout("busy")
            return "ok"

        result = call_with_retries(flaky, RetryPolicy(attempts=3, base=0),
                                   sleep=lambda s: None)
        assert result == "ok"
        assert len(calls) == 3

    def test_terminal_errors_propagate_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("terminal")

        with pytest.raises(ValueError):
            call_with_retries(broken, RetryPolicy(attempts=3, base=0),
                              sleep=lambda s: None)
        assert len(calls) == 1

    def test_final_attempt_reraises(self):
        def always():
            raise CacheLockTimeout("busy")

        with pytest.raises(CacheLockTimeout):
            call_with_retries(always, RetryPolicy(attempts=2, base=0),
                              sleep=lambda s: None)


class TestTransientKnob:
    def test_session_survives_transient_faults(self, monkeypatch):
        _clean_env(monkeypatch)
        import repro.harness.session as session_mod
        monkeypatch.setattr(session_mod, "_TRANSIENT_FIRED", {})
        monkeypatch.setenv("REPRO_TRANSIENT", "grep:trace:2")
        monkeypatch.setenv("REPRO_RETRY_BASE", "0")
        session = Session(scale="tiny", benchmarks=("grep",))
        trace = session.trace("grep", "ppc")
        assert trace.num_instructions > 0
        assert session.failures == []

    def test_transient_budget_exhaustion_is_recorded(self, monkeypatch):
        _clean_env(monkeypatch)
        import repro.harness.session as session_mod
        monkeypatch.setattr(session_mod, "_TRANSIENT_FIRED", {})
        # More injected failures than the 3-attempt default budget.
        monkeypatch.setenv("REPRO_TRANSIENT", "grep:trace:99")
        monkeypatch.setenv("REPRO_RETRY_BASE", "0")
        session = Session(scale="tiny", benchmarks=("grep",))
        with pytest.raises(Exception):
            session.trace("grep", "ppc")
        assert len(session.failures) == 1
        assert isinstance(session.failures[0].cause, TransientFaultError)


class TestCacheResilience:
    @pytest.mark.skipif(fcntl is None, reason="fcntl-less platform")
    def test_lock_timeout_is_bounded_and_retryable(self, tmp_path):
        cache = TraceCache(tmp_path, lock_timeout=0.1)
        with open(tmp_path / ".lock", "a") as holder:
            fcntl.flock(holder, fcntl.LOCK_EX)
            try:
                with pytest.raises(CacheLockTimeout) as excinfo:
                    cache.clear()
            finally:
                fcntl.flock(holder, fcntl.LOCK_UN)
        assert isinstance(excinfo.value, RetryableError)

    def test_quarantine_growth_is_capped(self, tmp_path):
        cache = TraceCache(tmp_path, quarantine_keep=2)
        for i in range(5):
            bundle = tmp_path / f"bundle{i}.npz"
            bundle.write_bytes(b"junk")
            cache.quarantine(bundle)
        survivors = list((tmp_path / "quarantine").iterdir())
        assert len(survivors) == 2


class TestWorkplanFiltering:
    def test_single_exhibit_plan_is_smaller(self):
        full = default_workplan(("grep",))
        tab1 = units_for_exhibits(["tab1"], ("grep",))
        assert set(tab1) < set(full)
        assert tab1 == tuple(u for u in full if u.stage == "trace")

    def test_unknown_exhibit_falls_back_to_full_plan(self):
        assert units_for_exhibits(["mystery"], ("grep",)) == \
            default_workplan(("grep",))

    def test_static_exhibits_need_nothing(self):
        assert units_for_exhibits(["tab2", "tab5"], ("grep",)) == ()

    def test_all_exhibits_cover_every_model_unit(self):
        # Annotate units an exhibit never reads directly are resolved
        # implicitly by workers, so the union of per-exhibit plans
        # covers every trace and model unit (annotations ride along).
        from repro.harness import EXPERIMENTS
        full = set(default_workplan(("grep",)))
        union = set()
        for exp_id in EXPERIMENTS:
            union |= set(units_for_exhibits([exp_id], ("grep",)))
        assert union <= full
        assert {u for u in full if u.stage != "annotate"} <= union


class TestKnobValidation:
    def test_jobs_from_env_strict(self, monkeypatch):
        _clean_env(monkeypatch)
        monkeypatch.setenv("REPRO_JOBS", "banana")
        with pytest.raises(ValueError):
            jobs_from_env(strict=True)
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError):
            jobs_from_env(strict=True)
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert jobs_from_env(strict=True) == 3

    def test_unit_timeout_from_env(self, monkeypatch):
        _clean_env(monkeypatch)
        assert unit_timeout_from_env() == 0.0
        monkeypatch.setenv("REPRO_UNIT_TIMEOUT", "2.5")
        assert unit_timeout_from_env() == 2.5
        monkeypatch.setenv("REPRO_UNIT_TIMEOUT", "banana")
        assert unit_timeout_from_env() == 0.0

    def test_cli_rejects_bad_jobs(self):
        for bad in ("0", "-2", "banana"):
            with pytest.raises(SystemExit) as excinfo:
                main(["experiment", "all", "--jobs", bad])
            assert excinfo.value.code == 2

    def test_cli_rejects_bad_unit_timeout(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["experiment", "all", "--unit-timeout", "-1"])
        assert excinfo.value.code == 2

    def test_cli_rejects_bad_env_jobs(self, monkeypatch, capsys):
        _clean_env(monkeypatch)
        monkeypatch.setenv("REPRO_JOBS", "banana")
        with pytest.raises(SystemExit) as excinfo:
            main(["experiment", "all", "--scale", "tiny",
                  "--benchmarks", "grep", "--no-journal"])
        assert excinfo.value.code == 2
        assert "REPRO_JOBS" in capsys.readouterr().err

    def test_cli_requires_id_or_resume(self, capsys):
        assert main(["experiment"]) == 2
        assert "exhibit id" in capsys.readouterr().err


class TestInProcessJournaledRuns:
    def test_journaled_run_then_resume_is_identical(self, tmp_path,
                                                    capsys, monkeypatch):
        _clean_env(monkeypatch)
        args = ["--scale", "tiny", "--benchmarks", "grep",
                "--runs-dir", str(tmp_path)]
        assert main(["experiment", "tab1", "--run-id", "r1"] + args) == 0
        first = capsys.readouterr().out
        assert main(["experiment", "--resume", "r1",
                     "--runs-dir", str(tmp_path)]) == 0
        second = capsys.readouterr().out
        assert first == second
        records = replay_journal(tmp_path / "r1" / "journal.jsonl")
        assert [r["type"] for r in records].count("done") >= 1

    def test_no_journal_flag_writes_nothing(self, tmp_path, capsys,
                                            monkeypatch):
        _clean_env(monkeypatch)
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["experiment", "tab1", "--scale", "tiny",
                     "--benchmarks", "grep", "--no-journal"]) == 0
        capsys.readouterr()
        assert list(tmp_path.iterdir()) == []

    def test_resume_unknown_run_is_a_clean_error(self, tmp_path, capsys,
                                                 monkeypatch):
        _clean_env(monkeypatch)
        code = main(["experiment", "--resume", "ghost",
                     "--runs-dir", str(tmp_path)])
        assert code == 2
        assert "ghost" in capsys.readouterr().err


class TestWatchdogUnit:
    def test_watchdog_interrupts_hang(self):
        import time

        from repro.harness.parallel import _unit_watchdog
        unit = WorkUnit("b1", "trace", "ppc")
        with pytest.raises(UnitTimeoutError):
            with _unit_watchdog(0.05, unit):
                time.sleep(5)

    def test_watchdog_disarmed_when_zero(self):
        from repro.harness.parallel import _unit_watchdog
        unit = WorkUnit("b1", "trace", "ppc")
        with _unit_watchdog(0.0, unit):
            pass
