"""The sweep engine's differential and resilience suite.

The one claim everything here defends: a sweep cell is *bit-identical*
to a standalone ``annotate_trace`` run of the same configuration --
outcomes array, outcome mix, and every LVP counter.  The differential
tests sweep a deliberately mixed mini-grid (deep history, stride, fcm,
lastn, hybrid, gshare, tagged, 1-bit LCT, zero CVU) against the
reference unit; the CLI drills reuse the ``test_resume.py`` pattern --
crash a journaled sweep with ``REPRO_JOURNAL_CRASH_AFTER``, resume it,
and diff against an uninterrupted control run, serially and under
``--jobs 4``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import ConfigError, JournalError, ProtocolError
from repro.harness.sweep import (
    SweepJournal,
    build_sweep_manifest,
    compare_sweep_bench,
    decode_events,
    evaluate_configs,
    plan_chunks,
    render_exhibits,
    render_sweep,
    run_sweep,
    validate_sweep,
    validate_sweep_bench,
)
from repro.lvp import (
    LVPConfig,
    PERFECT,
    expand_grid,
    grid_from_args,
    parse_grid_spec,
    sensitivity_grid,
)
from repro.lvp.unit import LVPStats
from repro.trace.annotate import annotate_trace

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src"))

#: Every structural corner of the factored data flow in one mini-grid.
MIXED_GRID = (
    LVPConfig(name="m/simple"),
    LVPConfig(name="m/deep", history_depth=4, lvpt_entries=256),
    LVPConfig(name="m/bits1", lct_bits=1, cvu_entries=128),
    LVPConfig(name="m/nocvu", cvu_entries=0),
    LVPConfig(name="m/stride", predictor="stride", cvu_entries=128),
    LVPConfig(name="m/fcm", predictor="fcm", history_depth=4),
    LVPConfig(name="m/lastn", predictor="lastn", history_depth=4),
    LVPConfig(name="m/hybrid", predictor="hybrid"),
    LVPConfig(name="m/gshare", index_mode="gshare", ghr_bits=8),
    LVPConfig(name="m/tagged", lvpt_tagged=True),
    LVPConfig(name="m/oracle", selection="perfect", history_depth=16,
              lvpt_entries=4096),
)

#: Counter fields whose equality the differential suite asserts.
COUNTER_FIELDS = (
    "predictable_predicted", "predictable_not_predicted",
    "unpredictable_predicted", "unpredictable_not_predicted",
    "cvu_insertions", "cvu_store_invalidations",
    "cvu_demotions", "cvu_stale_hits",
)


def _assert_cell_matches(cell, annotated) -> None:
    reference: LVPStats = annotated.stats
    assert np.array_equal(cell.outcomes, annotated.outcomes), \
        cell.config.name
    assert cell.stats.outcomes == reference.outcomes, cell.config.name
    assert cell.stats.loads == reference.loads
    assert cell.stats.stores == reference.stores
    for field in COUNTER_FIELDS:
        assert getattr(cell.stats, field) == getattr(reference, field), \
            f"{cell.config.name}: {field}"


class TestDifferential:
    def test_mixed_grid_matches_annotate_trace(self, compress_trace):
        cells = evaluate_configs(compress_trace, MIXED_GRID,
                                 keep_outcomes=True)
        for cell, config in zip(cells, MIXED_GRID):
            _assert_cell_matches(cell, annotate_trace(compress_trace,
                                                      config))

    def test_grep_trace_too(self, grep_trace):
        cells = evaluate_configs(grep_trace, MIXED_GRID,
                                 keep_outcomes=True)
        for cell, config in zip(cells, MIXED_GRID):
            _assert_cell_matches(cell, annotate_trace(grep_trace, config))

    def test_shared_decode_is_reused(self, compress_trace):
        events = decode_events(compress_trace)
        direct = evaluate_configs(compress_trace, MIXED_GRID[:3])
        shared = evaluate_configs(compress_trace, MIXED_GRID[:3],
                                  events=events)
        assert [c.outcome_digest for c in direct] == \
            [c.outcome_digest for c in shared]

    def test_perfect_config_is_rejected(self, compress_trace):
        with pytest.raises(ConfigError):
            evaluate_configs(compress_trace, [PERFECT])


class TestGrid:
    def test_sensitivity_grid_is_large_and_unique(self):
        grid = sensitivity_grid()
        assert len(grid) >= 100
        names = [config.name for config in grid]
        assert len(names) == len(set(names))

    def test_expand_skips_invalid_combinations(self):
        configs = expand_grid({"predictor": ["stride", "history"],
                               "depth": [1, 4]})
        # stride rejects depth 4: three valid cells survive, no raise.
        assert len(configs) == 3

    def test_parse_grid_spec(self):
        dims = parse_grid_spec("lvpt=256,1024;bits=1,2;cvu=0")
        assert dims == {"lvpt_entries": [256, 1024],
                        "lct_bits": [1, 2], "cvu_entries": [0]}

    @pytest.mark.parametrize("spec", [
        "", "nonsense", "lvpt=", "wat=3", "lvpt=abc",
        "predictor=bogus",
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ConfigError):
            parse_grid_spec(spec)

    def test_grid_from_args_limit(self):
        assert len(grid_from_args(None, 7)) == 7
        assert len(grid_from_args("lvpt=256,1024,4096", 2)) == 2

    def test_chunk_plan_covers_every_index_once(self):
        grid = sensitivity_grid()
        chunks = plan_chunks(grid, 16)
        flat = sorted(i for chunk in chunks for i in chunk)
        assert flat == list(range(len(grid)))


class TestRunSweep:
    def test_serial_vs_parallel_identical(self, tmp_path):
        grid = grid_from_args("lvpt=256,1024;bits=1,2;cvu=0,32", None)
        serial = run_sweep("compress", grid, scale="tiny", jobs=1,
                           cache_dir=str(tmp_path), chunk_size=3)
        parallel = run_sweep("compress", grid, scale="tiny", jobs=4,
                             cache_dir=str(tmp_path), chunk_size=3)
        for doc in (serial, parallel):
            assert validate_sweep(doc) == []
            for volatile in ("wall_s", "jobs"):
                doc.pop(volatile)
        assert serial == parallel

    def test_renderers_cover_all_families(self, tmp_path):
        grid = list(MIXED_GRID)
        document = run_sweep("compress", grid, scale="tiny", jobs=1,
                             cache_dir=str(tmp_path))
        summary = render_sweep(document)
        assert "11 configurations" in summary
        exhibits = render_exhibits(document)
        assert "Figure 6 family" in exhibits
        assert "Table 3 family" in exhibits
        assert "Table 4 family" in exhibits
        assert "gshare" in exhibits
        assert "history/oracle" in exhibits

    def test_validate_flags_damage(self):
        assert validate_sweep({"schema": "wrong"})
        assert validate_sweep({"schema": "repro.sweep/v1", "cells": []})


class TestSweepJournalUnit:
    def _manifest(self, grid):
        return build_sweep_manifest("compress", "ppc", "tiny", grid,
                                    chunk_size=4, jobs=1)

    def test_fingerprint_detects_tampering(self, tmp_path):
        grid = sensitivity_grid()[:8]
        journal = SweepJournal.create(tmp_path, "run", self._manifest(grid))
        manifest_path = journal.directory / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["bench"] = "grep"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(JournalError):
            SweepJournal.open(tmp_path, "run")

    def test_version_mismatch_refuses_resume(self, tmp_path):
        grid = sensitivity_grid()[:8]
        journal = SweepJournal.create(tmp_path, "run", self._manifest(grid))
        manifest_path = journal.directory / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = "0.0.0-ancient"
        manifest["fingerprint"] = SweepJournal.fingerprint(manifest)
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(JournalError):
            SweepJournal.open(tmp_path, "run")

    def test_damaged_checkpoint_is_not_loaded(self, tmp_path):
        grid = sensitivity_grid()[:8]
        journal = SweepJournal.create(tmp_path, "run", self._manifest(grid))
        spec_cells = [{"name": "x"}]
        from repro.harness.sweep import _SweepChunkSpec
        spec = _SweepChunkSpec(chunk_id=0, bench="compress", target="ppc",
                               scale="tiny", cache_dir=None, configs=())
        journal.chunk_finished(spec, spec_cells)
        assert journal.load_checkpoints() == {0: spec_cells}
        checkpoint = journal.directory / "checkpoints" / "chunk-0.json"
        checkpoint.write_text("[{\"name\": \"tampered\"}]")
        assert journal.load_checkpoints() == {}

    def test_missing_run_errors(self, tmp_path):
        with pytest.raises(JournalError):
            SweepJournal.open(tmp_path, "latest")
        with pytest.raises(JournalError):
            SweepJournal.open(tmp_path, "nope")


class TestSweepBenchDocuments:
    GOOD = {
        "schema": "repro.sweep-bench/v1", "bench": "compress",
        "scale": "tiny", "configs": 100, "baseline_s": 0.8,
        "sweep_s": 0.2, "speedup": 4.0,
    }

    def test_valid_document_passes(self):
        assert validate_sweep_bench(dict(self.GOOD)) == []

    def test_small_grid_fails_validation(self):
        assert validate_sweep_bench(dict(self.GOOD, configs=50))

    def test_nonpositive_timing_fails(self):
        assert validate_sweep_bench(dict(self.GOOD, sweep_s=0.0))

    def test_floor_gate(self):
        document = dict(self.GOOD, speedup=2.5)
        regressions = compare_sweep_bench(document, dict(self.GOOD))
        assert any("floor" in r for r in regressions)

    def test_relative_gate(self):
        document = dict(self.GOOD, speedup=3.5)
        baseline = dict(self.GOOD, speedup=9.0)
        regressions = compare_sweep_bench(document, baseline,
                                          threshold=2.0)
        assert any("regressed" in r for r in regressions)
        assert compare_sweep_bench(document, baseline,
                                   threshold=3.0) == []


class TestServeSweepOp:
    def test_normalize_fills_defaults(self):
        from repro.serve.scheduler import normalize_params
        params = normalize_params("sweep", {"bench": "compress"},
                                  default_scale="tiny")
        assert params == {"bench": "compress", "scale": "tiny",
                          "target": "ppc", "grid": None, "limit": None}

    @pytest.mark.parametrize("params", [
        {"bench": "nope"},
        {"bench": "compress", "grid": 7},
        {"bench": "compress", "grid": "wat=3"},
        {"bench": "compress", "limit": 0},
        {"bench": "compress", "limit": 513},
        {"bench": "compress", "limit": True},
    ])
    def test_normalize_rejects(self, params):
        from repro.serve.scheduler import normalize_params
        with pytest.raises(ProtocolError):
            normalize_params("sweep", params, default_scale="tiny")

    def test_compute_sweep_op(self):
        from repro.serve.scheduler import _compute_sim_op
        payload = _compute_sim_op("sweep", {
            "bench": "compress", "scale": "tiny", "target": "ppc",
            "grid": "lvpt=256,1024;bits=1,2", "limit": None,
        })
        result = payload["result"]
        assert result["configs"] == 4
        assert len(result["cells"]) == 4
        assert all(cell["outcome_digest"] for cell in result["cells"])


# ---------------------------------------------------------------------------
# CLI crash/resume drills (whole-process, like tests/harness/test_resume).
# ---------------------------------------------------------------------------
SWEEP_ARGS = ("sweep", "compress", "--scale", "tiny",
              "--grid", "lvpt=256,1024;bits=1,2;cvu=0,32",
              "--chunk-size", "4")


def _env(extra=None):
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("REPRO_")}
    env["PYTHONPATH"] = SRC
    env.update(extra or {})
    return env


def _cli(*argv, cwd, extra_env=None, timeout=600):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, env=_env(extra_env), cwd=cwd, timeout=timeout)


class TestCliCrashResume:
    @pytest.fixture(scope="class")
    def control(self, tmp_path_factory):
        """Uninterrupted journaled sweep stdout (the oracle)."""
        cwd = tmp_path_factory.mktemp("control")
        done = _cli(*SWEEP_ARGS, "--run-id", "control", cwd=cwd)
        assert done.returncode == 0, done.stderr.decode()
        return done.stdout

    def test_crash_then_resume_is_identical(self, tmp_path, control):
        crashed = _cli(*SWEEP_ARGS, "--run-id", "crash", cwd=tmp_path,
                       extra_env={"REPRO_JOURNAL_CRASH_AFTER": "1"})
        assert crashed.returncode == 23, crashed.stderr.decode()
        checkpoints = (tmp_path / ".repro" / "sweeps" / "crash"
                       / "checkpoints")
        assert len(list(checkpoints.glob("chunk-*.json"))) == 1
        resumed = _cli(*SWEEP_ARGS, "--resume", "crash", cwd=tmp_path)
        assert resumed.returncode == 0, resumed.stderr.decode()
        assert resumed.stdout == control
        assert b"chunk" in resumed.stderr  # some chunks really re-ran

    def test_crash_resume_parallel(self, tmp_path, control):
        crashed = _cli(*SWEEP_ARGS, "--run-id", "crash", "--jobs", "4",
                       cwd=tmp_path,
                       extra_env={"REPRO_JOURNAL_CRASH_AFTER": "1"})
        assert crashed.returncode == 23, crashed.stderr.decode()
        resumed = _cli(*SWEEP_ARGS, "--resume", "crash", "--jobs", "4",
                       cwd=tmp_path)
        assert resumed.returncode == 0, resumed.stderr.decode()
        assert resumed.stdout == control

    def test_resume_with_different_grid_refuses(self, tmp_path):
        crashed = _cli(*SWEEP_ARGS, "--run-id", "crash", cwd=tmp_path,
                       extra_env={"REPRO_JOURNAL_CRASH_AFTER": "1"})
        assert crashed.returncode == 23
        resumed = _cli("sweep", "compress", "--scale", "tiny",
                       "--grid", "lvpt=256", "--resume", "crash",
                       cwd=tmp_path)
        assert resumed.returncode == 2
        assert b"different grid" in resumed.stderr

    def test_no_journal_matches_journaled_output(self, tmp_path, control):
        bare = _cli(*SWEEP_ARGS, "--no-journal", cwd=tmp_path)
        assert bare.returncode == 0, bare.stderr.decode()
        assert bare.stdout == control
