"""Differential tests: parallel output must be bit-identical to serial.

The parallel engine's contract (docs/parallel.md) is that ``--jobs N``
changes wall-clock time and nothing else.  These tests run the same
tiny-scale three-benchmark session serially and through the engine and
assert equality at every stage -- raw trace columns, annotation
statistics, cycle counts, speedups, and the rendered exhibit text --
then repeat the comparison under REPRO_SABOTAGE and under injected
worker crashes to prove failure isolation and footnoting survive
parallel mode.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import BenchmarkFailure, WorkerCrashError
from repro.harness import (
    EXPERIMENTS,
    ParallelEngine,
    Session,
    WorkUnit,
    default_workplan,
    run_experiment,
    run_experiments,
)
from repro.harness.parallel import CRASH_ENV, jobs_from_env
from repro.lvp.config import CONSTANT, LIMIT, PERFECT, SIMPLE
from repro.trace.records import TRACE_COLUMNS
from repro.uarch.ppc620.config import PPC620, PPC620_PLUS

BENCHES = ("grep", "compress", "quick")
CONFIGS = (SIMPLE, CONSTANT, LIMIT, PERFECT)
PPC_MODEL_LVPS = (None, SIMPLE, CONSTANT, LIMIT, PERFECT)
ALPHA_MODEL_LVPS = (None, SIMPLE, LIMIT, PERFECT)


def _clean_env(monkeypatch) -> None:
    for var in ("REPRO_SABOTAGE", "REPRO_TRACE_CACHE", "REPRO_JOBS",
                CRASH_ENV):
        monkeypatch.delenv(var, raising=False)


@pytest.fixture(scope="module")
def sessions():
    """(serial, parallel) fully-evaluated sessions over BENCHES."""
    mp = pytest.MonkeyPatch()
    _clean_env(mp)
    try:
        serial = Session(scale="tiny", benchmarks=BENCHES)
        serial_text = {exp_id: run_experiment(exp_id, serial).text
                       for exp_id in EXPERIMENTS}
        parallel = Session(scale="tiny", benchmarks=BENCHES)
        report = parallel.warm(jobs=4)
        parallel_text = {exp_id: run_experiment(exp_id, parallel).text
                         for exp_id in EXPERIMENTS}
        return serial, serial_text, parallel, parallel_text, report
    finally:
        mp.undo()


class TestDifferential:
    def test_traces_bit_identical(self, sessions):
        serial, _, parallel, _, _ = sessions
        for name in BENCHES:
            for target in ("ppc", "alpha"):
                st = serial.trace(name, target)
                pt = parallel.trace(name, target)
                for column, _ in TRACE_COLUMNS:
                    assert np.array_equal(getattr(st, column),
                                          getattr(pt, column)), \
                        (name, target, column)

    def test_annotation_stats_identical(self, sessions):
        serial, _, parallel, _, _ = sessions
        for name in BENCHES:
            for target in ("ppc", "alpha"):
                for config in CONFIGS:
                    ss = serial.annotated(name, target, config).stats
                    ps = parallel.annotated(name, target, config).stats
                    assert ss == ps, (name, target, config.name)

    def test_cycle_counts_identical(self, sessions):
        serial, _, parallel, _, _ = sessions
        for name in BENCHES:
            for machine in (PPC620, PPC620_PLUS):
                for lvp in PPC_MODEL_LVPS:
                    assert serial.ppc_result(name, machine, lvp).cycles == \
                        parallel.ppc_result(name, machine, lvp).cycles, \
                        (name, machine.name, lvp and lvp.name)
            for lvp in ALPHA_MODEL_LVPS:
                assert serial.alpha_result(name, lvp).cycles == \
                    parallel.alpha_result(name, lvp).cycles, \
                    (name, lvp and lvp.name)

    def test_speedups_identical(self, sessions):
        serial, _, parallel, _, _ = sessions
        for name in BENCHES:
            for machine in (PPC620, PPC620_PLUS):
                for lvp in CONFIGS:
                    assert serial.ppc_speedup(name, machine, lvp) == \
                        parallel.ppc_speedup(name, machine, lvp)
            for lvp in (SIMPLE, LIMIT, PERFECT):
                assert serial.alpha_speedup(name, lvp) == \
                    parallel.alpha_speedup(name, lvp)

    def test_every_exhibit_text_identical(self, sessions):
        _, serial_text, _, parallel_text, _ = sessions
        for exp_id in EXPERIMENTS:
            assert serial_text[exp_id] == parallel_text[exp_id], exp_id

    def test_no_failures_on_healthy_run(self, sessions):
        serial, _, parallel, _, _ = sessions
        assert serial.failures == []
        assert parallel.failures == []

    def test_timing_report_covers_every_unit(self, sessions):
        *_, report = sessions
        assert report is not None
        assert report.jobs == 4
        assert len(report.timings) == len(default_workplan(BENCHES))
        assert report.crashed == ()
        assert all(t.ok for t in report.timings)
        assert report.busy_seconds > 0
        rendered = report.render()
        for name in BENCHES:
            assert name in rendered
        assert "units in" in rendered


class TestSabotagedDifferential:
    @pytest.fixture(scope="class", params=["compress", "compress:model"])
    def sabotaged(self, request):
        """Serial and parallel sessions run under one sabotage knob."""
        mp = pytest.MonkeyPatch()
        _clean_env(mp)
        mp.setenv("REPRO_SABOTAGE", request.param)
        try:
            serial = Session(scale="tiny", benchmarks=BENCHES)
            serial_text = {exp_id: run_experiment(exp_id, serial).text
                           for exp_id in EXPERIMENTS}
            parallel = Session(scale="tiny", benchmarks=BENCHES)
            parallel.warm(jobs=4)
            parallel_text = {exp_id: run_experiment(exp_id, parallel).text
                             for exp_id in EXPERIMENTS}
            return serial, serial_text, parallel, parallel_text
        finally:
            mp.undo()

    def test_exhibit_text_identical_under_sabotage(self, sabotaged):
        _, serial_text, _, parallel_text = sabotaged
        for exp_id in EXPERIMENTS:
            assert serial_text[exp_id] == parallel_text[exp_id], exp_id

    def test_victim_footnoted_and_survivors_intact(self, sabotaged):
        _, _, parallel, parallel_text = sabotaged
        assert parallel.failures
        assert {f.benchmark for f in parallel.failures} == {"compress"}
        assert "Footnotes:" in parallel_text["fig6"]
        assert "compress" in parallel_text["fig6"]
        # Survivors still produced full results.
        for name in ("grep", "quick"):
            assert parallel.trace(name, "ppc").num_instructions > 0

    def test_failures_merged_as_benchmark_failures(self, sabotaged):
        _, _, parallel, _ = sabotaged
        for failure in parallel.failures:
            assert isinstance(failure, BenchmarkFailure)
            # The cause survived the pickle trip with its type intact.
            assert type(failure.cause).__name__ == "FaultError"


class TestWorkerCrash:
    @pytest.fixture(scope="class")
    def crashed(self):
        """A parallel session whose 'compress' worker dies hard."""
        mp = pytest.MonkeyPatch()
        _clean_env(mp)
        mp.setenv(CRASH_ENV, "compress")
        try:
            session = Session(scale="tiny", benchmarks=BENCHES)
            report = session.warm(jobs=2)
            return session, report
        finally:
            mp.undo()

    def test_crash_recorded_never_fatal(self, crashed):
        session, report = crashed
        assert report.crashed == ("compress",)
        victims = {f.benchmark for f in session.failures}
        assert victims == {"compress"}
        for failure in session.failures:
            assert failure.stage == "worker"
            assert isinstance(failure.cause, WorkerCrashError)

    def test_innocent_benchmarks_survive_pool_breakage(self, crashed):
        session, _ = crashed
        for name in ("grep", "quick"):
            assert session.trace(name, "ppc").num_instructions > 0
            assert session.ppc_result(name, PPC620, SIMPLE).cycles > 0

    def test_crashed_benchmark_footnoted_in_exhibits(self, crashed):
        session, report = crashed
        result = run_experiment("fig6", session)
        assert "Footnotes:" in result.text
        assert "worker stage failed" in result.text
        assert "compress" in report.render()

    def test_serial_engine_ignores_crash_knob_consistently(self):
        # jobs=1 runs shards in-process: the crash knob must not be
        # honoured there (it would kill the parent), so the in-process
        # path only ever simulates crashes via real subprocess pools.
        mp = pytest.MonkeyPatch()
        _clean_env(mp)
        try:
            session = Session(scale="tiny", benchmarks=("grep",))
            units = (WorkUnit("grep", "trace", "ppc"),)
            report = ParallelEngine(session, jobs=1, units=units).run()
            assert len(report.timings) == 1
            assert session.trace("grep", "ppc").num_instructions > 0
        finally:
            mp.undo()


class TestCLIByteEquivalence:
    """Acceptance: `experiment all --jobs 4` == `--jobs 1`, byte for byte."""

    @staticmethod
    def _run(jobs: int, extra_env=None):
        env = {k: v for k, v in os.environ.items()
               if not k.startswith("REPRO_")}
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        env.update(extra_env or {})
        return subprocess.run(
            [sys.executable, "-m", "repro", "experiment", "all",
             "--scale", "tiny", "--benchmarks", ",".join(BENCHES),
             "--jobs", str(jobs)],
            capture_output=True, env=env, timeout=600)

    def test_stdout_byte_identical(self):
        serial = self._run(1)
        parallel = self._run(4)
        assert serial.returncode == 0, serial.stderr.decode()
        assert parallel.returncode == 0, parallel.stderr.decode()
        assert serial.stdout == parallel.stdout
        # The timing summary goes to stderr, and only in parallel mode.
        assert b"Parallel timing summary" not in serial.stderr
        assert b"Parallel timing summary" in parallel.stderr

    def test_sabotaged_stdout_byte_identical_and_nonzero(self):
        env = {"REPRO_SABOTAGE": "compress"}
        serial = self._run(1, env)
        parallel = self._run(4, env)
        assert serial.returncode == 1
        assert parallel.returncode == 1
        assert serial.stdout == parallel.stdout
        assert b"Footnotes:" in parallel.stdout


class TestRunExperiments:
    def test_helper_warms_and_returns_all(self, monkeypatch):
        _clean_env(monkeypatch)
        session = Session(scale="tiny", benchmarks=("grep",))
        results = run_experiments(("tab1", "tab2"), session, jobs=2)
        assert [r.exp_id for r in results] == ["tab1", "tab2"]
        assert session.last_warm_report is not None
        assert session.last_warm_report.jobs == 2

    def test_helper_serial_leaves_session_lazy(self, monkeypatch):
        _clean_env(monkeypatch)
        session = Session(scale="tiny", benchmarks=("grep",))
        results = run_experiments(("tab2",), session, jobs=1)
        assert results[0].exp_id == "tab2"
        assert session.last_warm_report is None
        assert session._traces == {}  # nothing precomputed

    def test_jobs_from_env(self, monkeypatch):
        _clean_env(monkeypatch)
        assert jobs_from_env() == 1
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert jobs_from_env() == 6
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert jobs_from_env() == 1
        monkeypatch.setenv("REPRO_JOBS", "banana")
        assert jobs_from_env() == 1
