"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in ("AssemblyError", "LinkError", "ExecutionError",
                     "ExecutionLimitExceeded", "ConfigError", "TraceError",
                     "FaultError", "BenchmarkFailure"):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_whole_hierarchy_catchable_as_repro_error(self):
        """Every concrete error -- including the new resilience ones --
        is caught by a single ``except ReproError``."""
        cause = ValueError("boom")
        instances = [
            errors.AssemblyError("x"), errors.LinkError("x"),
            errors.ExecutionError("x"), errors.ExecutionLimitExceeded("x"),
            errors.ConfigError("x"), errors.TraceError("x"),
            errors.FaultError("x"),
            errors.BenchmarkFailure("grep", "trace", "ppc", cause),
        ]
        for instance in instances:
            try:
                raise instance
            except errors.ReproError:
                pass

    def test_benchmark_failure_carries_context(self):
        cause = ValueError("boom")
        failure = errors.BenchmarkFailure("grep", "annotate", "alpha", cause)
        assert failure.benchmark == "grep"
        assert failure.stage == "annotate"
        assert failure.target == "alpha"
        assert failure.cause is cause
        message = str(failure)
        assert "grep" in message and "annotate" in message
        assert "ValueError" in message and "boom" in message

    def test_limit_is_execution_error(self):
        assert issubclass(errors.ExecutionLimitExceeded,
                          errors.ExecutionError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.AssemblyError("x")

    def test_library_raises_only_repro_errors(self):
        """Representative API misuses all surface as ReproError."""
        from repro.isa import assemble
        from repro.lvp import LVPConfig, config_by_name
        from repro.workloads import get_benchmark
        with pytest.raises(errors.ReproError):
            assemble("main:\n bogus r1\n")
        with pytest.raises(errors.ReproError):
            config_by_name("nonesuch")
        with pytest.raises(errors.ReproError):
            LVPConfig(name="bad", lvpt_entries=3)
        with pytest.raises(errors.ReproError):
            get_benchmark("nonesuch")
