"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in ("AssemblyError", "LinkError", "ExecutionError",
                     "ExecutionLimitExceeded", "ConfigError", "TraceError"):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_limit_is_execution_error(self):
        assert issubclass(errors.ExecutionLimitExceeded,
                          errors.ExecutionError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.AssemblyError("x")

    def test_library_raises_only_repro_errors(self):
        """Representative API misuses all surface as ReproError."""
        from repro.isa import assemble
        from repro.lvp import LVPConfig, config_by_name
        from repro.workloads import get_benchmark
        with pytest.raises(errors.ReproError):
            assemble("main:\n bogus r1\n")
        with pytest.raises(errors.ReproError):
            config_by_name("nonesuch")
        with pytest.raises(errors.ReproError):
            LVPConfig(name="bad", lvpt_entries=3)
        with pytest.raises(errors.ReproError):
            get_benchmark("nonesuch")
