"""Unit tests for Program / DataSegment / linking."""

import pytest

from repro.errors import AssemblyError, LinkError
from repro.isa import (
    DATA_BASE,
    DataSegment,
    Instruction,
    Opcode,
    Program,
    TEXT_BASE,
    ValueKind,
    bits_to_float,
    float_to_bits,
)


class TestFloatBits:
    def test_roundtrip(self):
        for value in (0.0, 1.0, -2.5, 3.141592653589793, 1e300, -1e-300):
            assert bits_to_float(float_to_bits(value)) == value

    def test_known_pattern(self):
        assert float_to_bits(1.0) == 0x3FF0000000000000

    def test_negative_zero(self):
        assert float_to_bits(-0.0) == 1 << 63


class TestDataSegment:
    def test_sequential_words(self):
        data = DataSegment()
        a = data.word(1)
        b = data.word(2)
        assert b == a + 8

    def test_label_addresses(self):
        data = DataSegment()
        data.word(0)
        addr = data.label("x")
        assert data.labels["x"] == addr

    def test_duplicate_label_rejected(self):
        data = DataSegment()
        data.label("x")
        with pytest.raises(AssemblyError):
            data.label("x")

    def test_double_emits_fp_kind(self):
        data = DataSegment()
        addr = data.double(2.5)
        words, kinds = data.initial_memory({})
        assert bits_to_float(words[addr]) == 2.5
        assert kinds[addr] == int(ValueKind.FP_DATA)

    def test_string_packing(self):
        data = DataSegment()
        addr = data.string("hello")
        words, _ = data.initial_memory({})
        raw = words[addr].to_bytes(8, "little")
        assert raw[:6] == b"hello\x00"

    def test_bytes_span_words(self):
        data = DataSegment()
        payload = bytes(range(20))
        addr = data.bytes_(payload)
        words, _ = data.initial_memory({})
        got = b"".join(
            words[addr + 8 * i].to_bytes(8, "little") for i in range(3)
        )
        assert got[:20] == payload

    def test_space_reserves_zeroed_words(self):
        data = DataSegment()
        addr = data.space(4)
        words, _ = data.initial_memory({})
        assert all(words[addr + 8 * i] == 0 for i in range(4))

    def test_pointer_relocation(self):
        data = DataSegment()
        slot = data.pointer("target")
        words, kinds = data.initial_memory({"target": 0x1234})
        assert words[slot] == 0x1234
        assert kinds[slot] == int(ValueKind.DATA_ADDR)

    def test_pointer_undefined_symbol(self):
        data = DataSegment()
        data.pointer("missing")
        with pytest.raises(LinkError):
            data.initial_memory({})

    def test_align(self):
        data = DataSegment()
        data.bytes_(b"abc")
        data.align()
        assert data.end % 8 == 0

    def test_starts_at_data_base(self):
        data = DataSegment()
        assert data.word(7) == DATA_BASE


class TestProgramLinking:
    def _simple_program(self):
        instrs = [
            Instruction(Opcode.LI, dst=3, imm=1),
            Instruction(Opcode.J, target="end"),
            Instruction(Opcode.LI, dst=3, imm=2),
            Instruction(Opcode.HALT),
        ]
        labels = {"main": 0, "end": 3}
        return Program(instrs, DataSegment(), labels)

    def test_link_resolves_targets(self):
        program = self._simple_program().link()
        assert program.instructions[1].target == TEXT_BASE + 3 * 4

    def test_link_idempotent(self):
        program = self._simple_program()
        program.link()
        program.link()
        assert program.entry_pc == TEXT_BASE

    def test_pc_index_roundtrip(self):
        for index in (0, 1, 100):
            assert Program.index_of(Program.pc_of(index)) == index

    def test_undefined_target_raises(self):
        instrs = [Instruction(Opcode.J, target="nowhere")]
        program = Program(instrs, DataSegment(), {"main": 0})
        with pytest.raises(LinkError):
            program.link()

    def test_undefined_entry_raises(self):
        program = Program([Instruction(Opcode.HALT)], DataSegment(), {})
        with pytest.raises(LinkError):
            program.link()

    def test_symbol_clash_raises(self):
        data = DataSegment()
        data.label("main")
        program = Program([Instruction(Opcode.HALT)], data, {"main": 0})
        with pytest.raises(LinkError):
            program.link()

    def test_unlinked_access_raises(self):
        program = self._simple_program()
        with pytest.raises(LinkError):
            _ = program.entry_pc

    def test_la_symbol_resolution(self):
        data = DataSegment()
        data.label("blob")
        data.word(9)
        instrs = [
            Instruction(Opcode.LA, dst=4, symbol="blob"),
            Instruction(Opcode.HALT),
        ]
        program = Program(instrs, data, {"main": 0}).link()
        assert program.instructions[0].imm == data.labels["blob"]

    def test_len_and_repr(self):
        program = self._simple_program().link()
        assert len(program) == 4
        assert "4 instructions" in repr(program)
