"""Unit tests for the text assembler."""

import pytest

from repro.errors import AssemblyError
from repro.isa import Opcode, assemble
from repro.sim import run_program


def run_asm(source: str):
    return run_program(assemble(source))


class TestDirectives:
    def test_word_data(self):
        result = run_asm("""
        .data
        x: .word 42
        .text
        main:
            la r4, x
            ld r3, 0(r4)
            halt
        """)
        assert result.registers[3] == 42

    def test_multiple_words(self):
        result = run_asm("""
        .data
        xs: .word 1, 2, 3
        .text
        main:
            la r4, xs
            ld r3, 16(r4)
            halt
        """)
        assert result.registers[3] == 3

    def test_double_data(self):
        result = run_asm("""
        .data
        pi: .double 2.0
        .text
        main:
            la r4, pi
            fld f1, 0(r4)
            fadd f2, f1, f1
            ftrunc r3, f2
            halt
        """)
        assert result.registers[3] == 4

    def test_string_data(self):
        result = run_asm("""
        .data
        s: .string "AB"
        .text
        main:
            la r4, s
            lbu r3, 1(r4)
            halt
        """)
        assert result.registers[3] == ord("B")

    def test_space_directive(self):
        result = run_asm("""
        .data
        buf: .space 2
        .text
        main:
            la r4, buf
            li r5, 9
            st r5, 8(r4)
            ld r3, 8(r4)
            halt
        """)
        assert result.registers[3] == 9

    def test_ptr_directive(self):
        result = run_asm("""
        .data
        p: .ptr v
        v: .word 31
        .text
        main:
            la r4, p
            ld r5, 0(r4)
            ld r3, 0(r5)
            halt
        """)
        assert result.registers[3] == 31

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError):
            assemble(".data\n.bogus 1\n.text\nmain: halt")

    def test_data_directive_in_text_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("main:\n.word 1\nhalt")

    def test_instruction_in_data_rejected(self):
        with pytest.raises(AssemblyError):
            assemble(".data\nadd r3, r4, r5\n.text\nmain: halt")


class TestInstructionForms:
    def test_three_register_alu(self):
        result = run_asm("main:\n li r4, 6\n li r5, 7\n mul r3, r4, r5\n halt")
        assert result.registers[3] == 42

    def test_immediate_alu(self):
        result = run_asm("main:\n li r4, 5\n addi r3, r4, -3\n halt")
        assert result.registers[3] == 2

    def test_memory_offset_syntax(self):
        program = assemble("main:\n ld r3, -8(r4)\n halt")
        instr = program.instructions[0]
        assert instr.opcode is Opcode.LD
        assert instr.imm == -8
        assert instr.src1 == 4

    def test_store_operand_order(self):
        program = assemble("main:\n st r7, 16(r2)\n halt")
        instr = program.instructions[0]
        assert instr.src2 == 7  # value
        assert instr.src1 == 2  # base

    def test_branch(self):
        result = run_asm("""
        main:
            li r4, 1
            beq r4, r0, wrong
            li r3, 5
            halt
        wrong:
            li r3, 6
            halt
        """)
        assert result.registers[3] == 5

    def test_jal_and_ret(self):
        result = run_asm("""
        main:
            jal f
            halt
        f:
            li r3, 9
            ret
        """)
        assert result.registers[3] == 9

    def test_mtctr_bctr(self):
        result = run_asm("""
        main:
            la r4, dest
            mtctr r4
            bctr
            li r3, 1
            halt
        dest:
            li r3, 2
            halt
        """)
        assert result.registers[3] == 2

    def test_single_source_forms(self):
        result = run_asm("main:\n li r4, 3\n mov r3, r4\n halt")
        assert result.registers[3] == 3

    def test_comments_stripped(self):
        result = run_asm("main: ; comment\n li r3, 4 # other\n halt")
        assert result.registers[3] == 4

    def test_hex_immediates(self):
        result = run_asm("main:\n li r3, 0x10\n halt")
        assert result.registers[3] == 16

    def test_label_on_same_line(self):
        result = run_asm("main: li r3, 8\n halt")
        assert result.registers[3] == 8


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("main:\n frobnicate r1, r2\n")
        assert "line 2" in str(excinfo.value)

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("main:\n add r3, r4\n halt")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError):
            assemble("main:\n ld r3, r4\n halt")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("main: halt\nmain: halt")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("main:\n add r3, r99, r4\n halt")
