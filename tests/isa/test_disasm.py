"""Tests for the disassembler (including assemble round-trips)."""

import pytest

from repro.isa import Instruction, NO_REG, Opcode, assemble
from repro.isa.disasm import disassemble, disassemble_instruction
from repro.sim import run_program


class TestInstructionForms:
    @pytest.mark.parametrize("instr,expected", [
        (Instruction(Opcode.ADD, 3, 4, 5), "add r3, r4, r5"),
        (Instruction(Opcode.ADDI, 3, 4, imm=-2), "addi r3, r4, -2"),
        (Instruction(Opcode.LI, 3, imm=42), "li r3, 42"),
        (Instruction(Opcode.LD, 3, 4, imm=8), "ld r3, 8(r4)"),
        (Instruction(Opcode.ST, NO_REG, 4, 7, imm=-8), "st r7, -8(r4)"),
        (Instruction(Opcode.FLD, 33, 4, imm=0), "fld f1, 0(r4)"),
        (Instruction(Opcode.MOV, 3, 4), "mov r3, r4"),
        (Instruction(Opcode.RET, src1=64), "ret"),
        (Instruction(Opcode.HALT), "halt"),
        (Instruction(Opcode.JR, src1=5), "jr r5"),
        (Instruction(Opcode.MTLR, 64, 5), "mtlr r5"),
        (Instruction(Opcode.MFLR, 5, 64), "mflr r5"),
        (Instruction(Opcode.FADD, 33, 34, 35), "fadd f1, f2, f3"),
    ])
    def test_rendering(self, instr, expected):
        assert disassemble_instruction(instr) == expected

    def test_branch_with_symbolic_target(self):
        instr = Instruction(Opcode.BEQ, src1=3, src2=4, target="loop")
        assert disassemble_instruction(instr) == "beq r3, r4, loop"

    def test_branch_with_resolved_target_and_labels(self):
        instr = Instruction(Opcode.J, target=0x10010)
        assert disassemble_instruction(instr, {0x10010: "done"}) == "j done"
        assert disassemble_instruction(instr) == "j 0x10010"

    def test_la_with_symbol(self):
        instr = Instruction(Opcode.LA, 3, symbol="table")
        assert disassemble_instruction(instr) == "la r3, table"


class TestProgramRoundTrip:
    SOURCE = """
    main:
        li r4, 10
        li r3, 0
    loop:
        add r3, r3, r4
        addi r4, r4, -1
        bne r4, r0, loop
        jal helper
        halt
    helper:
        addi r3, r3, 100
        ret
    """

    def test_disassemble_emits_labels(self):
        program = assemble(self.SOURCE)
        text = disassemble(program)
        assert "main:" in text
        assert "loop:" in text
        assert "bne r4, r0, loop" in text

    def test_round_trip_execution(self):
        """Disassembled text reassembles to an equivalent program."""
        original = assemble(self.SOURCE)
        rebuilt = assemble(disassemble(original))
        result_a = run_program(original)
        result_b = run_program(rebuilt)
        assert result_a.registers[3] == result_b.registers[3] == 155
        assert result_a.instruction_count == result_b.instruction_count

    def test_windowed_disassembly(self):
        program = assemble(self.SOURCE)
        text = disassemble(program, start=0, count=2)
        assert len([line for line in text.splitlines()
                    if not line.endswith(":")]) == 2

    def test_every_workload_disassembles(self):
        """Smoke: all suite programs render without error."""
        from repro.workloads import BENCHMARKS
        for bench in BENCHMARKS[:4]:
            program = bench.build_program("ppc", "tiny")
            text = disassemble(program, count=200)
            assert text


class TestRoundTripAllOpcodes:
    def test_alu_round_trip(self):
        source = "\n".join(["main:"] + [
            f"    {line}" for line in (
                "li r4, 7", "li r5, 3",
                "add r3, r4, r5", "sub r3, r3, r5", "mul r3, r3, r4",
                "div r3, r3, r5", "rem r6, r3, r5",
                "and r7, r4, r5", "or r7, r7, r4", "xor r7, r7, r5",
                "slli r8, r4, 2", "srai r8, r8, 1",
                "slt r9, r5, r4", "seq r10, r4, r4",
                "halt",
            )
        ])
        original = assemble(source)
        rebuilt = assemble(disassemble(original))
        result_a = run_program(original)
        result_b = run_program(rebuilt)
        for reg in range(3, 11):
            assert result_a.registers[reg] == result_b.registers[reg]
