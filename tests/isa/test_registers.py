"""Unit tests for the register model."""

import pytest

from repro.isa import registers as regs


class TestRegisterClassification:
    def test_gpr_range(self):
        assert regs.is_gpr(0)
        assert regs.is_gpr(31)
        assert not regs.is_gpr(32)
        assert not regs.is_gpr(-1)

    def test_fpr_range(self):
        assert regs.is_fpr(regs.FPR_BASE)
        assert regs.is_fpr(regs.FPR_BASE + 31)
        assert not regs.is_fpr(31)
        assert not regs.is_fpr(regs.LR)

    def test_special_registers(self):
        assert regs.is_special(regs.LR)
        assert regs.is_special(regs.CTR)
        assert not regs.is_special(0)
        assert not regs.is_special(regs.FPR_BASE)

    def test_register_spaces_disjoint(self):
        for reg in range(regs.NUM_REGS):
            kinds = [regs.is_gpr(reg), regs.is_fpr(reg),
                     regs.is_special(reg)]
            assert sum(kinds) == 1

    def test_num_regs_covers_all(self):
        assert regs.NUM_REGS == 66  # 32 GPR + 32 FPR + LR + CTR


class TestRegisterNames:
    def test_gpr_names(self):
        assert regs.reg_name(0) == "r0"
        assert regs.reg_name(31) == "r31"

    def test_fpr_names(self):
        assert regs.reg_name(regs.FPR_BASE) == "f0"
        assert regs.reg_name(regs.FPR_BASE + 5) == "f5"

    def test_special_names(self):
        assert regs.reg_name(regs.LR) == "lr"
        assert regs.reg_name(regs.CTR) == "ctr"

    def test_no_reg_name(self):
        assert regs.reg_name(regs.NO_REG) == "-"

    def test_invalid_id_raises(self):
        with pytest.raises(ValueError):
            regs.reg_name(regs.NUM_REGS)

    def test_roundtrip_all_registers(self):
        for reg in range(regs.NUM_REGS):
            assert regs.parse_reg(regs.reg_name(reg)) == reg

    def test_parse_case_insensitive(self):
        assert regs.parse_reg("R5") == 5
        assert regs.parse_reg("LR") == regs.LR

    @pytest.mark.parametrize("bad", ["r32", "f32", "x1", "", "r-1", "rr1"])
    def test_parse_invalid(self, bad):
        with pytest.raises(ValueError):
            regs.parse_reg(bad)


class TestConventions:
    def test_zero_is_r0(self):
        assert regs.ZERO == 0

    def test_arg_regs_are_gprs(self):
        assert all(regs.is_gpr(r) for r in regs.ARG_REGS)

    def test_saved_regs_are_gprs(self):
        assert all(regs.is_gpr(r) for r in regs.SAVED_REGS)

    def test_fp_conventions_are_fprs(self):
        assert all(regs.is_fpr(r) for r in regs.FARG_REGS)
        assert all(regs.is_fpr(r) for r in regs.FSAVED_REGS)

    def test_conventions_do_not_overlap_reserved(self):
        reserved = {regs.ZERO, regs.SP, regs.TOC}
        assert not (set(regs.ARG_REGS) & reserved)
        assert not (set(regs.TEMP_REGS) & reserved)
        assert not (set(regs.SAVED_REGS) & reserved)
