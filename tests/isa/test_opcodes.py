"""Unit tests for the opcode taxonomy."""

from repro.isa.opcodes import (
    CONDITIONAL_BRANCHES,
    FP_LOADS,
    INDIRECT_BRANCHES,
    OP_CLASS,
    Opcode,
    OpClass,
    is_load,
    is_store,
    op_class,
)


class TestOpClassTable:
    def test_every_opcode_classified(self):
        for opcode in Opcode:
            assert opcode in OP_CLASS

    def test_loads(self):
        for opcode in (Opcode.LD, Opcode.LW, Opcode.LBU, Opcode.FLD):
            assert is_load(opcode)
            assert op_class(opcode) is OpClass.LOAD

    def test_stores(self):
        for opcode in (Opcode.ST, Opcode.STW, Opcode.SB, Opcode.FST):
            assert is_store(opcode)
            assert op_class(opcode) is OpClass.STORE

    def test_loads_and_stores_disjoint(self):
        for opcode in Opcode:
            assert not (is_load(opcode) and is_store(opcode))

    def test_complex_integer_members(self):
        for opcode in (Opcode.MUL, Opcode.DIV, Opcode.REM, Opcode.MFLR,
                       Opcode.MTLR, Opcode.MFCTR, Opcode.MTCTR):
            assert op_class(opcode) is OpClass.COMPLEX_INT

    def test_fp_complex_is_divide_and_sqrt(self):
        complex_fp = [o for o in Opcode
                      if op_class(o) is OpClass.FP_COMPLEX]
        assert set(complex_fp) == {Opcode.FDIV, Opcode.FSQRT}

    def test_branch_class_members(self):
        for opcode in (Opcode.BEQ, Opcode.J, Opcode.JAL, Opcode.RET,
                       Opcode.BCTR, Opcode.HALT):
            assert op_class(opcode) is OpClass.BRANCH

    def test_simple_int_includes_li_la_mov(self):
        for opcode in (Opcode.LI, Opcode.LA, Opcode.MOV, Opcode.NOP):
            assert op_class(opcode) is OpClass.SIMPLE_INT


class TestBranchSets:
    def test_conditional_branches_are_branches(self):
        for opcode in CONDITIONAL_BRANCHES:
            assert op_class(opcode) is OpClass.BRANCH

    def test_indirect_branches_are_branches(self):
        for opcode in INDIRECT_BRANCHES:
            assert op_class(opcode) is OpClass.BRANCH

    def test_conditional_and_indirect_disjoint(self):
        assert not (CONDITIONAL_BRANCHES & INDIRECT_BRANCHES)

    def test_fp_loads_subset_of_loads(self):
        for opcode in FP_LOADS:
            assert is_load(opcode)
