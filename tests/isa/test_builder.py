"""Unit tests for the CodeBuilder codegen DSL."""

import pytest

from repro.errors import AssemblyError
from repro.isa import CodeBuilder, Opcode, OpClass, TOC, ValueKind
from repro.sim import run_program


def _run(builder):
    return run_program(builder.build())


class TestBasics:
    def test_unknown_target_rejected(self):
        with pytest.raises(AssemblyError):
            CodeBuilder("x", target="mips")

    def test_duplicate_label_rejected(self):
        b = CodeBuilder("x")
        b.label("here")
        with pytest.raises(AssemblyError):
            b.label("here")

    def test_fresh_labels_unique(self):
        b = CodeBuilder("x")
        names = {b.fresh_label() for _ in range(100)}
        assert len(names) == 100

    def test_emit_counts(self):
        b = CodeBuilder("x")
        b.label("main")
        b.li(3, 1)
        b.halt()
        assert len(b.build().instructions) == 2


class TestConstantMaterialization:
    def test_small_constant_is_immediate_ppc(self):
        b = CodeBuilder("x", target="ppc")
        b.label("main")
        b.load_const(3, 100)
        b.halt()
        assert b.instructions[0].opcode is Opcode.LI

    def test_large_constant_is_load_ppc(self):
        b = CodeBuilder("x", target="ppc")
        b.label("main")
        b.load_const(3, 1 << 20)  # beyond 16-bit immediates
        b.halt()
        assert b.instructions[0].opcode is Opcode.LD
        assert b.instructions[0].src1 == TOC

    def test_large_constant_is_immediate_alpha(self):
        b = CodeBuilder("x", target="alpha")
        b.label("main")
        b.load_const(3, 1 << 20)  # within 32-bit immediates
        b.halt()
        assert b.instructions[0].opcode is Opcode.LI

    def test_huge_constant_is_load_alpha(self):
        b = CodeBuilder("x", target="alpha")
        b.label("main")
        b.load_const(3, 1 << 40)
        b.halt()
        assert b.instructions[0].opcode is Opcode.LD

    def test_pool_deduplicates(self):
        b = CodeBuilder("x", target="ppc")
        b.label("main")
        start = b.data.end
        b.load_const(3, 1 << 20)
        b.load_const(4, 1 << 20)
        b.halt()
        assert b.data.end == start + 8  # one pool slot

    def test_constant_value_correct(self):
        b = CodeBuilder("x", target="ppc")
        b.label("main")
        b.load_const(3, 123456789)
        b.halt()
        assert _run(b).registers[3] == 123456789

    def test_fp_constant_always_pool(self):
        for target in ("ppc", "alpha"):
            b = CodeBuilder("x", target=target)
            b.label("main")
            b.load_fconst(32, 2.5)
            b.halt()
            assert b.instructions[0].opcode is Opcode.FLD

    def test_fconst_requires_fpr(self):
        b = CodeBuilder("x")
        with pytest.raises(AssemblyError):
            b.load_fconst(3, 1.0)


class TestAddressMaterialization:
    def test_ppc_uses_toc_load(self):
        b = CodeBuilder("x", target="ppc")
        b.data.label("g")
        b.data.word(5)
        b.label("main")
        b.load_addr(3, "g")
        b.halt()
        assert b.instructions[0].opcode is Opcode.LD

    def test_alpha_uses_inline_la(self):
        b = CodeBuilder("x", target="alpha")
        b.data.label("g")
        b.data.word(5)
        b.label("main")
        b.load_addr(3, "g")
        b.halt()
        assert b.instructions[0].opcode is Opcode.LA

    def test_both_targets_same_address(self):
        values = {}
        for target in ("ppc", "alpha"):
            b = CodeBuilder("x", target=target)
            b.data.label("g")
            b.data.word(5)
            b.label("main")
            b.load_addr(3, "g")
            b.ld(4, 3, 0)
            b.halt()
            values[target] = _run(b).registers[4]
        assert values["ppc"] == values["alpha"] == 5


class TestFunctions:
    def test_leaf_has_no_lr_save(self):
        b = CodeBuilder("x")
        with b.function("leafy", leaf=True):
            b.li(3, 1)
        opcodes = [i.opcode for i in b.instructions]
        assert Opcode.MFLR not in opcodes
        assert Opcode.MTLR not in opcodes

    def test_non_leaf_saves_and_restores_lr(self):
        b = CodeBuilder("x")
        with b.function("caller"):
            b.li(3, 1)
        opcodes = [i.opcode for i in b.instructions]
        assert Opcode.MFLR in opcodes
        assert Opcode.MTLR in opcodes

    def test_nested_function_rejected(self):
        b = CodeBuilder("x")
        with pytest.raises(AssemblyError):
            with b.function("outer"):
                with b.function("inner"):
                    pass

    def test_unclosed_function_rejected(self):
        b = CodeBuilder("x")
        ctx = b.function("f")
        ctx.__enter__()
        with pytest.raises(AssemblyError):
            b.build()

    def test_call_and_return_value(self):
        b = CodeBuilder("x")
        with b.function("double", leaf=True):
            b.add(3, 3, 3)
        with b.function("main"):
            b.li(3, 21)
            b.call("double")
        result = _run(b)
        assert result.registers[3] == 42

    def test_callee_saved_registers_preserved(self):
        b = CodeBuilder("x")
        with b.function("clobber", save=(24,)):
            b.li(24, 999)
        with b.function("main", save=(24,)):
            b.li(24, 7)
            b.call("clobber")
            b.mov(3, 24)
        assert _run(b).registers[3] == 7

    def test_locals_roundtrip(self):
        b = CodeBuilder("x")
        with b.function("main", frame_words=2):
            b.li(4, 11)
            b.store_local(4, 0)
            b.li(4, 22)
            b.store_local(4, 1)
            b.load_local(3, 0)
            b.load_local(5, 1)
            b.add(3, 3, 5)
        assert _run(b).registers[3] == 33

    def test_local_slot_out_of_range(self):
        b = CodeBuilder("x")
        with pytest.raises(AssemblyError):
            with b.function("main", frame_words=1):
                b.store_local(3, 1)

    def test_early_return(self):
        b = CodeBuilder("x")
        with b.function("main"):
            b.li(3, 1)
            b.return_from_function()
            b.li(3, 2)  # skipped
        assert _run(b).registers[3] == 1

    def test_recursion_depth(self):
        # sum(1..n) via recursion exercises the stack discipline
        b = CodeBuilder("x")
        with b.function("sumto", save=(24,)):
            b.mov(24, 3)
            b.bnez(3, "__rec")
            b.li(3, 0)
            b.return_from_function()
            b.label("__rec")
            b.addi(3, 24, -1)
            b.call("sumto")
            b.add(3, 3, 24)
        with b.function("main"):
            b.li(3, 100)
            b.call("sumto")
        assert _run(b).registers[3] == 5050

    def test_sp_restored_after_call(self):
        b = CodeBuilder("x")
        with b.function("noop", frame_words=4):
            b.nop()
        with b.function("main"):
            b.mov(20, 1)  # save SP
            b.call("noop")
            b.seq(3, 1, 20)
        assert _run(b).registers[3] == 1


class TestIndirection:
    def test_jump_table_dispatch(self):
        b = CodeBuilder("x")
        with b.function("main"):
            cases = [b.fresh_label(f"case{i}") for i in range(3)]
            done = b.fresh_label("done")
            b.li(4, 1)  # select case 1
            b.jump_table(4, cases)
            for i, case in enumerate(cases):
                b.label(case)
                b.li(3, 10 + i)
                b.j(done)
            b.label(done)
        assert _run(b).registers[3] == 11

    def test_call_far_runs_callee(self):
        b = CodeBuilder("x")
        with b.function("callee", leaf=True):
            b.li(3, 77)
        with b.function("main"):
            b.call_far("callee")
        assert _run(b).registers[3] == 77

    def test_call_ptr(self):
        b = CodeBuilder("x")
        with b.function("callee", leaf=True):
            b.li(3, 88)
        with b.function("main"):
            b.la(5, "callee")
            b.call_ptr(5)
        assert _run(b).registers[3] == 88

    def test_jump_table_emits_load(self):
        b = CodeBuilder("x", target="ppc")
        with b.function("main"):
            case = b.fresh_label("c")
            b.li(4, 0)
            b.jump_table(4, [case])
            b.label(case)
        classes = [i.op_class for i in b.instructions]
        assert OpClass.LOAD in classes
