"""Property-based tests for the memory model and caches."""

from hypothesis import given, settings, strategies as st

from repro.sim import Memory
from repro.uarch.components import Cache

word_addrs = st.integers(0, 255).map(lambda x: 0x1000 + x * 8)
byte_addrs = st.integers(0, 2047).map(lambda x: 0x1000 + x)
u64 = st.integers(0, (1 << 64) - 1)


class TestMemoryProperties:
    @given(st.dictionaries(word_addrs, u64, max_size=50))
    def test_last_write_wins(self, writes):
        mem = Memory()
        for addr, value in writes.items():
            mem.write_word(addr, value, 0)
        for addr, value in writes.items():
            assert mem.read_word(addr)[0] == value

    @given(word_addrs, u64)
    def test_word_equals_byte_composition(self, addr, value):
        """A word read must equal its eight byte reads, little-endian."""
        mem = Memory()
        mem.write_word(addr, value, 0)
        composed = sum(mem.read_u8(addr + i) << (8 * i) for i in range(8))
        assert composed == value

    @given(word_addrs, u64, st.integers(0, 7), st.integers(0, 255))
    def test_byte_write_affects_only_its_byte(self, addr, value, offset,
                                              byte):
        mem = Memory()
        mem.write_word(addr, value, 0)
        mem.write_u8(addr + offset, byte)
        for i in range(8):
            expected = byte if i == offset else (value >> (8 * i)) & 0xFF
            assert mem.read_u8(addr + i) == expected

    @given(word_addrs, u64, st.sampled_from([0, 4]),
           st.integers(0, (1 << 32) - 1))
    def test_u32_write_affects_only_its_half(self, addr, value, offset,
                                             half):
        mem = Memory()
        mem.write_word(addr, value, 0)
        mem.write_u32(addr + offset, half)
        other = 4 - offset
        assert mem.read_u32(addr + offset) == half
        assert mem.read_u32(addr + other) == (value >> (8 * other)) \
            & 0xFFFF_FFFF

    @given(byte_addrs, st.binary(min_size=1, max_size=64))
    def test_bulk_roundtrip(self, addr, payload):
        mem = Memory()
        for i, byte in enumerate(payload):
            mem.write_u8(addr + i, byte)
        assert mem.read_bytes(addr, len(payload)) == payload


class TestCacheProperties:
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300))
    @settings(deadline=None)
    def test_immediate_rereference_always_hits(self, addresses):
        cache = Cache(1024, assoc=2, line_size=32)
        for addr in addresses:
            cache.access(addr)
            assert cache.probe(addr)
            assert cache.access(addr)

    @given(st.lists(st.integers(0, 1 << 16), max_size=300))
    @settings(deadline=None)
    def test_occupancy_bounded(self, addresses):
        cache = Cache(512, assoc=2, line_size=32)
        for addr in addresses:
            cache.access(addr)
        total_lines = sum(len(s) for s in cache._sets)
        assert total_lines <= 512 // 32
        assert all(len(s) <= 2 for s in cache._sets)

    @given(st.lists(st.integers(0, 1 << 16), max_size=300))
    @settings(deadline=None)
    def test_misses_never_exceed_accesses(self, addresses):
        cache = Cache(1024, assoc=4, line_size=32)
        for addr in addresses:
            cache.access(addr)
        assert cache.stats.misses <= cache.stats.accesses

    @given(st.lists(st.integers(0, 31), min_size=1, max_size=100))
    @settings(deadline=None)
    def test_small_working_set_all_hits_after_warmup(self, indices):
        """A working set within one set's capacity never misses twice."""
        cache = Cache(4096, assoc=8, line_size=32)
        lines = sorted(set(indices))[:8]
        for line in lines:
            cache.access(line * 32)
        start_misses = cache.stats.misses
        for line in lines * 3:
            cache.access(line * 32)
        assert cache.stats.misses == start_misses
