"""Property-based tests for the LVP structures (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.lvp import CVU, LCT, LVPT, LVPUnit, LoadClass, LoadOutcome, SIMPLE

pcs = st.integers(min_value=0, max_value=1 << 20).map(lambda x: x * 4)
values = st.integers(min_value=0, max_value=(1 << 64) - 1)
addrs = st.integers(min_value=0, max_value=1 << 24).map(lambda x: x * 8)


class TestLvptProperties:
    @given(st.lists(st.tuples(pcs, values), max_size=200))
    def test_history_bounded_and_unique(self, updates):
        table = LVPT(64, history_depth=4)
        for pc, value in updates:
            table.update(pc, value)
            history = table.lookup(pc)
            assert len(history) <= 4
            assert len(set(history)) == len(history)

    @given(st.lists(st.tuples(pcs, values), max_size=200))
    def test_mru_is_last_update(self, updates):
        table = LVPT(64, history_depth=4)
        for pc, value in updates:
            table.update(pc, value)
            assert table.predict(pc) == value

    @given(st.lists(values, min_size=1, max_size=50), pcs)
    def test_perfect_selection_remembers_recent(self, stream, pc):
        """Any of the last `depth` distinct values must hit."""
        depth = 8
        table = LVPT(64, history_depth=depth, selection="perfect")
        for value in stream:
            table.update(pc, value)
        distinct_recent = []
        for value in reversed(stream):
            if value not in distinct_recent:
                distinct_recent.append(value)
            if len(distinct_recent) == depth:
                break
        for value in distinct_recent:
            assert table.would_be_correct(pc, value)

    @given(st.lists(st.tuples(pcs, values), max_size=100))
    def test_tagged_never_crosses_pcs(self, updates):
        table = LVPT(16, history_depth=2, tagged=True)
        last_by_pc = {}
        for pc, value in updates:
            table.update(pc, value)
            last_by_pc[pc] = value
            # A tagged entry either misses or belongs to this pc.
            prediction = table.predict(pc)
            assert prediction == value


class TestLctProperties:
    @given(st.lists(st.tuples(pcs, st.booleans()), max_size=300),
           st.sampled_from([1, 2, 3]))
    def test_counter_always_in_range(self, updates, bits):
        lct = LCT(32, bits=bits)
        top = (1 << bits) - 1
        for pc, correct in updates:
            lct.update(pc, correct)
            assert 0 <= lct.counter(pc) <= top

    @given(st.lists(st.booleans(), max_size=100))
    def test_classification_consistent_with_counter(self, outcomes):
        lct = LCT(16, bits=2)
        for correct in outcomes:
            lct.update(0x100, correct)
            counter = lct.counter(0x100)
            classification = lct.classify(0x100)
            if counter == 3:
                assert classification is LoadClass.CONSTANT
            elif counter == 2:
                assert classification is LoadClass.PREDICT
            else:
                assert classification is LoadClass.DONT_PREDICT


class TestCvuProperties:
    @given(st.lists(st.one_of(
        st.tuples(st.just("insert"), addrs, st.integers(0, 1023)),
        st.tuples(st.just("store"), addrs, st.integers(1, 8)),
    ), max_size=300))
    def test_capacity_never_exceeded(self, ops):
        cvu = CVU(16)
        for op, addr, arg in ops:
            if op == "insert":
                cvu.insert(addr, arg)
            else:
                cvu.snoop_store(addr, arg)
            assert len(cvu) <= 16

    @given(st.lists(st.tuples(addrs, st.integers(0, 63)), max_size=100),
           addrs)
    def test_store_kills_every_overlapping_entry(self, inserts, store_addr):
        """The CVU coherence invariant: after a store, no entry for the
        stored word can match."""
        cvu = CVU(64)
        for addr, index in inserts:
            cvu.insert(addr, index)
        cvu.snoop_store(store_addr, 8)
        for addr, index in inserts:
            if addr & ~7 == store_addr & ~7:
                assert not cvu.match(addr, index)


class TestUnitProperties:
    @given(st.lists(st.one_of(
        st.tuples(st.just("load"), st.integers(0, 31),
                  st.integers(0, 7), st.integers(0, 3)),
        st.tuples(st.just("store"), st.integers(0, 7),
                  st.integers(0, 3), st.just(0)),
    ), max_size=400))
    @settings(deadline=None)
    def test_constant_outcomes_always_coherent(self, ops):
        """The paper's CVU guarantee: a CONSTANT load's forwarded value
        equals what memory holds, under any load/store interleaving."""
        unit = LVPUnit(SIMPLE)
        memory = {}
        for op in ops:
            if op[0] == "load":
                _, pc_index, word, _ = op
                pc = pc_index * 4
                addr = 0x2000 + word * 8
                value = memory.get(addr, 0)
                outcome = unit.process_load(pc, addr, value)
                if outcome is LoadOutcome.CONSTANT:
                    assert unit.lvpt.predict(pc) == value
            else:
                _, word, value, _ = op
                addr = 0x2000 + word * 8
                memory[addr] = value
                unit.process_store(addr, 8)

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 3)),
                    max_size=300))
    @settings(deadline=None)
    def test_outcome_totals_invariant(self, loads):
        unit = LVPUnit(SIMPLE)
        for pc_index, value in loads:
            unit.process_load(pc_index * 4, 0x1000 + pc_index * 8, value)
        assert sum(unit.stats.outcomes.values()) == len(loads)
        quadrants = (unit.stats.predictable_predicted
                     + unit.stats.predictable_not_predicted
                     + unit.stats.unpredictable_predicted
                     + unit.stats.unpredictable_not_predicted)
        assert quadrants == len(loads)
