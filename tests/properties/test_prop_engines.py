"""Differential property test: compiled engine vs interpreter.

Hypothesis generates random VRISC programs -- ALU work, memory traffic,
and forward branches (which force basic-block boundaries in the
compiler) -- and every program must produce a bit-identical trace and
register file under both execution engines.
"""

from hypothesis import given, settings, strategies as st

from repro.isa import CodeBuilder
from repro.sim import run_program
from repro.trace.records import TRACE_COLUMNS

U64 = (1 << 64) - 1

_REG_OPS = ("add", "sub", "and_", "or_", "xor", "mul", "sll", "srl",
            "slt", "sltu", "seq")
_IMM_OPS = ("addi", "andi", "ori", "xori", "slli", "srli")

_reg = st.integers(3, 23)  # stay clear of r0/SP/TOC
_imm = st.integers(-(1 << 15), (1 << 15) - 1)
_slot = st.integers(0, 15)

#: One random step: an ALU op, a load/store pair, or a guarded skip
#: (a forward conditional branch over one ALU instruction).
_step = st.one_of(
    st.tuples(st.just("reg"), st.sampled_from(_REG_OPS), _reg, _reg,
              _reg),
    st.tuples(st.just("imm"), st.sampled_from(_IMM_OPS), _reg, _reg,
              _imm),
    st.tuples(st.just("li"), _reg,
              st.integers(0, U64), st.just(0), st.just(0)),
    st.tuples(st.just("store"), _reg, _slot, st.just(0), st.just(0)),
    st.tuples(st.just("load"), _reg, _slot, st.just(0), st.just(0)),
    st.tuples(st.just("skip"), st.sampled_from(("beq", "bne", "blt")),
              _reg, _reg, _reg),
)


def _build(steps):
    builder = CodeBuilder("prop")
    builder.data.label("buf")
    builder.data.space(16)
    builder.label("main")
    builder.load_addr(30, "buf")
    for index, step in enumerate(steps):
        kind = step[0]
        if kind == "reg":
            _, op, dst, a, b = step
            getattr(builder, op)(dst, a, b)
        elif kind == "imm":
            _, op, dst, src, imm = step
            getattr(builder, op)(dst, src, imm)
        elif kind == "li":
            _, dst, value, _, _ = step
            builder.load_const(dst, value)
        elif kind == "store":
            _, src, slot, _, _ = step
            builder.st(src, 30, slot * 8)
        elif kind == "load":
            _, dst, slot, _, _ = step
            builder.ld(dst, 30, slot * 8)
        else:  # skip: branch over one instruction
            _, op, a, b, dst = step
            label = f"skip_{index}"
            getattr(builder, op)(a, b, label)
            builder.addi(dst, dst, 1)
            builder.label(label)
    builder.halt()
    return builder.build()


@given(st.lists(_step, max_size=80))
@settings(deadline=None, max_examples=80)
def test_engines_bit_identical_on_random_programs(steps):
    program = _build(steps)
    interp = run_program(program, name="prop", engine="interp")
    compiled = run_program(program, name="prop", engine="compiled")
    assert interp.instruction_count == compiled.instruction_count
    assert interp.registers == compiled.registers
    for name, _ in TRACE_COLUMNS:
        assert (getattr(interp.trace, name)
                == getattr(compiled.trace, name)).all(), name
