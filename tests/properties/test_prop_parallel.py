"""Property test: the parallel engine always equals the serial oracle.

Hypothesis drives the engine across generated benchmark subsets, job
counts, and optional sabotage, asserting that for every combination:

* merged traces, cycle counts, and rendered exhibits are identical to
  a serial session's (the oracle); and
* the failure list names exactly the sabotaged benchmarks -- no
  victim escapes, no innocent is blamed.

A module-shared on-disk trace cache keeps each example cheap: the
first example pays for trace generation, later examples (serial and
parallel, both use the same fcntl-locked cache) hit it.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness import Session, run_experiment
from repro.trace.records import TRACE_COLUMNS

NAMES = ("grep", "compress", "quick")
EXHIBITS = ("tab1", "tab3", "fig6")

_CACHE_DIR = tempfile.mkdtemp(prefix="repro-prop-parallel-")


@pytest.fixture(autouse=True)
def _no_ambient_chaos(monkeypatch):
    monkeypatch.delenv("REPRO_SABOTAGE", raising=False)
    monkeypatch.delenv("REPRO_PARALLEL_CRASH", raising=False)
    monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)


def _evaluate(benchmarks, sabotage, jobs):
    """One fully-evaluated session; serial oracle when jobs == 1."""
    if sabotage is not None:
        os.environ["REPRO_SABOTAGE"] = sabotage
    else:
        os.environ.pop("REPRO_SABOTAGE", None)
    try:
        session = Session(scale="tiny", benchmarks=benchmarks,
                          cache_dir=_CACHE_DIR)
        if jobs > 1:
            session.warm(jobs)
        texts = {exp_id: run_experiment(exp_id, session).text
                 for exp_id in EXHIBITS}
        return session, texts
    finally:
        os.environ.pop("REPRO_SABOTAGE", None)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(
    benchmarks=st.lists(st.sampled_from(NAMES), min_size=1, max_size=3,
                        unique=True).map(tuple),
    jobs=st.integers(min_value=2, max_value=4),
    sabotage=st.one_of(st.none(), st.sampled_from(NAMES)),
)
def test_parallel_always_equals_serial_oracle(benchmarks, jobs, sabotage):
    oracle, oracle_texts = _evaluate(benchmarks, sabotage, jobs=1)
    parallel, parallel_texts = _evaluate(benchmarks, sabotage, jobs=jobs)

    # Rendered exhibits are identical, byte for byte.
    for exp_id in EXHIBITS:
        assert parallel_texts[exp_id] == oracle_texts[exp_id], exp_id

    # Failures name exactly the sabotaged benchmarks that were in the
    # run -- nothing more, nothing less -- in both modes.
    expected = {sabotage} & set(benchmarks) if sabotage else set()
    assert {f.benchmark for f in oracle.failures} == expected
    assert {f.benchmark for f in parallel.failures} == expected

    # Every healthy trace and cycle count matches the oracle exactly.
    healthy = [name for name in benchmarks if name not in expected]
    for name in healthy:
        for target in ("ppc", "alpha"):
            ot = oracle.trace(name, target)
            pt = parallel.trace(name, target)
            for column, _ in TRACE_COLUMNS:
                assert np.array_equal(getattr(ot, column),
                                      getattr(pt, column)), \
                    (name, target, column)
    from repro.uarch.ppc620.config import PPC620
    for name in healthy:
        assert oracle.ppc_result(name, PPC620, None).cycles == \
            parallel.ppc_result(name, PPC620, None).cycles
