"""Property test: random programs survive disassemble -> assemble.

Hypothesis builds random straight-line programs; the test disassembles
them, re-assembles the text, and requires execution-equivalent results
-- binding the assembler, disassembler, and interpreter together.
"""

from hypothesis import given, settings, strategies as st

from repro.isa import CodeBuilder, assemble
from repro.isa.disasm import disassemble
from repro.sim import run_program

_reg = st.integers(3, 23)
_imm16 = st.integers(-(1 << 15), (1 << 15) - 1)

_OPS3 = ("add", "sub", "mul", "and_", "or_", "xor", "slt", "sltu", "seq",
         "div", "rem")
_OPS_IMM = ("addi", "andi", "ori", "xori", "slti")
_OPS_SHIFT = ("slli", "srli", "srai")

_instruction = st.one_of(
    st.tuples(st.sampled_from(_OPS3), _reg, _reg, _reg),
    st.tuples(st.sampled_from(_OPS_IMM), _reg, _reg, _imm16),
    st.tuples(st.sampled_from(_OPS_SHIFT), _reg, _reg,
              st.integers(0, 63)),
    st.tuples(st.just("li"), _reg, _imm16, st.just(0)),
    st.tuples(st.just("mov"), _reg, _reg, st.just(0)),
)


@given(st.lists(_instruction, max_size=40))
@settings(deadline=None, max_examples=50)
def test_disassemble_assemble_roundtrip(instructions):
    builder = CodeBuilder("roundtrip")
    builder.label("main")
    for instr in instructions:
        mnemonic = instr[0]
        if mnemonic == "li":
            builder.li(instr[1], instr[2])
        elif mnemonic == "mov":
            builder.mov(instr[1], instr[2])
        else:
            getattr(builder, mnemonic)(instr[1], instr[2], instr[3])
    builder.halt()
    original = builder.build()

    rebuilt = assemble(disassemble(original))
    result_a = run_program(original)
    result_b = run_program(rebuilt)
    assert result_a.instruction_count == result_b.instruction_count
    assert result_a.registers == result_b.registers
