"""Differential property test: random VRISC ALU programs vs Python.

Hypothesis generates random straight-line integer programs; the test
executes each on the functional simulator and on a direct Python
evaluation of the same operations, and requires bit-identical register
files.  This is the strongest guard on interpreter semantics.
"""

from hypothesis import given, settings, strategies as st

from repro.isa import CodeBuilder
from repro.sim import run_program

U64 = (1 << 64) - 1

#: (mnemonic, python evaluator) for two-source register ops.
_REG_OPS = {
    "add": lambda a, b: (a + b) & U64,
    "sub": lambda a, b: (a - b) & U64,
    "and_": lambda a, b: a & b,
    "or_": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "mul": lambda a, b: (a * b) & U64,
    "sll": lambda a, b: (a << (b & 63)) & U64,
    "srl": lambda a, b: a >> (b & 63),
    "slt": lambda a, b: 1 if _s(a) < _s(b) else 0,
    "sltu": lambda a, b: 1 if a < b else 0,
    "seq": lambda a, b: 1 if a == b else 0,
}

_IMM_OPS = {
    "addi": lambda a, imm: (a + imm) & U64,
    "andi": lambda a, imm: a & (imm & U64),
    "ori": lambda a, imm: a | (imm & U64),
    "xori": lambda a, imm: a ^ (imm & U64),
    "slli": lambda a, imm: (a << (imm & 63)) & U64,
    "srli": lambda a, imm: a >> (imm & 63),
}


def _s(x: int) -> int:
    return x - (1 << 64) if x >= (1 << 63) else x


_reg = st.integers(3, 23)  # stay clear of r0/SP/TOC
_value = st.integers(0, U64)
_imm = st.integers(-(1 << 15), (1 << 15) - 1)

_instruction = st.one_of(
    st.tuples(st.sampled_from(sorted(_REG_OPS)), _reg, _reg, _reg),
    st.tuples(st.sampled_from(sorted(_IMM_OPS)), _reg, _reg, _imm),
    st.tuples(st.just("li"), _reg, _value, st.just(0)),
)


@given(st.lists(_instruction, max_size=60))
@settings(deadline=None, max_examples=60)
def test_alu_programs_match_python_model(instructions):
    builder = CodeBuilder("prop")
    builder.label("main")
    model = {r: 0 for r in range(32)}
    for instr in instructions:
        mnemonic = instr[0]
        if mnemonic == "li":
            _, dst, value, _ = instr
            builder.li(dst, value)
            model[dst] = value & U64
        elif mnemonic in _IMM_OPS:
            _, dst, src, imm = instr
            getattr(builder, mnemonic)(dst, src, imm)
            model[dst] = _IMM_OPS[mnemonic](model[src], imm)
        else:
            _, dst, a, b = instr
            getattr(builder, mnemonic)(dst, a, b)
            model[dst] = _REG_OPS[mnemonic](model[a], model[b])
    builder.halt()
    result = run_program(builder.build())
    for reg in range(3, 24):
        assert result.registers[reg] == model[reg], f"r{reg}"


@given(st.lists(st.tuples(st.integers(0, 15), _value), max_size=40))
@settings(deadline=None, max_examples=40)
def test_store_load_sequences_match_python_dict(ops):
    """Random store-then-reload sequences agree with a dict model."""
    builder = CodeBuilder("prop")
    builder.data.label("buf")
    builder.data.space(16)
    builder.label("main")
    builder.load_addr(4, "buf")
    model = {}
    for slot, value in ops:
        builder.load_const(5, value)
        builder.st(5, 4, slot * 8)
        model[slot] = value
    # Read everything back into r10..r25.
    for i, slot in enumerate(sorted(model)):
        builder.ld(10 + i % 14, 4, slot * 8)
        builder.st(10 + i % 14, 4, slot * 8)
    builder.halt()
    result = run_program(builder.build())
    buf = result.memory
    from repro.isa import DATA_BASE
    base = builder.data.labels["buf"]
    for slot, value in model.items():
        assert buf.read_word(base + slot * 8)[0] == value
