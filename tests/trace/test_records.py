"""Unit tests for the trace record container."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.isa import OpClass
from repro.trace import Trace, TraceColumns


def make_trace(records):
    """Build a trace from (pc, opclass, addr, value) tuples."""
    cols = TraceColumns()
    for pc, opclass, addr, value in records:
        cols.pc.append(pc)
        cols.opcode.append(1)
        cols.opclass.append(int(opclass))
        cols.dst.append(3)
        cols.src1.append(-1)
        cols.src2.append(-1)
        cols.addr.append(addr)
        cols.value.append(value)
        cols.kind.append(0)
        cols.size.append(8 if opclass in (OpClass.LOAD, OpClass.STORE)
                         else 0)
        cols.taken.append(0)
    return Trace.from_columns(cols, name="test", target="ppc")


class TestTraceConstruction:
    def test_from_columns_lengths(self):
        trace = make_trace([(0, OpClass.SIMPLE_INT, 0, 0)])
        assert len(trace) == 1
        assert trace.num_instructions == 1

    def test_missing_column_rejected(self):
        with pytest.raises(TraceError):
            Trace({"pc": np.zeros(1)})

    def test_ragged_columns_rejected(self):
        cols = TraceColumns()
        cols.pc.append(0)
        trace_dict = {
            key: np.zeros(0 if key == "opcode" else 1, dtype="u8")
            for key in ("pc", "opcode", "opclass", "dst", "src1", "src2",
                        "addr", "value", "kind", "size", "taken")
        }
        with pytest.raises(TraceError):
            Trace(trace_dict)

    def test_metadata_preserved(self):
        trace = make_trace([])
        assert trace.name == "test"
        assert trace.target == "ppc"


class TestMasksAndViews:
    def _mixed(self):
        return make_trace([
            (0x100, OpClass.SIMPLE_INT, 0, 0),
            (0x104, OpClass.LOAD, 0x2000, 42),
            (0x108, OpClass.STORE, 0x2000, 43),
            (0x10C, OpClass.LOAD, 0x2008, 44),
        ])

    def test_load_store_counts(self):
        trace = self._mixed()
        assert trace.num_loads == 2
        assert trace.num_stores == 1

    def test_load_view_positions(self):
        loads = self._mixed().loads()
        assert loads.index.tolist() == [1, 3]
        assert loads.value.tolist() == [42, 44]

    def test_store_view(self):
        stores = self._mixed().stores()
        assert len(stores) == 1
        assert stores.addr.tolist() == [0x2000]

    def test_view_iteration(self):
        rows = list(self._mixed().loads())
        assert rows[0] == (1, 0x104, 0x2000, 42, 8)

    def test_opclass_counts(self):
        counts = self._mixed().opclass_counts()
        assert counts[OpClass.LOAD] == 2
        assert counts[OpClass.SIMPLE_INT] == 1

    def test_empty_trace(self):
        trace = make_trace([])
        assert trace.num_loads == 0
        assert len(trace.loads()) == 0
