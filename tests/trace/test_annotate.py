"""Unit tests for the LVP trace-annotation phase."""

import numpy as np

from repro.lvp import CONSTANT, LIMIT, LoadOutcome, PERFECT, SIMPLE
from repro.trace import NOT_A_LOAD, annotate_trace


class TestAnnotationShape:
    def test_outcomes_parallel_to_trace(self, compress_trace):
        annotated = annotate_trace(compress_trace, SIMPLE)
        assert len(annotated.outcomes) == len(compress_trace)

    def test_loads_get_outcomes_others_sentinel(self, compress_trace):
        annotated = annotate_trace(compress_trace, SIMPLE)
        is_load = compress_trace.is_load
        assert (annotated.outcomes[~is_load] == NOT_A_LOAD).all()
        assert (annotated.outcomes[is_load] != NOT_A_LOAD).all()

    def test_outcome_values_valid(self, compress_trace):
        annotated = annotate_trace(compress_trace, SIMPLE)
        load_outcomes = annotated.outcomes[compress_trace.is_load]
        assert set(np.unique(load_outcomes)) <= {
            int(o) for o in LoadOutcome}

    def test_stats_match_annotations(self, compress_trace):
        annotated = annotate_trace(compress_trace, SIMPLE)
        load_outcomes = annotated.outcomes[compress_trace.is_load]
        for outcome in LoadOutcome:
            assert annotated.stats.outcomes[outcome] == \
                int((load_outcomes == int(outcome)).sum())

    def test_loads_counted(self, compress_trace):
        annotated = annotate_trace(compress_trace, SIMPLE)
        assert annotated.stats.loads == compress_trace.num_loads
        assert annotated.stats.stores == compress_trace.num_stores


class TestConfigBehaviours:
    def test_perfect_all_correct(self, compress_trace):
        annotated = annotate_trace(compress_trace, PERFECT)
        outcomes = annotated.stats.outcomes
        assert outcomes[LoadOutcome.CORRECT] == compress_trace.num_loads
        assert outcomes[LoadOutcome.CONSTANT] == 0

    def test_limit_at_least_as_accurate_as_simple(self, compress_trace):
        simple = annotate_trace(compress_trace, SIMPLE).stats
        limit = annotate_trace(compress_trace, LIMIT).stats
        assert limit.prediction_accuracy >= simple.prediction_accuracy * 0.95

    def test_constant_config_finds_more_constants(self, compress_trace):
        """The Constant config's 1-bit LCT + big CVU targets constants."""
        simple = annotate_trace(compress_trace, SIMPLE).stats
        constant = annotate_trace(compress_trace, CONSTANT).stats
        assert constant.constant_fraction >= simple.constant_fraction * 0.5

    def test_determinism(self, compress_trace):
        a = annotate_trace(compress_trace, SIMPLE)
        b = annotate_trace(compress_trace, SIMPLE)
        assert (a.outcomes == b.outcomes).all()

    def test_repr(self, compress_trace):
        annotated = annotate_trace(compress_trace, SIMPLE)
        assert "Simple" in repr(annotated)
