"""Tests for trace validation."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.isa import Opcode, OpClass
from repro.trace import require_valid, validate_trace

from tests.trace.test_records import make_trace


class TestValidTraces:
    def test_real_traces_validate(self, tiny_session):
        for name in tiny_session.benchmark_names:
            for target in ("ppc", "alpha"):
                trace = tiny_session.trace(name, target)
                assert validate_trace(trace) == [], (name, target)

    def test_empty_trace_valid(self):
        assert validate_trace(make_trace([])) == []

    def test_require_valid_passthrough(self, grep_trace):
        assert require_valid(grep_trace) is grep_trace


class TestInvalidTraces:
    def _halting(self, rows):
        return rows + [(0x200, OpClass.BRANCH, 0, 0)]

    def test_bad_opcode_value(self):
        trace = make_trace(self._halting([(0x100, OpClass.SIMPLE_INT, 0, 0)]))
        trace.opcode[0] = 200
        assert any("opcode" in p for p in validate_trace(trace))

    def test_opclass_mismatch(self):
        trace = make_trace(self._halting([(0x100, OpClass.SIMPLE_INT, 0, 0)]))
        trace.opcode[0] = int(Opcode.LD)  # but opclass says SIMPLE_INT
        assert any("opclass" in p for p in validate_trace(trace))

    def test_register_out_of_range(self):
        trace = make_trace(self._halting([(0x100, OpClass.SIMPLE_INT, 0, 0)]))
        trace.dst[0] = 99
        assert any("register" in p for p in validate_trace(trace))

    def test_bad_memory_size(self):
        trace = make_trace(self._halting([(0x100, OpClass.LOAD, 0x2000, 1)]))
        trace.opcode[0] = int(Opcode.LD)
        trace.size[0] = 3
        assert any("sizes" in p for p in validate_trace(trace))

    def test_misaligned_access(self):
        trace = make_trace(self._halting([(0x100, OpClass.LOAD, 0x2001, 1)]))
        trace.opcode[0] = int(Opcode.LD)
        assert any("misaligned" in p for p in validate_trace(trace))

    def test_taken_on_non_branch(self):
        trace = make_trace(self._halting([(0x100, OpClass.SIMPLE_INT, 0, 0)]))
        trace.taken[0] = 1
        assert any("taken" in p for p in validate_trace(trace))

    def test_truncated_trace_detected(self):
        trace = make_trace([(0x100, OpClass.SIMPLE_INT, 0, 0)])
        assert any("control transfer" in p for p in validate_trace(trace))

    def test_require_valid_raises(self):
        trace = make_trace([(0x100, OpClass.SIMPLE_INT, 0, 0)])
        with pytest.raises(TraceError):
            require_valid(trace)


class TestDefensiveValidation:
    """Guards for already-corrupt traces: every violation must be
    reported -- never a crash or a numpy warning -- and one violation
    must not mask another."""

    def _halting(self, rows):
        return rows + [(0x200, OpClass.BRANCH, 0, 0)]

    def test_opcode_zero_reported(self):
        trace = make_trace(self._halting([(0x100, OpClass.SIMPLE_INT, 0, 0)]))
        trace.opcode[0] = 0
        problems = validate_trace(trace)
        assert any("opcode values outside" in p for p in problems)

    def test_all_opcodes_invalid_reported(self):
        trace = make_trace(self._halting([(0x100, OpClass.SIMPLE_INT, 0, 0)]))
        trace.opcode[:] = 0
        problems = validate_trace(trace)
        assert any("opcode values outside" in p for p in problems)

    def test_zero_size_memory_op_reports_not_crashes(self):
        trace = make_trace(self._halting([(0x100, OpClass.LOAD, 0x2000, 1)]))
        trace.opcode[0] = int(Opcode.LD)
        trace.size[0] = 0
        problems = validate_trace(trace)
        assert any("sizes must be 1, 4, or 8" in p for p in problems)

    def test_nonzero_size_on_non_memory_reported(self):
        trace = make_trace(self._halting([(0x100, OpClass.SIMPLE_INT, 0, 0)]))
        trace.size[0] = 4
        problems = validate_trace(trace)
        assert any("non-memory instructions must have size 0" in p
                   for p in problems)

    def test_unaligned_pc_reported(self):
        trace = make_trace(self._halting([(0x100, OpClass.SIMPLE_INT, 0, 0)]))
        trace.pc[0] += 1
        problems = validate_trace(trace)
        assert any("unaligned instruction addresses" in p for p in problems)

    def test_bad_opcode_does_not_mask_opclass_mismatch(self):
        trace = make_trace(self._halting([
            (0x100, OpClass.SIMPLE_INT, 0, 0),
            (0x104, OpClass.SIMPLE_INT, 0, 0),
        ]))
        trace.opcode[0] = 0       # invalid opcode on one row ...
        trace.opclass[1] = 250    # ... independent mismatch on another
        problems = validate_trace(trace)
        assert any("opcode values outside" in p for p in problems)
        assert any("opclass column disagrees" in p for p in problems)

    def test_negative_register_id_reported(self):
        trace = make_trace(self._halting([(0x100, OpClass.SIMPLE_INT, 0, 0)]))
        trace.src1[0] = -2
        problems = validate_trace(trace)
        assert any("src1 register ids out of range" in p for p in problems)


class TestCacheIntegration:
    def test_cache_roundtrip_and_validation(self, tmp_path, tiny_session):
        from repro.harness import Session, TraceCache
        session = Session(scale="tiny", benchmarks=("grep",),
                          cache_dir=str(tmp_path))
        original = session.trace("grep", "ppc")
        # A fresh session loads from disk and gets identical columns.
        fresh = Session(scale="tiny", benchmarks=("grep",),
                        cache_dir=str(tmp_path))
        loaded = fresh.trace("grep", "ppc")
        assert (loaded.value == original.value).all()
        assert (loaded.pc == original.pc).all()

    def test_version_mismatch_invalidates(self, tmp_path, grep_trace):
        from repro.harness import TraceCache
        cache = TraceCache(tmp_path)
        cache.store(grep_trace, "tiny")
        cache.version = "something-else"
        assert cache.load("grep", "ppc", "tiny") is None

    def test_clear(self, tmp_path, grep_trace):
        from repro.harness import TraceCache
        cache = TraceCache(tmp_path)
        cache.store(grep_trace, "tiny")
        assert cache.clear() == 1
        assert cache.load("grep", "ppc", "tiny") is None

    def test_corrupt_file_miss(self, tmp_path):
        from repro.harness import TraceCache
        cache = TraceCache(tmp_path)
        (tmp_path / "grep-ppc-tiny.npz").write_bytes(b"not a zip")
        assert cache.load("grep", "ppc", "tiny") is None
