"""Differential suite: the vector annotation kernel vs mono vs general.

The vector tier runs the shared staged kernels (stage-A vectorized
last-value, stage-B LCT counters, stage-C CVU replay) for depth-1
configurations; it exists only for speed and must be bit-identical to
both the monomorphic and the general kernel on every config it
accepts, and must refuse (or be auto-routed away from) every config it
cannot faithfully annotate.
"""

import pytest

from repro.errors import ConfigError
from repro.lvp.config import (
    CONSTANT,
    EXTENSION_CONFIGS,
    GSHARE,
    LIMIT,
    PAPER_CONFIGS,
    PERFECT,
    SIMPLE,
    STRIDE,
)
from repro.sim import run_program
from repro.trace.annotate import (
    annotate_trace,
    resolve_kernel,
    vector_eligible,
)
from repro.workloads.suite import NAMES, get_benchmark

#: Every stock config the vector kernel accepts (depth-1 history, pc
#: index, untagged, unfiltered, not perfect) -- derived, not listed,
#: so a new eligible config automatically joins the suite.
ELIGIBLE = tuple(
    config for config in PAPER_CONFIGS + EXTENSION_CONFIGS
    if vector_eligible(config)
)
#: Mono-eligible but too deep for the vector tier.
DEEP = (LIMIT,)
INELIGIBLE = (PERFECT, STRIDE, GSHARE) + DEEP

STATS_FIELDS = (
    "loads", "stores", "predictable_predicted",
    "predictable_not_predicted", "unpredictable_predicted",
    "unpredictable_not_predicted", "cvu_insertions",
    "cvu_store_invalidations", "cvu_demotions", "cvu_stale_hits",
)


def assert_annotations_equal(a, b):
    assert (a.outcomes == b.outcomes).all()
    assert a.stats.outcomes == b.stats.outcomes
    for field in STATS_FIELDS:
        assert getattr(a.stats, field) == getattr(b.stats, field), field


@pytest.fixture(scope="module")
def tiny_traces():
    """Lazily built, memoized tiny ppc traces for the whole suite."""
    cache = {}

    def get(name):
        if name not in cache:
            program = get_benchmark(name).build_program("ppc", "tiny")
            cache[name] = run_program(program, name=name).trace
        return cache[name]

    return get


class TestEligibility:
    def test_stock_eligible_set_is_nonempty(self):
        names = {config.name for config in ELIGIBLE}
        assert SIMPLE.name in names
        assert CONSTANT.name in names

    @pytest.mark.parametrize("config", INELIGIBLE, ids=lambda c: c.name)
    def test_ineligible(self, config):
        assert not vector_eligible(config)

    def test_audit_and_fault_hook_disqualify(self):
        assert not vector_eligible(SIMPLE, audit=True)
        assert not vector_eligible(SIMPLE, fault_hook=lambda *a: None)

    @pytest.mark.parametrize("config", INELIGIBLE, ids=lambda c: c.name)
    def test_forced_vector_on_ineligible_config_refused(self, config):
        with pytest.raises(ConfigError, match="vector"):
            resolve_kernel("vector", config, False, None)

    def test_auto_prefers_vector(self):
        assert resolve_kernel("auto", SIMPLE, False, None) == "vector"
        # Deep history falls back one tier, not all the way.
        assert resolve_kernel("auto", LIMIT, False, None) == "mono"

    def test_env_pin(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANNOTATE_KERNEL", "vector")
        assert resolve_kernel("mono", SIMPLE, False, None) == "vector"


@pytest.mark.parametrize("name", NAMES)
def test_vector_bit_identical_simple(tiny_traces, name):
    """Every benchmark, the paper's Simple config: vector == general."""
    trace = tiny_traces(name)
    general = annotate_trace(trace, SIMPLE, kernel="general")
    vector = annotate_trace(trace, SIMPLE, kernel="vector")
    assert_annotations_equal(general, vector)


@pytest.mark.parametrize("config", ELIGIBLE, ids=lambda c: c.name)
@pytest.mark.parametrize("name", ("compress", "eqntott"))
def test_vector_bit_identical_all_eligible_configs(tiny_traces, name,
                                                   config):
    """Two traces x every eligible config, against both slower tiers."""
    trace = tiny_traces(name)
    general = annotate_trace(trace, config, kernel="general")
    mono = annotate_trace(trace, config, kernel="mono")
    vector = annotate_trace(trace, config, kernel="vector")
    assert_annotations_equal(general, vector)
    assert_annotations_equal(mono, vector)


@pytest.mark.parametrize("config", ELIGIBLE, ids=lambda c: c.name)
def test_auto_routes_to_vector_and_matches(tiny_traces, config):
    """The production default (auto) runs the vector tier on eligible
    configs and stays bit-identical to the oracle."""
    trace = tiny_traces("xlisp")
    general = annotate_trace(trace, config, kernel="general")
    auto = annotate_trace(trace, config)
    assert_annotations_equal(general, auto)


def test_vector_on_cached_readonly_trace(tmp_path, tiny_traces):
    """The vector kernel annotates a zero-copy mmap-backed trace
    (read-only columns) without materializing it."""
    from repro.harness.cache import TraceCache

    trace = tiny_traces("grep")
    cache = TraceCache(tmp_path)
    cache.store(trace, "tiny")
    mapped = cache.load("grep", trace.target, "tiny")
    assert not mapped.value.flags.writeable
    general = annotate_trace(trace, SIMPLE, kernel="general")
    vector = annotate_trace(mapped, SIMPLE, kernel="vector")
    assert_annotations_equal(general, vector)
