"""Unit tests for trace statistics."""

from repro.isa import OpClass
from repro.trace import compute_stats

from tests.trace.test_records import make_trace


class TestComputeStats:
    def test_counts(self):
        trace = make_trace([
            (0x100, OpClass.LOAD, 0x2000, 1),
            (0x100, OpClass.LOAD, 0x2008, 2),
            (0x104, OpClass.LOAD, 0x2000, 1),
            (0x108, OpClass.STORE, 0x2000, 9),
            (0x10C, OpClass.BRANCH, 0, 0),
        ])
        stats = compute_stats(trace)
        assert stats.instructions == 5
        assert stats.loads == 3
        assert stats.stores == 1
        assert stats.branches == 1
        assert stats.static_loads == 2  # pcs 0x100 and 0x104

    def test_fractions(self):
        trace = make_trace([
            (0x100, OpClass.LOAD, 0x2000, 1),
            (0x104, OpClass.SIMPLE_INT, 0, 0),
        ])
        stats = compute_stats(trace)
        assert stats.load_fraction == 0.5
        assert stats.store_fraction == 0.0

    def test_real_trace_consistency(self, grep_trace):
        stats = compute_stats(grep_trace)
        assert stats.instructions == len(grep_trace)
        assert 0 < stats.loads < stats.instructions
        assert stats.static_loads <= stats.loads
        assert stats.name == "grep"
