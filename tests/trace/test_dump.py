"""Tests for the dynamic trace dumper."""

from repro.trace import dump_trace, format_record


class TestDump:
    def test_window(self, grep_trace):
        text = dump_trace(grep_trace, start=0, count=5)
        assert len(text.splitlines()) == 5

    def test_full_dump_possible(self, grep_trace):
        text = dump_trace(grep_trace, count=None)
        assert len(text.splitlines()) == len(grep_trace)

    def test_loads_show_address_value_kind(self, grep_trace):
        import numpy as np
        position = int(np.nonzero(grep_trace.is_load)[0][0])
        line = format_record(grep_trace, position)
        assert "<-" in line
        assert "B)" in line

    def test_stores_show_arrow(self, grep_trace):
        import numpy as np
        position = int(np.nonzero(grep_trace.is_store)[0][0])
        assert "->" in format_record(grep_trace, position)

    def test_branches_show_direction(self, grep_trace):
        import numpy as np
        from repro.isa import Opcode
        conditional = np.isin(
            grep_trace.opcode,
            [int(Opcode.BEQ), int(Opcode.BNE), int(Opcode.BLT),
             int(Opcode.BGE), int(Opcode.BLTU), int(Opcode.BGEU)])
        position = int(np.nonzero(conditional)[0][0])
        assert "taken" in format_record(grep_trace, position)

    def test_loads_only_filter(self, grep_trace):
        text = dump_trace(grep_trace, count=500, loads_only=True)
        assert all("<-" in line for line in text.splitlines())
