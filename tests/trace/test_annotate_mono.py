"""Differential suite: the monomorphic annotation kernel vs the general one.

The mono kernel exists only for speed; it must be bit-identical to the
general kernel on every config it accepts, and must refuse (or be
auto-routed away from) every config it cannot faithfully annotate.
"""

import pytest

from repro.errors import ConfigError
from repro.lvp.config import (
    CONSTANT,
    EXTENSION_CONFIGS,
    GSHARE,
    LIMIT,
    PAPER_CONFIGS,
    PERFECT,
    SIMPLE,
    STRIDE,
)
from repro.sim import run_program
from repro.trace.annotate import (
    KERNELS,
    annotate_trace,
    mono_eligible,
    resolve_kernel,
)
from repro.workloads.suite import NAMES, get_benchmark

#: Configs the mono kernel can take (history predictor, pc index,
#: untagged, unfiltered, not perfect).
ELIGIBLE = (SIMPLE, CONSTANT, LIMIT)
INELIGIBLE = (PERFECT, STRIDE, GSHARE)

STATS_FIELDS = (
    "loads", "stores", "predictable_predicted",
    "predictable_not_predicted", "unpredictable_predicted",
    "unpredictable_not_predicted", "cvu_insertions",
    "cvu_store_invalidations", "cvu_demotions", "cvu_stale_hits",
)


def assert_annotations_equal(a, b):
    assert (a.outcomes == b.outcomes).all()
    assert a.stats.outcomes == b.stats.outcomes
    for field in STATS_FIELDS:
        assert getattr(a.stats, field) == getattr(b.stats, field), field


class TestEligibility:
    @pytest.mark.parametrize("config", ELIGIBLE, ids=lambda c: c.name)
    def test_eligible(self, config):
        assert mono_eligible(config)

    @pytest.mark.parametrize("config", INELIGIBLE, ids=lambda c: c.name)
    def test_ineligible(self, config):
        assert not mono_eligible(config)

    def test_audit_and_fault_hook_disqualify(self):
        assert not mono_eligible(SIMPLE, audit=True)
        assert not mono_eligible(SIMPLE, fault_hook=lambda *a: None)


class TestKernelResolution:
    def test_kernels_tuple(self):
        assert KERNELS == ("auto", "general", "mono", "vector")

    def test_auto_picks_mono_when_eligible(self):
        # SIMPLE is depth-1 so auto now prefers vector; LIMIT (deep
        # history) is the mono-but-not-vector shape.
        assert resolve_kernel("auto", LIMIT, False, None) == "mono"
        assert resolve_kernel(None, LIMIT, False, None) == "mono"
        assert resolve_kernel("auto", SIMPLE, False, None) == "vector"
        assert resolve_kernel(None, SIMPLE, False, None) == "vector"

    @pytest.mark.parametrize("config", INELIGIBLE, ids=lambda c: c.name)
    def test_auto_falls_back_to_general(self, config):
        assert resolve_kernel("auto", config, False, None) == "general"

    def test_auto_falls_back_for_audit_and_hook(self):
        assert resolve_kernel("auto", SIMPLE, True, None) == "general"
        hook = lambda *a: None  # noqa: E731
        assert resolve_kernel("auto", SIMPLE, False, hook) == "general"

    @pytest.mark.parametrize("config", INELIGIBLE, ids=lambda c: c.name)
    def test_forced_mono_on_ineligible_config_refused(self, config):
        with pytest.raises(ConfigError, match="mono"):
            resolve_kernel("mono", config, False, None)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            resolve_kernel("simd", SIMPLE, False, None)

    def test_env_overrides_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANNOTATE_KERNEL", "general")
        assert resolve_kernel("mono", SIMPLE, False, None) == "general"


@pytest.fixture(scope="module")
def tiny_traces():
    """Lazily built, memoized tiny ppc traces for the whole suite."""
    cache = {}

    def get(name):
        if name not in cache:
            program = get_benchmark(name).build_program("ppc", "tiny")
            cache[name] = run_program(program, name=name).trace
        return cache[name]

    return get


@pytest.mark.parametrize("name", NAMES)
def test_mono_bit_identical_simple(tiny_traces, name):
    trace = tiny_traces(name)
    general = annotate_trace(trace, SIMPLE, kernel="general")
    mono = annotate_trace(trace, SIMPLE, kernel="mono")
    assert_annotations_equal(general, mono)


@pytest.mark.parametrize("config", ELIGIBLE, ids=lambda c: c.name)
@pytest.mark.parametrize("name", ("compress", "eqntott", "xlisp",
                                  "tomcatv"))
def test_mono_bit_identical_all_eligible_configs(tiny_traces, name,
                                                 config):
    trace = tiny_traces(name)
    general = annotate_trace(trace, config, kernel="general")
    mono = annotate_trace(trace, config, kernel="mono")
    assert_annotations_equal(general, mono)


@pytest.mark.parametrize(
    "config", PAPER_CONFIGS + EXTENSION_CONFIGS, ids=lambda c: c.name)
def test_auto_matches_general_everywhere(tiny_traces, config):
    """The production default (auto) is bit-identical to the oracle."""
    trace = tiny_traces("compress")
    general = annotate_trace(trace, config, kernel="general")
    auto = annotate_trace(trace, config)
    assert_annotations_equal(general, auto)


def test_audit_mode_still_works(tiny_traces):
    """audit=True silently routes around the mono kernel."""
    trace = tiny_traces("grep")
    audited = annotate_trace(trace, SIMPLE, audit=True)
    plain = annotate_trace(trace, SIMPLE, kernel="general")
    assert (audited.outcomes == plain.outcomes).all()
    assert audited.audit_log is not None
