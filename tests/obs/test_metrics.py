"""Unit tests for repro.obs: registry, schema, rendering, counters."""

from __future__ import annotations

import json

import pytest

from repro.lvp.config import SIMPLE
from repro.lvp.unit import LoadOutcome
from repro.obs.metrics import (
    METRICS_ENV,
    MetricsRegistry,
    RUN_SCOPE,
    SCHEMA_ID,
    Span,
    load_metrics,
    metrics_enabled_from_env,
    write_metrics,
)
from repro.obs.render import SLOWEST_MARK, render_stats
from repro.obs.schema import validate_metrics


def _registry_with_content() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.add_many("grep", "sim/ppc/", {"instructions": 100, "loads": 20})
    registry.add_many("grep", "sim/alpha/", {"instructions": 101})
    registry.inc("quick", "sim/ppc/instructions", 7)
    registry.inc_run("cache/hits", 3)
    registry.record_span(Span("grep", "trace", "trace/grep/ppc",
                              10.0, 11.5, 42))
    registry.record_span(Span("grep", "model", "model/ppc/grep/620/base",
                              11.5, 12.0, 42))
    registry.record_span(Span(None, "report", "fig1", 12.0, 12.25, 42))
    return registry


class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("b", "x")
        registry.inc("b", "x", 4)
        registry.add_many("b", "pre/", {"x": 2})
        assert registry.benchmark_counters() == {"b": {"x": 5, "pre/x": 2}}

    def test_span_context_records_even_on_failure(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("b", "trace", "trace/b/ppc"):
                raise RuntimeError("stage blew up")
        assert len(registry.spans) == 1
        span = registry.spans[0]
        assert (span.benchmark, span.phase) == ("b", "trace")
        assert span.end >= span.start

    def test_fragment_merge_is_order_independent(self):
        source_a = MetricsRegistry()
        source_a.inc("b1", "x", 2)
        source_a.inc_run("hits", 1)
        source_a.record_span(Span("b1", "trace", "t", 0.0, 1.0, 1))
        source_b = MetricsRegistry()
        source_b.inc("b1", "x", 3)
        source_b.inc("b2", "y", 5)

        forward = MetricsRegistry()
        forward.merge_fragment(source_a.fragment())
        forward.merge_fragment(source_b.fragment())
        backward = MetricsRegistry()
        backward.merge_fragment(source_b.fragment())
        backward.merge_fragment(source_a.fragment())
        assert forward.benchmark_counters() == backward.benchmark_counters()
        assert forward.benchmark_counters() == {"b1": {"x": 5},
                                                "b2": {"y": 5}}
        assert forward.run_counters() == {"hits": 1}

    def test_fragment_survives_pickling(self):
        import pickle
        fragment = _registry_with_content().fragment()
        restored = pickle.loads(pickle.dumps(fragment))
        merged = MetricsRegistry()
        merged.merge_fragment(restored)
        assert merged.benchmark_counters()["grep"]["sim/ppc/loads"] == 20
        assert len(merged.spans) == 3

    def test_phase_seconds_aggregates_by_scope(self):
        phases = _registry_with_content().phase_seconds()
        assert phases["grep"]["trace"] == pytest.approx(1.5)
        assert phases["grep"]["model"] == pytest.approx(0.5)
        assert phases[RUN_SCOPE]["report"] == pytest.approx(0.25)

    def test_env_knob(self, monkeypatch):
        monkeypatch.delenv(METRICS_ENV, raising=False)
        assert metrics_enabled_from_env() is False
        assert metrics_enabled_from_env(default=True) is True
        monkeypatch.setenv(METRICS_ENV, "0")
        assert metrics_enabled_from_env(default=True) is False
        monkeypatch.setenv(METRICS_ENV, "1")
        assert metrics_enabled_from_env() is True


class TestDocument:
    def test_round_trip_and_schema(self, tmp_path):
        document = _registry_with_content().to_document(
            run_id="r1", manifest={"scale": "tiny", "jobs": 2,
                                   "benchmarks": ["grep", "quick"],
                                   "exhibits": ["fig1"]})
        assert validate_metrics(document) == []
        assert document["schema"] == SCHEMA_ID
        assert document["context"]["scale"] == "tiny"
        path = write_metrics(tmp_path, document)
        assert path.name == "metrics.json"
        assert load_metrics(tmp_path) == json.loads(json.dumps(document))

    def test_load_missing_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_metrics(tmp_path)

    def test_validator_catches_damage(self):
        document = _registry_with_content().to_document(run_id="r1")
        assert validate_metrics(document) == []
        assert validate_metrics("not a mapping")
        assert validate_metrics({})
        broken = dict(document, schema="repro.obs/v999")
        assert any("schema" in e for e in validate_metrics(broken))
        broken = json.loads(json.dumps(document))
        broken["benchmarks"]["grep"]["sim/ppc/loads"] = "many"
        assert any("integer" in e for e in validate_metrics(broken))
        broken = json.loads(json.dumps(document))
        broken["spans"][0]["end"] = broken["spans"][0]["start"] - 1
        assert any("ends before" in e for e in validate_metrics(broken))
        broken = json.loads(json.dumps(document))
        del broken["spans"][0]["pid"]
        assert any("missing keys" in e for e in validate_metrics(broken))


class TestRender:
    def test_stats_render_marks_slowest_phase(self):
        document = _registry_with_content().to_document(run_id="r1")
        text = render_stats(document)
        assert "r1" in text
        assert SLOWEST_MARK.strip() in text
        assert "grep" in text
        # The run-scope counter section surfaces cache statistics.
        assert "cache/hits" in text

    def test_full_dump_lists_every_counter(self):
        document = _registry_with_content().to_document(run_id="r1")
        full = render_stats(document, full=True)
        assert "sim/alpha/instructions" in full
        assert "sim/ppc/instructions" in render_stats(document, full=True)

    def test_render_tolerates_empty_document(self):
        document = MetricsRegistry().to_document(run_id="empty")
        assert validate_metrics(document) == []
        text = render_stats(document)
        assert "no phase spans recorded" in text
        assert "no counters recorded" in text


class TestSourceCounters:
    def test_sim_counters_match_trace_totals(self, grep_trace):
        from repro.sim.functional import sim_counters
        counters = sim_counters(grep_trace)
        assert counters["instructions"] == grep_trace.num_instructions
        assert counters["loads"] == grep_trace.num_loads
        assert counters["stores"] == grep_trace.num_stores
        opcode_total = sum(v for k, v in counters.items()
                           if k.startswith("op/"))
        assert opcode_total == counters["instructions"]
        assert all(isinstance(v, int) for v in counters.values())

    def test_lvp_counters_are_consistent(self, grep_trace):
        from repro.trace.annotate import annotate_trace
        stats = annotate_trace(grep_trace, SIMPLE).stats
        counters = stats.counters()
        assert counters["loads"] == stats.loads
        assert counters["lvpt_hits"] + counters["lvpt_misses"] \
            == stats.loads
        assert counters["lct_hits"] + counters["lct_misses"] == stats.loads
        assert counters["mispredicts"] \
            == stats.outcomes[LoadOutcome.INCORRECT]
        outcome_total = (counters["predicted_correct"]
                         + counters["mispredicts"]
                         + counters["no_prediction"]
                         + counters["constant_loads"])
        assert outcome_total == stats.loads

    def test_model_counters(self, tiny_session):
        ppc = tiny_session.ppc_result("grep")
        counters = ppc.counters()
        assert counters["cycles"] == ppc.cycles
        assert counters["l1_hits"] \
            == ppc.l1_stats.accesses - ppc.l1_stats.misses
        alpha = tiny_session.alpha_result("grep")
        alpha_counters = alpha.counters()
        assert alpha_counters["instructions"] == alpha.instructions
        assert alpha_counters["value_mispredicts"] \
            == alpha.value_mispredicts

    def test_cache_counters(self, tmp_path, grep_trace):
        from repro.harness.cache import TraceCache
        cache = TraceCache(tmp_path)
        assert cache.load("grep", "ppc", "tiny") is None
        cache.store(grep_trace, "tiny")
        assert cache.load("grep", "ppc", "tiny") is not None
        snapshot = cache.counters.as_dict()
        assert snapshot["misses"] == 1
        assert snapshot["stores"] == 1
        assert snapshot["hits"] == 1
        assert snapshot["quarantined"] == 0

    def test_cache_counts_quarantine_as_miss(self, tmp_path, grep_trace):
        from repro.harness.cache import TraceCache
        cache = TraceCache(tmp_path)
        cache.store(grep_trace, "tiny")
        bundle = cache.path_for("grep", "ppc", "tiny")
        bundle.write_bytes(b"garbage, not a zip")
        assert cache.load("grep", "ppc", "tiny") is None
        snapshot = cache.counters.as_dict()
        assert snapshot["misses"] == 1
        assert snapshot["quarantined"] == 1
