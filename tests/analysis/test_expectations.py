"""Tests for the paper-shape expectation checker."""

from repro.analysis import (
    EXPECTATIONS,
    check_all,
    render_check_report,
)


class TestExpectations:
    def test_registry_well_formed(self):
        assert len(EXPECTATIONS) >= 8
        for expectation in EXPECTATIONS:
            assert expectation.exhibit
            assert expectation.claim
            assert callable(expectation.check)

    def test_all_hold_on_fixture_subset(self, tiny_session):
        results = check_all(tiny_session)
        failing = [r.expectation.claim for r in results if not r.passed]
        # The grep/gawk standout claim needs gawk, absent from the tiny
        # fixture; everything else must hold.
        allowed_failures = {"grep and gawk are the dramatic outliers"}
        assert set(failing) <= allowed_failures, failing

    def test_report_rendering(self, tiny_session):
        results = check_all(tiny_session)
        text = render_check_report(results)
        assert "Paper-shape check" in text
        assert "claims hold" in text
        assert text.count("[") == len(EXPECTATIONS)
