"""Tests for the HTML report generator."""

from repro.analysis import build_html_report


class TestHtmlReport:
    def test_full_document(self, tiny_session):
        document = build_html_report(tiny_session,
                                     exhibits=("tab2", "fig1"))
        assert document.startswith("<!DOCTYPE html>")
        assert document.rstrip().endswith("</html>")
        assert "Load Value Locality" in document
        assert "LVP Unit Configurations" in document

    def test_bar_charts_for_figures(self, tiny_session):
        document = build_html_report(tiny_session, exhibits=("fig1",))
        assert "bar-fill" in document
        assert 'id=\'fig1\'' in document or 'id="fig1"' in document

    def test_escaping(self, tiny_session):
        document = build_html_report(tiny_session, exhibits=("tab2",))
        # The rendered ASCII table's '<' placeholders must be escaped.
        assert "<pre>" in document
        assert "<script" not in document

    def test_toc_links_every_exhibit(self, tiny_session):
        exhibits = ("tab2", "tab5", "fig1")
        document = build_html_report(tiny_session, exhibits=exhibits)
        for exp_id in exhibits:
            assert f"#{exp_id}" in document
