"""Tests for the Table 2 / Table 5 reference renders."""

from repro.analysis import render_table2, render_table5


class TestTable2:
    def test_all_four_configs(self):
        text = render_table2()
        for name in ("Simple", "Constant", "Limit", "Perfect"):
            assert name in text

    def test_paper_values_present(self):
        text = render_table2()
        assert "1024" in text  # Simple/Constant LVPT
        assert "4096" in text  # Limit LVPT
        assert "16/Perf" in text  # Limit's oracle-selected history
        assert "oracle" in text  # Perfect row

    def test_tracks_live_configs(self):
        """The render reads the real config objects, so it must agree
        with them field by field."""
        from repro.lvp import SIMPLE
        text = render_table2()
        simple_line = next(line for line in text.splitlines()
                           if line.startswith("Simple"))
        assert str(SIMPLE.lvpt_entries) in simple_line
        assert str(SIMPLE.cvu_entries) in simple_line


class TestTable5:
    def test_all_classes(self):
        text = render_table5()
        for label in ("Simple Integer", "Load/Store", "Simple FP",
                      "Complex FP", "Branch"):
            assert label in text

    def test_tracks_live_latencies(self):
        from repro.isa import Opcode
        from repro.uarch.components import PPC620_LATENCY
        text = render_table5()
        load_line = next(line for line in text.splitlines()
                         if line.startswith("Load/Store"))
        assert str(PPC620_LATENCY[Opcode.LD].result) in load_line
