"""Unit tests for report rendering and summary statistics."""

import pytest

from repro.analysis import (
    TextTable,
    format_percent,
    format_speedup,
    geometric_mean,
    render_series,
)


class TestGeometricMean:
    def test_identity(self):
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_order_invariant(self):
        assert geometric_mean([1.2, 0.9, 3.0]) == \
            pytest.approx(geometric_mean([3.0, 1.2, 0.9]))


class TestFormatting:
    def test_percent(self):
        assert format_percent(0.5) == "50.0%"
        assert format_percent(0.123, 0) == "12%"

    def test_speedup(self):
        assert format_speedup(1.0567) == "1.057"


class TestTextTable:
    def test_renders_headers_and_rows(self):
        table = TextTable(["name", "value"], title="T")
        table.add_row(["a", 1])
        table.add_row(["bb", 22])
        text = table.render()
        assert "T" in text
        assert "name" in text
        assert "bb" in text

    def test_alignment(self):
        table = TextTable(["name", "v"])
        table.add_row(["x", 123456])
        lines = table.render().splitlines()
        assert lines[-1].endswith("123456")

    def test_row_width_mismatch(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(["only-one"])

    def test_separator(self):
        table = TextTable(["abcd"])
        table.add_row(["1"])
        table.add_separator()
        table.add_row(["GM"])
        lines = table.render().splitlines()
        rule = lines[1]
        assert set(rule) == {"-"}
        assert lines.count(rule) == 2  # header rule + separator

    def test_render_series(self):
        text = render_series(
            "Fig", ["x", "y"], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]}
        )
        assert "10.0%" in text
        assert "40.0%" in text
