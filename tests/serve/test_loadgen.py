"""Tests for the serve bench document: schema validation, the
regression gates, rendering, and the atomic write/load round trip.
(The live load-generation path is exercised by the CI smoke job and
the chaos drills; these tests pin the offline machinery.)"""

from __future__ import annotations

import copy

import pytest

from repro.serve.loadgen import (
    SERVE_SCHEMA_ID,
    compare_serve_bench,
    load_serve_bench,
    render_serve_bench,
    validate_serve_bench,
    write_serve_bench,
)

GOOD = {
    "schema": SERVE_SCHEMA_ID,
    "requests": 60,
    "concurrency": 6,
    "overload": 32,
    "latency": {"count": 60, "p50_s": 0.01, "p95_s": 0.05,
                "p99_s": 0.08, "mean_s": 0.02, "max_s": 0.1},
    "coalescing": {"received": 95, "coalesced": 30, "cache_hits": 20,
                   "hit_rate": 0.5263},
    "overload_burst": {"sent": 32, "ok": 20, "shed": 12, "failed": 0,
                       "shed_rate": 0.375, "queue_limit": 16},
    "phases": {"warm": {"ok": 3, "failed": 0},
               "steady": {"ok": 60, "shed": 0, "failed": 0}},
    "server": {"workers": 2, "scale": "tiny", "shed_total": 12},
    "host": {"python": "3.11", "machine": "x86_64"},
}


class TestValidation:
    def test_good_document_validates(self):
        assert validate_serve_bench(GOOD) == []

    def test_not_an_object(self):
        assert validate_serve_bench([1, 2]) == \
            ["document is not an object"]

    def test_wrong_schema_id(self):
        bad = dict(GOOD, schema="something/v9")
        assert any("schema" in e for e in validate_serve_bench(bad))

    def test_negative_latency_rejected(self):
        bad = copy.deepcopy(GOOD)
        bad["latency"]["p99_s"] = -1.0
        assert any("p99_s" in e for e in validate_serve_bench(bad))

    def test_missing_rates_rejected(self):
        bad = copy.deepcopy(GOOD)
        del bad["overload_burst"]["shed_rate"]
        assert any("shed_rate" in e for e in validate_serve_bench(bad))


class TestRegressionGates:
    def test_identical_documents_pass(self):
        assert compare_serve_bench(GOOD, GOOD) == []

    def test_small_latency_wobble_is_noise(self):
        current = copy.deepcopy(GOOD)
        # 10x the baseline ratio-wise, but the absolute delta (90ms)
        # sits under the 250ms noise floor, so it must not gate.
        current["latency"]["p50_s"] = GOOD["latency"]["p50_s"] * 10
        assert compare_serve_bench(current, GOOD) == []

    def test_large_latency_regression_fails(self):
        current = copy.deepcopy(GOOD)
        current["latency"]["p99_s"] = 3.0  # 37x and >noise floor
        messages = compare_serve_bench(current, GOOD)
        assert len(messages) == 1 and "p99_s" in messages[0]

    def test_lost_coalescing_fails_at_any_latency(self):
        current = copy.deepcopy(GOOD)
        current["coalescing"]["hit_rate"] = 0.0
        messages = compare_serve_bench(current, GOOD)
        assert any("no longer coalesce" in m for m in messages)

    def test_lost_shedding_fails_at_any_latency(self):
        current = copy.deepcopy(GOOD)
        current["overload_burst"]["shed_rate"] = 0.0
        messages = compare_serve_bench(current, GOOD)
        assert any("no longer sheds" in m for m in messages)


class TestRoundTrip:
    def test_write_and_load(self, tmp_path):
        path = write_serve_bench(GOOD, tmp_path / "BENCH_SERVE.json")
        assert load_serve_bench(path) == GOOD
        assert not list(tmp_path.glob("*.tmp"))

    def test_render_mentions_the_headline_numbers(self):
        text = render_serve_bench(GOOD)
        assert "p95" in text and "hit rate 52.6%" in text
        assert "12/32 shed" in text
