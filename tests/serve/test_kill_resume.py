"""The kill/restart differential suite for ``repro serve``.

The service's headline robustness claim: an experiment interrupted by
SIGTERM mid-run is parked through the journal, and a restarted server
resumes it to a result byte-identical to a cold serial CLI run.  This
suite proves it with real subprocesses -- a baseline ``repro
experiment`` run is the identity oracle, and the served result's text
must equal its stdout exactly.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.serve.client import ServeClient

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src"))

EXHIBIT = "fig6"
BENCHMARKS = ["grep", "compress"]


def _env():
    env = {key: value for key, value in os.environ.items()
           if not key.startswith("REPRO_")}
    env["PYTHONPATH"] = SRC
    return env


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """The cold serial CLI run whose stdout is the identity oracle."""
    cwd = tmp_path_factory.mktemp("serve-baseline")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "experiment", EXHIBIT,
         "--scale", "tiny", "--benchmarks", ",".join(BENCHMARKS)],
        capture_output=True, text=True, env=_env(), cwd=cwd,
        timeout=600)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class _Daemon:
    def __init__(self, state_dir, drain_timeout: float = 1.0):
        self._sockdir = tempfile.mkdtemp(prefix="repro-kr-")
        self.socket_path = os.path.join(self._sockdir, "s.sock")
        self.state_dir = str(state_dir)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", self.socket_path,
             "--state-dir", self.state_dir,
             "--scale", "tiny",
             "--drain-timeout", str(drain_timeout)],
            env=_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE, text=True)

    def stop(self, timeout: float = 60.0) -> int:
        if self.proc.poll() is None:
            self.proc.terminate()
        try:
            code = self.proc.wait(timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            code = self.proc.wait(10)
        shutil.rmtree(self._sockdir, ignore_errors=True)
        return code

    def ready(self) -> None:
        with ServeClient(self.socket_path) as probe:
            assert probe.wait_until_ready(timeout=60.0), \
                "server never became ready"


class TestKillResume:
    def test_sigterm_mid_run_resumes_byte_identical(self, tmp_path,
                                                    baseline):
        state_dir = tmp_path / "state"
        # A drain window far shorter than the experiment's runtime, so
        # the SIGTERM reliably interrupts the run instead of letting it
        # finish gracefully during the drain.
        first = _Daemon(state_dir, drain_timeout=0.2)
        try:
            first.ready()
            fates: list = []

            def ask():
                try:
                    with ServeClient(first.socket_path,
                                     timeout=120.0) as own:
                        fates.append(("ok", own.experiment(
                            EXHIBIT, list(BENCHMARKS), scale="tiny")))
                except Exception as exc:  # noqa: BLE001 - recorded
                    fates.append(("error", exc))

            asker = threading.Thread(target=ask, daemon=True)
            asker.start()
            # Wait for the write-ahead pending record, then let the
            # experiment subprocess get genuinely under way before the
            # kill (the whole run takes well under a second warm).
            pending_dir = state_dir / "pending"
            give_up = time.monotonic() + 60.0
            while time.monotonic() < give_up \
                    and not list(pending_dir.glob("*.json")):
                time.sleep(0.01)
            pending = list(pending_dir.glob("*.json"))
            assert pending, "no write-ahead pending record appeared"
            time.sleep(0.1)
            exit_code = first.stop()
            assert exit_code == 0, \
                f"drained server exited {exit_code}, not 0"
            asker.join(30)
        finally:
            first.stop()

        # The interrupted run is parked for resume, not lost.
        assert list((state_dir / "pending").glob("*.json")), \
            "the killed run left no pending record to resume"

        second = _Daemon(state_dir)
        try:
            second.ready()
            with ServeClient(second.socket_path, timeout=300.0) as client:
                result = client.experiment(EXHIBIT, list(BENCHMARKS),
                                           scale="tiny")
            assert result["text"] == baseline, \
                "resumed exhibit is not byte-identical to the cold run"
            assert second.stop() == 0
        finally:
            second.stop()

    def test_unharmed_server_serves_the_same_bytes(self, tmp_path,
                                                   baseline):
        """Control: no kill at all -- the served experiment equals the
        CLI run, so the resumed path above is compared against a
        meaningful oracle."""
        daemon = _Daemon(tmp_path / "state")
        try:
            daemon.ready()
            with ServeClient(daemon.socket_path, timeout=300.0) as client:
                result = client.experiment(EXHIBIT, list(BENCHMARKS),
                                           scale="tiny")
                again = client.experiment(EXHIBIT, list(BENCHMARKS),
                                          scale="tiny")
                assert client.last_meta["cached"]
            assert result["text"] == baseline
            assert again == result
        finally:
            daemon.stop()
