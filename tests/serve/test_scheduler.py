"""Tests for the serve scheduler: admission, coalescing, deadlines,
circuit breaking, and drain -- all in-process against stub runners
(the scheduler is deliberately runner-agnostic)."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ProtocolError,
    ServiceOverloadError,
)
from repro.serve.protocol import request_key
from repro.serve.scheduler import (
    CircuitBreaker,
    Scheduler,
    ServeStats,
    breaker_subject,
    normalize_params,
    percentile,
)


def run(coro):
    return asyncio.run(coro)


class TestPercentile:
    def test_nearest_rank(self):
        samples = [float(n) for n in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0

    def test_degenerate_inputs(self):
        assert percentile([], 99) == 0.0
        assert percentile([7.0], 50) == 7.0


class TestCoalescing:
    def test_identical_requests_share_one_execution(self):
        calls = {"n": 0}

        async def runner(op, params, deadline_s):
            calls["n"] += 1
            await asyncio.sleep(0.02)
            return {"answer": 42}

        async def drive():
            sched = Scheduler(runner, workers=4)
            return await asyncio.gather(*[
                sched.submit("trace", {"bench": "grep"})
                for _ in range(8)]), sched

        pairs, sched = run(drive())
        assert calls["n"] == 1
        assert all(result == {"answer": 42} for result, _m in pairs)
        assert sum(1 for _r, meta in pairs if meta["coalesced"]) == 7
        assert sched.stats.coalesced == 7
        assert sched.stats.completed == 1

    def test_completed_results_come_from_the_cache(self):
        calls = {"n": 0}

        async def runner(op, params, deadline_s):
            calls["n"] += 1
            return calls["n"]

        async def drive():
            sched = Scheduler(runner)
            first, first_meta = await sched.submit("trace", {"bench": "x"})
            second, second_meta = await sched.submit("trace", {"bench": "x"})
            return first, second, second_meta, sched

        first, second, second_meta, sched = run(drive())
        assert calls["n"] == 1 and first == second == 1
        assert second_meta["cached"] and sched.stats.cache_hits == 1

    def test_failures_are_not_cached(self):
        calls = {"n": 0}

        async def runner(op, params, deadline_s):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("first attempt fails")
            return "second attempt"

        async def drive():
            sched = Scheduler(runner)
            with pytest.raises(ValueError):
                await sched.submit("trace", {"bench": "x"})
            return await sched.submit("trace", {"bench": "x"})

        result, meta = run(drive())
        assert result == "second attempt" and not meta["cached"]
        assert calls["n"] == 2

    def test_coalesced_waiter_cancellation_spares_the_execution(self):
        async def runner(op, params, deadline_s):
            await asyncio.sleep(0.05)
            return "survived"

        async def drive():
            sched = Scheduler(runner)
            first = asyncio.ensure_future(
                sched.submit("trace", {"bench": "x"}))
            await asyncio.sleep(0.01)
            second = asyncio.ensure_future(
                sched.submit("trace", {"bench": "x"}))
            await asyncio.sleep(0.01)
            second.cancel()
            result, _meta = await first
            return result

        assert run(drive()) == "survived"


class TestAdmissionControl:
    def test_queue_high_water_mark_sheds(self):
        async def drive():
            gate = asyncio.Event()

            async def runner(op, params, deadline_s):
                await gate.wait()
                return "ok"

            sched = Scheduler(runner, workers=1, queue_limit=2)
            tasks = [asyncio.ensure_future(
                sched.submit("trace", {"n": n})) for n in range(3)]
            await asyncio.sleep(0.02)  # 1 executing + 2 queued
            with pytest.raises(ServiceOverloadError) as caught:
                await sched.submit("trace", {"n": 3})
            gate.set()
            await asyncio.gather(*tasks)
            return caught.value, sched

        exc, sched = run(drive())
        assert exc.retry_after_s > 0
        assert sched.stats.shed == 1
        assert sched.stats.completed == 3

    def test_retry_after_stays_in_band(self):
        async def runner(op, params, deadline_s):
            return None

        async def drive():
            sched = Scheduler(runner)
            for n in range(5):
                await sched.submit("trace", {"n": n})
            return sched._retry_after()

        assert 0.1 <= run(drive()) <= 5.0


class TestDeadlines:
    def test_backstop_expires_a_wedged_runner(self):
        async def runner(op, params, deadline_s):
            await asyncio.sleep(30.0)

        async def drive():
            sched = Scheduler(runner, deadline_grace=0.0)
            with pytest.raises(DeadlineExceededError, match="deadline"):
                await sched.submit("trace", {"bench": "x"},
                                   deadline_s=0.05)
            return sched

        sched = run(drive())
        assert sched.stats.deadline_expired == 1
        assert sched.in_flight == 0 and sched.queue_depth == 0

    def test_deadline_failures_count_toward_the_breaker(self):
        async def runner(op, params, deadline_s):
            await asyncio.sleep(30.0)

        async def drive():
            sched = Scheduler(runner, deadline_grace=0.0,
                              breaker_threshold=2, breaker_cooldown=60.0)
            for n in range(2):
                with pytest.raises(DeadlineExceededError):
                    await sched.submit("trace", {"bench": "x", "n": n},
                                       deadline_s=0.05)
            with pytest.raises(CircuitOpenError):
                await sched.submit("trace", {"bench": "x", "n": 2})
            return sched

        assert run(drive()).stats.circuit_rejections == 1


class TestCircuitBreaker:
    def test_opens_after_threshold_and_recloses_on_probe(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(threshold=2, cooldown=10.0,
                                 clock=lambda: clock["now"])
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.remaining() == 10.0
        clock["now"] = 10.0
        assert breaker.allow()  # the half-open probe
        assert not breaker.allow()  # only one probe at a time
        breaker.record_ok()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_probe_reopens(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(threshold=1, cooldown=5.0,
                                 clock=lambda: clock["now"])
        breaker.record_failure()
        clock["now"] = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_subjects_isolate_benchmarks(self):
        assert breaker_subject("trace", {"bench": "grep"}) == "trace:grep"
        assert breaker_subject("experiment", {"exhibit": "fig6"}) == \
            "experiment:fig6"
        assert breaker_subject("ping", {}) == "ping:*"

    def test_scheduler_shields_a_failing_subject(self):
        async def runner(op, params, deadline_s):
            if params["bench"] == "grep":
                raise ValueError("grep is broken")
            return "fine"

        async def drive():
            sched = Scheduler(runner, breaker_threshold=2,
                              breaker_cooldown=60.0)
            for n in range(2):
                with pytest.raises(ValueError):
                    await sched.submit("trace", {"bench": "grep", "n": n})
            with pytest.raises(CircuitOpenError, match="trace:grep"):
                await sched.submit("trace", {"bench": "grep", "n": 2})
            # An unrelated benchmark is untouched by grep's circuit.
            result, _meta = await sched.submit(
                "trace", {"bench": "compress"})
            return result

        assert run(drive()) == "fine"


class TestDrain:
    def test_draining_sheds_new_work_but_serves_the_cache(self):
        async def runner(op, params, deadline_s):
            return "done"

        async def drive():
            sched = Scheduler(runner)
            await sched.submit("trace", {"bench": "grep"})
            sched.draining = True
            with pytest.raises(ServiceOverloadError, match="draining"):
                await sched.submit("trace", {"bench": "compress"})
            result, meta = await sched.submit("trace", {"bench": "grep"})
            idle = await sched.wait_idle(1.0)
            return result, meta, idle

        result, meta, idle = run(drive())
        assert result == "done" and meta["cached"] and idle

    def test_wait_idle_times_out_and_cancel_clears(self):
        async def drive():
            gate = asyncio.Event()

            async def runner(op, params, deadline_s):
                await gate.wait()

            sched = Scheduler(runner)
            task = asyncio.ensure_future(
                sched.submit("trace", {"bench": "x"}))
            await asyncio.sleep(0.01)
            timed_out = await sched.wait_idle(0.05)
            cancelled = sched.cancel_inflight()
            with pytest.raises(asyncio.CancelledError):
                await task
            return timed_out, cancelled

        timed_out, cancelled = run(drive())
        assert not timed_out and cancelled == 1


class TestSnapshot:
    def test_rates_and_counters(self):
        async def runner(op, params, deadline_s):
            return "ok"

        async def drive():
            sched = Scheduler(runner)
            await asyncio.gather(*[
                sched.submit("trace", {"bench": "grep"})
                for _ in range(4)])
            await sched.submit("trace", {"bench": "grep"})
            return sched.snapshot()

        doc = run(drive())
        assert doc["received"] == 5 and doc["completed"] == 1
        assert doc["coalesced"] + doc["cache_hits"] == 4
        assert doc["coalescing_hit_rate"] == pytest.approx(0.8)
        assert doc["shed_rate"] == 0.0
        assert doc["latency"]["count"] == 1

    def test_latency_summary_shape(self):
        stats = ServeStats()
        for ms in (1, 2, 3):
            stats.record_latency(ms / 1000.0)
        summary = stats.latency_summary()
        assert summary["count"] == 3
        assert summary["p50_ms"] == pytest.approx(2.0)
        assert summary["max_ms"] == pytest.approx(3.0)


class TestNormalization:
    def test_spellings_coalesce_to_one_key(self):
        sparse = normalize_params("trace", {"bench": "grep"},
                                  default_scale="small")
        explicit = normalize_params(
            "trace", {"bench": "grep", "scale": "small",
                      "target": "ppc"}, default_scale="small")
        assert request_key("trace", sparse) == \
            request_key("trace", explicit)

    def test_annotate_config_canonicalized(self):
        out = normalize_params("annotate",
                               {"bench": "grep", "scale": "tiny"})
        assert out["config"] == "Simple"

    def test_experiment_benchmark_order_is_preserved(self):
        # Byte-identity with CLI runs depends on the caller's order
        # surviving normalization (the report iterates benchmarks in
        # the order given).
        out = normalize_params(
            "experiment", {"exhibit": "fig6", "scale": "tiny",
                           "benchmarks": ["grep", "compress"]})
        assert out["benchmarks"] == ["grep", "compress"]

    @pytest.mark.parametrize("op,params,complaint", [
        ("trace", {"bench": "nope"}, "unknown benchmark"),
        ("trace", {"bench": "grep", "scale": "galactic"},
         "unknown scale"),
        ("trace", {"bench": "grep", "target": "mips"},
         "unknown target"),
        ("model", {"bench": "grep", "machine": "604"},
         "unknown machine"),
        ("experiment", {"exhibit": "fig99"}, "unknown exhibit"),
        ("experiment", {"exhibit": "fig6", "benchmarks": []},
         "non-empty list"),
        ("experiment", {"exhibit": "fig6", "benchmarks": ["nope"]},
         "unknown benchmark"),
    ])
    def test_invalid_requests_fail_before_admission(self, op, params,
                                                    complaint):
        with pytest.raises(ProtocolError, match=complaint):
            normalize_params(op, dict(params, scale=params.get(
                "scale", "tiny")))
