"""Live-daemon tests: a private ``repro serve`` subprocess per module,
driven through :class:`~repro.serve.client.ServeClient` and raw
sockets/HTTP to cover the paths stubs cannot."""

from __future__ import annotations

import http.client
import json
import os
import socket
import subprocess
import sys
import tempfile
import threading

import pytest

from repro.errors import ProtocolError
from repro.serve.client import ServeClient

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src"))


def _env():
    env = {key: value for key, value in os.environ.items()
           if not key.startswith("REPRO_")}
    env["PYTHONPATH"] = SRC
    return env


class _Daemon:
    """One ``repro serve`` subprocess on a short-path unix socket."""

    def __init__(self, state_dir, **flags):
        # AF_UNIX paths are limited to ~108 bytes; pytest tmp dirs can
        # be deeper than that, so sockets get their own short tempdir.
        self._sockdir = tempfile.mkdtemp(prefix="repro-st-")
        self.socket_path = os.path.join(self._sockdir, "s.sock")
        self.state_dir = str(state_dir)
        command = [sys.executable, "-m", "repro", "serve",
                   "--socket", self.socket_path,
                   "--state-dir", self.state_dir,
                   "--scale", "tiny"]
        for flag, value in flags.items():
            command += [f"--{flag.replace('_', '-')}", str(value)]
        self.proc = subprocess.Popen(
            command, env=_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE, text=True)

    def stop(self, timeout: float = 30.0) -> tuple[int, str]:
        if self.proc.poll() is None:
            self.proc.terminate()
        try:
            code = self.proc.wait(timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            code = self.proc.wait(10)
        stderr = self.proc.stderr.read() if self.proc.stderr else ""
        import shutil
        shutil.rmtree(self._sockdir, ignore_errors=True)
        return code, stderr

    def info(self) -> dict:
        with open(os.path.join(self.state_dir, "server.json")) as handle:
            return json.load(handle)


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    daemon = _Daemon(tmp_path_factory.mktemp("serve-state"),
                     http_port=0, workers=2, queue_limit=16)
    probe = ServeClient(daemon.socket_path)
    assert probe.wait_until_ready(timeout=60.0), \
        daemon.proc.stderr and "server never became ready"
    probe.close()
    yield daemon
    code, stderr = daemon.stop()
    assert code == 0, f"daemon exited {code}:\n{stderr[-2000:]}"
    assert "draining" in stderr and "drained" in stderr


@pytest.fixture()
def client(daemon):
    with ServeClient(daemon.socket_path) as client:
        yield client


class TestDataPlane:
    def test_ping_carries_the_pid(self, daemon, client):
        pong = client.ping()
        assert pong["pong"] and pong["pid"] == daemon.proc.pid

    def test_trace_and_result_cache(self, client):
        first = client.trace("grep", scale="tiny")
        assert first["instructions"] > 0
        assert first["loads"] > 0 and 0 < first["load_fraction"] < 1
        assert not client.last_meta["cached"]
        second = client.trace("grep", scale="tiny")
        assert second == first
        assert client.last_meta["cached"]

    def test_default_scale_spelling_coalesces_with_explicit(self, client):
        explicit = client.trace("compress", scale="tiny", target="ppc")
        sparse = client.trace("compress")  # server default scale: tiny
        assert sparse == explicit and client.last_meta["cached"]

    def test_bad_request_is_a_protocol_error(self, client):
        with pytest.raises(ProtocolError, match="unknown benchmark"):
            client.trace("no-such-benchmark")

    def test_concurrent_identical_requests_coalesce(self, daemon, client):
        before = client.status()
        results, errors = [], []

        def fire():
            try:
                with ServeClient(daemon.socket_path) as own:
                    results.append(
                        own.annotate("grep", scale="tiny",
                                     config="Constant"))
            except Exception as exc:  # noqa: BLE001 - fail the test below
                errors.append(exc)

        threads = [threading.Thread(target=fire) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not errors
        assert len(results) == 6
        assert all(r == results[0] for r in results)
        after = client.status()
        shared = (after["coalesced"] - before["coalesced"]) \
            + (after["cache_hits"] - before["cache_hits"])
        assert shared >= 3  # most of the burst rode one execution

    def test_status_document_shape(self, client):
        status = client.status()
        assert status["workers"] == 2 and status["queue_limit"] == 16
        assert status["scale"] == "tiny"
        assert not status["draining"]
        assert status["received"] >= status["completed"]
        assert set(status["latency"]) >= {"p50_ms", "p95_ms", "p99_ms"}


class TestWireRobustness:
    def test_garbage_line_gets_a_bad_request_response(self, daemon):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(30.0)
            sock.connect(daemon.socket_path)
            sock.sendall(b"this is not a frame\n")
            response = json.loads(sock.makefile("rb").readline())
        assert not response["ok"]
        assert response["error"]["kind"] == "bad_request"

    def test_wrong_proto_version_named_in_error(self, daemon):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(30.0)
            sock.connect(daemon.socket_path)
            sock.sendall(json.dumps(
                {"proto": "repro.serve/v9", "op": "ping",
                 "params": {}}).encode() + b"\n")
            response = json.loads(sock.makefile("rb").readline())
        assert response["error"]["kind"] == "bad_request"
        assert "repro.serve/v1" in response["error"]["message"]


class TestHttpListener:
    def test_status_over_http(self, daemon):
        port = daemon.info()["http_port"]
        assert port
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request("GET", "/v1/status")
            response = conn.getresponse()
            assert response.status == 200
            document = json.loads(response.read())
            assert document["ok"] and document["result"]["workers"] == 2
        finally:
            conn.close()

    def test_data_plane_over_http(self, daemon):
        port = daemon.info()["http_port"]
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        try:
            body = json.dumps({"params": {"bench": "grep",
                                          "scale": "tiny"}})
            conn.request("POST", "/v1/trace", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 200
            document = json.loads(response.read())
            assert document["result"]["instructions"] > 0
        finally:
            conn.close()

    def test_bad_request_maps_to_400(self, daemon):
        port = daemon.info()["http_port"]
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            body = json.dumps({"params": {"bench": "nope"}})
            conn.request("POST", "/v1/trace", body=body)
            assert conn.getresponse().status == 400
        finally:
            conn.close()


class TestDrainOp:
    def test_drain_request_shuts_the_server_down(self, tmp_path):
        daemon = _Daemon(tmp_path / "state")
        try:
            with ServeClient(daemon.socket_path) as client:
                assert client.wait_until_ready(timeout=60.0)
                acknowledged = client.drain()
                assert acknowledged["draining"]
            code, stderr = daemon.stop(timeout=60.0)
            assert code == 0, stderr[-2000:]
            assert "drained" in stderr
        finally:
            daemon.stop()
