"""Tests for the ``repro.serve/v1`` wire protocol."""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ProtocolError,
    ReproError,
    ServiceOverloadError,
)
from repro.serve import protocol


class TestFrames:
    def test_round_trip(self):
        request = protocol.make_request(
            "trace", {"bench": "grep", "scale": "tiny"},
            request_id="t-1", deadline_s=5.0)
        assert protocol.decode_frame(
            protocol.encode_frame(request)) == request

    def test_canonical_json_is_stable(self):
        a = protocol.canonical_json({"b": 1, "a": [2, {"d": 3, "c": 4}]})
        b = protocol.canonical_json(
            json.loads('{"a": [2, {"c": 4, "d": 3}], "b": 1}'))
        assert a == b and " " not in a

    def test_oversized_frame_rejected_both_ways(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.encode_frame(
                {"pad": "x" * protocol.MAX_FRAME_BYTES})
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.decode_frame(
                b"x" * (protocol.MAX_FRAME_BYTES + 1))

    @pytest.mark.parametrize("line", [
        b"not json\n",
        b"[1, 2, 3]\n",
        b'"a bare string"\n',
        b"\xff\xfe garbage\n",
    ])
    def test_damaged_frames_rejected(self, line):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(line)


class TestRequestValidation:
    def test_wrong_protocol_id(self):
        with pytest.raises(ProtocolError, match="repro.serve/v1"):
            protocol.validate_request(
                {"proto": "repro.serve/v0", "op": "ping", "params": {}})

    def test_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            protocol.make_request("explode")

    @pytest.mark.parametrize("deadline", [0, -1, "soon", True])
    def test_bad_deadlines(self, deadline):
        with pytest.raises(ProtocolError, match="deadline_s"):
            protocol.validate_request(
                {"proto": protocol.PROTOCOL_ID, "op": "ping",
                 "params": {}, "deadline_s": deadline})

    def test_params_must_be_object(self):
        with pytest.raises(ProtocolError, match="params"):
            protocol.validate_request(
                {"proto": protocol.PROTOCOL_ID, "op": "trace",
                 "params": ["grep"]})


class TestRequestKey:
    def test_key_ignores_id_and_deadline(self):
        assert protocol.request_key("trace", {"bench": "grep"}) == \
            protocol.request_key("trace", {"bench": "grep"})

    def test_key_order_insensitive(self):
        assert protocol.request_key(
            "model", {"bench": "grep", "machine": "620"}) == \
            protocol.request_key(
                "model", {"machine": "620", "bench": "grep"})

    def test_key_distinguishes_ops_and_params(self):
        base = protocol.request_key("trace", {"bench": "grep"})
        assert protocol.request_key("annotate", {"bench": "grep"}) != base
        assert protocol.request_key("trace", {"bench": "compress"}) != base


class TestErrorMapping:
    CASES = (
        (ServiceOverloadError("full", 0.25), "overloaded", 429,
         ServiceOverloadError),
        (DeadlineExceededError("late"), "deadline", 504,
         DeadlineExceededError),
        (CircuitOpenError("open"), "circuit_open", 503,
         CircuitOpenError),
        (ProtocolError("bad"), "bad_request", 400, ProtocolError),
        (ValueError("boom"), "failed", 500, ReproError),
    )

    @pytest.mark.parametrize("exc,kind,status,raised", CASES,
                             ids=[c[1] for c in CASES])
    def test_error_round_trip(self, exc, kind, status, raised):
        response = protocol.error_response("r-1", exc)
        assert response["error"]["kind"] == kind
        assert protocol.http_status(response) == status
        with pytest.raises(raised):
            protocol.raise_for_error(response)

    def test_retry_after_survives_the_wire(self):
        response = protocol.error_response(
            "r-1", ServiceOverloadError("full", retry_after_s=0.75))
        assert response["error"]["retry_after_s"] == 0.75
        with pytest.raises(ServiceOverloadError) as caught:
            protocol.raise_for_error(response)
        assert caught.value.retry_after_s == 0.75

    def test_ok_response_passes_through(self):
        response = protocol.ok_response("r-1", {"x": 1},
                                        {"cached": True})
        assert protocol.http_status(response) == 200
        assert protocol.raise_for_error(response) is response
