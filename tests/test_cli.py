"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


class TestSuiteCommand:
    def test_lists_all_benchmarks(self, capsys):
        out = run_cli(capsys, "suite")
        for name in ("ccl-271", "compress", "tomcatv"):
            assert name in out


class TestRunCommand:
    def test_runs_and_verifies(self, capsys):
        out = run_cli(capsys, "run", "grep", "--scale", "tiny")
        assert "verified OK" in out
        assert "instructions" in out

    def test_alpha_target(self, capsys):
        out = run_cli(capsys, "run", "grep", "--scale", "tiny",
                      "--target", "alpha")
        assert "alpha" in out


class TestLocalityCommand:
    def test_depths(self, capsys):
        out = run_cli(capsys, "locality", "compress", "--scale", "tiny",
                      "--depths", "1", "4")
        assert "depth  1" in out
        assert "depth  4" in out

    def test_general_flag(self, capsys):
        out = run_cli(capsys, "locality", "compress", "--scale", "tiny",
                      "--general")
        assert "general" in out


class TestAnnotateCommand:
    def test_outcome_mix(self, capsys):
        out = run_cli(capsys, "annotate", "compress", "--scale", "tiny")
        assert "constant" in out
        assert "prediction accuracy" in out

    def test_extension_config(self, capsys):
        out = run_cli(capsys, "annotate", "compress", "--scale", "tiny",
                      "--config", "Gshare")
        assert "Gshare" in out


class TestSpeedupCommand:
    def test_three_machines(self, capsys):
        out = run_cli(capsys, "speedup", "grep", "--scale", "tiny")
        assert "620" in out
        assert "21164" in out


class TestExperimentCommand:
    def test_single_exhibit(self, capsys):
        out = run_cli(capsys, "experiment", "fig1", "--scale", "tiny",
                      "--benchmarks", "grep,compress")
        assert "Value Locality" in out
        assert "grep" in out

    def test_unknown_exhibit_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestCheckCommand:
    def test_check_subset(self, capsys):
        out = run_cli(capsys, "check", "--scale", "tiny", "--benchmarks",
                      "grep,gawk,compress,quick,tomcatv,cjpeg,swm256,sc")
        assert "Paper-shape check" in out
        assert "9/9 claims hold" in out


class TestDoctorCommand:
    def test_quick_campaign_passes(self, capsys):
        out = run_cli(capsys, "doctor", "--quick")
        assert "Fault-injection doctor" in out
        assert "verdict: OK" in out

    def test_seeded_campaign(self, capsys):
        out = run_cli(capsys, "doctor", "--seed", "5", "--faults", "9")
        assert "seed 5" in out
        assert "9 faults" in out


class TestDegradedRuns:
    def test_sabotaged_experiment_all_exits_nonzero(self, capsys,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_SABOTAGE", "compress")
        code = main(["experiment", "all", "--scale", "tiny",
                     "--benchmarks", "grep,compress"])
        captured = capsys.readouterr()
        assert code == 1
        # Every exhibit still rendered, gaps footnoted.
        for marker in ("Table 1", "Table 6", "Figure 9"):
            assert marker in captured.out
        assert "Footnotes:" in captured.out
        assert "benchmark failure(s) degraded this run" in captured.err

    def test_sabotaged_check_reports_skips(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SABOTAGE", "quick")
        code = main(["check", "--scale", "tiny",
                     "--benchmarks", "grep,quick"])
        captured = capsys.readouterr()
        assert code == 1
        assert "[SKIP]" in captured.out
        assert "skipped)" in captured.out


class TestReportCommand:
    def test_writes_html(self, capsys, tmp_path):
        output = tmp_path / "report.html"
        out = run_cli(capsys, "report", "--scale", "tiny",
                      "--benchmarks", "grep", "--output", str(output))
        assert "wrote" in out
        html = output.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "grep" in html


class TestDisasmCommand:
    def test_disassembles(self, capsys):
        out = run_cli(capsys, "disasm", "grep", "--scale", "tiny",
                      "--count", "8")
        assert ":" in out  # at least one label

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestTraceCommand:
    def test_dumps_records(self, capsys):
        out = run_cli(capsys, "trace", "grep", "--scale", "tiny",
                      "--count", "10")
        assert "0x000100" in out  # text-segment PCs

    def test_loads_only(self, capsys):
        out = run_cli(capsys, "trace", "grep", "--scale", "tiny",
                      "--count", "200", "--loads-only")
        for line in out.splitlines():
            assert "<-" in line  # every line is a load
