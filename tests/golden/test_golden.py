"""Golden-exhibit regression tests.

The committed JSON files under ``tests/golden/`` pin the tiny-scale
paper numbers -- Figure 6 speedups and Table 3 LCT hit rates -- for the
standard five-benchmark test subset.  Any refactor that silently
changes an exhibit's numbers (a perf optimization reordering float
accumulation, a scheduling tweak, a table resize) fails here instead
of drifting the paper's results unnoticed.

When a change is *intentional*, regenerate with::

    pytest tests/golden --update-golden

and commit the diff -- the review then shows exactly which numbers
moved.  Values are rounded to 10 decimal places so the goldens are
stable across platforms' libm while still catching any real change.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.harness import run_experiment

GOLDEN_DIR = pathlib.Path(__file__).parent
PLACES = 10


def _rounded(value):
    """Copy of an exhibit ``data`` tree normalized for JSON comparison:
    floats rounded, tuples listified, non-string keys stringified."""
    if isinstance(value, float):
        return round(value, PLACES)
    if isinstance(value, dict):
        return {str(key): _rounded(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_rounded(item) for item in value]
    return value


def _check(exp_id: str, session, update: bool) -> None:
    data = _rounded(run_experiment(exp_id, session).data)
    path = GOLDEN_DIR / f"{exp_id}_tiny.json"
    if update:
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"rewrote {path.name}")
    assert path.exists(), \
        f"missing golden {path.name}; create it with --update-golden"
    golden = json.loads(path.read_text())
    assert data == golden, (
        f"{exp_id} numbers drifted from {path.name}; if the change is "
        "intentional, regenerate with: pytest tests/golden --update-golden"
    )


def test_fig6_speedups_match_golden(tiny_session, update_golden):
    _check("fig6", tiny_session, update_golden)


def test_tab3_lct_hit_rates_match_golden(tiny_session, update_golden):
    _check("tab3", tiny_session, update_golden)


def test_goldens_have_expected_shape(tiny_session):
    """The committed files cover every benchmark of the tiny subset."""
    fig6 = json.loads((GOLDEN_DIR / "fig6_tiny.json").read_text())
    tab3 = json.loads((GOLDEN_DIR / "tab3_tiny.json").read_text())
    benches = set(tiny_session.benchmark_names)
    assert set(fig6["620"]["Simple"]) == benches
    assert set(fig6["21164"]["Perfect"]) == benches
    assert set(tab3) == benches
    for row in tab3.values():
        assert set(row) == {"ppc/Simple", "ppc/Limit",
                            "alpha/Simple", "alpha/Limit"}
