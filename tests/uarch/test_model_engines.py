"""Differential suite: the fast timing-model loops vs the reference loops.

Both machine models (PPC 620 family and Alpha 21164) carry a
``reference`` scheduling loop and an inlined ``fast`` loop; these tests
require every reported statistic to be identical between the two.
"""

import pytest

from repro.errors import ConfigError
from repro.lvp.config import CONSTANT, SIMPLE
from repro.sim import run_program
from repro.trace.annotate import annotate_trace
from repro.uarch import (
    AXP21164,
    AXP21164Model,
    MODEL_ENGINES,
    PPC620,
    PPC620_PLUS,
    PPC620Model,
    resolve_model_engine,
)
from repro.workloads.suite import get_benchmark

BENCH_NAMES = ("grep", "compress", "quick", "xlisp", "tomcatv")


class TestResolution:
    def test_engines_tuple(self):
        assert MODEL_ENGINES == ("auto", "reference", "fast")

    def test_auto_selects_fast(self):
        assert resolve_model_engine("auto") == "fast"
        assert resolve_model_engine(None) == "fast"

    def test_explicit_pass_through(self):
        assert resolve_model_engine("reference") == "reference"
        assert resolve_model_engine("fast") == "fast"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            resolve_model_engine("warp")

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_ENGINE", "reference")
        assert resolve_model_engine("fast") == "reference"


@pytest.fixture(scope="module")
def annotated_traces():
    cache = {}

    def get(name, target):
        key = (name, target)
        if key not in cache:
            program = get_benchmark(name).build_program(target, "tiny")
            trace = run_program(program, name=name).trace
            cache[key] = annotate_trace(trace, SIMPLE)
        return cache[key]

    return get


def assert_ppc_results_equal(a, b):
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.load_outcomes == b.load_outcomes
    assert a.verify_histogram == b.verify_histogram
    assert a.fu_wait == b.fu_wait
    assert a.bank_conflicts == b.bank_conflicts
    assert a.bank_conflict_cycles == b.bank_conflict_cycles
    assert a.loads == b.loads
    assert a.branch_stats == b.branch_stats
    assert a.l1_stats == b.l1_stats


@pytest.mark.parametrize("use_lvp", (True, False),
                         ids=("lvp", "nolvp"))
@pytest.mark.parametrize("name", BENCH_NAMES)
def test_ppc620_fast_matches_reference(annotated_traces, name, use_lvp):
    annotated = annotated_traces(name, "ppc")
    reference = PPC620Model(PPC620).run(annotated, use_lvp=use_lvp,
                                        engine="reference")
    fast = PPC620Model(PPC620).run(annotated, use_lvp=use_lvp,
                                   engine="fast")
    assert_ppc_results_equal(reference, fast)


@pytest.mark.parametrize("name", BENCH_NAMES)
def test_ppc620_plus_fast_matches_reference(annotated_traces, name):
    annotated = annotated_traces(name, "ppc")
    reference = PPC620Model(PPC620_PLUS).run(annotated,
                                             engine="reference")
    fast = PPC620Model(PPC620_PLUS).run(annotated, engine="fast")
    assert_ppc_results_equal(reference, fast)


@pytest.mark.parametrize("use_lvp", (True, False),
                         ids=("lvp", "nolvp"))
@pytest.mark.parametrize("name", BENCH_NAMES)
def test_axp21164_fast_matches_reference(annotated_traces, name,
                                         use_lvp):
    annotated = annotated_traces(name, "alpha")
    reference = AXP21164Model(AXP21164).run(annotated, use_lvp=use_lvp,
                                            engine="reference")
    fast = AXP21164Model(AXP21164).run(annotated, use_lvp=use_lvp,
                                       engine="fast")
    assert reference.cycles == fast.cycles
    assert reference.instructions == fast.instructions
    assert reference.load_outcomes == fast.load_outcomes
    assert reference.constant_past_miss == fast.constant_past_miss
    assert reference.value_mispredicts == fast.value_mispredicts
    assert reference.l1_stats == fast.l1_stats
    assert reference.branch_stats == fast.branch_stats


def test_constant_config_paths_agree(annotated_traces):
    """The CVU-heavy Constant config exercises the constant-load path."""
    program = get_benchmark("xlisp").build_program("ppc", "tiny")
    trace = run_program(program, name="xlisp").trace
    annotated = annotate_trace(trace, CONSTANT)
    reference = PPC620Model(PPC620).run(annotated, engine="reference")
    fast = PPC620Model(PPC620).run(annotated, engine="fast")
    assert_ppc_results_equal(reference, fast)


def test_env_pins_engine(annotated_traces, monkeypatch):
    """REPRO_MODEL_ENGINE=reference forces the reference loop even on
    the default path, and the result is identical either way."""
    annotated = annotated_traces("grep", "ppc")
    default = PPC620Model(PPC620).run(annotated)
    monkeypatch.setenv("REPRO_MODEL_ENGINE", "reference")
    pinned = PPC620Model(PPC620).run(annotated)
    assert_ppc_results_equal(default, pinned)
