"""Precise semantics tests for the 620 model on hand-built traces.

These tests construct tiny synthetic annotated traces where the correct
schedule can be reasoned out by hand, and pin down the model's core
timing rules: dependency stalls, load latency, zero-cycle predicted
loads, the one-cycle misprediction penalty, and completion ordering.
"""

import dataclasses

import numpy as np

from repro.isa import NO_REG, Opcode, OpClass
from repro.lvp import SIMPLE, LoadOutcome
from repro.trace import NOT_A_LOAD, AnnotatedTrace, Trace, TraceColumns
from repro.uarch import PPC620, PPC620Model

#: A permissive machine: huge resources so only dependencies matter.
WIDE = dataclasses.replace(
    PPC620, name="wide", fetch_width=8, dispatch_width=8,
    complete_width=8, instruction_buffer=64, completion_buffer=64,
    gpr_rename=64, fpr_rename=64, rs_scfx=64, rs_mcfx=64, rs_fpu=64,
    rs_lsu=64, rs_bru=64, num_scfx=8, num_mcfx=8, num_fpu=8, num_lsu=8,
    num_bru=8, mem_per_cycle=8, icache_size=0,
)


def build_trace(rows):
    """Build a trace from (opcode, dst, src1, src2, addr, value) rows."""
    cols = TraceColumns()
    from repro.isa.opcodes import OP_CLASS
    for i, (opcode, dst, src1, src2, addr, value) in enumerate(rows):
        cols.pc.append(0x10000 + 4 * i)
        cols.opcode.append(int(opcode))
        cols.opclass.append(int(OP_CLASS[opcode]))
        cols.dst.append(dst)
        cols.src1.append(src1)
        cols.src2.append(src2)
        cols.addr.append(addr)
        cols.value.append(value)
        cols.kind.append(0)
        cols.size.append(8 if OP_CLASS[opcode] in (OpClass.LOAD,
                                                   OpClass.STORE) else 0)
        cols.taken.append(0)
    return Trace.from_columns(cols, name="hand", target="ppc")


def annotate_manual(trace, outcomes_by_position):
    """Attach hand-chosen LVP outcomes to specific load positions."""
    outcomes = np.full(len(trace), NOT_A_LOAD, dtype=np.uint8)
    for position, outcome in outcomes_by_position.items():
        outcomes[position] = int(outcome)
    from repro.lvp.unit import LVPStats
    return AnnotatedTrace(trace, SIMPLE, outcomes, LVPStats())


def run(trace, outcomes=None, use_lvp=False, config=WIDE):
    annotated = annotate_manual(trace, outcomes or {})
    return PPC620Model(config).run(annotated, use_lvp=use_lvp)


NOP_ROW = (Opcode.ADDI, 5, 0, NO_REG, 0, 0)


class TestDependencyChains:
    def test_independent_adds_pack_tightly(self):
        trace = build_trace([NOP_ROW] * 8)
        result = run(trace)
        # 8 independent adds, 8-wide: all dispatch in one cycle,
        # issue the next -- the whole thing is a handful of cycles.
        assert result.cycles <= 6

    def test_serial_chain_costs_one_cycle_per_link(self):
        rows = [(Opcode.ADDI, 3, 0, NO_REG, 0, 0)]
        rows += [(Opcode.ADDI, 3, 3, NO_REG, 0, 0)] * 10
        serial = run(build_trace(rows)).cycles
        parallel = run(build_trace([NOP_ROW] * 11)).cycles
        # Ten dependent links add ~ten cycles over the parallel version.
        assert serial - parallel >= 9

    def test_load_use_stall(self):
        dependent_on_load = [
            (Opcode.LD, 3, 0, NO_REG, 0x2000, 7),
            (Opcode.ADDI, 4, 3, NO_REG, 0, 0),
        ]
        independent = [
            (Opcode.LD, 3, 0, NO_REG, 0x2000, 7),
            (Opcode.ADDI, 4, 5, NO_REG, 0, 0),
        ]
        # Warm the cache in both cases by replicating the first load.
        stalled = run(build_trace(dependent_on_load * 8)).cycles
        free = run(build_trace(independent * 8)).cycles
        assert stalled > free

    def test_mul_latency_on_chain(self):
        mul_chain = [(Opcode.LI, 3, NO_REG, NO_REG, 0, 0)]
        mul_chain += [(Opcode.MUL, 3, 3, 3, 0, 0)] * 6
        add_chain = [(Opcode.LI, 3, NO_REG, NO_REG, 0, 0)]
        add_chain += [(Opcode.ADD, 3, 3, 3, 0, 0)] * 6
        mul_cycles = run(build_trace(mul_chain)).cycles
        add_cycles = run(build_trace(add_chain)).cycles
        # MUL result latency is 4 vs ADD's 1: ~3 extra cycles per link.
        assert mul_cycles - add_cycles >= 6 * 2


class TestLvpTiming:
    def _chain_after_load(self, outcome):
        """load -> dependent add chain; returns total cycles."""
        rows = [
            (Opcode.LD, 3, 0, NO_REG, 0x2000, 7),
            (Opcode.ADDI, 4, 3, NO_REG, 0, 0),
            (Opcode.ADDI, 5, 4, NO_REG, 0, 0),
            (Opcode.ADDI, 6, 5, NO_REG, 0, 0),
        ] * 6
        trace = build_trace(rows)
        outcomes = {i: outcome for i in range(0, len(rows), 4)}
        return run(trace, outcomes, use_lvp=True).cycles

    def test_correct_prediction_collapses_load_latency(self):
        predicted = self._chain_after_load(LoadOutcome.CORRECT)
        unpredicted = self._chain_after_load(LoadOutcome.NO_PREDICTION)
        assert predicted < unpredicted

    def test_constant_same_or_better_than_correct(self):
        constant = self._chain_after_load(LoadOutcome.CONSTANT)
        correct = self._chain_after_load(LoadOutcome.CORRECT)
        assert constant <= correct

    def test_incorrect_costs_at_most_a_little(self):
        """Paper: worst case is one extra latency cycle per mispredict
        (plus structural effects)."""
        incorrect = self._chain_after_load(LoadOutcome.INCORRECT)
        unpredicted = self._chain_after_load(LoadOutcome.NO_PREDICTION)
        mispredicts = 6
        assert unpredicted <= incorrect <= unpredicted + 2 * mispredicts

    def test_constant_load_skips_cache(self):
        rows = [(Opcode.LD, 3, 0, NO_REG, 0x2000, 7)] * 4
        trace = build_trace(rows)
        all_constant = {i: LoadOutcome.CONSTANT for i in range(4)}
        result = run(trace, all_constant, use_lvp=True)
        assert result.l1_stats.accesses == 0

    def test_verification_latency_recorded(self):
        rows = [(Opcode.LD, 3, 0, NO_REG, 0x2000, 7)] * 4
        trace = build_trace(rows)
        outcomes = {i: LoadOutcome.CORRECT for i in range(4)}
        result = run(trace, outcomes, use_lvp=True)
        assert sum(result.verify_histogram.values()) == 4


class TestStoreLoadOrdering:
    def test_load_waits_for_aliasing_store(self):
        aliasing = [
            (Opcode.LI, 3, NO_REG, NO_REG, 0, 0),
            (Opcode.MUL, 3, 3, 3, 0, 0),  # slow producer
            (Opcode.ST, NO_REG, 0, 3, 0x2000, 0),
            (Opcode.LD, 4, 0, NO_REG, 0x2000, 0),
            (Opcode.ADDI, 5, 4, NO_REG, 0, 0),
        ]
        disjoint = [
            (Opcode.LI, 3, NO_REG, NO_REG, 0, 0),
            (Opcode.MUL, 3, 3, 3, 0, 0),
            (Opcode.ST, NO_REG, 0, 3, 0x2000, 0),
            (Opcode.LD, 4, 0, NO_REG, 0x3000, 0),
            (Opcode.ADDI, 5, 4, NO_REG, 0, 0),
        ]
        waits = run(build_trace(aliasing * 4)).cycles
        free = run(build_trace(disjoint * 4)).cycles
        assert waits >= free


class TestInOrderCompletion:
    def test_completion_is_monotonic_bound(self):
        """A slow instruction delays everything behind it in the
        completion buffer even if later work finishes early."""
        slow_first = [
            (Opcode.LI, 3, NO_REG, NO_REG, 0, 0),
            (Opcode.DIV, 4, 3, 3, 0, 0),  # 35 cycles
        ] + [NOP_ROW] * 16
        result = run(build_trace(slow_first))
        # Completion can't finish before the divide's ~35-cycle latency.
        assert result.cycles >= 35
