"""Unit tests for the branch predictor."""

from repro.isa import Opcode
from repro.uarch.components import BranchPredictor


class TestConditional:
    def test_learns_taken_loop(self):
        predictor = BranchPredictor()
        results = [
            predictor.predict_and_update(Opcode.BNE, 0x100, True, 0x80)
            for _ in range(10)
        ]
        assert not results[0]  # cold counters predict not-taken
        assert all(results[3:])  # warmed up

    def test_learns_not_taken(self):
        predictor = BranchPredictor()
        results = [
            predictor.predict_and_update(Opcode.BEQ, 0x100, False, 0x80)
            for _ in range(5)
        ]
        assert all(results)  # init state already predicts not-taken

    def test_alternating_pattern_struggles(self):
        predictor = BranchPredictor()
        results = [
            predictor.predict_and_update(Opcode.BNE, 0x100, i % 2 == 0, 0)
            for i in range(20)
        ]
        assert results.count(False) >= 8

    def test_stats_counted(self):
        predictor = BranchPredictor()
        for i in range(10):
            predictor.predict_and_update(Opcode.BNE, 0x100, True, 0)
        assert predictor.stats.conditional == 10
        assert predictor.stats.mispredicts == \
            predictor.stats.conditional_mispredicts


class TestIndirect:
    def test_stable_target_learned(self):
        predictor = BranchPredictor()
        first = predictor.predict_and_update(Opcode.RET, 0x100, True, 0x500)
        second = predictor.predict_and_update(Opcode.RET, 0x100, True, 0x500)
        assert not first
        assert second

    def test_changing_target_mispredicts(self):
        predictor = BranchPredictor()
        predictor.predict_and_update(Opcode.JR, 0x100, True, 0x500)
        result = predictor.predict_and_update(Opcode.JR, 0x100, True, 0x600)
        assert not result
        assert predictor.stats.indirect_mispredicts == 2

    def test_bctr_uses_btb(self):
        predictor = BranchPredictor()
        predictor.predict_and_update(Opcode.BCTR, 0x100, True, 0x500)
        assert predictor.stats.indirect == 1


class TestUnconditional:
    def test_direct_jumps_always_correct(self):
        predictor = BranchPredictor()
        assert predictor.predict_and_update(Opcode.J, 0x100, True, 0x500)
        assert predictor.predict_and_update(Opcode.JAL, 0x104, True, 0x800)
        assert predictor.stats.mispredicts == 0
