"""Precise semantics tests for the 21164 model on hand-built traces."""

import dataclasses

from repro.isa import NO_REG, Opcode
from repro.lvp import LoadOutcome
from repro.uarch import AXP21164Model
from repro.uarch.axp21164.config import AXP21164

from tests.uarch.test_ppc620_semantics import annotate_manual, build_trace

NOP_ROW = (Opcode.ADDI, 5, 0, NO_REG, 0, 0)


def run(trace, outcomes=None, use_lvp=False, config=AXP21164):
    annotated = annotate_manual(trace, outcomes or {})
    return AXP21164Model(config).run(annotated, use_lvp=use_lvp)


class TestInOrderIssue:
    def test_issue_width_bound(self):
        result = run(build_trace([NOP_ROW] * 40))
        # 2 integer slots per cycle bound these 40 integer ops.
        assert result.cycles >= 20

    def test_serial_chain_dominates(self):
        rows = [(Opcode.ADDI, 3, 0, NO_REG, 0, 0)]
        rows += [(Opcode.ADDI, 3, 3, NO_REG, 0, 0)] * 20
        serial = run(build_trace(rows)).cycles
        parallel = run(build_trace([NOP_ROW] * 21)).cycles
        assert serial > parallel

    def test_younger_blocked_by_older_stall(self):
        """In-order: an independent op behind a stalled one also waits."""
        stall_then_free = [
            (Opcode.LI, 3, NO_REG, NO_REG, 0, 0),
            (Opcode.MUL, 4, 3, 3, 0, 0),  # 16-cycle result
            (Opcode.ADDI, 5, 4, NO_REG, 0, 0),  # waits on the MUL
            (Opcode.ADDI, 6, 0, NO_REG, 0, 0),  # independent but younger
        ]
        result = run(build_trace(stall_then_free))
        # The final independent add cannot issue before the dependent
        # one does (cycles reflect the full stall).
        assert result.cycles >= 16


class TestBlockingMiss:
    def test_miss_blocks_pipeline(self):
        miss_heavy = [
            (Opcode.LD, 3, 0, NO_REG, 0x2000 + 64 * i, 0)
            for i in range(20)
        ]
        hit_heavy = [
            (Opcode.LD, 3, 0, NO_REG, 0x2000, 0)
            for _ in range(20)
        ]
        missing = run(build_trace(miss_heavy)).cycles
        hitting = run(build_trace(hit_heavy)).cycles
        assert missing > hitting + 50  # each miss serializes its penalty


class TestLvpRules:
    def test_zero_cycle_load(self):
        rows = [
            (Opcode.LD, 3, 0, NO_REG, 0x2000, 7),
            (Opcode.ADDI, 4, 3, NO_REG, 0, 0),
        ] * 10
        trace = build_trace(rows)
        predicted = {i: LoadOutcome.CORRECT for i in range(0, 20, 2)}
        unpredicted = {i: LoadOutcome.NO_PREDICTION
                       for i in range(0, 20, 2)}
        fast = run(trace, predicted, use_lvp=True).cycles
        slow = run(trace, unpredicted, use_lvp=True).cycles
        assert fast < slow

    def test_prediction_dropped_on_miss_without_penalty(self):
        """A cold-miss load annotated CORRECT behaves unpredicted."""
        rows = [(Opcode.LD, 3, 0, NO_REG, 0x2000, 7),
                (Opcode.ADDI, 4, 3, NO_REG, 0, 0)]
        trace = build_trace(rows)
        with_lvp = run(trace, {0: LoadOutcome.CORRECT}, use_lvp=True)
        without = run(trace, {0: LoadOutcome.NO_PREDICTION}, use_lvp=True)
        assert with_lvp.cycles == without.cycles
        assert with_lvp.load_outcomes[LoadOutcome.NO_PREDICTION] == 1

    def test_constant_survives_miss(self):
        rows = [(Opcode.LD, 3, 0, NO_REG, 0x2000, 7),
                (Opcode.ADDI, 4, 3, NO_REG, 0, 0)] * 4
        trace = build_trace(rows)
        outcomes = {i: LoadOutcome.CONSTANT for i in range(0, 8, 2)}
        result = run(trace, outcomes, use_lvp=True)
        assert result.load_outcomes[LoadOutcome.CONSTANT] == 4
        assert result.l1_stats.accesses == 0  # CVU bypassed the cache
        assert result.constant_past_miss >= 1

    def test_mispredict_squash_penalty(self):
        rows = [(Opcode.LD, 3, 0, NO_REG, 0x2000, 7)] + [NOP_ROW] * 8
        # Warm the cache so the prediction is attempted.
        warm = [(Opcode.LD, 9, 0, NO_REG, 0x2000, 7)]
        trace = build_trace(warm + rows)
        bad = run(trace, {1: LoadOutcome.INCORRECT}, use_lvp=True)
        good = run(trace, {1: LoadOutcome.NO_PREDICTION}, use_lvp=True)
        assert bad.value_mispredicts == 1
        # Squash costs a few cycles relative to not predicting.
        assert 0 <= bad.cycles - good.cycles <= 6

    def test_penalty_scales_with_config(self):
        rows = [(Opcode.LD, 9, 0, NO_REG, 0x2000, 7)]
        rows += [(Opcode.LD, 3, 0, NO_REG, 0x2000, 7)] + [NOP_ROW] * 8
        trace = build_trace(rows)
        outcomes = {1: LoadOutcome.INCORRECT}
        cheap = run(trace, outcomes, use_lvp=True,
                    config=dataclasses.replace(
                        AXP21164, value_mispredict_penalty=1))
        expensive = run(trace, outcomes, use_lvp=True,
                        config=dataclasses.replace(
                            AXP21164, value_mispredict_penalty=8))
        assert expensive.cycles >= cheap.cycles
