"""Unit tests for the Table 5 latency tables."""

from repro.isa import Opcode
from repro.uarch.components import AXP21164_LATENCY, PPC620_LATENCY


class TestPPC620Latencies:
    def test_simple_integer_single_cycle(self):
        assert PPC620_LATENCY[Opcode.ADD].result == 1
        assert PPC620_LATENCY[Opcode.ADD].issue == 1

    def test_load_result_latency_two(self):
        assert PPC620_LATENCY[Opcode.LD].result == 2
        assert PPC620_LATENCY[Opcode.FLD].result == 2

    def test_simple_fp_three(self):
        assert PPC620_LATENCY[Opcode.FADD].result == 3
        assert PPC620_LATENCY[Opcode.FMUL].result == 3

    def test_fp_divide_non_pipelined_18(self):
        lat = PPC620_LATENCY[Opcode.FDIV]
        assert lat.result == 18
        assert lat.issue == 18  # occupies the FPU

    def test_integer_divide_in_range(self):
        lat = PPC620_LATENCY[Opcode.DIV]
        assert 1 <= lat.result <= 35

    def test_every_opcode_has_latency(self):
        for opcode in Opcode:
            assert opcode in PPC620_LATENCY


class TestAXP21164Latencies:
    def test_simple_fp_four(self):
        assert AXP21164_LATENCY[Opcode.FADD].result == 4

    def test_complex_integer_sixteen(self):
        assert AXP21164_LATENCY[Opcode.MUL].result == 16

    def test_fp_divide_iterative_range(self):
        lat = AXP21164_LATENCY[Opcode.FDIV]
        assert 36 <= lat.result <= 65
        assert lat.issue == 1  # the paper's table: issue 1

    def test_load_latency_two(self):
        assert AXP21164_LATENCY[Opcode.LD].result == 2

    def test_every_opcode_has_latency(self):
        for opcode in Opcode:
            assert opcode in AXP21164_LATENCY
