"""Unit tests for the cache hierarchy and bank tracker."""

import pytest

from repro.uarch.components import BankTracker, Cache, MemoryHierarchy


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = Cache(1024, assoc=2, line_size=32)
        assert not cache.access(0x100)
        assert cache.access(0x100)

    def test_same_line_hits(self):
        cache = Cache(1024, assoc=2, line_size=32)
        cache.access(0x100)
        assert cache.access(0x11F)  # same 32-byte line
        assert not cache.access(0x120)  # next line

    def test_lru_within_set(self):
        # 2-way, 32B lines, 64B cache = 1 set
        cache = Cache(64, assoc=2, line_size=32)
        cache.access(0x000)
        cache.access(0x100)
        cache.access(0x000)  # refresh
        cache.access(0x200)  # evicts 0x100
        assert cache.access(0x000)
        assert not cache.access(0x100)

    def test_direct_mapped_conflict(self):
        cache = Cache(64, assoc=1, line_size=32)  # 2 sets
        cache.access(0x000)
        cache.access(0x040)  # same set, evicts
        assert not cache.access(0x000)

    def test_store_does_not_allocate(self):
        cache = Cache(1024, assoc=2, line_size=32)
        cache.access(0x100, is_store=True)
        assert not cache.access(0x100)  # still a load miss

    def test_store_hit_refreshes(self):
        cache = Cache(64, assoc=2, line_size=32)
        cache.access(0x000)
        cache.access(0x100)
        cache.access(0x000, is_store=True)  # refresh via store
        cache.access(0x200)
        assert cache.access(0x000)

    def test_probe_no_side_effects(self):
        cache = Cache(1024, assoc=2, line_size=32)
        assert not cache.probe(0x100)
        assert cache.stats.accesses == 0
        cache.access(0x100)
        assert cache.probe(0x100)

    def test_stats(self):
        cache = Cache(1024, assoc=2, line_size=32)
        cache.access(0x100)
        cache.access(0x100)
        cache.access(0x200)
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 2
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(100, assoc=3, line_size=32)


class TestHierarchy:
    def _hierarchy(self):
        return MemoryHierarchy(
            Cache(64, assoc=1, line_size=32),
            Cache(256, assoc=2, line_size=32),
            l2_latency=8, memory_latency=40,
        )

    def test_l1_hit_free(self):
        h = self._hierarchy()
        h.load_penalty(0x100)
        assert h.load_penalty(0x100) == 0

    def test_l2_hit_penalty(self):
        h = self._hierarchy()
        h.load_penalty(0x000)
        h.load_penalty(0x040)  # evicts 0x000 from tiny L1, lives in L2
        assert h.load_penalty(0x000) == 8

    def test_memory_penalty(self):
        h = self._hierarchy()
        assert h.load_penalty(0x100) == 48

    def test_store_write_through(self):
        h = self._hierarchy()
        h.store_access(0x100)
        assert h.l1.stats.store_accesses == 1
        assert h.l2.stats.store_accesses == 1


class TestBankTracker:
    def test_bank_interleaving(self):
        banks = BankTracker(num_banks=2, line_size=32)
        assert banks.bank_of(0x00) == 0
        assert banks.bank_of(0x20) == 1
        assert banks.bank_of(0x40) == 0

    def test_no_conflict_distinct_banks(self):
        banks = BankTracker(2, 32)
        banks.access(10, 0x00, can_defer=False)
        cycle = banks.access(10, 0x20, can_defer=True)
        assert cycle == 10
        assert banks.conflicts == 0

    def test_store_defers_on_conflict(self):
        banks = BankTracker(2, 32)
        banks.access(10, 0x00, can_defer=False)  # load takes bank 0
        cycle = banks.access(10, 0x40, can_defer=True)  # store, bank 0
        assert cycle == 11
        assert banks.conflicts == 1
        assert banks.conflict_cycle_count == 1

    def test_load_proceeds_despite_usage(self):
        banks = BankTracker(2, 32)
        banks.access(10, 0x00, can_defer=False)
        cycle = banks.access(10, 0x40, can_defer=False)
        assert cycle == 10
        assert banks.conflicts == 0

    def test_chained_deferral(self):
        banks = BankTracker(2, 32)
        banks.access(10, 0x00, can_defer=False)
        banks.access(11, 0x00, can_defer=False)
        cycle = banks.access(10, 0x40, can_defer=True)
        assert cycle == 12
        assert banks.conflicts == 2
        assert banks.conflict_cycle_count == 2

    def test_distinct_cycles_counted_once(self):
        banks = BankTracker(2, 32)
        banks.access(10, 0x00, can_defer=False)
        banks.access(10, 0x40, can_defer=True)
        banks.access(10, 0x80, can_defer=True)
        # Both stores conflicted at cycle 10 (and one also at 11).
        assert 10 in banks._conflict_cycles
