"""Tests for the Alpha AXP 21164 timing model."""

import dataclasses

import pytest

from repro.lvp import CONSTANT, LIMIT, PERFECT, SIMPLE, LoadOutcome
from repro.uarch import AXP21164Model
from repro.uarch.axp21164.config import AXP21164, AXP21164Config


@pytest.fixture(scope="module")
def grep_ann(tiny_session):
    return tiny_session.annotated("grep", "alpha", SIMPLE)


@pytest.fixture(scope="module")
def base_result(grep_ann):
    return AXP21164Model().run(grep_ann, use_lvp=False)


class TestBaseline:
    def test_in_order_bound(self, base_result):
        # 4-wide: cannot beat instructions/4 cycles.
        assert base_result.cycles >= base_result.instructions / 4

    def test_ipc_below_issue_width(self, base_result):
        assert 0.05 < base_result.ipc <= 4.0

    def test_miss_rate_metric(self, base_result):
        assert 0.0 <= base_result.l1_miss_rate_per_instruction < 1.0

    def test_deterministic(self, grep_ann):
        a = AXP21164Model().run(grep_ann, use_lvp=False)
        b = AXP21164Model().run(grep_ann, use_lvp=False)
        assert a.cycles == b.cycles


class TestLVP:
    def test_grep_speeds_up(self, tiny_session, base_result, grep_ann):
        lvp = AXP21164Model().run(grep_ann, use_lvp=True)
        assert lvp.cycles < base_result.cycles

    def test_loads_missing_l1_not_predicted(self, tiny_session):
        """Paper: no prediction past an L1 miss (except CVU constants)."""
        ann = tiny_session.annotated("compress", "alpha", SIMPLE)
        result = AXP21164Model().run(ann, use_lvp=True)
        # Some annotated-correct loads were demoted at misses: the
        # model's NO_PREDICTION count exceeds the annotator's.
        assert result.load_outcomes[LoadOutcome.NO_PREDICTION] >= \
            ann.stats.outcomes[LoadOutcome.NO_PREDICTION]

    def test_cvu_proceeds_past_miss(self, tiny_session):
        """Constants verified by the CVU survive L1 misses."""
        ann = tiny_session.annotated("compress", "alpha", CONSTANT)
        result = AXP21164Model().run(ann, use_lvp=True)
        assert result.constant_past_miss >= 0
        assert result.load_outcomes[LoadOutcome.CONSTANT] > 0

    def test_constant_loads_reduce_l1_accesses(self, tiny_session):
        ann = tiny_session.annotated("compress", "alpha", CONSTANT)
        base = AXP21164Model().run(ann, use_lvp=False)
        lvp = AXP21164Model().run(ann, use_lvp=True)
        constants = lvp.load_outcomes[LoadOutcome.CONSTANT]
        assert base.l1_stats.accesses - lvp.l1_stats.accesses == constants

    def test_mispredicts_counted(self, tiny_session):
        ann = tiny_session.annotated("quick", "alpha", SIMPLE)
        result = AXP21164Model().run(ann, use_lvp=True)
        assert result.value_mispredicts >= 0
        # Every model-level mispredict was an annotator INCORRECT.
        assert result.value_mispredicts <= \
            ann.stats.outcomes[LoadOutcome.INCORRECT]

    def test_perfect_no_mispredicts(self, tiny_session):
        ann = tiny_session.annotated("grep", "alpha", PERFECT)
        result = AXP21164Model().run(ann, use_lvp=True)
        assert result.value_mispredicts == 0


class TestBlockingMisses:
    def test_smaller_cache_is_slower(self, grep_ann):
        small = AXP21164Config(name="small-l1", l1_size=256)
        normal = AXP21164Model().run(grep_ann, use_lvp=False)
        tiny = AXP21164Model(small).run(grep_ann, use_lvp=False)
        assert tiny.cycles >= normal.cycles

    def test_issue_width_one_bound(self, grep_ann):
        narrow = dataclasses.replace(AXP21164, name="narrow",
                                     issue_width=1)
        result = AXP21164Model(narrow).run(grep_ann, use_lvp=False)
        assert result.cycles >= result.instructions
