"""Tests for the PowerPC 620/620+ timing model."""

import pytest

from repro.lvp import CONSTANT, LIMIT, PERFECT, SIMPLE, LoadOutcome
from repro.trace import annotate_trace
from repro.uarch import PPC620, PPC620_PLUS, PPC620Model
from repro.uarch.ppc620.config import PPC620Config
from repro.uarch.ppc620.model import VERIFY_BUCKETS


@pytest.fixture(scope="module")
def grep_ann(tiny_session):
    return tiny_session.annotated("grep", "ppc", SIMPLE)


@pytest.fixture(scope="module")
def base_result(grep_ann):
    return PPC620Model(PPC620).run(grep_ann, use_lvp=False)


@pytest.fixture(scope="module")
def lvp_result(grep_ann):
    return PPC620Model(PPC620).run(grep_ann, use_lvp=True)


class TestBaseline:
    def test_cycles_positive_and_bounded(self, base_result):
        assert 0 < base_result.cycles
        # 4-wide machine: cycles at least instructions / 4.
        assert base_result.cycles >= base_result.instructions / 4

    def test_ipc_reasonable(self, base_result):
        assert 0.1 < base_result.ipc <= 4.0

    def test_no_lvp_annotation_ignored(self, base_result):
        assert base_result.lvp_name == "none"
        assert sum(base_result.load_outcomes.values()) == 0

    def test_loads_counted(self, base_result, grep_ann):
        assert base_result.loads == grep_ann.trace.num_loads

    def test_deterministic(self, grep_ann):
        a = PPC620Model(PPC620).run(grep_ann, use_lvp=False)
        b = PPC620Model(PPC620).run(grep_ann, use_lvp=False)
        assert a.cycles == b.cycles


class TestLVPEffects:
    def test_lvp_speeds_up_grep(self, base_result, lvp_result):
        assert lvp_result.cycles < base_result.cycles

    def test_outcomes_recorded(self, lvp_result, grep_ann):
        assert sum(lvp_result.load_outcomes.values()) == \
            grep_ann.trace.num_loads

    def test_perfect_at_least_as_fast_as_nothing(self, tiny_session):
        for name in ("grep", "compress"):
            ann = tiny_session.annotated(name, "ppc", PERFECT)
            base = PPC620Model(PPC620).run(ann, use_lvp=False)
            perfect = PPC620Model(PPC620).run(ann, use_lvp=True)
            assert perfect.cycles <= base.cycles

    def test_constant_loads_skip_cache(self, tiny_session):
        ann = tiny_session.annotated("compress", "ppc", CONSTANT)
        base = PPC620Model(PPC620).run(ann, use_lvp=False)
        lvp = PPC620Model(PPC620).run(ann, use_lvp=True)
        constants = lvp.load_outcomes[LoadOutcome.CONSTANT]
        assert constants > 0
        # Cache sees exactly that many fewer load accesses.
        assert base.l1_stats.accesses - lvp.l1_stats.accesses == constants


class TestVerificationHistogram:
    def test_histogram_covers_correct_predictions(self, lvp_result):
        predicted = (lvp_result.load_outcomes[LoadOutcome.CORRECT]
                     + lvp_result.load_outcomes[LoadOutcome.CONSTANT])
        assert sum(lvp_result.verify_histogram.values()) == predicted

    def test_buckets_well_formed(self, lvp_result):
        assert set(lvp_result.verify_histogram) == set(VERIFY_BUCKETS)
        assert all(v >= 0 for v in lvp_result.verify_histogram.values())

    def test_baseline_histogram_empty(self, base_result):
        assert sum(base_result.verify_histogram.values()) == 0


class TestFuWait:
    def test_wait_counts_cover_instructions(self, base_result):
        counted = sum(c for _, c in base_result.fu_wait.values())
        assert counted == base_result.instructions

    def test_lvp_reduces_lsu_wait(self, tiny_session):
        """Predicted operands cut reservation-station wait (Figure 8)."""
        ann = tiny_session.annotated("grep", "ppc", LIMIT)
        base = PPC620Model(PPC620).run(ann, use_lvp=False)
        lvp = PPC620Model(PPC620).run(ann, use_lvp=True)
        assert lvp.average_wait("LSU") <= base.average_wait("LSU")


class Test620Plus:
    def test_620_plus_faster(self, tiny_session):
        for name in ("grep", "compress", "xlisp"):
            ann = tiny_session.annotated(name, "ppc", SIMPLE)
            base = PPC620Model(PPC620).run(ann, use_lvp=False)
            plus = PPC620Model(PPC620_PLUS).run(ann, use_lvp=False)
            assert plus.cycles < base.cycles

    def test_config_names(self):
        assert PPC620.name == "620"
        assert PPC620_PLUS.name == "620+"

    def test_620_plus_resources_doubled(self):
        assert PPC620_PLUS.completion_buffer == 2 * PPC620.completion_buffer
        assert PPC620_PLUS.gpr_rename == 2 * PPC620.gpr_rename
        assert PPC620_PLUS.num_lsu == 2
        assert PPC620_PLUS.mem_per_cycle == 2


class TestResourceSensitivity:
    def test_tiny_completion_buffer_slows(self, grep_ann):
        import dataclasses
        tiny = dataclasses.replace(PPC620, name="tiny-cbuf",
                                   completion_buffer=4)
        normal = PPC620Model(PPC620).run(grep_ann, use_lvp=False)
        constrained = PPC620Model(tiny).run(grep_ann, use_lvp=False)
        assert constrained.cycles >= normal.cycles

    def test_single_wide_dispatch_slows(self, grep_ann):
        import dataclasses
        narrow = dataclasses.replace(PPC620, name="narrow",
                                     dispatch_width=1, fetch_width=1,
                                     complete_width=1)
        normal = PPC620Model(PPC620).run(grep_ann, use_lvp=False)
        constrained = PPC620Model(narrow).run(grep_ann, use_lvp=False)
        assert constrained.cycles > normal.cycles
        # 1-wide: cycles must be at least the instruction count.
        assert constrained.cycles >= constrained.instructions

    def test_bank_conflicts_accounted(self, tiny_session):
        ann = tiny_session.annotated("quick", "ppc", SIMPLE)
        result = PPC620Model(PPC620).run(ann, use_lvp=False)
        assert result.bank_conflict_cycles <= result.cycles
        assert 0.0 <= result.bank_conflict_cycle_fraction < 1.0
