"""Unit tests for the scheduler's internal resource abstractions."""

from repro.uarch.ppc620.model import _Pool, _Units


class TestPool:
    def test_free_slots_immediate(self):
        pool = _Pool(2)
        assert pool.earliest_slot(10) == 10

    def test_full_pool_waits_for_release(self):
        pool = _Pool(2)
        pool.allocate(release=20, now=0)
        pool.allocate(release=30, now=0)
        # Both slots busy: next slot frees at the earlier release (20).
        assert pool.earliest_slot(10) == 20

    def test_candidate_after_release_unchanged(self):
        pool = _Pool(2)
        pool.allocate(release=20, now=0)
        pool.allocate(release=30, now=0)
        assert pool.earliest_slot(25) == 25

    def test_allocate_prunes_expired(self):
        pool = _Pool(1)
        pool.allocate(release=5, now=0)
        pool.allocate(release=50, now=10)  # the release-5 entry expires
        assert len(pool.releases) == 1
        assert pool.earliest_slot(10) == 50

    def test_many_slots(self):
        pool = _Pool(4)
        for release in (11, 12, 13):
            pool.allocate(release, now=0)
        assert pool.earliest_slot(5) == 5  # one slot still free
        pool.allocate(14, now=0)
        assert pool.earliest_slot(5) == 11


class TestUnits:
    def test_single_unit_serializes(self):
        units = _Units(1)
        assert units.issue_at(5, occupancy=3) == 5
        assert units.issue_at(5, occupancy=3) == 8  # busy until 8

    def test_pipelined_unit_back_to_back(self):
        units = _Units(1)
        assert units.issue_at(5, occupancy=1) == 5
        assert units.issue_at(5, occupancy=1) == 6

    def test_two_units_share_load(self):
        units = _Units(2)
        assert units.issue_at(5, occupancy=10) == 5
        assert units.issue_at(5, occupancy=10) == 5  # second instance
        assert units.issue_at(5, occupancy=10) == 15

    def test_earliest_instance_chosen(self):
        units = _Units(2)
        units.issue_at(0, occupancy=100)  # instance 0 busy long
        assert units.issue_at(1, occupancy=1) == 1  # instance 1 free
        assert units.issue_at(2, occupancy=1) == 2
