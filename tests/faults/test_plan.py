"""Tests for deterministic fault-campaign planning."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    CACHE_FAULTS,
    FaultPlan,
    FaultSpec,
    LVP_FAULTS,
    TRACE_FAULTS,
)


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        first = list(FaultPlan(seed=7, faults=40))
        second = list(FaultPlan(seed=7, faults=40))
        assert first == second

    def test_different_seed_different_spec_seeds(self):
        first = list(FaultPlan(seed=1, faults=12))
        second = list(FaultPlan(seed=2, faults=12))
        assert [s.seed for s in first] != [s.seed for s in second]

    def test_sixty_faults_cover_every_kind(self):
        combos = {(s.layer, s.kind) for s in FaultPlan(seed=0, faults=60)}
        expected = (
            {("trace", k) for k in TRACE_FAULTS}
            | {("cache", k) for k in CACHE_FAULTS}
            | {("lvp", k) for k in LVP_FAULTS}
        )
        assert combos == expected

    def test_length(self):
        plan = FaultPlan(seed=0, faults=17)
        assert len(plan) == 17
        assert len(list(plan)) == 17

    def test_rejects_empty_campaign(self):
        with pytest.raises(FaultError):
            FaultPlan(seed=0, faults=0)

    def test_spec_rng_reproducible(self):
        spec = FaultSpec("trace", "value_flip", seed=123)
        assert spec.rng().random() == spec.rng().random()
