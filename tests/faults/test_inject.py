"""Tests for the single-fault injectors and the audit oracle."""

import random

import numpy as np
import pytest

from repro.errors import FaultError
from repro.faults import (
    CACHE_FAULTS,
    TRACE_FAULTS,
    audit_violations,
    copy_trace,
    inject_cache_fault,
    inject_trace_fault,
    make_lvp_hook,
)
from repro.harness.cache import TraceCache
from repro.lvp.config import SIMPLE
from repro.trace import validate_trace
from repro.trace.annotate import annotate_trace


class TestCopyTrace:
    def test_copy_is_independent(self, grep_trace):
        clone = copy_trace(grep_trace)
        clone.value[0] ^= np.uint64(1)
        assert grep_trace.value[0] != clone.value[0]

    def test_copy_preserves_metadata(self, grep_trace):
        clone = copy_trace(grep_trace)
        assert clone.name == grep_trace.name
        assert clone.target == grep_trace.target


class TestTraceFaults:
    @pytest.mark.parametrize("kind", [k for k in TRACE_FAULTS
                                      if k != "value_flip"])
    def test_structural_faults_are_detected(self, grep_trace, kind):
        corrupt, expect_detected, what = inject_trace_fault(
            grep_trace, kind, random.Random(1))
        assert expect_detected
        assert what
        assert validate_trace(corrupt), kind
        # The original trace is untouched.
        assert validate_trace(grep_trace) == []

    def test_value_flip_is_well_formed_and_absorbed(self, grep_trace):
        corrupt, expect_detected, _ = inject_trace_fault(
            grep_trace, "value_flip", random.Random(2))
        assert not expect_detected
        assert validate_trace(corrupt) == []
        annotated = annotate_trace(corrupt, SIMPLE, audit=True)
        assert audit_violations(annotated) == []

    def test_unknown_kind_rejected(self, grep_trace):
        with pytest.raises(FaultError):
            inject_trace_fault(grep_trace, "nonesuch", random.Random(0))


class TestCacheFaults:
    @pytest.mark.parametrize("kind", CACHE_FAULTS)
    def test_every_cache_fault_is_a_miss(self, tmp_path, grep_trace, kind):
        cache = TraceCache(tmp_path / kind)
        what = inject_cache_fault(cache, grep_trace, "tiny", kind,
                                  random.Random(3))
        assert what
        assert cache.load("grep", "ppc", "tiny") is None

    def test_stale_version_is_not_quarantined(self, tmp_path, grep_trace):
        cache = TraceCache(tmp_path)
        inject_cache_fault(cache, grep_trace, "tiny", "version_bump",
                           random.Random(4))
        assert cache.load("grep", "ppc", "tiny") is None
        assert not (tmp_path / "quarantine").exists()

    def test_garbage_is_quarantined(self, tmp_path, grep_trace):
        cache = TraceCache(tmp_path)
        inject_cache_fault(cache, grep_trace, "tiny", "garbage",
                           random.Random(5))
        assert cache.load("grep", "ppc", "tiny") is None
        assert list((tmp_path / "quarantine").iterdir())


class TestLVPFaults:
    @pytest.mark.parametrize("kind", ("lvpt_poke", "lct_poke",
                                      "cvu_bogus", "unit_flush"))
    def test_unit_corruption_never_silently_wrong(self, grep_trace, kind):
        rng = random.Random(6)
        n_events = int((grep_trace.is_load | grep_trace.is_store).sum())
        hook, what = make_lvp_hook(kind, rng, n_events)
        assert kind in what
        annotated = annotate_trace(grep_trace, SIMPLE,
                                   audit=True, fault_hook=hook)
        assert audit_violations(annotated) == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            make_lvp_hook("nonesuch", random.Random(0), 10)


class TestAuditOracle:
    def test_requires_audit_mode(self, grep_trace):
        annotated = annotate_trace(grep_trace, SIMPLE)
        assert audit_violations(annotated) == [
            "annotation was not run with audit=True"]

    def test_clean_annotation_has_no_violations(self, grep_trace):
        annotated = annotate_trace(grep_trace, SIMPLE, audit=True)
        assert audit_violations(annotated) == []

    def test_doctored_log_is_flagged(self, grep_trace):
        annotated = annotate_trace(grep_trace, SIMPLE, audit=True)
        from repro.lvp.unit import LoadOutcome
        # Forge a "correct" forward of the wrong value.
        annotated.audit_log[0] = (0x100, 1, 2, LoadOutcome.CORRECT)
        violations = audit_violations(annotated)
        assert any("forwarded" in v for v in violations)
