"""Tests for the fault-injection doctor campaign."""

from repro.faults import (
    DETECTED,
    ENGINE_CHECKS,
    JOURNAL_CHECKS,
    RECOVERED,
    SERVE_CHECKS,
    SILENT,
    run_doctor,
)

#: Every campaign appends the journal-, engines-, and serve-layer
#: self-tests.
EXTRA = len(JOURNAL_CHECKS) + len(ENGINE_CHECKS) + len(SERVE_CHECKS)


class TestDoctorCampaign:
    def test_campaign_has_no_silent_corruption(self, grep_trace):
        report = run_doctor(seed=0, faults=18, trace=grep_trace)
        assert len(report.outcomes) == 18 + EXTRA
        assert report.silent == []
        assert report.ok

    def test_campaign_is_deterministic(self, grep_trace):
        first = run_doctor(seed=11, faults=12, trace=grep_trace)
        second = run_doctor(seed=11, faults=12, trace=grep_trace)
        assert [(o.spec, o.status) for o in first.outcomes] == \
            [(o.spec, o.status) for o in second.outcomes]

    def test_counts_cover_all_layers(self, grep_trace):
        report = run_doctor(seed=0, faults=18, trace=grep_trace)
        counts = report.counts()
        assert set(counts) == {"trace", "cache", "lvp", "journal",
                               "engines", "serve"}
        total = sum(row[status] for row in counts.values()
                    for status in (DETECTED, RECOVERED, SILENT))
        assert total == 18 + EXTRA

    def test_journal_layer_kinds(self, grep_trace):
        report = run_doctor(seed=0, faults=9, trace=grep_trace)
        kinds = [o.spec.kind for o in report.outcomes
                 if o.spec.layer == "journal"]
        assert kinds == list(JOURNAL_CHECKS)
        assert all(o.status != SILENT for o in report.outcomes
                   if o.spec.layer == "journal")

    def test_engines_layer_kinds(self, grep_trace):
        report = run_doctor(seed=0, faults=9, trace=grep_trace)
        engines = [o for o in report.outcomes
                   if o.spec.layer == "engines"]
        assert [o.spec.kind for o in engines] == list(ENGINE_CHECKS)
        assert all(o.status != SILENT for o in engines)
        forced = {o.spec.kind: o for o in engines}["forced_demotion"]
        assert forced.status == DETECTED
        assert "demoted" in forced.detail

    def test_serve_layer_kinds(self, grep_trace):
        report = run_doctor(seed=0, faults=9, trace=grep_trace)
        serve = [o for o in report.outcomes if o.spec.layer == "serve"]
        assert [o.spec.kind for o in serve] == list(SERVE_CHECKS)
        assert all(o.status != SILENT for o in serve)

    def test_render_reports_verdict(self, grep_trace):
        report = run_doctor(seed=0, faults=9, trace=grep_trace)
        text = report.render()
        assert "Fault-injection doctor" in text
        assert "journal" in text
        assert "engines" in text
        assert "serve" in text
        assert "verdict: OK" in text

    def test_silent_outcome_fails_report(self, grep_trace):
        report = run_doctor(seed=0, faults=9, trace=grep_trace)
        report.outcomes[0].status = SILENT
        assert not report.ok
        assert "verdict: FAIL" in report.render()
        assert "!!" in report.render()
