"""Smoke tests: every example script runs green as a subprocess."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "grep")
        assert "speedup" in out
        assert "verified" in out

    def test_custom_workload(self):
        out = run_example("custom_workload.py")
        assert "output verified" in out
        assert "constant loads" in out

    def test_future_work(self):
        out = run_example("future_work.py", "quick")
        assert "Stride" in out
        assert "general value locality" in out

    def test_paper_figures_listing(self):
        out = run_example("paper_figures.py")
        assert "fig1" in out
        assert "tab6" in out

    def test_paper_figures_single_exhibit(self):
        out = run_example("paper_figures.py", "fig1", "--scale", "tiny",
                          "--benchmarks", "grep,compress")
        assert "Value Locality" in out

    def test_design_space_importable(self):
        """design_space sweeps five small-scale benchmarks (slow); we
        verify it imports and exposes sane design points instead."""
        sys.path.insert(0, str(EXAMPLES))
        try:
            import design_space
            assert len(design_space.DESIGN_POINTS) >= 4
            names = [c.name for c in design_space.DESIGN_POINTS]
            assert len(set(names)) == len(names)
        finally:
            sys.path.pop(0)

    def test_machine_comparison(self):
        out = run_example("machine_comparison.py", "grep,quick")
        assert "620+" in out
        assert "21164" in out
