"""Unit tests for workload support helpers."""

import pytest

from repro.isa import CodeBuilder
from repro.sim import run_program
from repro.workloads.support import (
    Lcg,
    SCALES,
    count_down,
    for_range,
    if_cond,
    if_else,
    make_text,
    make_word_list,
    scaled,
    while_loop,
)


def run_main(body):
    b = CodeBuilder("t")
    b.label("main")
    body(b)
    b.halt()
    return run_program(b.build()).registers[3]


class TestControlFlow:
    def test_for_range_counts(self):
        def body(b):
            b.li(3, 0)
            b.li(5, 10)
            with for_range(b, 4, 5):
                b.addi(3, 3, 1)
        assert run_main(body) == 10

    def test_for_range_start_and_step(self):
        def body(b):
            b.li(3, 0)
            b.li(5, 10)
            with for_range(b, 4, 5, start=4, step=2):
                b.addi(3, 3, 1)
        assert run_main(body) == 3  # 4, 6, 8

    def test_for_range_zero_trip(self):
        def body(b):
            b.li(3, 7)
            b.li(5, 0)
            with for_range(b, 4, 5):
                b.li(3, 0)
        assert run_main(body) == 7

    def test_count_down(self):
        def body(b):
            b.li(3, 0)
            b.li(4, 5)
            with count_down(b, 4):
                b.addi(3, 3, 1)
        assert run_main(body) == 5

    def test_while_loop_break(self):
        def body(b):
            b.li(3, 0)
            with while_loop(b) as (_, done):
                b.addi(3, 3, 1)
                b.li(5, 4)
                b.bge(3, 5, done)
        assert run_main(body) == 4

    @pytest.mark.parametrize("cond,a,b_,expected", [
        ("eq", 1, 1, 10), ("eq", 1, 2, 0),
        ("ne", 1, 2, 10), ("ne", 1, 1, 0),
        ("lt", 1, 2, 10), ("lt", 2, 1, 0),
        ("ge", 2, 1, 10), ("ge", 1, 2, 0),
    ])
    def test_if_cond(self, cond, a, b_, expected):
        def body(b):
            b.li(3, 0)
            b.li(4, a)
            b.li(5, b_)
            with if_cond(b, cond, 4, 5):
                b.li(3, 10)
        assert run_main(body) == expected

    def test_if_else_then_branch(self):
        def body(b):
            b.li(4, 1)
            b.li(5, 1)
            with if_else(b, "eq", 4, 5) as otherwise:
                b.li(3, 1)
                otherwise()
                b.li(3, 2)
        assert run_main(body) == 1

    def test_if_else_else_branch(self):
        def body(b):
            b.li(4, 1)
            b.li(5, 2)
            with if_else(b, "eq", 4, 5) as otherwise:
                b.li(3, 1)
                otherwise()
                b.li(3, 2)
        assert run_main(body) == 2


class TestLcg:
    def test_deterministic(self):
        a = Lcg(42)
        b = Lcg(42)
        assert [a.next_u64() for _ in range(10)] == \
            [b.next_u64() for _ in range(10)]

    def test_seed_sensitivity(self):
        assert Lcg(1).next_u64() != Lcg(2).next_u64()

    def test_below_in_range(self):
        rng = Lcg(7)
        for _ in range(200):
            assert 0 <= rng.below(13) < 13

    def test_uniform_in_range(self):
        rng = Lcg(7)
        for _ in range(200):
            value = rng.uniform(-1.0, 2.0)
            assert -1.0 <= value < 2.0

    def test_choice_from_items(self):
        rng = Lcg(7)
        items = ("a", "b", "c")
        assert all(rng.choice(items) in items for _ in range(50))


class TestInputSynthesis:
    def test_text_ascii_and_lines(self):
        text = make_text(Lcg(1), 64, line_words=8)
        text.decode("ascii")
        assert text.count(b"\n") == 8

    def test_text_deterministic(self):
        assert make_text(Lcg(5), 40) == make_text(Lcg(5), 40)

    def test_word_list_lengths(self):
        words = make_word_list(Lcg(3), 50, min_len=4, max_len=6)
        assert len(words) == 50
        assert all(4 <= len(w) <= 6 for w in words)
        assert all(w.islower() for w in words)

    def test_scaled(self):
        assert scaled("small", 100) == 100
        assert scaled("tiny", 100) == 25
        assert scaled("reference", 100) == 400
        assert scaled("tiny", 1, minimum=1) == 1

    def test_scaled_unknown(self):
        with pytest.raises(ValueError):
            scaled("huge", 100)

    def test_scales_registry(self):
        assert set(SCALES) == {"tiny", "small", "reference"}
