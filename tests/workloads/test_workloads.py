"""Workload correctness: every benchmark verifies on every target.

These are the heavyweight integration tests of the suite: each runs a
whole benchmark to completion and checks its architectural results
against an independent Python reference computation.
"""

import pytest

from repro.errors import ConfigError
from repro.sim import run_program
from repro.workloads import (
    BENCHMARKS,
    FP_NAMES,
    INTEGER_NAMES,
    NAMES,
    get_benchmark,
)

ALL_NAMES = [b.name for b in BENCHMARKS]


class TestRegistry:
    def test_seventeen_benchmarks(self):
        assert len(BENCHMARKS) == 17

    def test_paper_table1_names(self):
        assert set(NAMES) == {
            "ccl-271", "ccl", "cjpeg", "compress", "eqntott", "gawk",
            "gperf", "grep", "mpeg", "perl", "quick", "sc", "xlisp",
            "doduc", "hydro2d", "swm256", "tomcatv",
        }

    def test_categories(self):
        assert set(FP_NAMES) == {"doduc", "hydro2d", "swm256", "tomcatv"}
        assert len(INTEGER_NAMES) == 13

    def test_lookup(self):
        assert get_benchmark("grep").name == "grep"
        with pytest.raises(ConfigError):
            get_benchmark("nonesuch")

    def test_metadata_present(self):
        for bench in BENCHMARKS:
            assert bench.description
            assert bench.input_description
            assert bench.category in ("int", "fp")
            assert bench.paper_instructions


@pytest.mark.parametrize("name", ALL_NAMES)
@pytest.mark.parametrize("target", ["ppc", "alpha"])
class TestCorrectness:
    def test_verifies_at_tiny_scale(self, name, target):
        bench = get_benchmark(name)
        program = bench.build_program(target, "tiny")
        result = run_program(program, name=name, target=target)
        bench.verify(program, result, "tiny")


@pytest.mark.parametrize("name", ALL_NAMES)
class TestCorrectnessSmall:
    def test_verifies_at_small_scale(self, name, small_session):
        """The session fixture verifies on first trace access."""
        trace = small_session.trace(name, "ppc")
        assert trace.num_instructions > 0


@pytest.mark.parametrize("name", ALL_NAMES)
class TestTraceShape:
    def test_trace_has_loads_stores_branches(self, name, tiny_session):
        from repro.isa import OpClass
        if name not in tiny_session.benchmark_names:
            pytest.skip("not in the tiny fixture subset")
        trace = tiny_session.trace(name, "ppc")
        counts = trace.opclass_counts()
        assert counts.get(OpClass.LOAD, 0) > 0
        assert counts.get(OpClass.BRANCH, 0) > 0


class TestTargetDifferences:
    @pytest.mark.parametrize("name", ["gawk", "compress", "swm256"])
    def test_ppc_emits_more_loads(self, name):
        """TOC indirection means the ppc target loads more."""
        bench = get_benchmark(name)
        ppc = run_program(bench.build_program("ppc", "tiny"),
                          name=name, target="ppc").trace
        alpha = run_program(bench.build_program("alpha", "tiny"),
                            name=name, target="alpha").trace
        assert ppc.num_loads > alpha.num_loads

    def test_same_computation_both_targets(self):
        """Targets change codegen, not semantics."""
        bench = get_benchmark("quick")
        for target in ("ppc", "alpha"):
            program = bench.build_program(target, "tiny")
            result = run_program(program, name="quick", target=target)
            bench.verify(program, result, "tiny")


class TestScaling:
    @pytest.mark.parametrize("name", ["grep", "compress"])
    def test_small_larger_than_tiny(self, name):
        bench = get_benchmark(name)
        tiny = run_program(bench.build_program("ppc", "tiny"),
                           name=name).instruction_count
        small = run_program(bench.build_program("ppc", "small"),
                            name=name).instruction_count
        assert small > tiny

    def test_locality_scale_stable(self):
        """Figure 1's percentages should not depend strongly on scale."""
        from repro.lvp import measure_value_locality
        bench = get_benchmark("compress")
        values = []
        for scale in ("tiny", "small"):
            trace = run_program(bench.build_program("ppc", scale),
                                name="compress").trace
            values.append(measure_value_locality(trace, 1).percent)
        assert abs(values[0] - values[1]) < 15.0
