"""Unit tests for workload input generators and reference mirrors.

The per-workload ``expected_*`` mirrors are the ground truth the whole
suite verifies against, so they get direct tests of their own.
"""

import pytest

from repro.workloads.programs import (
    _cc,
    cjpeg,
    compress,
    eqntott,
    gawk,
    gperf,
    grep,
    mpeg,
    perl,
    quick,
    sc,
    tomcatv,
    xlisp,
)
from repro.workloads.support import Lcg, make_text, scaled


class TestSharedInputs:
    def test_grep_and_compress_share_input(self):
        """The paper runs grep on the same input as compress."""
        compress_text = make_text(Lcg(0xC0131), scaled("small", 260))
        grep_text = make_text(Lcg(0xC0131), scaled("small", 260))
        assert compress_text == grep_text

    def test_inputs_deterministic_across_calls(self):
        assert quick.input_values("tiny") == quick.input_values("tiny")
        assert gawk.input_lines("tiny") == gawk.input_lines("tiny")
        assert perl.input_words("tiny") == perl.input_words("tiny")


class TestCompilerMirror:
    def test_reference_run_deterministic(self):
        assert _cc.reference_run(7, 20) == _cc.reference_run(7, 20)

    def test_source_parses_as_statements(self):
        source = _cc.generate_source(7, 10).decode("ascii")
        statements = [s for s in source.strip().splitlines()]
        assert len(statements) == 10
        for statement in statements:
            assert statement.endswith(";")
            assert "=" in statement

    def test_reference_respects_precedence(self):
        """The mirror's parser must honour * over + (spot check via a
        crafted source through the same tokenizer/parser)."""
        variables = _cc.reference_run(seed=1, statements=5)
        assert len(variables) == _cc.NUM_VARS
        assert all(0 <= v < (1 << 64) for v in variables)


class TestDspMirrors:
    def test_dct_matrix_shape_and_dc_row(self):
        from repro.workloads.programs._dsp import dct_matrix
        matrix = dct_matrix()
        assert len(matrix) == 64
        dc_row = matrix[:8]
        assert len(set(dc_row)) == 1  # the DC basis row is flat
        assert dc_row[0] > 0

    def test_cjpeg_expected_deterministic(self):
        assert cjpeg.expected_output("tiny") == cjpeg.expected_output("tiny")

    def test_cjpeg_tdiv_truncates(self):
        assert cjpeg._tdiv(-7, 2) == -3
        assert cjpeg._tdiv(7, -2) == -3
        assert cjpeg._tdiv(5, 0) == 0

    def test_mpeg_blocks_sparse(self):
        for block in mpeg.input_blocks("tiny"):
            nonzero = sum(1 for v in block if v)
            assert nonzero <= 8
            assert block[0] >= 400  # DC present


class TestSearchMirrors:
    def test_grep_expected_counts_lines(self):
        count = grep.expected_matches("tiny")
        assert count > 0

    def test_perl_plants_anagrams(self):
        words = perl.input_words("small")
        target = sorted(perl.TARGET_WORD)
        planted = [w for w in words if sorted(w) == target]
        assert len(planted) >= 3

    def test_gperf_solution_within_budget(self):
        for scale in ("tiny", "small"):
            assert gperf.expected_solution(scale) < gperf.MAX_TRIALS

    def test_eqntott_minterms_sorted_unique(self):
        minterms = eqntott.expected_minterms("small")
        assert minterms == sorted(set(minterms))

    def test_eqntott_postfix_evaluator(self):
        program = [(eqntott.OP_VAR, 0), (eqntott.OP_VAR, 1),
                   (eqntott.OP_AND, 0), (eqntott.OP_NOT, 0)]
        assert eqntott.evaluate(program, 0b11) == 0
        assert eqntott.evaluate(program, 0b01) == 1


class TestGridMirrors:
    def test_sc_grid_mostly_empty(self):
        _, _, cells = sc.input_grid("small")
        empty = sum(1 for c in cells if c[0] == sc.T_EMPTY)
        assert empty / len(cells) > 0.5

    def test_sc_expected_fixed_point_on_constants(self):
        """Pure-constant cells keep their values across passes."""
        rows, cols, cells = sc.input_grid("tiny")
        values = sc.expected_values("tiny")
        for i, (kind, value, _, _) in enumerate(cells):
            if kind == sc.T_CONST:
                assert values[i] == value

    def test_tomcatv_residual_positive(self):
        _, _, residual = tomcatv.expected_mesh("tiny")
        assert residual > 0.0

    def test_xlisp_fib(self):
        assert xlisp.expected_result("tiny") == 21  # fib(8)
        assert xlisp.expected_result("small") == 55  # fib(10)


class TestCompressMirror:
    def test_first_code_and_max(self):
        assert compress.FIRST_CODE == 256
        assert compress.MAX_CODE == 4096

    def test_gawk_column_sums_match_lines(self):
        lines = gawk.input_lines("tiny")
        sums = gawk.expected_column_sums("tiny")
        for column in range(gawk.NUM_COLUMNS):
            assert sums[column] == sum(v[1][column] for v in lines)
