"""End-to-end integration tests: the full pipeline on real workloads."""

import pytest

from repro import (
    LoadOutcome,
    PPC620,
    PPC620Model,
    SIMPLE,
    Session,
    annotate_trace,
    measure_value_locality,
    run_experiment,
    run_program,
)
from repro.lvp import LIMIT, PERFECT
from repro.uarch import AXP21164Model
from repro.workloads import get_benchmark


class TestFullPipeline:
    """Trace -> locality -> annotate -> cycle model, one flow."""

    def test_compress_pipeline(self):
        bench = get_benchmark("compress")
        program = bench.build_program("ppc", "tiny")
        result = run_program(program, name="compress", target="ppc")
        bench.verify(program, result, "tiny")

        trace = result.trace
        locality = measure_value_locality(trace, depth=1)
        assert locality.total_loads == trace.num_loads

        annotated = annotate_trace(trace, SIMPLE)
        correct = (annotated.stats.outcomes[LoadOutcome.CORRECT]
                   + annotated.stats.outcomes[LoadOutcome.CONSTANT])
        # Prediction success is bounded by value locality plus warmup.
        assert correct <= locality.hits + trace.num_loads * 0.05 + 16

        base = PPC620Model(PPC620).run(annotated, use_lvp=False)
        lvp = PPC620Model(PPC620).run(annotated, use_lvp=True)
        assert 0 < lvp.cycles <= base.cycles * 1.10

    def test_locality_upper_bounds_prediction(self, tiny_session):
        """No realistic config can beat the Limit oracle's accuracy."""
        for name in tiny_session.benchmark_names:
            trace = tiny_session.trace(name, "ppc")
            simple = annotate_trace(trace, SIMPLE).stats
            limit = annotate_trace(trace, LIMIT).stats
            d16 = measure_value_locality(trace, 16, entries=4096)
            assert limit.prediction_accuracy <= 1.0
            correct = (limit.outcomes[LoadOutcome.CORRECT]
                       + limit.outcomes[LoadOutcome.CONSTANT])
            assert correct <= d16.hits + 32


class TestPaperHeadlines:
    """The paper's headline claims, checked mechanically."""

    @pytest.fixture(scope="class")
    def session(self):
        return Session(
            scale="tiny",
            benchmarks=("grep", "gawk", "compress", "sc", "tomcatv",
                        "swm256"),
        )

    def test_integer_benchmarks_have_more_locality_than_fp_poor(
            self, session):
        fig1 = run_experiment("fig1", session).data["ppc"]
        assert fig1["compress"][1] > fig1["swm256"][1]
        assert fig1["sc"][1] > fig1["tomcatv"][1]

    def test_grep_and_gawk_dramatic(self, session):
        """Paper: grep and gawk stand out on both machines."""
        fig6 = run_experiment("fig6", session).data
        for machine in ("620", "21164"):
            simple = fig6[machine]["Simple"]
            best_two = sorted(simple, key=simple.get, reverse=True)[:3]
            assert {"grep", "gawk"} & set(best_two)

    def test_lvp_reduces_bandwidth(self, session):
        """LVP reduces, not increases, memory traffic (paper S3.3)."""
        from repro.lvp import CONSTANT
        base = session.ppc_result("compress", PPC620, None)
        lvp = session.ppc_result("compress", PPC620, CONSTANT)
        assert lvp.l1_stats.accesses <= base.l1_stats.accesses

    def test_620_plus_gains_more_from_lvp(self, session):
        """Paper S6.2: wider machine parallelism matches LVP better."""
        from repro.analysis import geometric_mean
        from repro.uarch import PPC620_PLUS
        names = session.benchmark_names
        gm_620 = geometric_mean(
            [session.ppc_speedup(n, PPC620, LIMIT) for n in names])
        gm_plus = geometric_mean(
            [session.ppc_speedup(n, PPC620_PLUS, LIMIT) for n in names])
        assert gm_plus >= gm_620 * 0.97  # at least comparable

    def test_alpha_perfect_gains(self, session):
        for name in ("grep", "gawk"):
            ann = session.annotated(name, "alpha", PERFECT)
            base = AXP21164Model().run(ann, use_lvp=False)
            perfect = AXP21164Model().run(ann, use_lvp=True)
            assert perfect.cycles < base.cycles
