"""Setup shim.

The execution environment has setuptools but no ``wheel`` package, so
PEP 660 editable installs (which build a wheel) fail.  Keeping a classic
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` code path, which needs no wheel.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
