"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``suite``
    List the 17 benchmarks with their Table-1 metadata.
``run BENCH``
    Build, execute, and verify one benchmark; print trace statistics.
``locality BENCH``
    Measure value locality (Figure 1 style) for one benchmark.
``annotate BENCH``
    Run an LVP configuration over a benchmark and print its outcome mix.
``speedup BENCH``
    Cycle-model speedups for one benchmark on the 620/620+/21164.
``experiment ID``
    Regenerate a paper exhibit (``fig1`` ... ``tab6``), or ``all``.
    Journaled by default: the run writes a write-ahead journal and
    per-benchmark checkpoints under ``.repro/runs/<run-id>/`` so a
    crashed or killed run resumes with ``--resume <run-id>`` and
    produces byte-identical output (see ``docs/journal.md``).
``sweep BENCH``
    One-pass design-space sweep: decode the benchmark's trace once and
    evaluate a whole grid of LVP configurations (>= 100 design points
    by default) against shared in-memory columns, sharded across
    ``--jobs`` workers and journaled under ``.repro/sweeps/<run-id>/``
    for crash-resume.  ``--exhibits`` renders the Table 3/4 and
    Figure 6 sensitivity families; ``--measure``/``--check`` maintain
    the ``BENCH_SWEEP.json`` shared-decode speedup benchmark (see
    ``docs/sweep.md``).
``check``
    Evaluate every paper-shape claim against a fresh session.
``doctor``
    Inject a deterministic campaign of faults (trace, cache, LVP) and
    verify each one is detected or safely recovered, never silent;
    also self-tests the journal and tiered-engine layers.
``chaos``
    Seeded randomized soak: run ``repro experiment`` subprocesses
    under planted faults (tier divergence, kills, cache damage,
    resource budgets...) and assert byte-identical exhibits or a
    cleanly footnoted degradation (see ``docs/resilience.md``).
``serve``
    Run the long-lived simulation service: an asyncio daemon serving
    trace/annotate/model/experiment over a unix socket (and optional
    local HTTP) with admission control, request coalescing, circuit
    breakers, per-request deadlines, and graceful drain -- interrupted
    experiment runs journal through the run journal and resume
    byte-identically after a restart (see ``docs/serve.md``).
    ``--status``/``--ping``/``--drain`` talk to a running daemon.
``loadgen``
    Drive a running (or freshly spawned) server with a warm-up, a
    coalescing steady phase, and an overload burst; write/check the
    ``BENCH_SERVE.json`` service benchmark (latency percentiles,
    coalescing hit rate, shed rate).
``report``
    Write a single-file HTML report of all exhibits.
``stats [RUN_ID]``
    Render a journaled run's ``metrics.json`` (per-benchmark phase
    timings, headline counters; ``latest`` by default).
``bench``
    Time every pipeline phase (trace, cache load, annotate, model)
    under the slow reference engines and the tiered fast engines, plus
    a cold ``experiment all`` pass per tier; write/check
    ``BENCH_PERF.json`` (see ``docs/performance.md``).
``cache migrate``
    Upgrade a trace-cache directory's legacy v1 ``.npz`` bundles to
    the mmap-friendly v2 ``.rtc`` format in place (see
    ``docs/cache.md``).
``disasm BENCH``
    Disassemble a benchmark's program text.
``trace BENCH``
    Dump a window of a benchmark's dynamic trace.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import signal
import sys
from typing import Optional

from repro.errors import ConfigError, JournalError
from repro.harness.experiments import EXPERIMENTS, run_experiments
from repro.harness.journal import (
    RunJournal,
    build_manifest,
    find_run,
    new_run_id,
    prune_runs,
    run_journaled,
    runs_dir_from_env,
)
from repro.obs import (
    load_metrics,
    metrics_enabled_from_env,
    render_stats,
    validate_metrics,
)
from repro.harness.parallel import jobs_from_env, unit_timeout_from_env
from repro.harness.session import Session
from repro.isa.disasm import disassemble
from repro.lvp.config import (
    EXTENSION_CONFIGS,
    PAPER_CONFIGS,
    config_by_name,
)
from repro.lvp.general import measure_general_value_locality
from repro.lvp.locality import measure_value_locality
from repro.lvp.unit import LoadOutcome
from repro.sim.functional import run_program
from repro.trace.annotate import annotate_trace
from repro.trace.stats import compute_stats
from repro.uarch.ppc620.config import PPC620, PPC620_PLUS
from repro.workloads.suite import BENCHMARKS, get_benchmark


#: Tier-pinning environment knobs validated at CLI entry, before any
#: work runs under a typo'd tier: env var -> its legal values.
def _engine_env_choices() -> dict:
    from repro.sim.compile import ENGINES
    from repro.trace.annotate import KERNELS
    from repro.uarch.engine import MODEL_ENGINES
    return {
        "REPRO_ENGINE": ENGINES,
        "REPRO_ANNOTATE_KERNEL": KERNELS,
        "REPRO_MODEL_ENGINE": MODEL_ENGINES,
    }


def _validate_engine_env() -> Optional[str]:
    """The first invalid tier knob's error message, if any."""
    for name, choices in _engine_env_choices().items():
        value = os.environ.get(name)
        if value and value not in choices:
            return (f"invalid {name}={value!r}: choose from "
                    f"{', '.join(choices)}")
    return None


def _add_common(parser: argparse.ArgumentParser,
                benchmark: bool = True) -> None:
    if benchmark:
        parser.add_argument("bench", help="benchmark name (see 'suite')")
    parser.add_argument("--target", default="ppc",
                        choices=("ppc", "alpha"),
                        help="codegen target (default: ppc)")
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "reference"),
                        help="input scale (default: small)")


def _jobs_arg(value: str) -> int:
    """argparse type for ``--jobs``: a clear error, never a traceback."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value!r}") from None
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {jobs}")
    return jobs


def _timeout_arg(value: str) -> float:
    """argparse type for ``--unit-timeout`` (seconds, 0 disarms)."""
    try:
        seconds = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a number of seconds, got {value!r}") from None
    if seconds < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {seconds:g}")
    return seconds


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_jobs_arg, default=None,
        metavar="N",
        help="worker processes for the parallel engine (default: "
             "$REPRO_JOBS or 1 = serial; output is bit-identical "
             "either way)")


def _cap_jobs(jobs: int) -> int:
    """Cap a worker count at the CPU count, with a warning.

    Never capped below 2: collapsing an explicit parallel request to
    ``jobs=1`` would silently switch to the serial code path, which is
    a semantic change, not a tuning one (one oversubscribed worker on
    a single-CPU box is harmless).
    """
    cap = max(2, os.cpu_count() or 1)
    if jobs > cap:
        print(f"warning: --jobs {jobs} exceeds the "
              f"{os.cpu_count()} available CPU(s); capping at {cap}",
              file=sys.stderr)
        return cap
    return jobs


def _resolve_jobs(args) -> int:
    """The effective worker count: ``--jobs``, else strict $REPRO_JOBS."""
    jobs = getattr(args, "jobs", None)
    if jobs is None:
        try:
            jobs = jobs_from_env(strict=True)
        except ValueError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            raise SystemExit(2) from None
    return _cap_jobs(jobs)


def _traced(args):
    bench = get_benchmark(args.bench)
    program = bench.build_program(args.target, args.scale)
    result = run_program(program, name=bench.name, target=args.target)
    bench.verify(program, result, args.scale)
    return bench, program, result


def cmd_suite(args) -> int:
    print(f"{'name':10s} {'cat':4s} {'description':52s} input")
    for bench in BENCHMARKS:
        print(f"{bench.name:10s} {bench.category:4s} "
              f"{bench.description:52s} {bench.input_description}")
    return 0


def cmd_run(args) -> int:
    bench, _, result = _traced(args)
    stats = compute_stats(result.trace)
    print(f"{bench.name} ({args.target}, {args.scale}): verified OK")
    print(f"  instructions : {stats.instructions:,}")
    print(f"  loads        : {stats.loads:,} "
          f"({stats.load_fraction:.1%}; {stats.static_loads} static)")
    print(f"  stores       : {stats.stores:,}")
    print(f"  branches     : {stats.branches:,}")
    return 0


def cmd_locality(args) -> int:
    _, _, result = _traced(args)
    trace = result.trace
    for depth in args.depths:
        measured = measure_value_locality(trace, depth=depth)
        print(f"  depth {depth:>2}: {measured.percent:5.1f}% "
              f"({measured.hits:,}/{measured.total_loads:,} loads)")
    if args.general:
        general = measure_general_value_locality(trace, depth=1)
        print(f"  general (all instructions, depth 1): "
              f"{100 * general.overall.locality:5.1f}%")
    return 0


def cmd_annotate(args) -> int:
    _, _, result = _traced(args)
    config = config_by_name(args.config)
    annotated = annotate_trace(result.trace, config)
    stats = annotated.stats
    print(f"LVP config {config.name}: {stats.loads:,} loads")
    for outcome in LoadOutcome:
        share = stats.outcomes[outcome] / max(1, stats.loads)
        print(f"  {outcome.name.lower():>14}: "
              f"{stats.outcomes[outcome]:8,}  ({share:6.1%})")
    print(f"  prediction accuracy: {stats.prediction_accuracy:.1%}")
    return 0


def cmd_speedup(args) -> int:
    session = Session(scale=args.scale, benchmarks=(args.bench,))
    config = config_by_name(args.config)
    for machine in (PPC620, PPC620_PLUS):
        speedup = session.ppc_speedup(args.bench, machine, config)
        base = session.ppc_result(args.bench, machine, None)
        print(f"  {machine.name:6s}: {speedup:.3f}x "
              f"(base {base.cycles:,} cycles, IPC {base.ipc:.2f})")
    speedup = session.alpha_speedup(args.bench, config)
    base = session.alpha_result(args.bench, None)
    print(f"  21164 : {speedup:.3f}x "
          f"(base {base.cycles:,} cycles, IPC {base.ipc:.2f})")
    return 0


def _report_failures(session: Session) -> bool:
    """Print the session's recorded benchmark failures (to stderr);
    returns True when there were any."""
    if not session.failures:
        return False
    print(f"{len(session.failures)} benchmark failure(s) degraded "
          "this run:", file=sys.stderr)
    for failure in session.failures:
        print(f"  - {failure}", file=sys.stderr)
    return True


def _report_timing(session: Session) -> None:
    """Print the parallel warm's per-unit timing summary (stderr, so
    exhibit stdout stays byte-identical to a serial run)."""
    report = session.last_warm_report
    if report is not None:
        print(report.render(), file=sys.stderr)


def _install_interrupt_handlers(journal: RunJournal,
                                resume_command: Optional[str] = None):
    """SIGINT/SIGTERM: journal a clean ``interrupted`` record, print
    the resume command, and exit with the conventional 128+signum."""
    import threading
    if threading.current_thread() is not threading.main_thread():
        return {}
    owner = os.getpid()
    resume = resume_command or \
        f"repro experiment --resume {journal.run_id}"

    def handler(signum, frame):
        if os.getpid() != owner:  # a forked worker inherited us
            os._exit(128 + signum)
        with contextlib.suppress(Exception):
            journal.interrupted(signum)
        name = signal.Signals(signum).name
        message = (f"\ninterrupted ({name}); resume with:\n"
                   f"  {resume}\n")
        with contextlib.suppress(Exception):
            os.write(sys.stderr.fileno(), message.encode())
        os._exit(128 + signum)

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, handler)
    return previous


def _restore_handlers(previous) -> None:
    for signum, old in previous.items():
        with contextlib.suppress(Exception):
            signal.signal(signum, old)


def cmd_experiment(args) -> int:
    runs_dir = args.runs_dir or runs_dir_from_env()
    if not args.id and not args.resume:
        print("repro: error: an exhibit id (or --resume RUN_ID) is "
              "required", file=sys.stderr)
        return 2
    try:
        if args.resume:
            if args.id:
                print(f"note: ignoring exhibit id {args.id!r}: --resume "
                      "replays the recorded run", file=sys.stderr)
            journal = RunJournal.open(runs_dir, args.resume)
            manifest = journal.manifest
            metrics = False if args.no_metrics \
                else bool(manifest.get("metrics", False))
            session = Session(scale=manifest["scale"],
                              benchmarks=tuple(manifest["benchmarks"]),
                              verify=manifest.get("verify", True),
                              cache_dir=manifest.get("cache_dir"),
                              metrics=metrics)
            exhibits = list(manifest["exhibits"])
            jobs = _cap_jobs(args.jobs) if args.jobs is not None \
                else _cap_jobs(int(manifest.get("jobs", 1)))
            unit_timeout = args.unit_timeout \
                if args.unit_timeout is not None \
                else float(manifest.get("unit_timeout", 0.0))
            profile = args.profile or bool(manifest.get("profile", False))
            resume = True
        else:
            jobs = _resolve_jobs(args)
            unit_timeout = args.unit_timeout \
                if args.unit_timeout is not None else unit_timeout_from_env()
            names = tuple(args.benchmarks.split(",")) \
                if args.benchmarks else None
            exhibits = list(EXPERIMENTS) if args.id == "all" else [args.id]
            if args.no_journal:
                # No run directory, so there is nowhere to persist a
                # metrics document: sessions keep their library default
                # (off unless REPRO_METRICS asks).
                session = Session(scale=args.scale, benchmarks=names)
                for result in run_experiments(exhibits, session, jobs=jobs):
                    print(result.text)
                    print()
                _report_timing(session)
                return 1 if _report_failures(session) else 0
            # Journaled runs observe by default: all surfacing goes to
            # the run directory and stderr, so exhibit stdout stays
            # byte-identical either way.
            metrics = False if args.no_metrics \
                else metrics_enabled_from_env(default=True)
            session = Session(scale=args.scale, benchmarks=names,
                              metrics=metrics)
            profile = args.profile
            run_id = args.run_id or new_run_id()
            prune_runs(runs_dir, protect=run_id)
            journal = RunJournal.create(
                runs_dir, run_id,
                build_manifest(exhibits, session, jobs, unit_timeout,
                               profile=profile))
            resume = False
    except JournalError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    print(f"run journal: {journal.directory} "
          f"(resume: repro experiment --resume {journal.run_id})",
          file=sys.stderr)
    previous = _install_interrupt_handlers(journal)
    try:
        results = run_journaled(exhibits, session, journal, jobs=jobs,
                                unit_timeout=unit_timeout, resume=resume,
                                profile=profile)
    finally:
        _restore_handlers(previous)
    for result in results:
        print(result.text)
        print()
    _report_timing(session)
    if session.metrics is not None:
        print(f"metrics: repro stats {journal.run_id}", file=sys.stderr)
    code = 1 if _report_failures(session) else 0
    journal.finished(code)
    journal.close()
    return code


def _cmd_sweep_measure(args, progress) -> int:
    """The ``repro sweep --measure/--check`` benchmark path."""
    from repro.harness.sweep import (
        SWEEP_SPEEDUP_FLOOR,
        compare_sweep_bench,
        load_sweep_bench,
        render_sweep_bench,
        run_sweep_bench,
        validate_sweep_bench,
        write_sweep_bench,
    )
    try:
        document = run_sweep_bench(bench=args.bench, scale=args.scale,
                                   target=args.target,
                                   progress=progress)
    except ConfigError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    errors = validate_sweep_bench(document)
    if errors:
        print("repro: error: sweep bench document failed validation:",
              file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 2
    print(render_sweep_bench(document))
    if args.output:
        write_sweep_bench(document, args.output)
        print(f"wrote {args.output}")
    if args.check:
        try:
            baseline = load_sweep_bench(args.baseline)
        except OSError:
            print(f"repro: error: no baseline at {args.baseline} "
                  "(run 'repro sweep BENCH --measure --output' first)",
                  file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"repro: error: damaged baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        base_errors = validate_sweep_bench(baseline)
        if base_errors:
            print(f"repro: error: baseline {args.baseline} failed "
                  "validation:", file=sys.stderr)
            for error in base_errors:
                print(f"  - {error}", file=sys.stderr)
            return 2
        regressions = compare_sweep_bench(document, baseline,
                                          threshold=args.threshold)
        if regressions:
            print(f"sweep regressions vs {args.baseline}:",
                  file=sys.stderr)
            for regression in regressions:
                print(f"  - {regression}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.baseline} "
              f"(threshold {args.threshold:g}x, floor "
              f"{SWEEP_SPEEDUP_FLOOR:g}x)")
    return 0


def cmd_sweep(args) -> int:
    from repro.harness.sweep import (
        SweepJournal,
        build_sweep_manifest,
        render_exhibits,
        render_sweep,
        run_journaled_sweep,
        run_sweep,
        sweep_runs_dir_from_env,
        validate_sweep,
    )
    from repro.lvp.grid import grid_from_args

    def progress(message: str) -> None:
        if not args.quiet:
            print(f"  {message}", file=sys.stderr)

    if args.measure or args.check:
        return _cmd_sweep_measure(args, progress)

    try:
        configs = grid_from_args(args.grid, args.limit)
    except ConfigError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2

    def finish(document) -> int:
        errors = validate_sweep(document)
        if errors:
            print("repro: error: sweep document failed validation:",
                  file=sys.stderr)
            for error in errors:
                print(f"  - {error}", file=sys.stderr)
            return 2
        print(f"swept {document['configs']} configurations in "
              f"{document.get('wall_s', 0.0):.2f}s "
              f"({document.get('jobs', 1)} jobs)", file=sys.stderr)
        print(render_sweep(document, top=args.top))
        if args.exhibits:
            print()
            print(render_exhibits(document))
        if args.output:
            import json
            path = args.output
            with open(path, "w") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {path}")
        return 0

    if args.no_journal:
        document = run_sweep(args.bench, configs, target=args.target,
                             scale=args.scale, jobs=_resolve_jobs(args),
                             chunk_size=args.chunk_size,
                             progress=progress)
        return finish(document)

    runs_dir = args.runs_dir or sweep_runs_dir_from_env()
    cache_dir = None
    try:
        if args.resume:
            journal = SweepJournal.open(runs_dir, args.resume)
            manifest = journal.manifest
            if args.bench != manifest["bench"]:
                print(f"note: resuming {manifest['bench']!r} as recorded "
                      f"(ignoring {args.bench!r})", file=sys.stderr)
            bench = manifest["bench"]
            target = manifest["target"]
            scale = manifest["scale"]
            cache_dir = manifest.get("cache_dir")
            jobs = _cap_jobs(args.jobs) if args.jobs is not None \
                else _cap_jobs(int(manifest.get("jobs", 1)))
            resume = True
        else:
            bench, target, scale = args.bench, args.target, args.scale
            jobs = _resolve_jobs(args)
            run_id = args.run_id or new_run_id()
            prune_runs(runs_dir, protect=run_id)
            journal = SweepJournal.create(
                runs_dir, run_id,
                build_sweep_manifest(bench, target, scale, configs,
                                     args.chunk_size, jobs))
            resume = False
    except JournalError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    resume_command = f"repro sweep {bench} --resume {journal.run_id}"
    print(f"sweep journal: {journal.directory} "
          f"(resume: {resume_command})", file=sys.stderr)
    previous = _install_interrupt_handlers(journal, resume_command)
    try:
        document = run_journaled_sweep(
            bench, configs, journal=journal, target=target, scale=scale,
            jobs=jobs, cache_dir=cache_dir, resume=resume,
            progress=progress)
    except JournalError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    finally:
        _restore_handlers(previous)
    code = finish(document)
    journal.finished(code)
    return code


def cmd_stats(args) -> int:
    runs_dir = args.runs_dir or runs_dir_from_env()
    try:
        directory = find_run(runs_dir, args.id)
    except JournalError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    try:
        document = load_metrics(directory)
    except OSError:
        print(f"repro: error: run {directory.name} has no metrics.json "
              "(recorded with --no-metrics, interrupted, or by an older "
              "version)", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"repro: error: damaged metrics.json in {directory}: {exc}",
              file=sys.stderr)
        return 2
    if args.validate:
        errors = validate_metrics(document)
        if errors:
            print(f"metrics.json of run {directory.name} is invalid:",
                  file=sys.stderr)
            for error in errors:
                print(f"  - {error}", file=sys.stderr)
            return 1
        print(f"metrics.json of run {directory.name}: schema OK "
              f"({len(document.get('benchmarks', {}))} benchmark(s), "
              f"{len(document.get('spans', []))} span(s))")
        return 0
    print(render_stats(document, full=args.full))
    return 0


def cmd_check(args) -> int:
    from repro.analysis.expectations import check_all, render_check_report
    names = tuple(args.benchmarks.split(",")) if args.benchmarks else None
    session = Session(scale=args.scale, benchmarks=names)
    session.last_warm_report = session.warm(_resolve_jobs(args))
    results = check_all(session)
    print(render_check_report(results))
    _report_timing(session)
    _report_failures(session)
    return 0 if all(r.passed for r in results) else 1


def cmd_doctor(args) -> int:
    from repro.faults import run_doctor
    faults = 18 if args.quick else args.faults
    report = run_doctor(seed=args.seed, faults=faults,
                        benchmark=args.bench, scale=args.scale)
    print(report.render())
    return 0 if report.ok else 1


def cmd_chaos(args) -> int:
    from repro.errors import FaultError
    from repro.harness.chaos import run_chaos
    benchmarks = tuple(args.benchmarks.split(","))
    progress = (lambda line: print(line, file=sys.stderr)) \
        if not args.quiet else None
    try:
        report = run_chaos(seed=args.seed, drills=args.drills,
                           exhibit=args.exhibit, scale=args.scale,
                           benchmarks=benchmarks,
                           artifacts=args.artifacts, progress=progress)
    except FaultError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    from repro.errors import ServeError
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, render_status, serve_main
    if args.status or args.ping or args.drain:
        client = ServeClient(args.socket, timeout=30.0)
        try:
            if args.status:
                print(render_status(client.status()))
            elif args.ping:
                pong = client.ping()
                print(f"pong from pid {pong['pid']}")
            else:
                client.drain()
                print("drain requested")
        except (OSError, ConnectionError) as exc:
            print(f"repro: error: no server answering at "
                  f"{args.socket}: {exc}", file=sys.stderr)
            return 2
        finally:
            client.close()
        return 0
    config = ServeConfig(
        socket_path=args.socket, state_dir=args.state_dir,
        http_port=args.http_port, workers=args.workers,
        queue_limit=args.queue_limit, scale=args.scale,
        drain_timeout=args.drain_timeout,
        default_deadline=args.default_deadline,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown)
    import asyncio
    try:
        return asyncio.run(serve_main(config))
    except ServeError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


def cmd_loadgen(args) -> int:
    from repro.errors import ServeError
    from repro.serve.loadgen import (
        compare_serve_bench,
        load_serve_bench,
        render_serve_bench,
        run_loadgen,
        validate_serve_bench,
        write_serve_bench,
    )
    progress = None if args.quiet \
        else (lambda line: print(line, file=sys.stderr))
    spawned = None
    tempdir = None
    socket_path = args.socket
    try:
        if socket_path is None:
            # No server named: spawn a private tiny-scale one for the
            # duration of the run.
            import subprocess
            import tempfile
            tempdir = tempfile.mkdtemp(prefix="repro-loadgen-")
            socket_path = os.path.join(tempdir, "serve.sock")
            spawned = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--socket", socket_path,
                 "--state-dir", os.path.join(tempdir, "state"),
                 "--scale", args.scale,
                 "--workers", str(args.workers),
                 "--queue-limit", str(args.queue_limit)],
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            if progress:
                progress(f"loadgen: spawned private server "
                         f"(pid {spawned.pid})")
        document = run_loadgen(
            socket_path, requests=args.requests,
            concurrency=args.concurrency, overload=args.overload,
            progress=progress)
    except ServeError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    finally:
        if spawned is not None:
            with contextlib.suppress(ProcessLookupError, OSError):
                spawned.terminate()
            with contextlib.suppress(Exception):
                spawned.wait(timeout=30)
        if tempdir is not None:
            import shutil
            shutil.rmtree(tempdir, ignore_errors=True)
    errors = validate_serve_bench(document)
    if errors:
        print("repro: error: serve bench document failed validation:",
              file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 2
    print(render_serve_bench(document))
    if args.output:
        write_serve_bench(document, args.output)
        print(f"wrote {args.output}")
    if args.check:
        try:
            baseline = load_serve_bench(args.baseline)
        except OSError:
            print(f"repro: error: no baseline at {args.baseline} "
                  "(run 'repro loadgen --output' first)",
                  file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"repro: error: damaged baseline {args.baseline}: "
                  f"{exc}", file=sys.stderr)
            return 2
        regressions = compare_serve_bench(document, baseline,
                                          threshold=args.threshold)
        if regressions:
            print(f"serve regressions vs {args.baseline}:",
                  file=sys.stderr)
            for regression in regressions:
                print(f"  - {regression}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.baseline} "
              f"(threshold {args.threshold:g}x)")
    return 0


def cmd_report(args) -> int:
    from repro.analysis.html import build_html_report
    names = tuple(args.benchmarks.split(",")) if args.benchmarks else None
    session = Session(scale=args.scale, benchmarks=names)
    session.last_warm_report = session.warm(_resolve_jobs(args))
    document = build_html_report(session)
    _report_timing(session)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(document)
    print(f"wrote {args.output} ({len(document):,} bytes)")
    return 0


def cmd_disasm(args) -> int:
    bench = get_benchmark(args.bench)
    program = bench.build_program(args.target, args.scale)
    print(disassemble(program, start=args.start, count=args.count))
    return 0


def cmd_trace(args) -> int:
    from repro.trace.dump import dump_trace
    _, _, result = _traced(args)
    print(dump_trace(result.trace, start=args.start, count=args.count,
                     loads_only=args.loads_only))
    return 0


def cmd_bench(args) -> int:
    from repro.harness.bench import (
        QUICK_BENCHMARKS,
        compare_bench,
        load_bench,
        render_bench,
        run_bench,
        validate_bench,
        write_bench,
    )
    if args.benchmarks:
        names = args.benchmarks.split(",")
    elif args.quick:
        names = list(QUICK_BENCHMARKS)
    else:
        names = None
    e2e = not args.no_e2e and not args.quick
    document = run_bench(names, scale=args.scale, trials=args.trials,
                         e2e=e2e, progress=print)
    errors = validate_bench(document)
    if errors:
        print("repro: error: bench document failed validation:",
              file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 2
    print(render_bench(document))
    if args.output:
        write_bench(document, args.output)
        print(f"wrote {args.output}")
    if args.check:
        try:
            baseline = load_bench(args.baseline)
        except OSError:
            print(f"repro: error: no baseline at {args.baseline} "
                  "(run 'repro bench --output' first)", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"repro: error: damaged baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        base_errors = validate_bench(baseline)
        if base_errors:
            print(f"repro: error: baseline {args.baseline} failed "
                  "validation:", file=sys.stderr)
            for error in base_errors:
                print(f"  - {error}", file=sys.stderr)
            return 2
        regressions = compare_bench(document, baseline,
                                    threshold=args.threshold)
        if regressions:
            print(f"perf regressions vs {args.baseline}:", file=sys.stderr)
            for regression in regressions:
                print(f"  - {regression}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.baseline} "
              f"(threshold {args.threshold:g}x)")
    return 0


def cmd_cache(args) -> int:
    from repro.harness.cache import TraceCache
    directory = args.dir or os.environ.get("REPRO_TRACE_CACHE")
    if not directory:
        print("repro: error: no cache directory (pass --dir or set "
              "REPRO_TRACE_CACHE)", file=sys.stderr)
        return 2
    outcome = TraceCache(directory).migrate()
    print(f"{directory}: {outcome['migrated']} bundle(s) migrated to v2, "
          f"{outcome['skipped']} skipped, "
          f"{outcome['failed']} quarantined")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Value Locality and Load Value "
                    "Prediction' (ASPLOS 1996)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("suite", help="list the benchmark suite") \
        .set_defaults(func=cmd_suite)

    run_parser = commands.add_parser("run", help="run and verify")
    _add_common(run_parser)
    run_parser.set_defaults(func=cmd_run)

    locality_parser = commands.add_parser(
        "locality", help="measure value locality")
    _add_common(locality_parser)
    locality_parser.add_argument("--depths", type=int, nargs="+",
                                 default=[1, 16])
    locality_parser.add_argument("--general", action="store_true",
                                 help="also measure all-instruction "
                                      "value locality")
    locality_parser.set_defaults(func=cmd_locality)

    annotate_parser = commands.add_parser(
        "annotate", help="LVP outcome mix for one benchmark")
    _add_common(annotate_parser)
    annotate_parser.add_argument(
        "--config", default="Simple",
        help="LVP configuration name (%s)" % ", ".join(
            c.name for c in PAPER_CONFIGS + EXTENSION_CONFIGS))
    annotate_parser.set_defaults(func=cmd_annotate)

    speedup_parser = commands.add_parser(
        "speedup", help="cycle-model speedups on all three machines")
    speedup_parser.add_argument("bench")
    speedup_parser.add_argument("--scale", default="small",
                                choices=("tiny", "small", "reference"))
    speedup_parser.add_argument("--config", default="Simple")
    speedup_parser.set_defaults(func=cmd_speedup)

    experiment_parser = commands.add_parser(
        "experiment", help="regenerate a paper exhibit")
    experiment_parser.add_argument(
        "id", nargs="?", default=None,
        choices=sorted(EXPERIMENTS) + ["all"])
    experiment_parser.add_argument("--scale", default="small",
                                   choices=("tiny", "small", "reference"))
    experiment_parser.add_argument("--benchmarks", default=None,
                                   help="comma-separated subset")
    _add_jobs(experiment_parser)
    experiment_parser.add_argument(
        "--unit-timeout", type=_timeout_arg, default=None, metavar="SECONDS",
        help="per-unit watchdog: a work unit exceeding this many "
             "seconds fails (footnoted) instead of hanging the run "
             "(default: $REPRO_UNIT_TIMEOUT or 0 = disarmed)")
    experiment_parser.add_argument(
        "--resume", default=None, metavar="RUN_ID",
        help="resume an interrupted journaled run ('latest' picks the "
             "newest); completed benchmarks load from verified "
             "checkpoints, only the rest re-execute")
    experiment_parser.add_argument(
        "--run-id", default=None, metavar="RUN_ID",
        help="explicit id for this run's journal directory "
             "(default: a timestamp-derived id)")
    experiment_parser.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="where run journals live (default: $REPRO_RUNS_DIR "
             "or .repro/runs)")
    experiment_parser.add_argument(
        "--no-journal", action="store_true",
        help="skip the write-ahead journal (the pre-journal code path; "
             "the run cannot be resumed)")
    experiment_parser.add_argument(
        "--no-metrics", action="store_true",
        help="skip metrics collection (journaled runs record counters "
             "and phase spans into <run-dir>/metrics.json by default; "
             "exhibit stdout is identical either way)")
    experiment_parser.add_argument(
        "--profile", action="store_true",
        help="run every work unit under cProfile and write the hottest "
             "units' captures into <run-dir>/profiles/")
    experiment_parser.set_defaults(func=cmd_experiment)

    sweep_parser = commands.add_parser(
        "sweep", help="one-pass design-space sweep over one trace")
    _add_common(sweep_parser)
    _add_jobs(sweep_parser)
    sweep_parser.add_argument(
        "--grid", default=None, metavar="SPEC",
        help="grid spec 'dim=v1,v2;dim=...' using lvpt/depth/selection/"
             "lct/bits/cvu/predictor/index/ghr/tagged (default: the "
             "builtin >=100-point sensitivity grid)")
    sweep_parser.add_argument(
        "--limit", type=_jobs_arg, default=None, metavar="N",
        help="truncate the grid after N valid configurations")
    sweep_parser.add_argument(
        "--top", type=_jobs_arg, default=10, metavar="N",
        help="rows in the best-configurations table (default: 10)")
    sweep_parser.add_argument(
        "--exhibits", action="store_true",
        help="also render the Table 3/4 and Figure 6 sensitivity "
             "families")
    sweep_parser.add_argument(
        "--chunk-size", type=_jobs_arg, default=16, metavar="N",
        help="configs per journaled work unit (default: 16)")
    sweep_parser.add_argument(
        "--resume", default=None, metavar="RUN_ID",
        help="resume an interrupted journaled sweep ('latest' picks "
             "the newest); completed chunks load from verified "
             "checkpoints, only the rest re-evaluate")
    sweep_parser.add_argument(
        "--run-id", default=None, metavar="RUN_ID",
        help="explicit id for this sweep's journal directory "
             "(default: a timestamp-derived id)")
    sweep_parser.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="where sweep journals live (default: $REPRO_SWEEP_RUNS_DIR "
             "or .repro/sweeps)")
    sweep_parser.add_argument(
        "--no-journal", action="store_true",
        help="skip the write-ahead journal (the sweep cannot be "
             "resumed)")
    sweep_parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the sweep document (or, with --measure/--check, "
             "the BENCH_SWEEP document) as JSON")
    sweep_parser.add_argument(
        "--measure", action="store_true",
        help="measure the shared-decode speedup benchmark instead of "
             "printing sweep results (e.g. --output BENCH_SWEEP.json)")
    sweep_parser.add_argument(
        "--check", action="store_true",
        help="measure and compare against the committed baseline; "
             "exit 1 on regressions or a speedup below the floor")
    sweep_parser.add_argument(
        "--baseline", default="BENCH_SWEEP.json", metavar="FILE",
        help="baseline document for --check "
             "(default: BENCH_SWEEP.json)")
    sweep_parser.add_argument(
        "--threshold", type=float, default=2.0, metavar="X",
        help="--check fails only when the speedup regressed more than "
             "X times against the baseline (default: 2.0)")
    sweep_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress chunk progress on stderr")
    sweep_parser.set_defaults(func=cmd_sweep)

    stats_parser = commands.add_parser(
        "stats", help="render a journaled run's metrics.json")
    stats_parser.add_argument(
        "id", nargs="?", default="latest",
        help="run id (default: 'latest' = the newest journaled run)")
    stats_parser.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="where run journals live (default: $REPRO_RUNS_DIR "
             "or .repro/runs)")
    stats_parser.add_argument(
        "--full", action="store_true",
        help="also dump every recorded counter, not just the headline "
             "digest")
    stats_parser.add_argument(
        "--validate", action="store_true",
        help="check metrics.json against the repro.obs schema instead "
             "of rendering (exit 1 on violations)")
    stats_parser.set_defaults(func=cmd_stats)

    bench_parser = commands.add_parser(
        "bench", help="time every pipeline phase per engine tier")
    bench_parser.add_argument("--scale", default="small",
                              choices=("tiny", "small", "reference"))
    bench_parser.add_argument("--benchmarks", default=None,
                              help="comma-separated subset "
                                   "(default: all 17)")
    bench_parser.add_argument("--trials", type=int, default=1,
                              metavar="N",
                              help="timing repetitions; the minimum is "
                                   "kept (default: 1)")
    bench_parser.add_argument("--quick", action="store_true",
                              help="CI subset: three benchmarks, no "
                                   "end-to-end pass")
    bench_parser.add_argument("--no-e2e", action="store_true",
                              help="skip the cold 'experiment all' "
                                   "passes")
    bench_parser.add_argument("--output", default=None, metavar="FILE",
                              help="write the measurements as JSON "
                                   "(e.g. BENCH_PERF.json)")
    bench_parser.add_argument("--check", action="store_true",
                              help="compare against the committed "
                                   "baseline; exit 1 on regressions")
    bench_parser.add_argument("--baseline", default="BENCH_PERF.json",
                              metavar="FILE",
                              help="baseline document for --check "
                                   "(default: BENCH_PERF.json)")
    bench_parser.add_argument("--threshold", type=float, default=2.0,
                              metavar="X",
                              help="--check fails only when a fast path "
                                   "is more than X times slower than "
                                   "the baseline (default: 2.0)")
    bench_parser.set_defaults(func=cmd_bench)

    cache_parser = commands.add_parser(
        "cache", help="manage the on-disk trace cache")
    cache_parser.add_argument(
        "action", choices=("migrate",),
        help="migrate: upgrade legacy v1 .npz bundles to the "
             "mmap-friendly v2 format")
    cache_parser.add_argument(
        "--dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_TRACE_CACHE)")
    cache_parser.set_defaults(func=cmd_cache)

    check_parser = commands.add_parser(
        "check", help="evaluate the paper-shape claims")
    check_parser.add_argument("--scale", default="small",
                              choices=("tiny", "small", "reference"))
    check_parser.add_argument("--benchmarks", default=None,
                              help="comma-separated subset")
    _add_jobs(check_parser)
    check_parser.set_defaults(func=cmd_check)

    doctor_parser = commands.add_parser(
        "doctor", help="run the fault-injection self-test campaign")
    doctor_parser.add_argument("--seed", type=int, default=0,
                               help="campaign seed (default: 0)")
    doctor_parser.add_argument("--faults", type=int, default=60,
                               help="faults to inject (default: 60)")
    doctor_parser.add_argument("--quick", action="store_true",
                               help="small 18-fault campaign (for CI)")
    doctor_parser.add_argument("--bench", default="grep",
                               help="benchmark to trace (default: grep)")
    doctor_parser.add_argument("--scale", default="tiny",
                               choices=("tiny", "small", "reference"))
    doctor_parser.set_defaults(func=cmd_doctor)

    chaos_parser = commands.add_parser(
        "chaos", help="seeded randomized resilience soak")
    chaos_parser.add_argument("--seed", type=int, default=0,
                              help="campaign seed (default: 0)")
    chaos_parser.add_argument("--drills", type=int, default=20,
                              help="drills to run (default: 20)")
    chaos_parser.add_argument("--exhibit", default="fig6",
                              choices=sorted(EXPERIMENTS),
                              help="exhibit each drill regenerates "
                                   "(default: fig6)")
    chaos_parser.add_argument("--scale", default="tiny",
                              choices=("tiny", "small", "reference"))
    chaos_parser.add_argument("--benchmarks", default="grep,compress",
                              help="comma-separated subset each drill "
                                   "runs (default: grep,compress)")
    chaos_parser.add_argument("--artifacts", default=None, metavar="DIR",
                              help="keep every drill's captures under "
                                   "DIR (default: a temp dir, kept only "
                                   "on failure)")
    chaos_parser.add_argument("--quiet", action="store_true",
                              help="suppress per-drill progress on "
                                   "stderr")
    chaos_parser.set_defaults(func=cmd_chaos)

    serve_parser = commands.add_parser(
        "serve", help="run the long-lived simulation service")
    serve_parser.add_argument(
        "--socket", default=".repro/serve.sock", metavar="PATH",
        help="unix socket to listen on (default: .repro/serve.sock)")
    serve_parser.add_argument(
        "--state-dir", default=".repro/serve", metavar="DIR",
        help="service state: runs, cached results, parked resumes, "
             "metrics (default: .repro/serve)")
    serve_parser.add_argument(
        "--http-port", type=int, default=None, metavar="PORT",
        help="also listen on local HTTP (0 = any free port; "
             "default: unix socket only)")
    serve_parser.add_argument(
        "--workers", type=_jobs_arg, default=2, metavar="N",
        help="worker processes for simulation ops (default: 2)")
    serve_parser.add_argument(
        "--queue-limit", type=_jobs_arg, default=16, metavar="N",
        help="admission high-water mark: requests past this many "
             "waiters are shed with a 429-style overload error "
             "(default: 16)")
    serve_parser.add_argument(
        "--scale", default="small",
        choices=("tiny", "small", "reference"),
        help="default input scale for requests that omit one "
             "(default: small)")
    serve_parser.add_argument(
        "--drain-timeout", type=_timeout_arg, default=10.0,
        metavar="SECONDS",
        help="graceful-drain budget on SIGTERM before in-flight "
             "experiment runs are parked for resume (default: 10)")
    serve_parser.add_argument(
        "--default-deadline", type=_timeout_arg, default=0.0,
        metavar="SECONDS",
        help="deadline applied to requests that carry none "
             "(default: 0 = none)")
    serve_parser.add_argument(
        "--breaker-threshold", type=_jobs_arg, default=3, metavar="N",
        help="consecutive failures that open a benchmark's circuit "
             "(default: 3)")
    serve_parser.add_argument(
        "--breaker-cooldown", type=_timeout_arg, default=30.0,
        metavar="SECONDS",
        help="seconds an open circuit waits before its half-open "
             "probe (default: 30)")
    serve_parser.add_argument(
        "--status", action="store_true",
        help="query a running server: queue depth, in-flight, shed "
             "and coalescing counters, breaker states")
    serve_parser.add_argument(
        "--ping", action="store_true",
        help="check a running server answers")
    serve_parser.add_argument(
        "--drain", action="store_true",
        help="ask a running server to drain and exit")
    serve_parser.set_defaults(func=cmd_serve)

    loadgen_parser = commands.add_parser(
        "loadgen", help="drive a server and benchmark the service")
    loadgen_parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="socket of a running server (default: spawn a private "
             "tiny-scale server for the run)")
    loadgen_parser.add_argument(
        "--requests", type=_jobs_arg, default=60, metavar="N",
        help="steady-phase request volume (default: 60)")
    loadgen_parser.add_argument(
        "--concurrency", type=_jobs_arg, default=6, metavar="N",
        help="client threads in the steady phase (default: 6)")
    loadgen_parser.add_argument(
        "--overload", type=_jobs_arg, default=32, metavar="N",
        help="size of the final all-at-once overload burst "
             "(default: 32)")
    loadgen_parser.add_argument(
        "--scale", default="tiny",
        choices=("tiny", "small", "reference"),
        help="scale for a spawned private server (default: tiny)")
    loadgen_parser.add_argument(
        "--workers", type=_jobs_arg, default=2, metavar="N",
        help="workers for a spawned private server (default: 2)")
    loadgen_parser.add_argument(
        "--queue-limit", type=_jobs_arg, default=16, metavar="N",
        help="queue limit for a spawned private server (default: 16)")
    loadgen_parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the measurements as JSON "
             "(e.g. BENCH_SERVE.json)")
    loadgen_parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline; exit 1 on "
             "regressions")
    loadgen_parser.add_argument(
        "--baseline", default="BENCH_SERVE.json", metavar="FILE",
        help="baseline document for --check "
             "(default: BENCH_SERVE.json)")
    loadgen_parser.add_argument(
        "--threshold", type=float, default=5.0, metavar="X",
        help="--check fails only when a latency percentile is more "
             "than X times the baseline (default: 5.0)")
    loadgen_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress phase progress on stderr")
    loadgen_parser.set_defaults(func=cmd_loadgen)

    report_parser = commands.add_parser(
        "report", help="write an HTML report of all exhibits")
    report_parser.add_argument("--output", default="report.html")
    report_parser.add_argument("--scale", default="small",
                               choices=("tiny", "small", "reference"))
    report_parser.add_argument("--benchmarks", default=None,
                               help="comma-separated subset")
    _add_jobs(report_parser)
    report_parser.set_defaults(func=cmd_report)

    disasm_parser = commands.add_parser(
        "disasm", help="disassemble a benchmark program")
    _add_common(disasm_parser)
    disasm_parser.add_argument("--start", type=int, default=0)
    disasm_parser.add_argument("--count", type=int, default=40)
    disasm_parser.set_defaults(func=cmd_disasm)

    trace_parser = commands.add_parser(
        "trace", help="dump a window of a dynamic trace")
    _add_common(trace_parser)
    trace_parser.add_argument("--start", type=int, default=0)
    trace_parser.add_argument("--count", type=int, default=40)
    trace_parser.add_argument("--loads-only", action="store_true")
    trace_parser.set_defaults(func=cmd_trace)

    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    problem = _validate_engine_env()
    if problem:
        print(f"repro: error: {problem}", file=sys.stderr)
        return 2
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
