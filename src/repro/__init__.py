"""repro: a reproduction of Lipasti, Wilkerson & Shen,
"Value Locality and Load Value Prediction" (ASPLOS VII, 1996).

The package builds the paper's entire experimental stack from scratch:

* :mod:`repro.isa` -- the VRISC ISA and compiler-idiom code generator,
* :mod:`repro.sim` -- the functional simulator / tracing tool,
* :mod:`repro.trace` -- trace records, statistics, LVP annotation,
* :mod:`repro.lvp` -- the LVPT + LCT + CVU load value prediction unit,
* :mod:`repro.workloads` -- the 17-benchmark suite of Table 1,
* :mod:`repro.uarch` -- PowerPC 620/620+ and Alpha 21164 timing models,
* :mod:`repro.harness` -- the per-exhibit experiment registry,
* :mod:`repro.analysis` -- rendering and summary statistics.

Quick start::

    from repro import Session, run_experiment
    session = Session(scale="tiny", benchmarks=("grep", "compress"))
    print(run_experiment("fig1", session).text)
"""

from repro.errors import (
    AssemblyError,
    BenchmarkFailure,
    ConfigError,
    ExecutionError,
    ExecutionLimitExceeded,
    FaultError,
    LinkError,
    ReproError,
    TraceError,
)
from repro.harness import (
    EXPERIMENTS,
    ExperimentResult,
    ParallelEngine,
    Session,
    run_experiment,
    run_experiments,
)
from repro.lvp import (
    CONSTANT,
    LIMIT,
    LVPConfig,
    LVPUnit,
    LoadOutcome,
    PAPER_CONFIGS,
    PERFECT,
    SIMPLE,
    measure_locality_by_kind,
    measure_value_locality,
)
from repro.sim import run_program
from repro.trace import annotate_trace
from repro.uarch import (
    AXP21164Model,
    PPC620,
    PPC620_PLUS,
    PPC620Model,
)
from repro.workloads import BENCHMARKS, get_benchmark

__version__ = "1.0.0"

__all__ = [
    "AssemblyError", "BenchmarkFailure", "ConfigError", "ExecutionError",
    "ExecutionLimitExceeded", "FaultError", "LinkError", "ReproError",
    "TraceError",
    "EXPERIMENTS", "ExperimentResult", "ParallelEngine", "Session",
    "run_experiment", "run_experiments",
    "CONSTANT", "LIMIT", "LVPConfig", "LVPUnit", "LoadOutcome",
    "PAPER_CONFIGS", "PERFECT", "SIMPLE",
    "measure_locality_by_kind", "measure_value_locality",
    "run_program", "annotate_trace",
    "AXP21164Model", "PPC620", "PPC620_PLUS", "PPC620Model",
    "BENCHMARKS", "get_benchmark",
    "__version__",
]
