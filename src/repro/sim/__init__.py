"""Functional simulation: flat memory model, VRISC interpreter, and the
ahead-of-time basic-block compiler (see ``docs/performance.md``)."""

from repro.sim.compile import (
    ENGINES,
    CompiledProgram,
    compiled_engine_for,
    resolve_engine,
)
from repro.sim.functional import (
    EXIT_ADDRESS,
    ExecutionResult,
    FunctionalSimulator,
    run_program,
)
from repro.sim.memory import Memory

__all__ = [
    "EXIT_ADDRESS", "ExecutionResult", "FunctionalSimulator",
    "run_program", "Memory",
    "ENGINES", "CompiledProgram", "compiled_engine_for", "resolve_engine",
]
