"""Functional simulation: flat memory model and VRISC interpreter."""

from repro.sim.functional import (
    EXIT_ADDRESS,
    ExecutionResult,
    FunctionalSimulator,
    run_program,
)
from repro.sim.memory import Memory

__all__ = [
    "EXIT_ADDRESS", "ExecutionResult", "FunctionalSimulator",
    "run_program", "Memory",
]
