"""Functional (architectural) simulator for VRISC programs.

Plays the role of the paper's TRIP6000/ATOM tracing tools: executes a
program to completion and captures the full instruction/address/value
reference stream as a :class:`~repro.trace.records.Trace`.

The simulator also tracks a :class:`~repro.isa.opcodes.ValueKind` for
every register and memory word so that each load in the trace knows what
*kind* of value it returned (integer data, FP data, instruction address,
or data address) -- the classification behind the paper's Figure 2.

Implementation note: the main loop is a single flat dispatch over opcode
integers with locally-bound helpers.  This is deliberately monolithic --
it executes hundreds of thousands of instructions per workload and a
per-instruction method call would roughly double end-to-end trace
generation time for the whole suite.
"""

from __future__ import annotations

import math
import struct
from typing import Optional

import numpy as np

from repro.errors import ExecutionError, ExecutionLimitExceeded
from repro.isa.instructions import Instruction
from repro.isa.opcodes import OP_CLASS, OpClass, Opcode, ValueKind
from repro.isa.program import (
    DATA_BASE,
    INSTR_SIZE,
    Program,
    STACK_TOP,
    TEXT_BASE,
)
from repro.isa.registers import CTR, LR, NUM_REGS, SP, TOC
from repro.sim.memory import Memory
from repro.trace.records import Trace, TraceColumns

_U64 = (1 << 64) - 1
_SIGN = 1 << 63

# bincount minlengths for sim_counters, computed once at import time
# rather than on every call.
_OPCLASS_BINS = max(int(c) for c in OpClass) + 1
_OPCODE_BINS = max(int(o) for o in Opcode) + 1

#: Jumping to this address terminates execution (the loader puts it in LR
#: before calling the entry point, so returning from ``main`` halts).
EXIT_ADDRESS = 0

_PACK_D = struct.Struct("<d")
_PACK_Q = struct.Struct("<Q")


def _s64(x: int) -> int:
    """Interpret unsigned 64-bit *x* as signed."""
    return x - (1 << 64) if x & _SIGN else x


def _to_float(bits: int) -> float:
    return _PACK_D.unpack(_PACK_Q.pack(bits & _U64))[0]


def _from_float(value: float) -> int:
    return _PACK_Q.unpack(_PACK_D.pack(value))[0]


class ExecutionResult:
    """Outcome of a functional run: trace plus final architectural state."""

    def __init__(self, trace: Optional[Trace], memory: Memory,
                 registers: list[int], instruction_count: int) -> None:
        self.trace = trace
        self.memory = memory
        self.registers = registers
        self.instruction_count = instruction_count


class FunctionalSimulator:
    """Executes a linked :class:`Program` and captures its trace."""

    def __init__(self, program: Program,
                 max_instructions: int = 50_000_000) -> None:
        self.program = program
        self.max_instructions = max_instructions

    def run(self, collect_trace: bool = True,
            name: str = "", target: str = "",
            engine: str = "auto") -> ExecutionResult:
        """Run the program to completion.

        *engine* selects the execution tier: ``"interp"`` runs this
        module's reference interpreter, ``"compiled"`` the basic-block
        compiler in :mod:`repro.sim.compile`, and ``"auto"`` (default)
        the compiled tier.  The ``REPRO_ENGINE`` environment variable
        overrides the argument.  Both tiers are bit-identical; the
        interpreter is the oracle the compiled tier is verified against.

        Raises :class:`ExecutionLimitExceeded` if the instruction budget
        is exhausted (a non-halting workload is a bug, not a hang).
        """
        # Imported here (not at module level): repro.sim.compile mirrors
        # this module's semantics and imports its helpers.
        from repro.sim.compile import compiled_engine_for, resolve_engine

        program = self.program
        words, kinds_image = program.initial_memory()
        memory = Memory.from_image(words, kinds_image)

        regs = [0] * NUM_REGS
        rkinds = [int(ValueKind.INT_DATA)] * NUM_REGS
        regs[SP] = STACK_TOP
        rkinds[SP] = int(ValueKind.DATA_ADDR)
        regs[TOC] = DATA_BASE
        rkinds[TOC] = int(ValueKind.DATA_ADDR)
        regs[LR] = EXIT_ADDRESS
        rkinds[LR] = int(ValueKind.INSTR_ADDR)

        cols = TraceColumns() if collect_trace else None
        if resolve_engine(engine) == "compiled":
            count = compiled_engine_for(program).execute(
                memory, regs, rkinds, cols, limit=self.max_instructions)
        else:
            count = self._execute(memory, regs, rkinds, cols)

        trace = None
        if cols is not None:
            trace = Trace.from_columns(
                cols, name=name or program.name, target=target
            )
        return ExecutionResult(trace, memory, regs, count)

    # The loop below intentionally trades structure for speed; see the
    # module docstring.  It is exercised heavily by the workload tests.
    def _execute(self, memory: Memory, regs: list[int], rkinds: list[int],
                 cols: Optional[TraceColumns]) -> int:  # noqa: C901
        program = self.program
        instructions = program.instructions
        num_instructions = len(instructions)
        limit = self.max_instructions

        INT_DATA = int(ValueKind.INT_DATA)
        FP_DATA = int(ValueKind.FP_DATA)
        INSTR_ADDR = int(ValueKind.INSTR_ADDR)
        DATA_ADDR = int(ValueKind.DATA_ADDR)
        ADDR_KINDS = (INSTR_ADDR, DATA_ADDR)

        op_class_of = OP_CLASS
        read_word = memory.read_word
        write_word = memory.write_word
        read_u32 = memory.read_u32
        write_u32 = memory.write_u32
        read_u8 = memory.read_u8
        write_u8 = memory.write_u8

        if cols is not None:
            rec = (
                cols.pc.append, cols.opcode.append, cols.opclass.append,
                cols.dst.append, cols.src1.append, cols.src2.append,
                cols.addr.append, cols.value.append, cols.kind.append,
                cols.size.append, cols.taken.append,
            )
        else:
            rec = None

        O = Opcode
        index = program.index_of(program.entry_pc)
        count = 0
        halting = False

        while True:
            if count >= limit:
                raise ExecutionLimitExceeded(
                    f"{program.name}: exceeded {limit} instructions"
                )
            if not 0 <= index < num_instructions:
                raise ExecutionError(
                    f"{program.name}: pc out of range (index {index})"
                )
            instr: Instruction = instructions[index]
            op = instr.opcode
            dst = instr.dst
            src1 = instr.src1
            src2 = instr.src2
            pc = TEXT_BASE + index * INSTR_SIZE
            count += 1
            next_index = index + 1

            mem_addr = 0
            mem_value = 0
            mem_kind = 0
            mem_size = 0
            taken = 0

            # ---- integer ALU -------------------------------------------------
            if op is O.ADD:
                value = (regs[src1] + regs[src2]) & _U64
                k1, k2 = rkinds[src1], rkinds[src2]
                kind = k1 if k1 in ADDR_KINDS else (
                    k2 if k2 in ADDR_KINDS else INT_DATA)
                if dst:
                    regs[dst] = value
                    rkinds[dst] = kind
            elif op is O.ADDI:
                value = (regs[src1] + instr.imm) & _U64
                k1 = rkinds[src1]
                kind = k1 if k1 in ADDR_KINDS else INT_DATA
                if dst:
                    regs[dst] = value
                    rkinds[dst] = kind
            elif op is O.SUB:
                value = (regs[src1] - regs[src2]) & _U64
                k1 = rkinds[src1]
                kind = k1 if k1 in ADDR_KINDS else INT_DATA
                if dst:
                    regs[dst] = value
                    rkinds[dst] = kind
            elif op is O.AND:
                if dst:
                    regs[dst] = regs[src1] & regs[src2]
                    rkinds[dst] = INT_DATA
            elif op is O.ANDI:
                if dst:
                    regs[dst] = regs[src1] & (instr.imm & _U64)
                    rkinds[dst] = INT_DATA
            elif op is O.OR:
                if dst:
                    regs[dst] = regs[src1] | regs[src2]
                    rkinds[dst] = INT_DATA
            elif op is O.ORI:
                if dst:
                    regs[dst] = regs[src1] | (instr.imm & _U64)
                    rkinds[dst] = INT_DATA
            elif op is O.XOR:
                if dst:
                    regs[dst] = regs[src1] ^ regs[src2]
                    rkinds[dst] = INT_DATA
            elif op is O.XORI:
                if dst:
                    regs[dst] = regs[src1] ^ (instr.imm & _U64)
                    rkinds[dst] = INT_DATA
            elif op is O.SLL:
                if dst:
                    regs[dst] = (regs[src1] << (regs[src2] & 63)) & _U64
                    rkinds[dst] = INT_DATA
            elif op is O.SLLI:
                if dst:
                    regs[dst] = (regs[src1] << (instr.imm & 63)) & _U64
                    rkinds[dst] = INT_DATA
            elif op is O.SRL:
                if dst:
                    regs[dst] = regs[src1] >> (regs[src2] & 63)
                    rkinds[dst] = INT_DATA
            elif op is O.SRLI:
                if dst:
                    regs[dst] = regs[src1] >> (instr.imm & 63)
                    rkinds[dst] = INT_DATA
            elif op is O.SRA:
                if dst:
                    regs[dst] = (_s64(regs[src1]) >> (regs[src2] & 63)) & _U64
                    rkinds[dst] = INT_DATA
            elif op is O.SRAI:
                if dst:
                    regs[dst] = (_s64(regs[src1]) >> (instr.imm & 63)) & _U64
                    rkinds[dst] = INT_DATA
            elif op is O.SLT:
                if dst:
                    regs[dst] = 1 if _s64(regs[src1]) < _s64(regs[src2]) else 0
                    rkinds[dst] = INT_DATA
            elif op is O.SLTI:
                if dst:
                    regs[dst] = 1 if _s64(regs[src1]) < instr.imm else 0
                    rkinds[dst] = INT_DATA
            elif op is O.SLTU:
                if dst:
                    regs[dst] = 1 if regs[src1] < regs[src2] else 0
                    rkinds[dst] = INT_DATA
            elif op is O.SEQ:
                if dst:
                    regs[dst] = 1 if regs[src1] == regs[src2] else 0
                    rkinds[dst] = INT_DATA
            elif op is O.LI:
                if dst:
                    regs[dst] = instr.imm & _U64
                    rkinds[dst] = INT_DATA
            elif op is O.LA:
                if dst:
                    regs[dst] = instr.imm & _U64
                    rkinds[dst] = DATA_ADDR
            elif op is O.MOV:
                if dst:
                    regs[dst] = regs[src1]
                    rkinds[dst] = rkinds[src1]
            elif op is O.NOP:
                pass

            # ---- complex integer ------------------------------------------------
            elif op is O.MUL:
                if dst:
                    regs[dst] = (regs[src1] * regs[src2]) & _U64
                    rkinds[dst] = INT_DATA
            elif op is O.DIV:
                a, b = _s64(regs[src1]), _s64(regs[src2])
                q = 0 if b == 0 else abs(a) // abs(b) * (
                    -1 if (a < 0) != (b < 0) else 1)
                if dst:
                    regs[dst] = q & _U64
                    rkinds[dst] = INT_DATA
            elif op is O.REM:
                a, b = _s64(regs[src1]), _s64(regs[src2])
                if b == 0:
                    r = 0
                else:
                    r = abs(a) % abs(b) * (-1 if a < 0 else 1)
                if dst:
                    regs[dst] = r & _U64
                    rkinds[dst] = INT_DATA
            elif op is O.MFLR:
                if dst:
                    regs[dst] = regs[LR]
                    rkinds[dst] = rkinds[LR]
            elif op is O.MTLR:
                regs[LR] = regs[src1]
                rkinds[LR] = rkinds[src1]
            elif op is O.MFCTR:
                if dst:
                    regs[dst] = regs[CTR]
                    rkinds[dst] = rkinds[CTR]
            elif op is O.MTCTR:
                regs[CTR] = regs[src1]
                rkinds[CTR] = rkinds[src1]

            # ---- loads -----------------------------------------------------------
            elif op is O.LD:
                mem_addr = (regs[src1] + instr.imm) & _U64
                mem_value, mem_kind = read_word(mem_addr)
                mem_size = 8
                if dst:
                    regs[dst] = mem_value
                    rkinds[dst] = mem_kind
            elif op is O.LW:
                mem_addr = (regs[src1] + instr.imm) & _U64
                raw = read_u32(mem_addr)
                mem_value = (raw - (1 << 32) if raw & (1 << 31) else raw) & _U64
                mem_kind = INT_DATA
                mem_size = 4
                if dst:
                    regs[dst] = mem_value
                    rkinds[dst] = INT_DATA
            elif op is O.LBU:
                mem_addr = (regs[src1] + instr.imm) & _U64
                mem_value = read_u8(mem_addr)
                mem_kind = INT_DATA
                mem_size = 1
                if dst:
                    regs[dst] = mem_value
                    rkinds[dst] = INT_DATA
            elif op is O.FLD:
                mem_addr = (regs[src1] + instr.imm) & _U64
                mem_value, stored_kind = read_word(mem_addr)
                mem_kind = FP_DATA if stored_kind == INT_DATA else stored_kind
                mem_size = 8
                if dst:
                    regs[dst] = mem_value
                    rkinds[dst] = mem_kind

            # ---- stores ------------------------------------------------------------
            elif op is O.ST:
                mem_addr = (regs[src1] + instr.imm) & _U64
                mem_value = regs[src2]
                mem_kind = rkinds[src2]
                mem_size = 8
                write_word(mem_addr, mem_value, mem_kind)
            elif op is O.STW:
                mem_addr = (regs[src1] + instr.imm) & _U64
                mem_value = regs[src2] & 0xFFFF_FFFF
                mem_kind = INT_DATA
                mem_size = 4
                write_u32(mem_addr, mem_value)
            elif op is O.SB:
                mem_addr = (regs[src1] + instr.imm) & _U64
                mem_value = regs[src2] & 0xFF
                mem_kind = INT_DATA
                mem_size = 1
                write_u8(mem_addr, mem_value)
            elif op is O.FST:
                mem_addr = (regs[src1] + instr.imm) & _U64
                mem_value = regs[src2]
                mem_kind = FP_DATA
                mem_size = 8
                write_word(mem_addr, mem_value, FP_DATA)

            # ---- floating point -------------------------------------------------------
            elif op is O.FADD:
                if dst:
                    regs[dst] = _from_float(
                        _to_float(regs[src1]) + _to_float(regs[src2]))
                    rkinds[dst] = FP_DATA
            elif op is O.FSUB:
                if dst:
                    regs[dst] = _from_float(
                        _to_float(regs[src1]) - _to_float(regs[src2]))
                    rkinds[dst] = FP_DATA
            elif op is O.FMUL:
                if dst:
                    regs[dst] = _from_float(
                        _to_float(regs[src1]) * _to_float(regs[src2]))
                    rkinds[dst] = FP_DATA
            elif op is O.FDIV:
                b = _to_float(regs[src2])
                a = _to_float(regs[src1])
                if dst:
                    regs[dst] = _from_float(a / b if b != 0.0 else 0.0)
                    rkinds[dst] = FP_DATA
            elif op is O.FNEG:
                if dst:
                    regs[dst] = _from_float(-_to_float(regs[src1]))
                    rkinds[dst] = FP_DATA
            elif op is O.FABS:
                if dst:
                    regs[dst] = _from_float(abs(_to_float(regs[src1])))
                    rkinds[dst] = FP_DATA
            elif op is O.FSQRT:
                a = _to_float(regs[src1])
                if dst:
                    regs[dst] = _from_float(math.sqrt(a) if a >= 0.0 else 0.0)
                    rkinds[dst] = FP_DATA
            elif op is O.FCVT:
                if dst:
                    regs[dst] = _from_float(float(_s64(regs[src1])))
                    rkinds[dst] = FP_DATA
            elif op is O.FTRUNC:
                if dst:
                    regs[dst] = int(math.trunc(_to_float(regs[src1]))) & _U64
                    rkinds[dst] = INT_DATA
            elif op is O.FLT:
                if dst:
                    regs[dst] = (
                        1 if _to_float(regs[src1]) < _to_float(regs[src2])
                        else 0
                    )
                    rkinds[dst] = INT_DATA
            elif op is O.FEQ:
                if dst:
                    regs[dst] = (
                        1 if _to_float(regs[src1]) == _to_float(regs[src2])
                        else 0
                    )
                    rkinds[dst] = INT_DATA
            elif op is O.FLE:
                if dst:
                    regs[dst] = (
                        1 if _to_float(regs[src1]) <= _to_float(regs[src2])
                        else 0
                    )
                    rkinds[dst] = INT_DATA

            # ---- control flow ------------------------------------------------------------
            elif op is O.BEQ:
                taken = 1 if regs[src1] == regs[src2] else 0
                if taken:
                    next_index = (instr.target - TEXT_BASE) // INSTR_SIZE
            elif op is O.BNE:
                taken = 1 if regs[src1] != regs[src2] else 0
                if taken:
                    next_index = (instr.target - TEXT_BASE) // INSTR_SIZE
            elif op is O.BLT:
                taken = 1 if _s64(regs[src1]) < _s64(regs[src2]) else 0
                if taken:
                    next_index = (instr.target - TEXT_BASE) // INSTR_SIZE
            elif op is O.BGE:
                taken = 1 if _s64(regs[src1]) >= _s64(regs[src2]) else 0
                if taken:
                    next_index = (instr.target - TEXT_BASE) // INSTR_SIZE
            elif op is O.BLTU:
                taken = 1 if regs[src1] < regs[src2] else 0
                if taken:
                    next_index = (instr.target - TEXT_BASE) // INSTR_SIZE
            elif op is O.BGEU:
                taken = 1 if regs[src1] >= regs[src2] else 0
                if taken:
                    next_index = (instr.target - TEXT_BASE) // INSTR_SIZE
            elif op is O.J:
                next_index = (instr.target - TEXT_BASE) // INSTR_SIZE
            elif op is O.JAL:
                regs[LR] = pc + INSTR_SIZE
                rkinds[LR] = INSTR_ADDR
                next_index = (instr.target - TEXT_BASE) // INSTR_SIZE
            elif op is O.JALR:
                addr = regs[src1]
                regs[LR] = pc + INSTR_SIZE
                rkinds[LR] = INSTR_ADDR
                if addr == EXIT_ADDRESS:
                    halting = True
                else:
                    next_index = (addr - TEXT_BASE) // INSTR_SIZE
            elif op is O.JR:
                addr = regs[src1]
                if addr == EXIT_ADDRESS:
                    halting = True
                else:
                    next_index = (addr - TEXT_BASE) // INSTR_SIZE
            elif op is O.RET:
                addr = regs[LR]
                if addr == EXIT_ADDRESS:
                    halting = True
                else:
                    next_index = (addr - TEXT_BASE) // INSTR_SIZE
            elif op is O.BCTR:
                addr = regs[CTR]
                if addr == EXIT_ADDRESS:
                    halting = True
                else:
                    next_index = (addr - TEXT_BASE) // INSTR_SIZE
            elif op is O.HALT:
                halting = True
            else:  # pragma: no cover - opcode table is exhaustive
                raise ExecutionError(f"unhandled opcode: {op.name}")

            if rec is not None:
                # For register-writing non-memory instructions, record
                # the produced value (and its kind) so downstream tools
                # can study *general* value locality -- the paper's
                # final future-work item ("values generated by
                # instructions other than loads").
                if mem_size == 0 and dst > 0:
                    mem_value = regs[dst]
                    mem_kind = rkinds[dst]
                rec[0](pc)
                rec[1](int(op))
                rec[2](int(op_class_of[op]))
                rec[3](dst)
                rec[4](src1)
                rec[5](src2)
                rec[6](mem_addr)
                rec[7](mem_value)
                rec[8](mem_kind)
                rec[9](mem_size)
                rec[10](taken)
            if halting:
                break
            index = next_index

        return count


def run_program(program: Program, collect_trace: bool = True,
                name: str = "", target: str = "",
                max_instructions: int = 50_000_000,
                engine: str = "auto") -> ExecutionResult:
    """Run *program* to completion; convenience wrapper."""
    sim = FunctionalSimulator(program, max_instructions=max_instructions)
    return sim.run(collect_trace=collect_trace, name=name, target=target,
                   engine=engine)


def sim_counters(trace: Trace) -> dict[str, int]:
    """Observability counters for one functional run.

    Derived from the finished trace's columns in a few vectorized
    passes rather than incremented inside the dispatch loop, so the
    hot loop pays nothing for observability and the counters are
    identical whether the trace was just simulated or loaded from the
    on-disk cache.  Keys: ``instructions``, ``loads``, ``stores``,
    ``branches``, and a per-opcode mix under ``op/<NAME>`` (dynamic
    opcodes only).
    """
    opclass_counts = np.bincount(trace.opclass, minlength=_OPCLASS_BINS)
    counters = {
        "instructions": trace.num_instructions,
        "loads": trace.num_loads,
        "stores": trace.num_stores,
        "branches": int(opclass_counts[int(OpClass.BRANCH)]),
    }
    opcode_counts = np.bincount(trace.opcode, minlength=_OPCODE_BINS)
    for opcode in Opcode:
        count = int(opcode_counts[int(opcode)])
        if count:
            counters[f"op/{opcode.name}"] = count
    return counters
