"""Flat memory model for functional simulation.

Memory is a sparse map of 8-byte-aligned words to 64-bit values, with a
parallel *shadow* map recording the :class:`~repro.isa.opcodes.ValueKind`
of each word.  The shadow is what lets the reproduction classify loads by
the type of the value loaded (paper Figure 2) without heuristics: every
value knows whether it is integer data, FP data, an instruction address,
or a data address, because the producer said so when it was created.

Sub-word accesses (bytes, 32-bit words) read-modify-write the containing
aligned word, little-endian.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.isa.opcodes import ValueKind

_U64 = (1 << 64) - 1
_WORD = 8


class Memory:
    """Sparse word-addressed memory with value-kind shadow metadata."""

    def __init__(self) -> None:
        self._words: dict[int, int] = {}
        self._kinds: dict[int, int] = {}

    @classmethod
    def from_image(cls, words: dict[int, int],
                   kinds: dict[int, int]) -> "Memory":
        """Build a memory preloaded with a program's data segment."""
        mem = cls()
        mem._words.update(words)
        mem._kinds.update(kinds)
        return mem

    # -- word (64-bit) access ------------------------------------------------
    def read_word(self, addr: int) -> tuple[int, int]:
        """Return (value, kind) of the aligned 64-bit word at *addr*."""
        self._check_aligned(addr, _WORD)
        return (
            self._words.get(addr, 0),
            self._kinds.get(addr, int(ValueKind.INT_DATA)),
        )

    def write_word(self, addr: int, value: int, kind: int) -> None:
        """Write a 64-bit value (and its kind) at aligned *addr*."""
        self._check_aligned(addr, _WORD)
        self._words[addr] = value & _U64
        self._kinds[addr] = kind

    # -- 32-bit access ---------------------------------------------------------
    def read_u32(self, addr: int) -> int:
        """Read a 32-bit little-endian value at 4-byte-aligned *addr*."""
        self._check_aligned(addr, 4)
        base = addr & ~7
        shift = (addr - base) * 8
        return (self._words.get(base, 0) >> shift) & 0xFFFF_FFFF

    def write_u32(self, addr: int, value: int) -> None:
        """Write a 32-bit value; the containing word's kind becomes INT_DATA."""
        self._check_aligned(addr, 4)
        base = addr & ~7
        shift = (addr - base) * 8
        word = self._words.get(base, 0)
        mask = 0xFFFF_FFFF << shift
        self._words[base] = (word & ~mask) | ((value & 0xFFFF_FFFF) << shift)
        self._kinds[base] = int(ValueKind.INT_DATA)

    # -- byte access -------------------------------------------------------------
    def read_u8(self, addr: int) -> int:
        """Read one byte at *addr*."""
        base = addr & ~7
        shift = (addr - base) * 8
        return (self._words.get(base, 0) >> shift) & 0xFF

    def write_u8(self, addr: int, value: int) -> None:
        """Write one byte; the containing word's kind becomes INT_DATA."""
        base = addr & ~7
        shift = (addr - base) * 8
        word = self._words.get(base, 0)
        mask = 0xFF << shift
        self._words[base] = (word & ~mask) | ((value & 0xFF) << shift)
        self._kinds[base] = int(ValueKind.INT_DATA)

    # -- bulk helpers (used by tests and workload input setup) -----------------
    def read_bytes(self, addr: int, length: int) -> bytes:
        """Read *length* raw bytes starting at *addr*."""
        return bytes(self.read_u8(addr + i) for i in range(length))

    def read_cstring(self, addr: int, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated byte string starting at *addr*."""
        out = bytearray()
        for i in range(limit):
            byte = self.read_u8(addr + i)
            if byte == 0:
                return bytes(out)
            out.append(byte)
        raise ExecutionError(f"unterminated string at {addr:#x}")

    @staticmethod
    def _check_aligned(addr: int, size: int) -> None:
        if addr % size:
            raise ExecutionError(
                f"misaligned {size}-byte access at {addr:#x}"
            )
        if addr < 0:
            raise ExecutionError(f"negative address {addr:#x}")
