"""Ahead-of-time basic-block compiler for VRISC programs (tier 1).

The interpreter in :mod:`repro.sim.functional` pays per-instruction
dispatch (a ~30-arm ``elif`` chain), per-instruction operand field
reads, and eleven bound-method appends for every dynamic instruction.
This module removes all three costs by *compiling* a linked
:class:`~repro.isa.program.Program` once: the static instruction stream
is partitioned into basic blocks (leaders are the entry point, every
resolved branch target, and every instruction after a control-flow op)
and each block is emitted as one specialized Python function via
``compile()``/``exec`` with

* immediates, PCs, opcode/op-class numbers and register ids baked in as
  constants,
* registers promoted to function locals (loaded on entry, written back
  on exit; reads of the hardwired ``r0`` fold to the literal ``0``),
* trace-column appends batched into one ``list.extend`` per column per
  block (fully-constant columns become pre-built constant tuples), and
* the instruction-budget check hoisted to one comparison per block.

The whole program becomes a single source string compiled to a single
code object, cached per :class:`Program` in a ``WeakKeyDictionary``;
each run ``exec``s that code object in a fresh namespace so the run's
:class:`~repro.sim.memory.Memory` methods and trace buffers are bound
as default arguments (zero per-call rebinding cost).  Computed jumps
(``JALR``/``JR``/``RET``/``BCTR``) can land mid-block; such entry
points are compiled lazily on first use and cached on the engine.

The interpreter remains the reference oracle: the compiled engine is
required to be *bit-identical* to it -- same trace columns, same final
registers/memory, same exceptions with the same messages -- which the
differential suite in ``tests/sim/test_compile.py`` enforces across all
workloads.

Semantic mirroring notes (all proven by the differential suite):

* ``ExecutionLimitExceeded``: the interpreter raises before executing
  the instruction that would exceed the budget.  Because every halting
  or control-flow instruction ends its block, a block of length ``L``
  always retires exactly ``L`` instructions, so the per-block pre-check
  ``count + L > limit`` raises in exactly the same executions.
* A ``dst`` of ``NO_REG`` (-1) is *truthy*, so guarded writes with
  ``dst == -1`` store to ``regs[-1]`` (the CTR slot) just like the
  interpreter; only a literal ``dst == 0`` suppresses the write.
* Reads of register 0 constant-fold to ``0`` -- valid because ``r0``
  starts at zero and every write is ``if dst:``-guarded.
"""

from __future__ import annotations

import math
import os
import weakref

from repro.errors import ConfigError, ExecutionError, ExecutionLimitExceeded
from repro.isa.opcodes import OP_CLASS, OpClass, Opcode
from repro.isa.program import INSTR_SIZE, Program, TEXT_BASE
from repro.isa.registers import CTR, LR, NUM_REGS
from repro.sim.functional import EXIT_ADDRESS, _from_float, _to_float

_U64 = (1 << 64) - 1
_SIGN = 1 << 63
_BRANCH = OpClass.BRANCH

#: Recognised values of the ``engine`` knob / ``REPRO_ENGINE`` env var.
ENGINES = ("auto", "interp", "compiled")


def resolve_engine(engine: str) -> str:
    """Resolve the engine knob to ``"interp"`` or ``"compiled"``.

    The ``REPRO_ENGINE`` environment variable overrides the argument
    (same precedence style as the harness's other chaos/engine knobs);
    ``"auto"`` selects the compiled tier.
    """
    env = os.environ.get("REPRO_ENGINE")
    if env:
        engine = env
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown execution engine {engine!r} "
            f"(choose from {', '.join(ENGINES)})"
        )
    return "compiled" if engine == "auto" else engine


# --------------------------------------------------------------------------
# code generation
# --------------------------------------------------------------------------

def _canon(reg: int) -> int:
    """Canonical register-file index (mirrors Python negative indexing)."""
    return reg if reg >= 0 else NUM_REGS + reg


def _r(c: int) -> str:
    return f"r{c}" if c >= 0 else f"rn{-c}"


def _k(c: int) -> str:
    return f"k{c}" if c >= 0 else f"kn{-c}"


def _sx(expr: str) -> str:
    """Inline signed-64 view of an unsigned local (no function call)."""
    return (f"(({expr}) - 18446744073709551616 "
            f"if ({expr}) & 9223372036854775808 else ({expr}))")


def _tgt_expr(instr) -> str:
    """Branch-target instruction index, folded when resolved."""
    t = instr.target
    if isinstance(t, int):
        return repr((t - TEXT_BASE) // INSTR_SIZE)
    # Unlinked/symbolic target: defer to runtime so the failure mode
    # matches the interpreter (which only fails if the branch is taken).
    return f"(({t!r} - {TEXT_BASE}) // {INSTR_SIZE})"


#: Default-argument list binding the per-run namespace into each block
#: function at ``exec`` time (trace-column extends, memory methods, FP
#: helpers).  Evaluated once per function definition, never per call.
_DEFAULTS = (
    "_xpc=_xpc, _xop=_xop, _xcl=_xcl, _xds=_xds, _xs1=_xs1, _xs2=_xs2, "
    "_xad=_xad, _xva=_xva, _xkn=_xkn, _xsz=_xsz, _xtk=_xtk, "
    "_rw=_rw, _ww=_ww, _ru4=_ru4, _wu4=_wu4, _ru1=_ru1, _wu1=_wu1, "
    "_tf=_tf, _ff=_ff, _sqrt=_sqrt, _tr=_tr"
)


def _emit(j: int, instr, pc: int) -> dict:  # noqa: C901
    """Emit one instruction: statements, record markers, read/write sets.

    Record markers are ``("lit", value)``, ``("name", local)``,
    ``("reg", c)`` (value of register *c* at this point) or
    ``("kreg", c)`` (its kind); reg markers are resolved to locals or
    capture temps once the whole block is known.
    """
    op = instr.opcode
    O = Opcode
    item = {
        "stmts": [], "writes": set(), "pre_val": set(), "pre_kind": set(),
        "addr": ("lit", 0), "value": None, "kind": None,
        "taken": ("lit", 0), "size": 0, "terminal": None,
    }
    dst, imm = instr.dst, instr.imm
    d = _canon(dst)
    c1 = _canon(instr.src1)
    c2 = _canon(instr.src2)
    stmts = item["stmts"]

    def RV(c: int) -> str:
        if c != 0:
            item["pre_val"].add(c)
        return "0" if c == 0 else _r(c)

    def RK(c: int) -> str:
        if c != 0:
            item["pre_kind"].add(c)
        return "0" if c == 0 else _k(c)

    def write(value_expr: str, kind_expr: str) -> None:
        stmts.append(f"{_r(d)} = {value_expr}")
        stmts.append(f"{_k(d)} = {kind_expr}")
        item["writes"].add(d)

    # ---- integer ALU ----
    if op is O.ADD:
        if dst:
            v1, v2, k1, k2 = RV(c1), RV(c2), RK(c1), RK(c2)
            write(f"({v1} + {v2}) & {_U64}",
                  f"{k1} if {k1} in (2, 3) else "
                  f"({k2} if {k2} in (2, 3) else 0)")
    elif op is O.ADDI:
        if dst:
            v1, k1 = RV(c1), RK(c1)
            write(f"({v1} + {imm}) & {_U64}",
                  f"{k1} if {k1} in (2, 3) else 0")
    elif op is O.SUB:
        if dst:
            v1, v2, k1 = RV(c1), RV(c2), RK(c1)
            write(f"({v1} - {v2}) & {_U64}",
                  f"{k1} if {k1} in (2, 3) else 0")
    elif op is O.AND:
        if dst:
            write(f"{RV(c1)} & {RV(c2)}", "0")
    elif op is O.ANDI:
        if dst:
            write(f"{RV(c1)} & {imm & _U64}", "0")
    elif op is O.OR:
        if dst:
            write(f"{RV(c1)} | {RV(c2)}", "0")
    elif op is O.ORI:
        if dst:
            write(f"{RV(c1)} | {imm & _U64}", "0")
    elif op is O.XOR:
        if dst:
            write(f"{RV(c1)} ^ {RV(c2)}", "0")
    elif op is O.XORI:
        if dst:
            write(f"{RV(c1)} ^ {imm & _U64}", "0")
    elif op is O.SLL:
        if dst:
            write(f"({RV(c1)} << ({RV(c2)} & 63)) & {_U64}", "0")
    elif op is O.SLLI:
        if dst:
            write(f"({RV(c1)} << {imm & 63}) & {_U64}", "0")
    elif op is O.SRL:
        if dst:
            write(f"{RV(c1)} >> ({RV(c2)} & 63)", "0")
    elif op is O.SRLI:
        if dst:
            write(f"{RV(c1)} >> {imm & 63}", "0")
    elif op is O.SRA:
        if dst:
            write(f"({_sx(RV(c1))} >> ({RV(c2)} & 63)) & {_U64}", "0")
    elif op is O.SRAI:
        if dst:
            write(f"({_sx(RV(c1))} >> {imm & 63}) & {_U64}", "0")
    elif op is O.SLT:
        if dst:
            write(f"1 if {_sx(RV(c1))} < {_sx(RV(c2))} else 0", "0")
    elif op is O.SLTI:
        if dst:
            write(f"1 if {_sx(RV(c1))} < {imm} else 0", "0")
    elif op is O.SLTU:
        if dst:
            write(f"1 if {RV(c1)} < {RV(c2)} else 0", "0")
    elif op is O.SEQ:
        if dst:
            write(f"1 if {RV(c1)} == {RV(c2)} else 0", "0")
    elif op is O.LI:
        if dst:
            write(repr(imm & _U64), "0")
    elif op is O.LA:
        if dst:
            write(repr(imm & _U64), "3")
    elif op is O.MOV:
        if dst:
            write(RV(c1), RK(c1))
    elif op is O.NOP:
        pass

    # ---- complex integer ----
    elif op is O.MUL:
        if dst:
            write(f"({RV(c1)} * {RV(c2)}) & {_U64}", "0")
    elif op is O.DIV:
        if dst:
            stmts.append(f"_a = {_sx(RV(c1))}")
            stmts.append(f"_b = {_sx(RV(c2))}")
            write(f"(0 if _b == 0 else abs(_a) // abs(_b) * "
                  f"(-1 if (_a < 0) != (_b < 0) else 1)) & {_U64}", "0")
    elif op is O.REM:
        if dst:
            stmts.append(f"_a = {_sx(RV(c1))}")
            stmts.append(f"_b = {_sx(RV(c2))}")
            write(f"(0 if _b == 0 else abs(_a) % abs(_b) * "
                  f"(-1 if _a < 0 else 1)) & {_U64}", "0")
    elif op is O.MFLR:
        if dst:
            write(RV(LR), RK(LR))
    elif op is O.MTLR:
        stmts.append(f"{_r(LR)} = {RV(c1)}")
        stmts.append(f"{_k(LR)} = {RK(c1)}")
        item["writes"].add(LR)
    elif op is O.MFCTR:
        if dst:
            write(RV(CTR), RK(CTR))
    elif op is O.MTCTR:
        stmts.append(f"{_r(CTR)} = {RV(c1)}")
        stmts.append(f"{_k(CTR)} = {RK(c1)}")
        item["writes"].add(CTR)

    # ---- loads ----
    elif op is O.LD:
        a, v, q = f"a{j}", f"v{j}", f"q{j}"
        stmts.append(f"{a} = ({RV(c1)} + {imm}) & {_U64}")
        stmts.append(f"{v}, {q} = _rw({a})")
        if dst:
            write(v, q)
        item["addr"] = ("name", a)
        item["value"] = ("name", v)
        item["kind"] = ("name", q)
        item["size"] = 8
    elif op is O.LW:
        a, v = f"a{j}", f"v{j}"
        stmts.append(f"{a} = ({RV(c1)} + {imm}) & {_U64}")
        stmts.append(f"_w = _ru4({a})")
        stmts.append(
            f"{v} = (_w - 4294967296 if _w & 2147483648 else _w) & {_U64}")
        if dst:
            write(v, "0")
        item["addr"] = ("name", a)
        item["value"] = ("name", v)
        item["kind"] = ("lit", 0)
        item["size"] = 4
    elif op is O.LBU:
        a, v = f"a{j}", f"v{j}"
        stmts.append(f"{a} = ({RV(c1)} + {imm}) & {_U64}")
        stmts.append(f"{v} = _ru1({a})")
        if dst:
            write(v, "0")
        item["addr"] = ("name", a)
        item["value"] = ("name", v)
        item["kind"] = ("lit", 0)
        item["size"] = 1
    elif op is O.FLD:
        a, v, q = f"a{j}", f"v{j}", f"q{j}"
        stmts.append(f"{a} = ({RV(c1)} + {imm}) & {_U64}")
        stmts.append(f"{v}, _sk = _rw({a})")
        stmts.append(f"{q} = 1 if _sk == 0 else _sk")
        if dst:
            write(v, q)
        item["addr"] = ("name", a)
        item["value"] = ("name", v)
        item["kind"] = ("name", q)
        item["size"] = 8

    # ---- stores ----
    elif op is O.ST:
        a = f"a{j}"
        stmts.append(f"{a} = ({RV(c1)} + {imm}) & {_U64}")
        stmts.append(f"_ww({a}, {RV(c2)}, {RK(c2)})")
        item["addr"] = ("name", a)
        item["value"] = ("reg", c2)
        item["kind"] = ("kreg", c2)
        item["size"] = 8
    elif op is O.STW:
        a, v = f"a{j}", f"v{j}"
        stmts.append(f"{a} = ({RV(c1)} + {imm}) & {_U64}")
        stmts.append(f"{v} = {RV(c2)} & 4294967295")
        stmts.append(f"_wu4({a}, {v})")
        item["addr"] = ("name", a)
        item["value"] = ("name", v)
        item["kind"] = ("lit", 0)
        item["size"] = 4
    elif op is O.SB:
        a, v = f"a{j}", f"v{j}"
        stmts.append(f"{a} = ({RV(c1)} + {imm}) & {_U64}")
        stmts.append(f"{v} = {RV(c2)} & 255")
        stmts.append(f"_wu1({a}, {v})")
        item["addr"] = ("name", a)
        item["value"] = ("name", v)
        item["kind"] = ("lit", 0)
        item["size"] = 1
    elif op is O.FST:
        a = f"a{j}"
        stmts.append(f"{a} = ({RV(c1)} + {imm}) & {_U64}")
        stmts.append(f"_ww({a}, {RV(c2)}, 1)")
        item["addr"] = ("name", a)
        item["value"] = ("reg", c2)
        item["kind"] = ("lit", 1)
        item["size"] = 8

    # ---- floating point ----
    elif op is O.FADD:
        if dst:
            write(f"_ff(_tf({RV(c1)}) + _tf({RV(c2)}))", "1")
    elif op is O.FSUB:
        if dst:
            write(f"_ff(_tf({RV(c1)}) - _tf({RV(c2)}))", "1")
    elif op is O.FMUL:
        if dst:
            write(f"_ff(_tf({RV(c1)}) * _tf({RV(c2)}))", "1")
    elif op is O.FDIV:
        if dst:
            stmts.append(f"_fb = _tf({RV(c2)})")
            write(f"_ff(_tf({RV(c1)}) / _fb if _fb != 0.0 else 0.0)", "1")
    elif op is O.FNEG:
        if dst:
            write(f"_ff(-_tf({RV(c1)}))", "1")
    elif op is O.FABS:
        if dst:
            write(f"_ff(abs(_tf({RV(c1)})))", "1")
    elif op is O.FSQRT:
        if dst:
            stmts.append(f"_fa = _tf({RV(c1)})")
            write("_ff(_sqrt(_fa) if _fa >= 0.0 else 0.0)", "1")
    elif op is O.FCVT:
        if dst:
            write(f"_ff(float({_sx(RV(c1))}))", "1")
    elif op is O.FTRUNC:
        if dst:
            write(f"int(_tr(_tf({RV(c1)}))) & {_U64}", "0")
    elif op is O.FLT:
        if dst:
            write(f"1 if _tf({RV(c1)}) < _tf({RV(c2)}) else 0", "0")
    elif op is O.FEQ:
        if dst:
            write(f"1 if _tf({RV(c1)}) == _tf({RV(c2)}) else 0", "0")
    elif op is O.FLE:
        if dst:
            write(f"1 if _tf({RV(c1)}) <= _tf({RV(c2)}) else 0", "0")

    # ---- control flow (always block-final) ----
    elif op in (O.BEQ, O.BNE, O.BLT, O.BGE, O.BLTU, O.BGEU):
        if op is O.BEQ:
            cond = f"{RV(c1)} == {RV(c2)}"
        elif op is O.BNE:
            cond = f"{RV(c1)} != {RV(c2)}"
        elif op is O.BLT:
            cond = f"{_sx(RV(c1))} < {_sx(RV(c2))}"
        elif op is O.BGE:
            cond = f"{_sx(RV(c1))} >= {_sx(RV(c2))}"
        elif op is O.BLTU:
            cond = f"{RV(c1)} < {RV(c2)}"
        else:
            cond = f"{RV(c1)} >= {RV(c2)}"
        stmts.append(f"_t = 1 if {cond} else 0")
        item["taken"] = ("name", "_t")
        item["terminal"] = f"{_tgt_expr(instr)} if _t else {j + 1}"
    elif op is O.J:
        item["terminal"] = _tgt_expr(instr)
    elif op is O.JAL:
        stmts.append(f"{_r(LR)} = {pc + INSTR_SIZE}")
        stmts.append(f"{_k(LR)} = 2")
        item["writes"].add(LR)
        item["terminal"] = _tgt_expr(instr)
    elif op is O.JALR:
        # Read the jump target *before* LR is overwritten (src1 may be LR).
        stmts.append(f"_x = {RV(c1)}")
        stmts.append(f"{_r(LR)} = {pc + INSTR_SIZE}")
        stmts.append(f"{_k(LR)} = 2")
        item["writes"].add(LR)
        item["terminal"] = (f"None if _x == {EXIT_ADDRESS} "
                            f"else (_x - {TEXT_BASE}) // {INSTR_SIZE}")
    elif op in (O.JR, O.RET, O.BCTR):
        src = c1 if op is O.JR else (LR if op is O.RET else CTR)
        stmts.append(f"_x = {RV(src)}")
        item["terminal"] = (f"None if _x == {EXIT_ADDRESS} "
                            f"else (_x - {TEXT_BASE}) // {INSTR_SIZE}")
    elif op is O.HALT:
        item["terminal"] = "None"
    else:  # pragma: no cover - opcode table is exhaustive
        raise ExecutionError(f"unhandled opcode: {op.name}")

    # Mirror the interpreter's recording rule: non-memory instructions
    # with dst > 0 record the destination's post-write value and kind.
    if item["size"] == 0 and dst > 0:
        item["value"] = ("reg", d)
        item["kind"] = ("kreg", d)
    elif item["value"] is None:
        item["value"] = ("lit", 0)
        item["kind"] = ("lit", 0)
    return item


def _emit_block(instructions, start: int, stop: int,
                fn_name: str) -> list[str]:
    """Emit the source lines of one basic-block function."""
    items = []
    for j in range(start, stop):
        items.append(_emit(j, instructions[j],
                           TEXT_BASE + j * INSTR_SIZE))
    terminal = items[-1]["terminal"]
    if terminal is None:  # fell off the block: next leader (or pc error)
        terminal = repr(stop)

    # Registers whose value/kind must be loaded from the register file
    # on entry (read before any write inside the block).
    written: set[int] = set()
    loads_v: list[int] = []
    loads_k: list[int] = []
    sv: set[int] = set()
    sk: set[int] = set()
    for it in items:
        for c in sorted(it["pre_val"]):
            if c not in written and c not in sv:
                sv.add(c)
                loads_v.append(c)
        for c in sorted(it["pre_kind"]):
            if c not in written and c not in sk:
                sk.add(c)
                loads_k.append(c)
        written |= it["writes"]
        vm, km = it["value"], it["kind"]
        if vm[0] == "reg" and vm[1] != 0 and vm[1] not in written \
                and vm[1] not in sv:
            sv.add(vm[1])
            loads_v.append(vm[1])
        if km[0] == "kreg" and km[1] != 0 and km[1] not in written \
                and km[1] not in sk:
            sk.add(km[1])
            loads_k.append(km[1])

    # Resolve reg/kreg record markers.  A register referenced by a
    # record and overwritten by a *later* instruction in the block must
    # be captured into a temp at record time; otherwise the live local
    # (or literal 0 for r0) is referenced directly in the batched tuple.
    after: set[int] = set()
    suffixes = [frozenset()] * len(items)
    for idx in range(len(items) - 1, -1, -1):
        suffixes[idx] = frozenset(after)
        after |= items[idx]["writes"]
    for idx, it in enumerate(items):
        j = start + idx
        vm = it["value"]
        if vm[0] == "reg":
            c = vm[1]
            if c == 0:
                it["value"] = ("lit", 0)
            elif c in suffixes[idx]:
                it["stmts"].append(f"cv{j} = {_r(c)}")
                it["value"] = ("name", f"cv{j}")
            else:
                it["value"] = ("name", _r(c))
        km = it["kind"]
        if km[0] == "kreg":
            c = km[1]
            if c == 0:
                it["kind"] = ("lit", 0)
            elif c in suffixes[idx]:
                it["stmts"].append(f"ck{j} = {_k(c)}")
                it["kind"] = ("name", f"ck{j}")
            else:
                it["kind"] = ("name", _k(c))

    def col(markers) -> str:
        if all(m[0] == "lit" for m in markers):
            return repr(tuple(m[1] for m in markers))
        return "(" + ", ".join(
            repr(m[1]) if m[0] == "lit" else m[1] for m in markers
        ) + ",)"

    rng = range(start, stop)
    pcs = repr(tuple(TEXT_BASE + j * INSTR_SIZE for j in rng))
    ops = repr(tuple(int(instructions[j].opcode) for j in rng))
    cls = repr(tuple(int(OP_CLASS[instructions[j].opcode]) for j in rng))
    dsts = repr(tuple(instructions[j].dst for j in rng))
    s1s = repr(tuple(instructions[j].src1 for j in rng))
    s2s = repr(tuple(instructions[j].src2 for j in rng))
    sizes = repr(tuple(it["size"] for it in items))

    lines = [f"def {fn_name}(regs, rkinds, {_DEFAULTS}):"]
    for c in loads_v:
        lines.append(f"    {_r(c)} = regs[{c}]")
    for c in loads_k:
        lines.append(f"    {_k(c)} = rkinds[{c}]")
    for it in items:
        for s in it["stmts"]:
            lines.append("    " + s)
    lines.append(f"    _xpc({pcs})")
    lines.append(f"    _xop({ops})")
    lines.append(f"    _xcl({cls})")
    lines.append(f"    _xds({dsts})")
    lines.append(f"    _xs1({s1s})")
    lines.append(f"    _xs2({s2s})")
    lines.append(f"    _xad({col([it['addr'] for it in items])})")
    lines.append(f"    _xva({col([it['value'] for it in items])})")
    lines.append(f"    _xkn({col([it['kind'] for it in items])})")
    lines.append(f"    _xsz({sizes})")
    lines.append(f"    _xtk({col([it['taken'] for it in items])})")
    for c in sorted(written):
        lines.append(f"    regs[{c}] = {_r(c)}")
        lines.append(f"    rkinds[{c}] = {_k(c)}")
    lines.append(f"    return {terminal}")
    return lines


def partition(program: Program) -> list[tuple[int, int]]:
    """Split the static instruction stream into basic-block ranges.

    Leaders are the entry point, every in-range resolved branch target,
    and the instruction after every control-flow op; a block also ends
    at any control-flow op.  Returned ranges are ``(start, stop)`` with
    ``stop`` exclusive, sorted by start.
    """
    instructions = program.instructions
    n = len(instructions)
    entry = program.index_of(program.entry_pc)
    leaders: set[int] = set()
    if 0 <= entry < n:
        leaders.add(entry)
    for i, ins in enumerate(instructions):
        if OP_CLASS[ins.opcode] is _BRANCH:
            if i + 1 < n:
                leaders.add(i + 1)
            t = ins.target
            if isinstance(t, int):
                ti = (t - TEXT_BASE) // INSTR_SIZE
                if 0 <= ti < n:
                    leaders.add(ti)
    ranges = []
    for s in sorted(leaders):
        i = s
        while True:
            if OP_CLASS[instructions[i].opcode] is _BRANCH \
                    or i + 1 == n or (i + 1) in leaders:
                break
            i += 1
        ranges.append((s, i + 1))
    return ranges


def generate_source(program: Program) -> tuple[str, dict[int, int]]:
    """Generate the whole-program block source and a start->length map."""
    parts = [f"# compiled VRISC blocks for {program.name!r}"]
    lengths: dict[int, int] = {}
    for start, stop in partition(program):
        parts.extend(_emit_block(program.instructions, start, stop,
                                 f"_b{start}"))
        lengths[start] = stop - start
    parts.append("_BLOCKS = {" + ", ".join(
        f"{s}: (_b{s}, {ln})" for s, ln in lengths.items()) + "}")
    return "\n".join(parts) + "\n", lengths


class CompiledProgram:
    """A program compiled to per-basic-block Python functions.

    Construction generates and ``compile()``s the whole-program source
    once; :meth:`execute` ``exec``s the cached code object per run with
    that run's memory and trace buffers bound into the namespace.
    """

    def __init__(self, program: Program) -> None:
        program.entry_pc  # raises LinkError early if not linked
        self.program = program
        self.source, self.block_lengths = generate_source(program)
        self.code = compile(self.source,
                            f"<vrisc-compiled:{program.name}>", "exec")
        self._lazy: dict[int, tuple] = {}  # start -> (code, length)

    @property
    def num_blocks(self) -> int:
        return len(self.block_lengths)

    def _namespace(self, memory, cols) -> dict:
        if cols is None:
            noop = _noop_extend
            ext = [noop] * 11
        else:
            ext = [cols.pc.extend, cols.opcode.extend, cols.opclass.extend,
                   cols.dst.extend, cols.src1.extend, cols.src2.extend,
                   cols.addr.extend, cols.value.extend, cols.kind.extend,
                   cols.size.extend, cols.taken.extend]
        return {
            "_xpc": ext[0], "_xop": ext[1], "_xcl": ext[2], "_xds": ext[3],
            "_xs1": ext[4], "_xs2": ext[5], "_xad": ext[6], "_xva": ext[7],
            "_xkn": ext[8], "_xsz": ext[9], "_xtk": ext[10],
            "_rw": memory.read_word, "_ww": memory.write_word,
            "_ru4": memory.read_u32, "_wu4": memory.write_u32,
            "_ru1": memory.read_u8, "_wu1": memory.write_u8,
            "_tf": _to_float, "_ff": _from_float,
            "_sqrt": math.sqrt, "_tr": math.trunc,
        }

    def _lazy_block(self, index: int, ns: dict, blocks: dict) -> tuple:
        """Compile (or re-bind) a block entered mid-stream by a computed
        jump.  Lazy blocks run from *index* to the next control-flow op."""
        cached = self._lazy.get(index)
        if cached is None:
            instructions = self.program.instructions
            n = len(instructions)
            i = index
            while OP_CLASS[instructions[i].opcode] is not _BRANCH \
                    and i + 1 < n:
                i += 1
            stop = i + 1
            lines = _emit_block(instructions, index, stop, f"_lz{index}")
            code = compile("\n".join(lines) + "\n",
                           f"<vrisc-compiled:{self.program.name}:+{index}>",
                           "exec")
            cached = (code, stop - index)
            self._lazy[index] = cached
        code, length = cached
        exec(code, ns)
        blk = (ns[f"_lz{index}"], length)
        blocks[index] = blk
        return blk

    def execute(self, memory, regs: list[int], rkinds: list[int],
                cols, limit: int) -> int:
        """Run to completion; mirrors ``FunctionalSimulator._execute``."""
        ns = self._namespace(memory, cols)
        exec(self.code, ns)
        blocks = ns["_BLOCKS"]
        program = self.program
        name = program.name
        n = len(program.instructions)
        index = program.index_of(program.entry_pc)
        count = 0
        get = blocks.get
        while True:
            if count >= limit:
                raise ExecutionLimitExceeded(
                    f"{name}: exceeded {limit} instructions"
                )
            blk = get(index)
            if blk is None:
                if not 0 <= index < n:
                    raise ExecutionError(
                        f"{name}: pc out of range (index {index})"
                    )
                blk = self._lazy_block(index, ns, blocks)
            fn, length = blk
            if count + length > limit:
                raise ExecutionLimitExceeded(
                    f"{name}: exceeded {limit} instructions"
                )
            count += length
            nxt = fn(regs, rkinds)
            if nxt is None:
                return count
            index = nxt


def _noop_extend(_values) -> None:
    """Column sink for untraced runs."""


_ENGINE_CACHE: "weakref.WeakKeyDictionary[Program, CompiledProgram]" = \
    weakref.WeakKeyDictionary()


def compiled_engine_for(program: Program) -> CompiledProgram:
    """Return (building and caching on first use) *program*'s engine."""
    engine = _ENGINE_CACHE.get(program)
    if engine is None:
        engine = CompiledProgram(program)
        _ENGINE_CACHE[program] = engine
    return engine
