"""Load generator and service benchmark (``repro loadgen``).

Drives a running ``repro serve`` daemon with three phases -- a serial
warm-up, a concurrent steady phase of deliberately duplicated requests
(so coalescing and the result cache have something to do), and an
overload burst against the bounded queue -- and assembles the
measurements into a ``BENCH_SERVE.json`` document: client-observed
latency percentiles, the coalescing hit rate, and the shed rate under
overload.  The document follows the same conventions as
``BENCH_PERF.json`` (schema id, structural validation, atomic write,
and a generous ``--check`` regression gate), so service performance is
a committed, diffable artifact.
"""

from __future__ import annotations

import json
import pathlib
import platform
import threading
import time
from typing import Any, Mapping, Optional

from repro.errors import ServeError, ServiceOverloadError
from repro.serve.client import ServeClient
from repro.serve.scheduler import percentile

#: Document format identifier (bump on incompatible layout changes).
SERVE_SCHEMA_ID = "repro.serve-bench/v1"

#: The committed baseline at the repository root.
SERVE_BENCH_FILENAME = "BENCH_SERVE.json"

#: Default regression gate: fail only when a latency percentile is
#: more than this many times the committed baseline.
DEFAULT_THRESHOLD = 5.0

#: Absolute slack under which latency regressions are noise, seconds.
NOISE_FLOOR_S = 0.25

#: The steady-phase request mix: deliberately few distinct requests so
#: concurrent workers collide and coalesce.  All tiny-scale trace ops:
#: cheap, deterministic, and exercising the full worker path.
STEADY_MIX = (
    ("trace", {"bench": "grep", "scale": "tiny"}),
    ("trace", {"bench": "compress", "scale": "tiny"}),
    ("annotate", {"bench": "grep", "scale": "tiny",
                  "config": "Simple"}),
)


def _run_phase(socket_path: str, plan: list[tuple[str, dict]],
               concurrency: int, timeout: float,
               deadline_s: Optional[float] = None) -> dict[str, Any]:
    """Fire *plan* over *concurrency* threads; gather per-request fates."""
    lock = threading.Lock()
    latencies: list[float] = []
    outcomes = {"ok": 0, "shed": 0, "failed": 0}
    cursor = {"next": 0}

    def worker() -> None:
        client = ServeClient(socket_path, timeout=timeout)
        try:
            while True:
                with lock:
                    index = cursor["next"]
                    if index >= len(plan):
                        return
                    cursor["next"] = index + 1
                op, params = plan[index]
                started = time.perf_counter()
                try:
                    client.request(op, params, deadline_s=deadline_s)
                    elapsed = time.perf_counter() - started
                    with lock:
                        outcomes["ok"] += 1
                        latencies.append(elapsed)
                except ServiceOverloadError:
                    with lock:
                        outcomes["shed"] += 1
                except (ServeError, OSError, ConnectionError):
                    with lock:
                        outcomes["failed"] += 1
        finally:
            client.close()

    threads = [threading.Thread(target=worker, daemon=True)
               for _ in range(max(1, concurrency))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return {"latencies": latencies, **outcomes}


def run_loadgen(socket_path: str, *, requests: int = 60,
                concurrency: int = 6, overload: int = 32,
                timeout: float = 120.0, progress=None) -> dict:
    """Drive the server and assemble the ``BENCH_SERVE.json`` document.

    ``requests`` is the steady-phase volume (cycled over the coalescing
    mix), ``concurrency`` the client thread count, and ``overload`` the
    size of the final burst fired all at once to provoke load shedding.
    """
    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    probe = ServeClient(socket_path, timeout=timeout)
    if not probe.wait_until_ready(timeout=min(30.0, timeout)):
        raise ServeError(
            f"no server answering at {socket_path} (start one with "
            f"'repro serve')")
    before = probe.status()

    note("loadgen: warm-up (serial, one request per mix entry)")
    warm = _run_phase(socket_path, list(STEADY_MIX), concurrency=1,
                      timeout=timeout)

    note(f"loadgen: steady phase ({requests} requests, "
         f"{concurrency} threads)")
    plan = [STEADY_MIX[i % len(STEADY_MIX)] for i in range(requests)]
    steady = _run_phase(socket_path, plan, concurrency=concurrency,
                        timeout=timeout)

    note(f"loadgen: overload burst ({overload} concurrent requests)")
    # Distinct params per request defeat coalescing on purpose: the
    # burst must hit the queue, not the coalescing map, so the shed
    # path is what gets measured.  36 distinct combos over the two
    # already-traced benchmarks keep the admitted fraction cheap.
    combos: list[tuple[str, dict]] = [
        ("annotate", {"bench": bench, "scale": "tiny",
                      "target": target, "config": config})
        for bench in ("grep", "compress")
        for target in ("ppc", "alpha")
        for config in ("Simple", "Constant", "Limit", "Perfect",
                       "Stride", "Gshare")
    ] + [
        ("model", {"bench": bench, "scale": "tiny",
                   "machine": machine, "config": config})
        for bench in ("grep", "compress")
        for machine in ("620", "620+", "21164")
        for config in (None, "Simple")
    ]
    burst_plan = [combos[i % len(combos)] for i in range(overload)]
    burst = _run_phase(socket_path, burst_plan, concurrency=overload,
                       timeout=timeout)

    after = probe.status()
    probe.close()

    latencies = steady["latencies"]
    received = after["received"] - before["received"]
    coalesced = after["coalesced"] - before["coalesced"]
    cache_hits = after["cache_hits"] - before["cache_hits"]
    document = {
        "schema": SERVE_SCHEMA_ID,
        "requests": requests,
        "concurrency": concurrency,
        "overload": overload,
        "latency": {
            "count": len(latencies),
            "p50_s": round(percentile(latencies, 50), 4),
            "p95_s": round(percentile(latencies, 95), 4),
            "p99_s": round(percentile(latencies, 99), 4),
            "mean_s": round(sum(latencies) / len(latencies), 4)
            if latencies else 0.0,
            "max_s": round(max(latencies), 4) if latencies else 0.0,
        },
        "coalescing": {
            "received": received,
            "coalesced": coalesced,
            "cache_hits": cache_hits,
            "hit_rate": round((coalesced + cache_hits) / received, 4)
            if received else 0.0,
        },
        "overload_burst": {
            "sent": overload,
            "ok": burst["ok"],
            "shed": burst["shed"],
            "failed": burst["failed"],
            "shed_rate": round(burst["shed"] / overload, 4)
            if overload else 0.0,
            "queue_limit": after.get("queue_limit"),
        },
        "phases": {
            "warm": {"ok": warm["ok"], "failed": warm["failed"]},
            "steady": {"ok": steady["ok"], "shed": steady["shed"],
                       "failed": steady["failed"]},
        },
        "server": {
            "workers": after.get("workers"),
            "scale": after.get("scale"),
            "shed_total": after.get("shed"),
        },
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    return document


# ---------------------------------------------------------------------------
# Schema validation and baseline comparison (BENCH_PERF.json idiom).
# ---------------------------------------------------------------------------
def validate_serve_bench(document) -> list[str]:
    """Structural validation; returns error strings (empty = valid)."""
    errors: list[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("schema") != SERVE_SCHEMA_ID:
        errors.append(f"schema is {document.get('schema')!r}, "
                      f"expected {SERVE_SCHEMA_ID!r}")
    for field in ("requests", "concurrency", "overload"):
        if not isinstance(document.get(field), int) \
                or document.get(field, 0) < 0:
            errors.append(f"{field} must be a non-negative integer")
    latency = document.get("latency")
    if not isinstance(latency, dict):
        errors.append("latency must be an object")
    else:
        for field in ("p50_s", "p95_s", "p99_s", "mean_s", "max_s"):
            value = latency.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(
                    f"latency.{field} must be a non-negative number")
    coalescing = document.get("coalescing")
    if not isinstance(coalescing, dict) \
            or not isinstance(coalescing.get("hit_rate"),
                              (int, float)):
        errors.append("coalescing.hit_rate must be a number")
    burst = document.get("overload_burst")
    if not isinstance(burst, dict) \
            or not isinstance(burst.get("shed_rate"), (int, float)):
        errors.append("overload_burst.shed_rate must be a number")
    return errors


def compare_serve_bench(current: Mapping, baseline: Mapping,
                        threshold: float = DEFAULT_THRESHOLD,
                        noise_floor: float = NOISE_FLOOR_S,
                        ) -> list[str]:
    """Regressions of *current* against *baseline*; returns messages.

    Like :func:`repro.harness.bench.compare_bench`, the gate is
    deliberately generous: a latency percentile must be both
    ``threshold`` times the baseline *and* ``noise_floor`` seconds
    slower in absolute terms.  The functional robustness claims are
    gated hard, though: a steady phase that stopped coalescing, or an
    overload burst that stopped shedding, is a behavior regression at
    any latency.
    """
    regressions: list[str] = []
    base_latency = baseline.get("latency", {})
    now_latency = current.get("latency", {})
    for field in ("p50_s", "p95_s", "p99_s"):
        base = base_latency.get(field)
        now = now_latency.get(field)
        if (base and now is not None and now > base * threshold
                and now - base > noise_floor):
            regressions.append(
                f"latency.{field}: {now:.3f}s vs baseline "
                f"{base:.3f}s ({now / base:.1f}x, "
                f"threshold {threshold:g}x)")
    base_hit = baseline.get("coalescing", {}).get("hit_rate", 0.0)
    now_hit = current.get("coalescing", {}).get("hit_rate", 0.0)
    if base_hit > 0.0 and now_hit == 0.0:
        regressions.append(
            "coalescing.hit_rate dropped to 0 (baseline "
            f"{base_hit:.1%}): duplicate requests no longer coalesce")
    base_shed = baseline.get("overload_burst", {}).get("shed_rate", 0.0)
    now_shed = current.get("overload_burst", {}).get("shed_rate", 0.0)
    if base_shed > 0.0 and now_shed == 0.0:
        regressions.append(
            "overload_burst.shed_rate dropped to 0 (baseline "
            f"{base_shed:.1%}): the bounded queue no longer sheds")
    return regressions


def render_serve_bench(document: Mapping) -> str:
    """Human-readable summary of a serve bench document."""
    latency = document["latency"]
    coalescing = document["coalescing"]
    burst = document["overload_burst"]
    return "\n".join([
        f"repro loadgen ({document['requests']} requests, "
        f"{document['concurrency']} threads, burst "
        f"{document['overload']})",
        f"  latency    : p50 {latency['p50_s'] * 1000:7.1f}ms   "
        f"p95 {latency['p95_s'] * 1000:7.1f}ms   "
        f"p99 {latency['p99_s'] * 1000:7.1f}ms",
        f"  coalescing : {coalescing['coalesced']} coalesced + "
        f"{coalescing['cache_hits']} cache hits over "
        f"{coalescing['received']} requests "
        f"(hit rate {coalescing['hit_rate']:.1%})",
        f"  overload   : {burst['shed']}/{burst['sent']} shed "
        f"(rate {burst['shed_rate']:.1%}; queue limit "
        f"{burst['queue_limit']})",
    ])


def write_serve_bench(document: Mapping, path) -> pathlib.Path:
    """Atomically write a serve bench document as JSON."""
    path = pathlib.Path(path)
    temporary = path.with_suffix(path.suffix + ".tmp")
    temporary.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n")
    temporary.replace(path)
    return path


def load_serve_bench(path) -> dict:
    """Read a serve bench document (OSError if missing, ValueError on
    damage)."""
    return json.loads(pathlib.Path(path).read_text())
