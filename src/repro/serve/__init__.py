"""Long-lived simulation service (``repro serve``).

A small asyncio daemon that keeps one warm process alive to serve
trace/annotate/model/experiment requests over a unix socket (and an
optional local HTTP listener) with a versioned JSON protocol.  The
value proposition mirrors the paper's: just as a load value predictor
amortizes repeated loads, the service amortizes repeated simulations --
identical concurrent requests coalesce onto one execution, results are
cached, and the shared trace cache stays warm across requests.

Modules:

``protocol``
    The ``repro.serve/v1`` wire protocol: frame encoding, request
    validation, request keys for coalescing, error-kind mapping.
``scheduler``
    Admission control (bounded queue + load shedding), coalescing,
    per-subject circuit breakers, deadlines, and service metrics.
``server``
    The daemon: listeners, request dispatch, experiment subprocess
    management, journaled resume after a kill, graceful drain.
``client``
    A small blocking client used by the CLI, the load generator, the
    chaos drills, and the test-suite.
``loadgen``
    A threaded load generator and the ``BENCH_SERVE.json`` service
    benchmark document (latency percentiles, coalescing hit rate,
    shed rate under overload).
"""

from repro.serve.protocol import PROTOCOL_ID, request_key
from repro.serve.scheduler import Scheduler, ServeStats
from repro.serve.server import ReproServer, ServeConfig
from repro.serve.client import ServeClient

__all__ = [
    "PROTOCOL_ID",
    "ReproServer",
    "Scheduler",
    "ServeClient",
    "ServeConfig",
    "ServeStats",
    "request_key",
]
