"""Blocking client for the ``repro serve`` daemon.

Used by the CLI (``repro serve --status``), the load generator, the
chaos drills, and the test-suite.  One client owns one unix-socket
connection (opened lazily, reopened transparently after a server
restart); a failed response is re-raised as the same exception type
the server recorded -- overloads as :class:`~repro.errors
.ServiceOverloadError`, blown deadlines as :class:`~repro.errors
.DeadlineExceededError`, and so on -- so calling through the service
feels like calling the library.

Clients are not thread-safe: give each thread its own instance (the
load generator does).
"""

from __future__ import annotations

import socket
import time
import uuid
from typing import Any, Optional

from repro.errors import ServeError
from repro.serve import protocol


class ServeClient:
    """One connection to one server socket."""

    def __init__(self, socket_path: str, timeout: float = 120.0) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._buffer = b""
        self._counter = 0
        self._tag = uuid.uuid4().hex[:8]
        #: Meta block of the most recent successful response
        #: (coalesced/cached flags, server-side elapsed time).
        self.last_meta: dict[str, Any] = {}

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buffer = b""

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            try:
                sock.connect(self.socket_path)
            except OSError:
                sock.close()
                raise
            self._sock = sock
            self._buffer = b""
        return self._sock

    def _read_line(self, sock: socket.socket) -> bytes:
        while b"\n" not in self._buffer:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError(
                    f"server at {self.socket_path} closed the "
                    f"connection mid-response")
            self._buffer += chunk
            if len(self._buffer) > protocol.MAX_FRAME_BYTES:
                raise ServeError("response exceeds the frame limit")
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line + b"\n"

    # ------------------------------------------------------------------
    def request(self, op: str, params: dict[str, Any] | None = None, *,
                deadline_s: Optional[float] = None,
                timeout: Optional[float] = None) -> Any:
        """Send one request; return its result or raise its error."""
        self._counter += 1
        frame = protocol.encode_frame(protocol.make_request(
            op, params, request_id=f"{self._tag}-{self._counter}",
            deadline_s=deadline_s))
        try:
            sock = self._connect()
            if timeout is not None:
                sock.settimeout(timeout)
            try:
                sock.sendall(frame)
                line = self._read_line(sock)
            finally:
                if timeout is not None:
                    sock.settimeout(self.timeout)
        except OSError:
            # Stale connection (server restarted): one clean retry on
            # a fresh socket, then let the error propagate.
            self.close()
            sock = self._connect()
            sock.sendall(frame)
            line = self._read_line(sock)
        response = protocol.decode_frame(line)
        protocol.raise_for_error(response)
        self.last_meta = response.get("meta", {})
        return response.get("result")

    # Convenience wrappers -------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def status(self) -> dict[str, Any]:
        return self.request("status")

    def drain(self) -> dict[str, Any]:
        return self.request("drain")

    def trace(self, bench: str, **params: Any) -> dict[str, Any]:
        return self.request("trace", {"bench": bench, **params})

    def annotate(self, bench: str, **params: Any) -> dict[str, Any]:
        return self.request("annotate", {"bench": bench, **params})

    def model(self, bench: str, **params: Any) -> dict[str, Any]:
        return self.request("model", {"bench": bench, **params})

    def sweep(self, bench: str, **params: Any) -> dict[str, Any]:
        return self.request("sweep", {"bench": bench, **params})

    def experiment(self, exhibit: str,
                   benchmarks: list[str] | None = None,
                   **params: Any) -> dict[str, Any]:
        request: dict[str, Any] = {"exhibit": exhibit, **params}
        if benchmarks is not None:
            request["benchmarks"] = list(benchmarks)
        deadline = request.pop("deadline_s", None)
        return self.request("experiment", request, deadline_s=deadline)

    # ------------------------------------------------------------------
    def wait_until_ready(self, timeout: float = 30.0,
                         interval: float = 0.1) -> bool:
        """Poll ``ping`` until the server answers (or timeout)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                self.ping()
                return True
            except (OSError, ServeError, ConnectionError):
                self.close()
                time.sleep(interval)
        return False
