"""Admission control, coalescing, circuit breaking, and deadlines.

The scheduler is the robustness core of ``repro serve``: every
data-plane request (trace/annotate/model/experiment) passes through
:meth:`Scheduler.submit`, which decides -- in order -- whether to

1. **coalesce** it onto an identical in-flight execution (same
   :func:`~repro.serve.protocol.request_key`), so concurrent duplicate
   demand costs one simulation and one journal entry;
2. answer it from the **result cache** (a small LRU of completed
   requests);
3. reject it because its subject's **circuit is open** (a benchmark
   that keeps failing stops consuming worker slots until a cooldown
   elapses, then a single half-open probe may close the circuit);
4. **shed** it with :class:`~repro.errors.ServiceOverloadError` when
   the bounded queue is at its high-water mark (bounded queues degrade
   to fast explicit 429s instead of collapsing under a backlog); or
5. **admit** it: the request waits for a worker slot, runs under its
   deadline, and its latency and outcome feed the service stats.

Deadlines are enforced twice, on purpose: the worker side arms the
same SIGALRM watchdog that bounds experiment work units
(:func:`repro.harness.parallel._unit_watchdog`), interrupting even a
wedged computation, and the scheduler backstops it with an asyncio
timer at ``deadline + grace`` in case the worker cannot raise (e.g. a
stub runner in the doctor's self-tests).

:func:`execute_sim_op` is the process-pool worker entry point for the
simulation-shaped ops.  It retries :class:`~repro.errors
.RetryableError` with the existing seeded :class:`~repro.harness.retry
.RetryPolicy` and reports tier demotions back to the server so tier
notes flow into the service ``metrics.json``.
"""

from __future__ import annotations

import asyncio
import time
import zlib
from collections import OrderedDict, deque
from typing import Any, Awaitable, Callable, Optional

from repro.errors import (
    BenchmarkFailure,
    CircuitOpenError,
    DeadlineExceededError,
    ProtocolError,
    ServiceOverloadError,
    UnitTimeoutError,
)
from repro.serve.protocol import request_key

DEFAULT_WORKERS = 2
DEFAULT_QUEUE_LIMIT = 16
DEFAULT_BREAKER_THRESHOLD = 3
DEFAULT_BREAKER_COOLDOWN = 30.0
#: Parent-side slack past the worker-side deadline, so the SIGALRM
#: watchdog (with its precise unit label) wins the race to report.
DEADLINE_GRACE = 2.0
#: Bounded latency reservoir: enough samples for stable tail
#: percentiles, bounded so a long-lived server cannot grow without
#: limit.
LATENCY_RESERVOIR = 4096
#: Result-cache entries kept (completed request results by key).
RESULT_CACHE_ENTRIES = 128


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of *samples* (``q`` in [0, 100])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, int(-(-q * len(ordered) // 100)))  # ceil, 1-based
    return ordered[min(rank, len(ordered)) - 1]


def breaker_subject(op: str, params: dict[str, Any]) -> str:
    """The circuit-breaker key of a request: its benchmark/exhibit.

    Breaking per *subject* rather than per exact request means a
    benchmark broken at one scale does not poison others, while every
    config of a genuinely broken benchmark is shielded together.
    """
    subject = params.get("bench") or params.get("exhibit") or "*"
    return f"{op}:{subject}"


class CircuitBreaker:
    """Consecutive-failure circuit for one subject.

    Closed until ``threshold`` consecutive failures; then open (every
    request rejected) for ``cooldown`` seconds; then half-open: exactly
    one probe request is admitted, and its success closes the circuit
    while its failure re-opens it for another cooldown.
    """

    def __init__(self, threshold: int, cooldown: float,
                 clock: Callable[[], float]) -> None:
        self.threshold = max(1, int(threshold))
        self.cooldown = float(cooldown)
        self._clock = clock
        self.failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._probing:
            return "half_open"
        if self._clock() - self._opened_at >= self.cooldown:
            return "half_open"
        return "open"

    def remaining(self) -> float:
        """Seconds until the next half-open probe is admitted."""
        if self._opened_at is None:
            return 0.0
        return max(0.0, self.cooldown - (self._clock() - self._opened_at))

    def allow(self) -> bool:
        """May a request for this subject run now?"""
        if self._opened_at is None:
            return True
        if self._probing:
            return False  # one probe at a time
        if self._clock() - self._opened_at >= self.cooldown:
            self._probing = True
            return True
        return False

    def record_ok(self) -> None:
        self.failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self.failures += 1
        self._probing = False
        if self.failures >= self.threshold:
            self._opened_at = self._clock()


class ServeStats:
    """Service counters plus a bounded latency reservoir."""

    COUNTER_NAMES = ("received", "admitted", "completed", "failed",
                     "shed", "coalesced", "cache_hits",
                     "deadline_expired", "circuit_rejections", "resumed")

    def __init__(self) -> None:
        for name in self.COUNTER_NAMES:
            setattr(self, name, 0)
        self.latencies: deque[float] = deque(maxlen=LATENCY_RESERVOIR)

    def record_latency(self, seconds: float) -> None:
        self.latencies.append(seconds)

    def latency_summary(self) -> dict[str, float]:
        samples = list(self.latencies)
        return {
            "count": len(samples),
            "p50_ms": round(percentile(samples, 50) * 1000, 3),
            "p95_ms": round(percentile(samples, 95) * 1000, 3),
            "p99_ms": round(percentile(samples, 99) * 1000, 3),
            "max_ms": round(max(samples) * 1000, 3) if samples else 0.0,
        }

    def counters(self) -> dict[str, int]:
        return {name: getattr(self, name)
                for name in self.COUNTER_NAMES}


class Scheduler:
    """Asyncio request scheduler with admission control.

    ``runner`` is an async callable ``(op, params, deadline_s) ->
    result`` -- the server provides one that dispatches simulation ops
    to a process pool and experiments to journaled subprocesses.  The
    scheduler is deliberately runner-agnostic so the doctor's serve
    layer can exercise every control path in-process with stubs.
    """

    def __init__(self, runner: Callable[..., Awaitable[Any]], *,
                 workers: int = DEFAULT_WORKERS,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
                 deadline_grace: float = DEADLINE_GRACE,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.runner = runner
        self.workers = max(1, int(workers))
        self.queue_limit = max(1, int(queue_limit))
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.deadline_grace = float(deadline_grace)
        self.draining = False
        self.stats = ServeStats()
        self._clock = clock
        self._slots = asyncio.Semaphore(self.workers)
        self._inflight: dict[str, asyncio.Task] = {}
        self._queued = 0
        self._executing = 0
        self._breakers: dict[str, CircuitBreaker] = {}
        self._cache: OrderedDict[str, Any] = OrderedDict()

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Admitted requests waiting for a worker slot."""
        return self._queued

    @property
    def in_flight(self) -> int:
        """Requests currently executing on a worker."""
        return self._executing

    def breaker(self, subject: str) -> CircuitBreaker:
        if subject not in self._breakers:
            self._breakers[subject] = CircuitBreaker(
                self.breaker_threshold, self.breaker_cooldown,
                self._clock)
        return self._breakers[subject]

    # ------------------------------------------------------------------
    async def submit(self, op: str, params: dict[str, Any],
                     deadline_s: Optional[float] = None,
                     ) -> tuple[Any, dict[str, Any]]:
        """Schedule one request; returns ``(result, meta)``.

        Raises the service errors documented in the module docstring;
        whatever the runner raises for an admitted request propagates
        to every coalesced waiter.
        """
        self.stats.received += 1
        key = request_key(op, params)
        started = self._clock()

        def meta(**flags: Any) -> dict[str, Any]:
            base = {"coalesced": False, "cached": False, "key": key,
                    "elapsed_s": round(self._clock() - started, 4)}
            base.update(flags)
            return base

        existing = self._inflight.get(key)
        if existing is not None:
            self.stats.coalesced += 1
            # shield: one impatient waiter must not cancel the shared
            # execution out from under the others.
            result = await asyncio.shield(existing)
            return result, meta(coalesced=True)
        if key in self._cache:
            self._cache.move_to_end(key)
            self.stats.cache_hits += 1
            return self._cache[key], meta(cached=True)
        if self.draining:
            self.stats.shed += 1
            raise ServiceOverloadError(
                "server is draining; no new work is being admitted")
        subject = breaker_subject(op, params)
        breaker = self.breaker(subject)
        if not breaker.allow():
            self.stats.circuit_rejections += 1
            raise CircuitOpenError(
                f"circuit open for {subject} after {breaker.failures} "
                f"consecutive failures; next probe in "
                f"{breaker.remaining():.1f}s")
        if self._queued >= self.queue_limit:
            self.stats.shed += 1
            raise ServiceOverloadError(
                f"queue at its high-water mark "
                f"({self._queued}/{self.queue_limit} waiting); "
                f"shedding instead of queueing",
                retry_after_s=self._retry_after())
        self.stats.admitted += 1
        task = asyncio.get_running_loop().create_task(
            self._run(op, params, deadline_s, key, breaker))
        self._inflight[key] = task
        result = await asyncio.shield(task)
        return result, meta()

    async def _run(self, op: str, params: dict[str, Any],
                   deadline_s: Optional[float], key: str,
                   breaker: CircuitBreaker) -> Any:
        started = self._clock()
        try:
            self._queued += 1
            try:
                await self._slots.acquire()
            finally:
                self._queued -= 1
            self._executing += 1
            try:
                call = self.runner(op, params, deadline_s or 0.0)
                if deadline_s:
                    result = await asyncio.wait_for(
                        call, deadline_s + self.deadline_grace)
                else:
                    result = await call
            finally:
                self._executing -= 1
                self._slots.release()
        except asyncio.TimeoutError:
            self.stats.deadline_expired += 1
            breaker.record_failure()
            raise DeadlineExceededError(
                f"request {key[:16]} exceeded its {deadline_s:g}s "
                f"deadline (+{self.deadline_grace:g}s grace)") from None
        except DeadlineExceededError:
            self.stats.deadline_expired += 1
            breaker.record_failure()
            raise
        except asyncio.CancelledError:
            raise
        except BaseException:
            self.stats.failed += 1
            breaker.record_failure()
            raise
        finally:
            self._inflight.pop(key, None)
        breaker.record_ok()
        self.stats.completed += 1
        self.stats.record_latency(self._clock() - started)
        self._cache[key] = result
        self._cache.move_to_end(key)
        while len(self._cache) > RESULT_CACHE_ENTRIES:
            self._cache.popitem(last=False)
        return result

    def _retry_after(self) -> float:
        """Backoff hint for a shed request.

        Rough service-time estimate: mean recent latency times the
        queue's depth per worker -- clamped to a sane band so the hint
        stays useful even before any latency samples exist.
        """
        samples = list(self.stats.latencies)
        mean = sum(samples) / len(samples) if samples else 0.25
        hint = mean * (self._queued + 1) / self.workers
        return round(min(5.0, max(0.1, hint)), 3)

    # ------------------------------------------------------------------
    async def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Wait for every in-flight task; True when the queue drained."""
        deadline = None if timeout is None else self._clock() + timeout
        while self._inflight:
            pending = [t for t in self._inflight.values() if not t.done()]
            if not pending:
                for stale in list(self._inflight):
                    if self._inflight[stale].done():
                        self._inflight.pop(stale, None)
                continue
            remaining = None if deadline is None \
                else deadline - self._clock()
            if remaining is not None and remaining <= 0:
                return False
            done, _ = await asyncio.wait(
                pending, timeout=remaining,
                return_when=asyncio.FIRST_COMPLETED)
            if not done:
                return False
        return True

    def cancel_inflight(self) -> int:
        """Cancel whatever is still running (drain-timeout fallback)."""
        cancelled = 0
        for task in list(self._inflight.values()):
            if not task.done():
                task.cancel()
                cancelled += 1
        return cancelled

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The status document ``repro serve --status`` renders."""
        doc: dict[str, Any] = dict(self.stats.counters())
        doc["queue_depth"] = self.queue_depth
        doc["in_flight"] = self.in_flight
        doc["queue_limit"] = self.queue_limit
        doc["workers"] = self.workers
        doc["draining"] = self.draining
        doc["latency"] = self.stats.latency_summary()
        doc["breakers"] = {
            subject: {"state": breaker.state,
                      "failures": breaker.failures}
            for subject, breaker in sorted(self._breakers.items())
            if breaker.failures or breaker.state != "closed"
        }
        hits = doc["coalesced"] + doc["cache_hits"]
        doc["coalescing_hit_rate"] = round(
            hits / doc["received"], 4) if doc["received"] else 0.0
        doc["shed_rate"] = round(
            doc["shed"] / doc["received"], 4) if doc["received"] else 0.0
        return doc


# ---------------------------------------------------------------------------
# Request normalization (shared by server and clients).
# ---------------------------------------------------------------------------
def normalize_params(op: str, params: dict[str, Any],
                     default_scale: str = "small") -> dict[str, Any]:
    """Validate and canonicalize request params for one data-plane op.

    Fills defaults (scale, target, machine) and canonicalizes names so
    that two spellings of the same request -- ``{"bench": "grep"}`` and
    ``{"bench": "grep", "scale": "small"}`` -- produce the same
    :func:`~repro.serve.protocol.request_key` and therefore coalesce.
    Raises :class:`~repro.errors.ProtocolError` (a ``bad_request``) for
    anything invalid, before the request can burn a worker slot or trip
    a circuit breaker.
    """
    from repro.workloads.suite import BENCHMARKS
    from repro.workloads.support import SCALES

    known_benchmarks = {b.name for b in BENCHMARKS}
    out = dict(params)
    scale = out.setdefault("scale", default_scale)
    if scale not in SCALES:
        raise ProtocolError(
            f"unknown scale {scale!r}; expected one of "
            f"{', '.join(sorted(SCALES))}")

    if op == "experiment":
        from repro.harness.experiments import EXPERIMENTS
        exhibit = out.get("exhibit")
        if exhibit != "all" and exhibit not in EXPERIMENTS:
            raise ProtocolError(
                f"unknown exhibit {exhibit!r}; expected 'all' or one "
                f"of {', '.join(EXPERIMENTS)}")
        benchmarks = out.setdefault(
            "benchmarks", sorted(known_benchmarks))
        if (not isinstance(benchmarks, list) or not benchmarks
                or not all(isinstance(b, str) for b in benchmarks)):
            raise ProtocolError(
                "benchmarks must be a non-empty list of names")
        unknown = [b for b in benchmarks if b not in known_benchmarks]
        if unknown:
            raise ProtocolError(
                f"unknown benchmark(s): {', '.join(unknown)}")
        return out

    bench = out.get("bench")
    if bench not in known_benchmarks:
        raise ProtocolError(
            f"unknown benchmark {bench!r}; expected one of "
            f"{', '.join(sorted(known_benchmarks))}")
    if op in ("trace", "annotate", "sweep"):
        target = out.setdefault("target", "ppc")
        if target not in ("ppc", "alpha"):
            raise ProtocolError(
                f"unknown target {target!r}; expected ppc or alpha")
    if op == "sweep":
        from repro.errors import ConfigError
        from repro.lvp.grid import parse_grid_spec
        grid = out.setdefault("grid", None)
        if grid is not None:
            if not isinstance(grid, str):
                raise ProtocolError("grid must be a spec string "
                                    "('dim=v1,v2;dim=...')")
            try:
                parse_grid_spec(grid)
            except ConfigError as exc:
                raise ProtocolError(f"bad grid spec: {exc}") from None
        limit = out.setdefault("limit", None)
        if limit is not None:
            if not isinstance(limit, int) or isinstance(limit, bool) \
                    or not 1 <= limit <= 512:
                raise ProtocolError(
                    f"limit must be an integer in [1, 512], got "
                    f"{limit!r}")
    if op == "annotate":
        from repro.lvp.config import config_by_name
        out["config"] = config_by_name(
            str(out.get("config", "Simple"))).name
    if op == "model":
        machine = out.setdefault("machine", "620")
        if machine not in ("620", "620+", "21164"):
            raise ProtocolError(
                f"unknown machine {machine!r}; expected 620, 620+, "
                f"or 21164")
        config = out.get("config")
        if config is not None:
            from repro.lvp.config import config_by_name
            out["config"] = config_by_name(str(config)).name
        else:
            out["config"] = None
    return out


# ---------------------------------------------------------------------------
# Worker side: the process-pool entry point for simulation ops.
# ---------------------------------------------------------------------------
def _compute_sim_op(op: str, params: dict[str, Any]) -> dict[str, Any]:
    from repro.harness.session import Session

    bench = params["bench"]
    scale = params["scale"]
    session = Session(scale=scale, benchmarks=(bench,), metrics=False)
    if op == "trace":
        from repro.trace.stats import compute_stats
        stats = compute_stats(session.trace(bench, params["target"]))
        result: dict[str, Any] = {
            "bench": bench, "target": params["target"], "scale": scale,
            "instructions": stats.instructions, "loads": stats.loads,
            "stores": stats.stores, "branches": stats.branches,
            "static_loads": stats.static_loads,
            "load_fraction": round(stats.load_fraction, 6),
        }
    elif op == "annotate":
        from repro.lvp.config import config_by_name
        from repro.lvp.unit import LoadOutcome
        config = config_by_name(params["config"])
        stats = session.annotated(bench, params["target"], config).stats
        result = {
            "bench": bench, "target": params["target"], "scale": scale,
            "config": config.name, "loads": stats.loads,
            "outcomes": {o.name.lower(): stats.outcomes[o]
                         for o in LoadOutcome},
            "accuracy": round(stats.prediction_accuracy, 6),
        }
    elif op == "model":
        from repro.lvp.config import config_by_name
        machine = params["machine"]
        config = config_by_name(params["config"]) \
            if params.get("config") else None
        if machine == "21164":
            run = session.alpha_result(bench, config)
            base = run if config is None \
                else session.alpha_result(bench, None)
        else:
            from repro.uarch.ppc620.config import PPC620, PPC620_PLUS
            spec = PPC620_PLUS if machine == "620+" else PPC620
            run = session.ppc_result(bench, spec, config)
            base = run if config is None \
                else session.ppc_result(bench, spec, None)
        result = {
            "bench": bench, "machine": machine, "scale": scale,
            "config": params.get("config"), "cycles": run.cycles,
            "instructions": run.instructions,
            "ipc": round(run.ipc, 6),
            "speedup": round(base.cycles / run.cycles, 6)
            if run.cycles else 0.0,
        }
    elif op == "sweep":
        from repro.errors import ConfigError
        from repro.harness.sweep import evaluate_configs
        from repro.lvp.grid import grid_from_args
        try:
            configs = grid_from_args(params.get("grid"),
                                     params.get("limit"))
        except ConfigError as exc:
            raise ProtocolError(f"bad grid: {exc}") from None
        trace = session.trace(bench, params["target"])
        cells = evaluate_configs(trace, configs)
        result = {
            "bench": bench, "target": params["target"], "scale": scale,
            "configs": len(configs),
            "cells": [cell.as_dict() for cell in cells],
        }
    else:
        raise ProtocolError(f"op {op!r} is not a simulation op")
    tier_notes = [
        {"unit": d.unit, "from_tier": d.from_tier, "to_tier": d.to_tier,
         "reason": d.reason}
        for d in session.demotions
    ]
    return {"result": result, "tier_notes": tier_notes}


def execute_sim_op(op: str, params: dict[str, Any],
                   deadline_s: float = 0.0) -> dict[str, Any]:
    """Run one trace/annotate/model request (process-pool worker).

    The whole request -- retries included -- runs under one SIGALRM
    deadline watchdog, so a request's budget is total wall time, not
    per attempt.  :class:`~repro.errors.RetryableError` is retried with
    the standard seeded policy; a watchdog trip surfaces as
    :class:`~repro.errors.DeadlineExceededError` whether it interrupted
    a stage (and was wrapped in a ``BenchmarkFailure``) or fired
    between stages.
    """
    from repro.harness.parallel import WorkUnit, _unit_watchdog
    from repro.harness.retry import RetryPolicy, call_with_retries

    unit = WorkUnit(params.get("bench", op), op,
                    params.get("target") or params.get("machine")
                    or "ppc")
    policy = RetryPolicy.from_env(
        seed=zlib.crc32(request_key(op, params).encode("ascii")))

    def attempt() -> dict[str, Any]:
        return _compute_sim_op(op, params)

    try:
        with _unit_watchdog(deadline_s, unit):
            return call_with_retries(attempt, policy)
    except UnitTimeoutError as exc:
        raise DeadlineExceededError(
            f"request exceeded its {deadline_s:g}s deadline: "
            f"{exc}") from None
    except BenchmarkFailure as exc:
        if isinstance(exc.cause, UnitTimeoutError):
            raise DeadlineExceededError(
                f"request exceeded its {deadline_s:g}s deadline: "
                f"{exc.cause}") from None
        raise
