"""The ``repro.serve/v1`` wire protocol.

Requests and responses are single-line JSON documents ("frames")
terminated by ``\\n``, exchanged over a unix stream socket.  The same
payloads travel over the optional local HTTP listener, where each error
kind maps onto a conventional status code (429 for overload, 504 for a
blown deadline, ...).

A request::

    {"proto": "repro.serve/v1", "id": "c1-7", "op": "trace",
     "params": {"bench": "grep", "scale": "tiny"}, "deadline_s": 30.0}

A response::

    {"proto": "repro.serve/v1", "id": "c1-7", "ok": true,
     "result": {...}, "meta": {"coalesced": false, "cached": false,
     "elapsed_s": 0.41}}

or, on failure::

    {"proto": "repro.serve/v1", "id": "c1-7", "ok": false,
     "error": {"kind": "overloaded", "message": "...",
               "retry_after_s": 0.25}}

``request_key`` is the coalescing identity: the sha256 of the
canonical-JSON ``(op, params)`` pair.  Two requests with the same key
share one execution, one journal entry, and one cached result --
deadlines and request ids deliberately do not participate, so callers
with different patience still coalesce.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ProtocolError,
    ReproError,
    ServiceOverloadError,
)

PROTOCOL_ID = "repro.serve/v1"

#: Operations a server must accept.  ``status``/``ping``/``drain`` are
#: control-plane: they bypass the scheduler so they keep answering even
#: when the data plane is saturated or draining.
OPS = ("ping", "status", "drain", "trace", "annotate", "model",
       "sweep", "experiment")
CONTROL_OPS = ("ping", "status", "drain")

#: Error kinds and their HTTP status codes.
ERROR_STATUS = {
    "bad_request": 400,
    "overloaded": 429,
    "failed": 500,
    "circuit_open": 503,
    "deadline": 504,
}

#: Upper bound on a single frame.  Exhibit texts are a few KiB; one
#: MiB is far past anything legitimate and keeps a corrupt or hostile
#: peer from ballooning server memory.
MAX_FRAME_BYTES = 1 << 20


def canonical_json(value: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace, pure ASCII."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def request_key(op: str, params: dict[str, Any] | None) -> str:
    """The coalescing identity of a request: sha256 of (op, params)."""
    doc = canonical_json({"op": op, "params": params or {}})
    return hashlib.sha256(doc.encode("ascii")).hexdigest()


def encode_frame(payload: dict[str, Any]) -> bytes:
    """Serialize one protocol frame, newline terminator included."""
    line = canonical_json(payload).encode("ascii") + b"\n"
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte protocol limit")
    return line


def decode_frame(line: bytes) -> dict[str, Any]:
    """Parse one frame, rejecting oversized or non-object payloads."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte protocol limit")
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}")
    return payload


def make_request(op: str, params: dict[str, Any] | None = None, *,
                 request_id: str = "", deadline_s: float | None = None,
                 ) -> dict[str, Any]:
    """Build a request payload (validated, so clients fail early)."""
    request = {"proto": PROTOCOL_ID, "id": request_id, "op": op,
               "params": dict(params or {})}
    if deadline_s is not None:
        request["deadline_s"] = float(deadline_s)
    validate_request(request)
    return request


def validate_request(payload: dict[str, Any]) -> dict[str, Any]:
    """Check a decoded frame against the v1 request schema.

    Returns the payload on success; raises :class:`ProtocolError`
    naming the first problem otherwise.
    """
    proto = payload.get("proto")
    if proto != PROTOCOL_ID:
        raise ProtocolError(
            f"unsupported protocol {proto!r}; this server speaks "
            f"{PROTOCOL_ID}")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(OPS)}")
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            f"params must be an object, got {type(params).__name__}")
    deadline = payload.get("deadline_s")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) \
                or isinstance(deadline, bool):
            raise ProtocolError(
                f"deadline_s must be a number, got {deadline!r}")
        if deadline <= 0:
            raise ProtocolError(
                f"deadline_s must be positive, got {deadline!r}")
    request_id = payload.get("id", "")
    if not isinstance(request_id, str):
        raise ProtocolError(
            f"id must be a string, got {type(request_id).__name__}")
    return payload


def error_kind(exc: BaseException) -> str:
    """Map an exception onto its protocol error kind."""
    if isinstance(exc, ServiceOverloadError):
        return "overloaded"
    if isinstance(exc, DeadlineExceededError):
        return "deadline"
    if isinstance(exc, CircuitOpenError):
        return "circuit_open"
    if isinstance(exc, ProtocolError):
        return "bad_request"
    return "failed"


def ok_response(request_id: str, result: Any,
                meta: dict[str, Any] | None = None) -> dict[str, Any]:
    return {"proto": PROTOCOL_ID, "id": request_id, "ok": True,
            "result": result, "meta": dict(meta or {})}


def error_response(request_id: str,
                   exc: BaseException) -> dict[str, Any]:
    kind = error_kind(exc)
    error: dict[str, Any] = {"kind": kind, "message": str(exc)}
    retry_after = getattr(exc, "retry_after_s", None)
    if retry_after:
        error["retry_after_s"] = float(retry_after)
    return {"proto": PROTOCOL_ID, "id": request_id, "ok": False,
            "error": error}


def http_status(response: dict[str, Any]) -> int:
    """The HTTP status code for a protocol response document."""
    if response.get("ok"):
        return 200
    kind = (response.get("error") or {}).get("kind", "failed")
    return ERROR_STATUS.get(kind, 500)


def raise_for_error(response: dict[str, Any]) -> dict[str, Any]:
    """Raise the exception a response's error kind encodes.

    Clients funnel every failed response through here so callers see
    the same exception types the server raised: an overload surfaces as
    :class:`ServiceOverloadError`, a blown deadline as
    :class:`DeadlineExceededError`, and so on.  Returns the response
    when ``ok`` is true.
    """
    if response.get("ok"):
        return response
    error = response.get("error") or {}
    kind = error.get("kind", "failed")
    message = error.get("message", "request failed")
    if kind == "overloaded":
        raise ServiceOverloadError(message,
                                   error.get("retry_after_s", 0.0))
    if kind == "deadline":
        raise DeadlineExceededError(message)
    if kind == "circuit_open":
        raise CircuitOpenError(message)
    if kind == "bad_request":
        raise ProtocolError(message)
    raise ReproError(message)
