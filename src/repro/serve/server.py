"""The ``repro serve`` daemon.

One long-lived asyncio process owns a unix-socket listener (plus an
optional local HTTP listener), a process pool for simulation ops, and
a scheduler (:mod:`repro.serve.scheduler`) that applies admission
control, coalescing, circuit breaking, and deadlines to every
data-plane request.

Crash safety piggybacks on the run journal (PR 3): experiment requests
execute as journaled ``repro experiment`` subprocesses with a run id
*derived from the request key*, and a write-ahead ``pending/<key>.json``
entry is persisted before the subprocess starts.  A server killed
mid-run therefore leaves exactly the state a restart needs: on boot it
scans ``pending/``, resubmits each unfinished request through its own
scheduler (so a client re-request coalesces with the recovery), and
the subprocess resumes from the journal -- producing output
byte-identical to an uninterrupted run, which the kill/restart
differential suite asserts.

Graceful drain on SIGTERM: stop admitting (new requests shed with
:class:`~repro.errors.ServiceOverloadError`), give in-flight work
``drain_timeout`` seconds to finish, then SIGTERM the experiment
subprocesses -- whose own interrupt handlers journal a clean
``interrupted`` record -- park them for resume, write the service
``metrics.json``, and exit 0.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import pathlib
import signal
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from typing import Any, Optional

from repro.errors import (
    DeadlineExceededError,
    ProtocolError,
    ReproError,
    ServeError,
    ServiceOverloadError,
    WorkerCrashError,
)
from repro.obs import MetricsRegistry, write_metrics
from repro.serve import protocol
from repro.serve.scheduler import (
    DEFAULT_BREAKER_COOLDOWN,
    DEFAULT_BREAKER_THRESHOLD,
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_WORKERS,
    Scheduler,
    execute_sim_op,
    normalize_params,
)

#: Ops executed on the process pool (everything else is an experiment
#: subprocess or control-plane).
SIM_OPS = ("trace", "annotate", "model", "sweep")

#: Journals the serve runs dir keeps before pruning.  Far above the
#: default 8: a pruned journal would orphan a parked resume.
SERVE_RUNS_KEEP = "64"

_HTTP_PHRASES = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


@dataclass
class ServeConfig:
    """Everything ``repro serve`` needs to run one daemon."""

    socket_path: str = ".repro/serve.sock"
    state_dir: str = ".repro/serve"
    host: str = "127.0.0.1"
    #: None = no HTTP listener; 0 = bind an ephemeral port.
    http_port: Optional[int] = None
    workers: int = DEFAULT_WORKERS
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    scale: str = "small"
    drain_timeout: float = 10.0
    #: Deadline applied to requests that do not carry one (0 = none).
    default_deadline: float = 0.0
    breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD
    breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN


class ReproServer:
    """One daemon instance (build, then ``asyncio.run(server.run())``)."""

    def __init__(self, config: ServeConfig) -> None:
        if len(str(config.socket_path)) > 100:
            # AF_UNIX sun_path is 108 bytes on Linux; fail with a clear
            # message instead of a cryptic bind error.
            raise ServeError(
                f"socket path {config.socket_path!r} is too long for a "
                f"unix socket; pick a shorter --socket")
        self.config = config
        self.state_dir = pathlib.Path(config.state_dir)
        self.runs_dir = self.state_dir / "runs"
        self.results_dir = self.state_dir / "results"
        self.pending_dir = self.state_dir / "pending"
        self.scheduler = Scheduler(
            self._dispatch_op, workers=config.workers,
            queue_limit=config.queue_limit,
            breaker_threshold=config.breaker_threshold,
            breaker_cooldown=config.breaker_cooldown)
        self.metrics = MetricsRegistry()
        self.http_port: Optional[int] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._servers: list[asyncio.AbstractServer] = []
        self._connections: set[asyncio.StreamWriter] = set()
        self._procs: dict[str, Any] = {}
        self._shutdown: Optional[asyncio.Event] = None
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def run(self) -> int:
        """Serve until SIGTERM/SIGINT (or a ``drain`` op), then drain."""
        await self.start()
        try:
            await self._shutdown.wait()
        finally:
            await self.drain()
        return 0

    async def start(self) -> None:
        for directory in (self.state_dir, self.runs_dir,
                          self.results_dir, self.pending_dir):
            directory.mkdir(parents=True, exist_ok=True)
        # Keep the trace cache warm *across* requests and workers: this
        # is the serve-mode analog of the paper's value locality.
        os.environ.setdefault("REPRO_TRACE_CACHE",
                              str(self.state_dir / "cache"))
        self._migrate_cache(os.environ["REPRO_TRACE_CACHE"])
        os.environ.setdefault("REPRO_RUNS_KEEP", SERVE_RUNS_KEEP)
        self._pool = ProcessPoolExecutor(self.config.workers)
        self._shutdown = asyncio.Event()
        self._started_at = time.monotonic()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(
                    signum, self.request_shutdown, signum)
        socket_path = pathlib.Path(self.config.socket_path)
        socket_path.parent.mkdir(parents=True, exist_ok=True)
        with contextlib.suppress(OSError):
            socket_path.unlink()
        self._servers.append(await asyncio.start_unix_server(
            self._handle_unix, path=str(socket_path),
            limit=protocol.MAX_FRAME_BYTES + 1024))
        if self.config.http_port is not None:
            http = await asyncio.start_server(
                self._handle_http, host=self.config.host,
                port=self.config.http_port,
                limit=protocol.MAX_FRAME_BYTES + 1024)
            self.http_port = http.sockets[0].getsockname()[1]
            self._servers.append(http)
        self._write_server_info()
        print(f"repro serve: listening on {socket_path} "
              f"(pid {os.getpid()})", file=sys.stderr, flush=True)
        if self.http_port:
            print(f"repro serve: http on {self.config.host}:"
                  f"{self.http_port}", file=sys.stderr, flush=True)
        self._recover()

    @staticmethod
    def _migrate_cache(cache_dir: str) -> None:
        """Upgrade legacy v1 ``.npz`` bundles to mmap-friendly v2 once,
        at startup, so every worker request zero-copy-maps its traces
        instead of paying the per-request decompress.  Best effort: a
        migration failure only means those bundles stay v1 (still
        readable) or regenerate on first miss."""
        directory = pathlib.Path(cache_dir)
        if not directory.is_dir() or not any(directory.glob("*.npz")):
            return
        from repro.harness.cache import TraceCache
        try:
            outcome = TraceCache(directory).migrate()
        except Exception as exc:  # pragma: no cover - defensive
            print(f"repro serve: cache migration skipped ({exc})",
                  file=sys.stderr, flush=True)
            return
        print("repro serve: migrated trace cache to v2 "
              f"({outcome['migrated']} migrated, "
              f"{outcome['skipped']} skipped, "
              f"{outcome['failed']} quarantined)",
              file=sys.stderr, flush=True)

    def request_shutdown(self, signum: int = signal.SIGTERM) -> None:
        """Begin a graceful drain (signal handler / ``drain`` op)."""
        if self._shutdown is not None and not self._shutdown.is_set():
            name = signal.Signals(signum).name \
                if signum in signal.Signals._value2member_map_ \
                else str(signum)
            print(f"repro serve: {name} received; draining",
                  file=sys.stderr, flush=True)
            self.scheduler.draining = True
            self._shutdown.set()

    async def drain(self) -> None:
        """Stop admission, settle in-flight work, persist, shut down."""
        self.scheduler.draining = True
        for server in self._servers:
            server.close()
        drained = await self.scheduler.wait_idle(
            self.config.drain_timeout)
        if not drained:
            # Experiment subprocesses get a SIGTERM: their interrupt
            # handlers journal a clean 'interrupted' record, and the
            # pending/ entry parks the request for resume-on-restart.
            for proc in list(self._procs.values()):
                with contextlib.suppress(ProcessLookupError, OSError):
                    proc.terminate()
            drained = await self.scheduler.wait_idle(5.0)
            if not drained:
                self.scheduler.cancel_inflight()
                await asyncio.sleep(0)
        if self._pool is not None:
            self._pool.shutdown(wait=drained, cancel_futures=True)
        self._write_service_metrics()
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        with contextlib.suppress(OSError):
            pathlib.Path(self.config.socket_path).unlink()
        print("repro serve: drained"
              + ("" if drained else " (in-flight runs parked for "
                                    "resume)"),
              file=sys.stderr, flush=True)

    # ------------------------------------------------------------------
    # Crash recovery.
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Resubmit every parked request left by a killed predecessor."""
        for path in sorted(self.pending_dir.glob("*.json")):
            try:
                entry = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            key = path.stem
            if (self.results_dir / f"{key}.json").exists():
                path.unlink(missing_ok=True)
                continue
            self.scheduler.stats.resumed += 1
            print(f"repro serve: resuming parked run "
                  f"{entry.get('run_id', key[:16])}",
                  file=sys.stderr, flush=True)
            asyncio.get_running_loop().create_task(
                self._resume_parked(entry))

    async def _resume_parked(self, entry: dict[str, Any]) -> None:
        try:
            await self.scheduler.submit(entry["op"], entry["params"])
        except Exception as exc:
            print(f"repro serve: parked run "
                  f"{entry.get('run_id', '?')} failed to resume: "
                  f"{type(exc).__name__}: {exc}",
                  file=sys.stderr, flush=True)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    async def _dispatch_op(self, op: str, params: dict[str, Any],
                           deadline_s: float) -> Any:
        if op in SIM_OPS:
            loop = asyncio.get_running_loop()
            try:
                payload = await loop.run_in_executor(
                    self._pool,
                    partial(execute_sim_op, op, params, deadline_s))
            except BrokenProcessPool:
                # One lost worker poisons the whole pool: rebuild it so
                # the *next* request runs, and fail this one retryably.
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = ProcessPoolExecutor(self.config.workers)
                raise WorkerCrashError(
                    f"worker process died while serving {op} "
                    f"{params.get('bench', '?')}") from None
            result = payload["result"]
            bench = params.get("bench", "?")
            self.metrics.inc(bench, f"serve/{op}/requests")
            if payload["tier_notes"]:
                result = dict(result)
                result["tier_notes"] = payload["tier_notes"]
                self.metrics.inc(bench, "serve/demotions",
                                 len(payload["tier_notes"]))
            return result
        if op == "experiment":
            return await self._run_experiment(params, deadline_s)
        raise ProtocolError(f"op {op!r} has no executor")

    async def _run_experiment(self, params: dict[str, Any],
                              deadline_s: float) -> dict[str, Any]:
        key = protocol.request_key("experiment", params)
        cached = self._load_result(key)
        if cached is not None:
            return cached
        run_id = "serve-" + key[:16]
        self._write_pending(key, params, run_id)
        if (self.runs_dir / run_id / "manifest.json").exists():
            argv = ["experiment", "--resume", run_id,
                    "--runs-dir", str(self.runs_dir)]
        else:
            argv = ["experiment", params["exhibit"],
                    "--scale", params["scale"],
                    "--benchmarks", ",".join(params["benchmarks"]),
                    "--run-id", run_id,
                    "--runs-dir", str(self.runs_dir)]
        proc = await asyncio.create_subprocess_exec(
            sys.executable, "-m", "repro", *argv,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.PIPE)
        self._procs[key] = proc
        try:
            if deadline_s:
                try:
                    out, err = await asyncio.wait_for(
                        proc.communicate(), deadline_s)
                except asyncio.TimeoutError:
                    with contextlib.suppress(ProcessLookupError,
                                             OSError):
                        proc.terminate()
                    await proc.communicate()
                    raise DeadlineExceededError(
                        f"experiment {run_id} exceeded its "
                        f"{deadline_s:g}s deadline (journaled for "
                        f"resume)") from None
            else:
                out, err = await proc.communicate()
        finally:
            self._procs.pop(key, None)
        code = proc.returncode
        if code in (0, 1):
            # 1 = degraded (footnoted failures); still a result.
            result = {"exhibit": params["exhibit"], "run_id": run_id,
                      "exit": code, "text": out.decode()}
            self._store_result(key, params, result)
            (self.pending_dir / f"{key}.json").unlink(missing_ok=True)
            for bench in params["benchmarks"]:
                self.metrics.inc(bench, "serve/experiment/requests")
            return result
        if code is None or code < 0 or code >= 128:
            # Killed -- normally our own drain SIGTERM.  The journal
            # holds an 'interrupted' record and pending/ still has the
            # entry, so a restarted server resumes it.
            raise ServiceOverloadError(
                f"experiment {run_id} interrupted (exit {code}); "
                f"parked for resume after restart")
        tail = err.decode(errors="replace").strip().splitlines()[-3:]
        raise ReproError(
            f"experiment {run_id} failed with exit {code}: "
            + " | ".join(tail))

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------
    def _write_pending(self, key: str, params: dict[str, Any],
                       run_id: str) -> None:
        path = self.pending_dir / f"{key}.json"
        if path.exists():
            return
        document = {"op": "experiment", "params": params,
                    "run_id": run_id}
        temporary = path.with_suffix(".tmp")
        temporary.write_text(json.dumps(document, sort_keys=True))
        temporary.replace(path)

    def _store_result(self, key: str, params: dict[str, Any],
                      result: dict[str, Any]) -> None:
        path = self.results_dir / f"{key}.json"
        document = {"op": "experiment", "params": params,
                    "result": result}
        temporary = path.with_suffix(".tmp")
        temporary.write_text(json.dumps(document, sort_keys=True))
        temporary.replace(path)

    def _load_result(self, key: str) -> Optional[dict[str, Any]]:
        path = self.results_dir / f"{key}.json"
        try:
            return json.loads(path.read_text())["result"]
        except OSError:
            return None
        except (ValueError, KeyError, TypeError):
            # Damaged result (torn write): drop it and recompute.
            path.unlink(missing_ok=True)
            return None

    def _write_server_info(self) -> None:
        document = {"pid": os.getpid(),
                    "socket_path": str(self.config.socket_path),
                    "http_port": self.http_port,
                    "scale": self.config.scale,
                    "proto": protocol.PROTOCOL_ID}
        temporary = self.state_dir / "server.json.tmp"
        temporary.write_text(json.dumps(document, sort_keys=True))
        temporary.replace(self.state_dir / "server.json")

    def _write_service_metrics(self) -> None:
        with contextlib.suppress(Exception):
            stats = self.scheduler.stats
            self.metrics.add_run_many("serve/", stats.counters())
            self.metrics.add_run_many(
                "serve/latency/",
                {k: v for k, v in stats.latency_summary().items()})
            write_metrics(self.state_dir,
                          self.metrics.to_document(run_id="serve"))

    # ------------------------------------------------------------------
    # Request handling.
    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        document = self.scheduler.snapshot()
        document["proto"] = protocol.PROTOCOL_ID
        document["pid"] = os.getpid()
        document["uptime_s"] = round(
            time.monotonic() - self._started_at, 1)
        document["scale"] = self.config.scale
        document["socket"] = str(self.config.socket_path)
        document["http_port"] = self.http_port
        document["pending_resumes"] = len(
            list(self.pending_dir.glob("*.json")))
        return document

    async def _handle_frame(self, line: bytes) -> dict[str, Any]:
        request_id = ""
        try:
            payload = protocol.decode_frame(line)
            raw_id = payload.get("id", "")
            request_id = raw_id if isinstance(raw_id, str) else ""
            protocol.validate_request(payload)
            op = payload["op"]
            if op == "ping":
                return protocol.ok_response(
                    request_id, {"pong": True, "pid": os.getpid()})
            if op == "status":
                return protocol.ok_response(request_id, self.status())
            if op == "drain":
                self.request_shutdown(signal.SIGTERM)
                return protocol.ok_response(
                    request_id, {"draining": True})
            params = normalize_params(op, payload.get("params", {}),
                                      self.config.scale)
            deadline = payload.get("deadline_s",
                                   self.config.default_deadline or None)
            result, meta = await self.scheduler.submit(
                op, params, deadline)
            return protocol.ok_response(request_id, result, meta)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            return protocol.error_response(request_id, exc)

    async def _handle_unix(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line exceeded the stream limit: oversized frame.
                    writer.write(protocol.encode_frame(
                        protocol.error_response("", ProtocolError(
                            "frame exceeds the protocol size limit"))))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._handle_frame(line)
                writer.write(protocol.encode_frame(response))
                await writer.drain()
        except asyncio.CancelledError:
            # Shutdown teardown cancels parked handlers; end quietly.
            pass
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            response = await self._http_exchange(reader)
            body = protocol.encode_frame(response)
            status = protocol.http_status(response)
            phrase = _HTTP_PHRASES.get(status, "Error")
            head = (f"HTTP/1.1 {status} {phrase}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n")
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except asyncio.CancelledError:
            pass
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError, ValueError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _http_exchange(self, reader: asyncio.StreamReader,
                             ) -> dict[str, Any]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return protocol.error_response(
                "", ProtocolError("malformed HTTP request line"))
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            length = 0
        if length:
            body = await reader.readexactly(
                min(length, protocol.MAX_FRAME_BYTES))
        if method == "GET" and path in ("/v1/status", "/status"):
            return protocol.ok_response("", self.status())
        if method == "GET" and path in ("/v1/ping", "/ping"):
            return protocol.ok_response(
                "", {"pong": True, "pid": os.getpid()})
        if method != "POST":
            return protocol.error_response(
                "", ProtocolError(f"unsupported method {method}"))
        if path in ("/v1/request", "/request"):
            return await self._handle_frame(body)
        op = path.rsplit("/", 1)[-1]
        if op not in protocol.OPS:
            return protocol.error_response(
                "", ProtocolError(f"unknown endpoint {path!r}"))
        try:
            envelope = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError) as exc:
            return protocol.error_response(
                "", ProtocolError(f"body is not valid JSON: {exc}"))
        if not isinstance(envelope, dict):
            return protocol.error_response(
                "", ProtocolError("body must be a JSON object"))
        if "params" in envelope:
            params = envelope.get("params") or {}
            deadline = envelope.get("deadline_s")
        else:
            params, deadline = envelope, None
        request = {"proto": protocol.PROTOCOL_ID, "id": "", "op": op,
                   "params": params}
        if deadline is not None:
            request["deadline_s"] = deadline
        return await self._handle_frame(protocol.encode_frame(request))


# ---------------------------------------------------------------------------
# Status rendering (used by ``repro serve --status``).
# ---------------------------------------------------------------------------
def render_status(document: dict[str, Any]) -> str:
    """Human-readable rendering of a ``status`` response."""
    latency = document.get("latency", {})
    lines = [
        f"repro serve (pid {document.get('pid', '?')}) -- "
        f"{document.get('proto', protocol.PROTOCOL_ID)}",
        f"  socket        : {document.get('socket', '?')}"
        + (f" (http :{document['http_port']})"
           if document.get("http_port") else ""),
        f"  uptime        : {document.get('uptime_s', 0):.0f}s"
        + ("  [draining]" if document.get("draining") else ""),
        f"  workers       : {document.get('workers', '?')} "
        f"(queue limit {document.get('queue_limit', '?')})",
        f"  queue depth   : {document.get('queue_depth', 0)} waiting, "
        f"{document.get('in_flight', 0)} in flight",
        f"  requests      : {document.get('received', 0)} received / "
        f"{document.get('completed', 0)} completed / "
        f"{document.get('failed', 0)} failed",
        f"  shed          : {document.get('shed', 0)} "
        f"(rate {document.get('shed_rate', 0.0):.1%})",
        f"  coalesced     : {document.get('coalesced', 0)} "
        f"+ {document.get('cache_hits', 0)} cache hits "
        f"(hit rate {document.get('coalescing_hit_rate', 0.0):.1%})",
        f"  deadlines     : {document.get('deadline_expired', 0)} "
        f"expired; circuit rejections "
        f"{document.get('circuit_rejections', 0)}",
        f"  resumed       : {document.get('resumed', 0)} parked run(s) "
        f"picked up; {document.get('pending_resumes', 0)} pending",
        f"  latency       : p50 {latency.get('p50_ms', 0):.0f}ms / "
        f"p95 {latency.get('p95_ms', 0):.0f}ms / "
        f"p99 {latency.get('p99_ms', 0):.0f}ms "
        f"({latency.get('count', 0)} samples)",
    ]
    breakers = document.get("breakers") or {}
    if breakers:
        lines.append("  breakers      :")
        for subject, state in breakers.items():
            lines.append(f"    {subject}: {state['state']} "
                         f"({state['failures']} consecutive failures)")
    return "\n".join(lines)


async def serve_main(config: ServeConfig) -> int:
    """Build and run one server (the CLI entry point's coroutine)."""
    server = ReproServer(config)
    return await server.run()
