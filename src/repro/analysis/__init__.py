"""Analysis and rendering helpers."""

from repro.analysis.expectations import (
    CheckResult,
    EXPECTATIONS,
    Expectation,
    check_all,
    render_check_report,
)
from repro.analysis.html import build_html_report
from repro.analysis.reference import render_table2, render_table5
from repro.analysis.report import (
    TextTable,
    format_percent,
    format_speedup,
    geometric_mean,
    render_series,
)

__all__ = ["TextTable", "format_percent", "format_speedup",
           "geometric_mean", "render_series",
           "CheckResult", "EXPECTATIONS", "Expectation", "check_all",
           "render_check_report", "render_table2", "render_table5",
           "build_html_report"]
