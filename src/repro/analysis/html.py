"""Single-file HTML report of every reproduced exhibit.

``build_html_report(session)`` renders all registered experiments into
one dependency-free HTML document: each table as an HTML table, each
figure's headline series as inline CSS bar charts.  Exposed as
``python -m repro report --output report.html``.
"""

from __future__ import annotations

import html as _html
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.session import Session

_STYLE = """
body { font-family: Georgia, serif; max-width: 72rem; margin: 2rem auto;
       color: #1a1a1a; padding: 0 1rem; }
h1 { border-bottom: 3px double #888; padding-bottom: .4rem; }
h2 { margin-top: 2.2rem; border-bottom: 1px solid #ccc; }
pre { background: #f7f7f4; border: 1px solid #ddd; padding: .8rem;
      overflow-x: auto; font-size: .82rem; line-height: 1.35; }
.bar-row { display: flex; align-items: center; margin: 2px 0;
           font: .78rem/1.3 monospace; }
.bar-label { width: 8rem; text-align: right; padding-right: .6rem; }
.bar-track { flex: 1; background: #eee; height: 14px; }
.bar-fill { background: #3b6ea5; height: 14px; }
.bar-fill.alt { background: #a55f3b; }
.bar-value { padding-left: .5rem; width: 4.5rem; }
.meta { color: #666; font-size: .85rem; }
"""


def _bar(label: str, fraction: float, text: str, alt: bool = False) -> str:
    width = max(0.0, min(1.0, fraction)) * 100.0
    css = "bar-fill alt" if alt else "bar-fill"
    return (
        '<div class="bar-row">'
        f'<span class="bar-label">{_html.escape(label)}</span>'
        f'<span class="bar-track"><span class="{css}" '
        f'style="width:{width:.1f}%"></span></span>'
        f'<span class="bar-value">{_html.escape(text)}</span>'
        "</div>"
    )


def _bars_fig1(data: dict) -> str:
    """Bar chart for Figure 1 (PowerPC, depth 1 and 16 per benchmark)."""
    rows = []
    for name, (d1, d16) in data.get("ppc", {}).items():
        rows.append(_bar(name, d1 / 100.0, f"{d1:.1f}%"))
        rows.append(_bar("depth 16", d16 / 100.0, f"{d16:.1f}%", alt=True))
    return "\n".join(rows)


def _bars_fig6(data: dict) -> str:
    """Bar chart for Figure 6 (620 Simple and Perfect speedups)."""
    rows = []
    simple = data.get("620", {}).get("Simple", {})
    perfect = data.get("620", {}).get("Perfect", {})
    for name in simple:
        # Scale: 1.0x at the origin, 1.5x at full width.
        rows.append(_bar(name, (simple[name] - 1.0) / 0.5,
                         f"{simple[name]:.3f}"))
        if name in perfect:
            rows.append(_bar("perfect", (perfect[name] - 1.0) / 0.5,
                             f"{perfect[name]:.3f}", alt=True))
    return "\n".join(rows)


_CHART_BUILDERS = {"fig1": _bars_fig1, "fig6": _bars_fig6}


def build_html_report(session: "Session",
                      exhibits: Optional[Iterable[str]] = None) -> str:
    """Render the selected exhibits (default: all) as one HTML page."""
    from repro.harness.experiments import EXPERIMENTS, run_experiment

    exhibit_ids = list(exhibits) if exhibits else list(EXPERIMENTS)
    sections = []
    for exp_id in exhibit_ids:
        result = run_experiment(exp_id, session)
        chart = ""
        builder = _CHART_BUILDERS.get(exp_id)
        if builder:
            chart = builder(result.data)
        sections.append(
            f"<h2 id='{exp_id}'>{_html.escape(result.title)} "
            f"<span class='meta'>({exp_id})</span></h2>\n"
            + (f"<div>{chart}</div>\n" if chart else "")
            + f"<pre>{_html.escape(result.text)}</pre>"
        )

    toc = " · ".join(
        f"<a href='#{exp_id}'>{exp_id}</a>" for exp_id in exhibit_ids
    )
    benchmarks = ", ".join(session.benchmark_names)
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        "<title>Value Locality and Load Value Prediction — "
        "reproduction report</title>"
        f"<style>{_STYLE}</style></head><body>"
        "<h1>Value Locality and Load Value Prediction</h1>"
        "<p class='meta'>Reproduction of Lipasti, Wilkerson &amp; Shen, "
        f"ASPLOS 1996 — scale <b>{_html.escape(session.scale)}</b>, "
        f"benchmarks: {_html.escape(benchmarks)}</p>"
        f"<p class='meta'>{toc}</p>"
        + "\n".join(sections)
        + "</body></html>"
    )
