"""Rendering of the paper's configuration tables (Tables 2 and 5).

These exhibits carry no measurements -- they document the simulated
hardware -- but regenerating them from the *actual* configuration
objects guarantees the documentation can never drift from the code.
"""

from __future__ import annotations

from repro.analysis.report import TextTable
from repro.isa.opcodes import Opcode
from repro.lvp.config import PAPER_CONFIGS
from repro.uarch.components.latencies import (
    AXP21164_LATENCY,
    PPC620_LATENCY,
)


def render_table2() -> str:
    """Render Table 2 (LVP unit configurations) from the live configs."""
    table = TextTable(
        ["Config", "LVPT entries", "History depth", "LCT entries",
         "LCT bits", "CVU entries"],
        title="Table 2: LVP Unit Configurations",
    )
    for config in PAPER_CONFIGS:
        if config.perfect:
            table.add_row([config.name, "oracle", "oracle", "-", "-",
                           config.cvu_entries])
            continue
        depth = str(config.history_depth)
        if config.selection == "perfect":
            depth += "/Perf"
        table.add_row([
            config.name, config.lvpt_entries, depth,
            config.lct_entries, config.lct_bits, config.cvu_entries,
        ])
    return table.render()


#: Representative opcode for each Table 5 row.
_TABLE5_ROWS = (
    ("Simple Integer", Opcode.ADD),
    ("Complex Integer (mul)", Opcode.MUL),
    ("Complex Integer (div)", Opcode.DIV),
    ("Load/Store", Opcode.LD),
    ("Simple FP", Opcode.FADD),
    ("Complex FP", Opcode.FDIV),
    ("Branch", Opcode.BEQ),
)


def render_table5() -> str:
    """Render Table 5 (instruction latencies) from the live tables."""
    table = TextTable(
        ["Instruction class", "620 issue", "620 result",
         "21164 issue", "21164 result"],
        title="Table 5: Instruction Latencies",
    )
    for label, opcode in _TABLE5_ROWS:
        ppc = PPC620_LATENCY[opcode]
        axp = AXP21164_LATENCY[opcode]
        table.add_row([label, ppc.issue, ppc.result,
                       axp.issue, axp.result])
    return table.render()
