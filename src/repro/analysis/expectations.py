"""The paper's qualitative claims, checked mechanically.

Absolute numbers differ from the paper's (synthetic workloads, scaled
caches -- see DESIGN.md), so "reproduced" means the *shape* holds.
This module encodes each shape claim once, as data: every
:class:`Expectation` names the paper exhibit it comes from, states the
claim in prose, and provides a predicate over a
:class:`~repro.harness.session.Session`.  ``check_all`` evaluates all
of them and returns a report -- the single-command answer to "does
this reproduction still reproduce?" (``python -m repro check``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from typing import TYPE_CHECKING

from repro.analysis.report import geometric_mean
from repro.uarch.ppc620.config import PPC620, PPC620_PLUS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.session import Session


def _run(exp_id: str, session: "Session") -> dict:
    # Imported lazily: repro.harness imports repro.analysis for its
    # table rendering, so the reverse import must wait until call time.
    from repro.harness.experiments import run_experiment
    return run_experiment(exp_id, session).data


@dataclass(frozen=True)
class Expectation:
    """One qualitative claim from the paper."""

    exhibit: str
    claim: str
    check: Callable[["Session", dict], bool]


@dataclass
class CheckResult:
    """Outcome of evaluating one expectation.

    ``skipped`` marks a claim that could not be evaluated because the
    benchmarks it needs failed upstream (a recorded
    :class:`~repro.errors.BenchmarkFailure`); skipped claims count as
    not passed.
    """

    expectation: Expectation
    passed: bool
    detail: str = ""
    skipped: bool = False


def _fig1(session, cache):
    if "fig1" not in cache:
        cache["fig1"] = _run("fig1", session)
    return cache["fig1"]


def _fig6(session, cache):
    if "fig6" not in cache:
        cache["fig6"] = _run("fig6", session)
    return cache["fig6"]


def _tab4(session, cache):
    if "tab4" not in cache:
        cache["tab4"] = _run("tab4", session)
    return cache["tab4"]


def _tab6(session, cache):
    if "tab6" not in cache:
        cache["tab6"] = _run("tab6", session)
    return cache["tab6"]


# --- the claims --------------------------------------------------------------
def _depth16_dominates(session, cache):
    data = _fig1(session, cache)
    return all(d16 >= d1 for target in data.values()
               for d1, d16 in target.values())


def _poor_three_are_poor(session, cache):
    data = _fig1(session, cache)["ppc"]
    names = [n for n in ("cjpeg", "swm256", "tomcatv") if n in data]
    others = [n for n in data if n not in ("cjpeg", "swm256", "tomcatv")]
    if not names or not others:
        return True
    worst_poor = max(data[n][1] for n in names)
    median_rest = sorted(data[n][1] for n in others)[len(others) // 2]
    return worst_poor < median_rest


def _zero_constant_rows(session, cache):
    data = _tab4(session, cache)
    return all(data[n]["ppc/Simple"] < 0.10
               for n in ("quick", "tomcatv") if n in data)


def _all_gms_positive(session, cache):
    data = _fig6(session, cache)
    return all(geometric_mean(rows.values()) > 0.97
               for machine in data.values() for rows in machine.values())


def _grep_gawk_standouts(session, cache):
    data = _fig6(session, cache)
    simple = data["620"]["Simple"]
    ranked = sorted(simple, key=simple.get, reverse=True)
    return bool({"grep", "gawk"} & set(ranked[:3]))


def _perfect_bounds_simple(session, cache):
    data = _fig6(session, cache)["620"]
    return geometric_mean(data["Perfect"].values()) >= \
        geometric_mean(data["Simple"].values()) - 0.005


def _620_plus_amplifies(session, cache):
    tab6 = _tab6(session, cache)
    fig6 = _fig6(session, cache)
    gm_plus = tab6["GM"]["Limit"]
    gm_base = geometric_mean(fig6["620"]["Limit"].values())
    return gm_plus >= gm_base * 0.97


def _lvp_reduces_bandwidth(session, cache):
    from repro.lvp.config import CONSTANT
    for name in session.benchmark_names:
        base = session.ppc_result(name, PPC620, None)
        lvp = session.ppc_result(name, PPC620, CONSTANT)
        if lvp.l1_stats.accesses > base.l1_stats.accesses:
            return False
    return True


def _banking_worse_on_620_plus(session, cache):
    base = plus = 0.0
    for name in session.benchmark_names:
        base += session.ppc_result(name, PPC620, None).bank_conflict_cycles
        plus += session.ppc_result(
            name, PPC620_PLUS, None).bank_conflict_cycles
    return plus >= base


EXPECTATIONS: tuple[Expectation, ...] = (
    Expectation("fig1", "deeper value history never hurts "
                        "(depth-16 locality >= depth-1, everywhere)",
                _depth16_dominates),
    Expectation("fig1", "cjpeg, swm256, and tomcatv are the poor-locality "
                        "benchmarks", _poor_three_are_poor),
    Expectation("tab4", "quick and tomcatv show (near-)zero constant "
                        "loads", _zero_constant_rows),
    Expectation("fig6", "every LVP configuration is a net win on both "
                        "machines (GM)", _all_gms_positive),
    Expectation("fig6", "grep and gawk are the dramatic outliers",
                _grep_gawk_standouts),
    Expectation("fig6", "the Perfect oracle bounds Simple on the 620 (GM)",
                _perfect_bounds_simple),
    Expectation("tab6", "the wider 620+ amplifies (or at least matches) "
                        "LVP's relative gains", _620_plus_amplifies),
    Expectation("s3.3", "LVP reduces, never increases, L1 bandwidth",
                _lvp_reduces_bandwidth),
    Expectation("fig9", "the 620+'s extra load port aggravates bank "
                        "conflicts", _banking_worse_on_620_plus),
)


def check_all(session: "Session") -> list[CheckResult]:
    """Evaluate every expectation against *session*.

    A claim whose check raises :class:`BenchmarkFailure` (a benchmark
    it needs is broken) is recorded as *skipped*; one whose inputs were
    only partially available (the session recorded new failures while
    it ran) passes or fails on what remains, annotated as partial.
    """
    from repro.errors import BenchmarkFailure

    cache: dict = {}
    results = []
    for expectation in EXPECTATIONS:
        known_failures = len(session.failures)
        skipped = False
        try:
            passed = bool(expectation.check(session, cache))
            detail = ""
        except BenchmarkFailure as exc:
            passed = False
            skipped = True
            detail = f"skipped: {exc}"
        except Exception as exc:  # pragma: no cover - defensive
            passed = False
            detail = f"error: {exc}"
        if not skipped and len(session.failures) > known_failures:
            omitted = len(session.failures) - known_failures
            note = f"partial: {omitted} benchmark failure(s) omitted"
            detail = f"{detail}; {note}" if detail else note
        results.append(CheckResult(expectation, passed, detail, skipped))
    return results


def render_check_report(results: list[CheckResult]) -> str:
    """Human-readable pass/fail report."""
    lines = ["Paper-shape check", "================="]
    for result in results:
        mark = ("SKIP" if result.skipped
                else "PASS" if result.passed else "FAIL")
        lines.append(f"[{mark}] ({result.expectation.exhibit}) "
                     f"{result.expectation.claim}"
                     + (f" -- {result.detail}" if result.detail else ""))
    passed = sum(1 for r in results if r.passed)
    tail = f"{passed}/{len(results)} claims hold"
    skipped = sum(1 for r in results if r.skipped)
    if skipped:
        tail += f" ({skipped} skipped)"
    lines.append(tail)
    return "\n".join(lines)
