"""Text rendering of tables and figure series.

Every experiment renders to plain text that mirrors the corresponding
paper exhibit: tables print the same rows/columns, figures print their
data series (one row per benchmark/bucket).  Rendering is deliberately
dependency-free ASCII so benchmark harness output is diffable.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic for speedups)."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_percent(fraction: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string."""
    return f"{100.0 * fraction:.{digits}f}%"


def format_speedup(ratio: float) -> str:
    """Render a speedup ratio the way the paper's Table 6 does."""
    return f"{ratio:.3f}"


class TextTable:
    """A fixed-column ASCII table builder."""

    def __init__(self, headers: Sequence[str],
                 title: Optional[str] = None) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []
        self._separators: set[int] = set()

    def add_row(self, cells: Sequence) -> None:
        """Append one row (cells are str()-ed)."""
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(self.headers)}"
            )
        self.rows.append(row)

    def add_separator(self) -> None:
        """Insert a horizontal rule before the next row."""
        self._separators.add(len(self.rows))

    def render(self) -> str:
        """Render the table to a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                for i, cell in enumerate(cells)
            )

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append(fmt(self.headers))
        lines.append(rule)
        for index, row in enumerate(self.rows):
            if index in self._separators:
                lines.append(rule)
            lines.append(fmt(row))
        return "\n".join(lines)


def render_series(title: str, labels: Sequence[str],
                  series: dict[str, Sequence[float]],
                  formatter=format_percent) -> str:
    """Render a figure's data series as a labelled table."""
    table = TextTable(["benchmark"] + list(series), title=title)
    for i, label in enumerate(labels):
        table.add_row([label] + [formatter(series[s][i]) for s in series])
    return table.render()
