"""``repro chaos``: a seeded, randomized resilience soak harness.

The harness composes every chaos knob the repository already ships --
the fault injectors, ``REPRO_SABOTAGE``/``REPRO_TRANSIENT`` session
faults, the tier-fault divergence drill, journal crash kills, cache
corruption, and resource budgets -- into a reproducible campaign of
*drills*.  Each drill launches ``repro experiment`` in a fresh
subprocess under one planted failure and asserts the designed
response: exhibit stdout byte-identical to an undisturbed baseline
run, or a clean, footnoted degradation (omitted benchmark, tier
demotion note) with the right exit code.

The plan is a pure function of ``(seed, drills, benchmarks)``: the
same invocation replays the same victims in the same order, so a
failing drill from CI reproduces locally with the seed the report
prints.  Artifacts (each drill's stdout/stderr and run directory) are
kept only for failing drills.

See ``docs/resilience.md`` for the drill catalogue and a cookbook of
single-knob invocations.
"""

from __future__ import annotations

import os
import pathlib
import random
import shutil
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import FaultError
from repro.harness.guard import strip_tier_notes

#: One drill per kind, cycled in order as the campaign grows.
DRILL_KINDS = (
    "tier_trace",     # forced fast-tier divergence at the trace stage
    "tier_annotate",  # ... at the annotate stage
    "tier_model",     # ... at the model stage
    "transient",      # transient faults absorbed by the retry policy
    "sabotage",       # permanent stage failure -> footnoted omission
    "cache_corrupt",  # bit-flipped cache bundle -> quarantine + rebuild
    "cache_budget",   # 1-byte cache budget -> LRU eviction, same output
    "crash_resume",   # hard kill after a checkpoint -> --resume replay
    "hang",           # wedged unit -> watchdog timeout, footnoted
    "oracle_env",     # oracle tier pinned -> byte-identical output
    "bad_knob",       # invalid tier knob -> clean usage error
    "serve_kill_resume",  # SIGTERM mid-run -> park, restart, resume
    "serve_overload",     # burst past the queue limit -> clean shed
    "serve_deadline",     # un-meetable deadline -> 504, server healthy
    "serve_coalesce",     # identical concurrent requests -> one run
)

#: Statuses.
PASS = "pass"
FAIL = "fail"

#: Per-drill subprocess budget (seconds); generous next to tiny-scale
#: runtimes, tight next to a genuinely wedged run.
DRILL_TIMEOUT = 600.0


@dataclass(frozen=True)
class ChaosDrill:
    """One planned drill."""

    index: int
    kind: str
    seed: int
    victim: str  #: the benchmark the fault targets


@dataclass
class ChaosOutcome:
    """One executed drill and what happened."""

    drill: ChaosDrill
    status: str  #: PASS / FAIL
    detail: str


@dataclass
class ChaosReport:
    """Aggregated result of one chaos campaign."""

    seed: int
    exhibit: str
    scale: str
    benchmarks: tuple
    outcomes: list
    artifacts: Optional[str] = None

    @property
    def failures(self) -> list:
        return [o for o in self.outcomes if o.status == FAIL]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            "Chaos soak",
            "==========",
            f"seed {self.seed} · {len(self.outcomes)} drills · exhibit "
            f"{self.exhibit} @ {self.scale} · benchmarks "
            f"{','.join(self.benchmarks)}",
            "",
        ]
        for outcome in self.outcomes:
            drill = outcome.drill
            mark = "ok" if outcome.status == PASS else "!!"
            lines.append(f"  {mark} [{drill.index:02d}] "
                         f"{drill.kind:13s} victim={drill.victim:10s} "
                         f"{outcome.detail}")
        lines.append("")
        if self.ok:
            lines.append("verdict: OK — every drill degraded (or held) "
                         "exactly as designed")
        else:
            lines.append(f"verdict: FAIL — {len(self.failures)} "
                         "drill(s) misbehaved"
                         + (f"; artifacts kept under {self.artifacts}"
                            if self.artifacts else ""))
        return "\n".join(lines)


def plan_drills(seed: int, drills: int, benchmarks) -> list[ChaosDrill]:
    """The campaign plan: pure in ``(seed, drills, benchmarks)``."""
    benchmarks = list(benchmarks)
    if not benchmarks:
        raise FaultError("chaos needs at least one benchmark")
    rng = random.Random(seed)
    return [
        ChaosDrill(index=index,
                   kind=DRILL_KINDS[index % len(DRILL_KINDS)],
                   seed=rng.randrange(2 ** 31),
                   victim=rng.choice(benchmarks))
        for index in range(drills)
    ]


# ---------------------------------------------------------------------------
# Subprocess plumbing.
# ---------------------------------------------------------------------------
def _source_root() -> str:
    """The directory that makes ``import repro`` work in a child."""
    import repro
    return str(pathlib.Path(repro.__file__).resolve().parents[1])


def _base_env() -> dict:
    """A child environment with every ``REPRO_*`` knob stripped, so
    the parent's own configuration cannot leak into a drill."""
    env = {key: value for key, value in os.environ.items()
           if not key.startswith("REPRO_")}
    env["PYTHONPATH"] = _source_root()
    return env


def _run(command, env, cwd, timeout: float = DRILL_TIMEOUT):
    return subprocess.run(command, env=env, cwd=cwd, timeout=timeout,
                          capture_output=True, text=True)


class _Driver:
    """Runs ``repro experiment`` subprocesses for one campaign."""

    def __init__(self, workdir: pathlib.Path, exhibit: str, scale: str,
                 benchmarks) -> None:
        self.workdir = workdir
        self.exhibit = exhibit
        self.scale = scale
        self.benchmarks = tuple(benchmarks)
        self.baseline: Optional[str] = None

    def command(self, extra=()):
        return [sys.executable, "-m", "repro", "experiment", self.exhibit,
                "--scale", self.scale,
                "--benchmarks", ",".join(self.benchmarks)] + list(extra)

    def experiment(self, drill_dir: pathlib.Path, overrides=None,
                   extra=(), resume: Optional[str] = None):
        env = _base_env()
        env["REPRO_RUNS_DIR"] = str(drill_dir / "runs")
        env.update(overrides or {})
        if resume is not None:
            command = [sys.executable, "-m", "repro", "experiment",
                       "--resume", resume]
        else:
            command = self.command(extra)
        return _run(command, env, str(drill_dir))

    def run_baseline(self) -> str:
        """One undisturbed run; its stdout is the identity oracle."""
        base_dir = self.workdir / "baseline"
        base_dir.mkdir(parents=True, exist_ok=True)
        proc = self.experiment(base_dir)
        if proc.returncode != 0:
            raise FaultError(
                f"chaos baseline run failed (exit {proc.returncode}):\n"
                f"{proc.stderr[-2000:]}")
        self.baseline = proc.stdout
        return self.baseline


# ---------------------------------------------------------------------------
# Serve drills: a private daemon per drill.
# ---------------------------------------------------------------------------
class _ServeHarness:
    """One private ``repro serve`` daemon for one serve drill."""

    def __init__(self, drill_dir: pathlib.Path, scale: str,
                 workers: int = 2, queue_limit: int = 16,
                 drain_timeout: float = 10.0) -> None:
        # Unix socket paths are limited to ~108 bytes and the drill
        # directory (under --artifacts) can be arbitrarily deep, so
        # the socket lives in its own short-lived tempdir.
        self._sockdir = tempfile.mkdtemp(prefix="repro-srv-")
        self.socket_path = os.path.join(self._sockdir, "s.sock")
        self.state_dir = drill_dir / "serve-state"
        self.stderr_path = drill_dir / "server.stderr"
        self.scale = scale
        self.workers = workers
        self.queue_limit = queue_limit
        self.drain_timeout = drain_timeout
        self.proc: Optional[subprocess.Popen] = None

    def start(self) -> None:
        with open(self.stderr_path, "ab") as handle:
            self.proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--socket", self.socket_path,
                 "--state-dir", str(self.state_dir),
                 "--scale", self.scale,
                 "--workers", str(self.workers),
                 "--queue-limit", str(self.queue_limit),
                 "--drain-timeout", str(self.drain_timeout)],
                env=_base_env(), stdout=subprocess.DEVNULL,
                stderr=handle)

    def terminate(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.terminate()

    def wait(self, timeout: float = 60.0) -> Optional[int]:
        if self.proc is None:
            return None
        try:
            return self.proc.wait(timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return self.proc.wait(10)

    def stop(self) -> None:
        self.terminate()
        self.wait(30.0)
        shutil.rmtree(self._sockdir, ignore_errors=True)


def _serve_burst(socket_path: str, plan,
                 timeout: float) -> list[tuple[str, object]]:
    """Fire every (op, params) in *plan* concurrently; returns
    ``(fate, payload)`` per request -- ``ok``/``shed``/``error``."""
    import threading

    from repro.errors import ServiceOverloadError
    from repro.serve.client import ServeClient

    results: list = [None] * len(plan)

    def one(index: int, op: str, params: dict) -> None:
        client = ServeClient(socket_path, timeout=timeout)
        try:
            results[index] = ("ok", client.request(op, params))
        except ServiceOverloadError as exc:
            results[index] = ("shed", str(exc))
        except Exception as exc:
            results[index] = ("error", f"{type(exc).__name__}: {exc}")
        finally:
            client.close()

    threads = [threading.Thread(target=one, args=(i, op, params),
                                daemon=True)
               for i, (op, params) in enumerate(plan)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout)
    return results


# ---------------------------------------------------------------------------
# Drill expectations.
# ---------------------------------------------------------------------------
def _expect(checks) -> tuple[str, str]:
    """Fold ``(ok, description)`` checks into one outcome."""
    failed = [what for ok, what in checks if not ok]
    if failed:
        return FAIL, "; ".join(failed)
    return PASS, checks[0][1] if len(checks) == 1 else \
        f"{len(checks)} assertions held"


def _run_drill(driver: _Driver, drill: ChaosDrill,
               drill_dir: pathlib.Path) -> ChaosOutcome:
    baseline = driver.baseline
    kind, victim = drill.kind, drill.victim

    if kind in ("tier_trace", "tier_annotate", "tier_model"):
        stage = kind.split("_", 1)[1]
        proc = driver.experiment(
            drill_dir, {"REPRO_TIER_FAULT": f"{victim}:{stage}"})
        status, detail = _expect([
            (proc.returncode == 0, f"exit {proc.returncode}, wanted 0"),
            ("Tier notes:" in proc.stdout, "no Tier notes block"),
            (f"{stage} tier demoted" in proc.stdout,
             f"no {stage} demotion note"),
            (strip_tier_notes(proc.stdout) == baseline,
             "stripped output differs from baseline"),
        ])
        if status == PASS:
            detail = "diverged, demoted, byte-identical after notes"
    elif kind == "transient":
        proc = driver.experiment(
            drill_dir, {"REPRO_TRANSIENT": f"{victim}:trace:2"})
        status, detail = _expect([
            (proc.returncode == 0, f"exit {proc.returncode}, wanted 0"),
            (proc.stdout == baseline, "output differs from baseline"),
        ])
        if status == PASS:
            detail = "two transient faults absorbed by retries"
    elif kind == "sabotage":
        proc = driver.experiment(
            drill_dir, {"REPRO_SABOTAGE": f"{victim}:trace"})
        status, detail = _expect([
            (proc.returncode == 1, f"exit {proc.returncode}, wanted 1"),
            ("Footnotes:" in proc.stdout, "no footnote block"),
            ("omitted" in proc.stdout, "victim not footnoted as omitted"),
        ])
        if status == PASS:
            detail = "permanent fault footnoted, exit 1"
    elif kind == "cache_corrupt":
        cache_dir = drill_dir / "cache"
        overrides = {"REPRO_TRACE_CACHE": str(cache_dir)}
        warm = driver.experiment(drill_dir, overrides)
        bundles = sorted(cache_dir.glob("*.rtc"))
        checks = [
            (warm.returncode == 0, f"warm exit {warm.returncode}"),
            (bool(bundles), "warm run cached nothing"),
        ]
        if bundles:
            victim_bundle = bundles[drill.seed % len(bundles)]
            data = bytearray(victim_bundle.read_bytes())
            # Flip a byte of the v2 CRC footer: always integrity-covered
            # (a flip in alignment padding would be semantically inert).
            data[len(data) - 12 + drill.seed % 12] ^= 1 << (drill.seed % 8)
            victim_bundle.write_bytes(bytes(data))
            proc = driver.experiment(drill_dir, overrides)
            checks += [
                (proc.returncode == 0, f"exit {proc.returncode}, wanted 0"),
                (proc.stdout == baseline, "output differs from baseline"),
            ]
        status, detail = _expect(checks)
        if status == PASS:
            detail = "corrupt bundle quarantined, output held"
    elif kind == "cache_budget":
        cache_dir = drill_dir / "cache"
        proc = driver.experiment(drill_dir, {
            "REPRO_TRACE_CACHE": str(cache_dir),
            "REPRO_CACHE_BUDGET": "1",
        })
        bundles = list(cache_dir.glob("*.rtc"))
        status, detail = _expect([
            (proc.returncode == 0, f"exit {proc.returncode}, wanted 0"),
            (proc.stdout == baseline, "output differs from baseline"),
            (len(bundles) <= 1,
             f"{len(bundles)} bundles exceed a 1-byte budget"),
        ])
        if status == PASS:
            detail = "LRU eviction enforced the budget, output held"
    elif kind == "crash_resume":
        crashed = driver.experiment(
            drill_dir, {"REPRO_JOURNAL_CRASH_AFTER": "1"})
        resumed = driver.experiment(drill_dir, resume="latest")
        status, detail = _expect([
            (crashed.returncode == 23,
             f"crash exit {crashed.returncode}, wanted 23"),
            (resumed.returncode == 0,
             f"resume exit {resumed.returncode}, wanted 0"),
            (resumed.stdout == baseline,
             "resumed output differs from baseline"),
        ])
        if status == PASS:
            detail = "killed after checkpoint 1, resume byte-identical"
    elif kind == "hang":
        proc = driver.experiment(
            drill_dir, {"REPRO_PARALLEL_HANG": f"{victim}:trace:120"},
            extra=["--unit-timeout", "5"])
        status, detail = _expect([
            (proc.returncode == 1, f"exit {proc.returncode}, wanted 1"),
            ("UnitTimeoutError" in proc.stdout,
             "timeout not footnoted in the exhibit"),
        ])
        if status == PASS:
            detail = "wedged unit reaped by the watchdog, footnoted"
    elif kind == "oracle_env":
        knob, value = (("REPRO_ENGINE", "interp"),
                       ("REPRO_ANNOTATE_KERNEL", "general"),
                       ("REPRO_MODEL_ENGINE", "reference"))[drill.seed % 3]
        proc = driver.experiment(drill_dir, {knob: value})
        status, detail = _expect([
            (proc.returncode == 0, f"exit {proc.returncode}, wanted 0"),
            (proc.stdout == baseline,
             f"{knob}={value} output differs from the fast tiers"),
        ])
        if status == PASS:
            detail = f"{knob}={value} byte-identical to the fast tiers"
    elif kind == "bad_knob":
        knob = ("REPRO_ENGINE", "REPRO_ANNOTATE_KERNEL",
                "REPRO_MODEL_ENGINE")[drill.seed % 3]
        proc = driver.experiment(drill_dir, {knob: "warp9"})
        status, detail = _expect([
            (proc.returncode == 2, f"exit {proc.returncode}, wanted 2"),
            (knob in proc.stderr, f"error does not name {knob}"),
            ("warp9" in proc.stderr, "error does not echo the bad value"),
        ])
        if status == PASS:
            detail = f"{knob}=warp9 rejected with a clean usage error"
    elif kind == "serve_kill_resume":
        from repro.serve.client import ServeClient
        harness = _ServeHarness(drill_dir, driver.scale,
                                drain_timeout=1.0)
        checks = []
        try:
            harness.start()
            probe = ServeClient(harness.socket_path,
                                timeout=DRILL_TIMEOUT)
            ready = probe.wait_until_ready(30.0)
            checks.append((ready, "server never became ready"))
            if ready:
                # Submit the experiment, wait for its write-ahead
                # pending entry, then SIGTERM the server mid-run.
                import threading
                fate: dict = {}

                def ask() -> None:
                    own = ServeClient(harness.socket_path,
                                      timeout=DRILL_TIMEOUT)
                    try:
                        fate["result"] = own.experiment(
                            driver.exhibit, list(driver.benchmarks),
                            scale=driver.scale)
                    except Exception as exc:
                        fate["error"] = f"{type(exc).__name__}: {exc}"
                    finally:
                        own.close()

                asker = threading.Thread(target=ask, daemon=True)
                asker.start()
                pending = harness.state_dir / "pending"
                give_up = time.monotonic() + 60.0
                while time.monotonic() < give_up \
                        and not list(pending.glob("*.json")):
                    time.sleep(0.05)
                time.sleep(0.1)
                harness.terminate()
                exit_code = harness.wait(60.0)
                asker.join(30.0)
                checks.append((exit_code == 0,
                               f"drain exit {exit_code}, wanted 0"))
                # Restart on the same state dir: recovery resubmits
                # the parked run; a fresh client request coalesces
                # with it and must return the baseline's bytes.
                harness.start()
                again = ServeClient(harness.socket_path,
                                    timeout=DRILL_TIMEOUT)
                ready2 = again.wait_until_ready(30.0)
                checks.append(
                    (ready2, "restarted server never became ready"))
                if ready2:
                    result = again.experiment(
                        driver.exhibit, list(driver.benchmarks),
                        scale=driver.scale)
                    checks.append(
                        (result["text"] == baseline,
                         "resumed output differs from baseline"))
                again.close()
            probe.close()
        finally:
            harness.stop()
        status, detail = _expect(checks)
        if status == PASS:
            detail = "killed mid-run, restarted, resume byte-identical"
    elif kind == "serve_overload":
        harness = _ServeHarness(drill_dir, driver.scale,
                                workers=1, queue_limit=1)
        try:
            harness.start()
            from repro.serve.client import ServeClient
            probe = ServeClient(harness.socket_path,
                                timeout=DRILL_TIMEOUT)
            ready = probe.wait_until_ready(30.0)
            checks = [(ready, "server never became ready")]
            if ready:
                # A tiny-scale annotate can finish faster than the
                # next client thread even connects, so a cold burst
                # against an idle server may shed nothing.  Make the
                # overload deterministic instead: park the lone worker
                # with one slow experiment request, fill the 1-deep
                # queue with a second, and only then burst -- every
                # burst arrival now finds the queue at its high-water
                # mark for as long as the first occupier runs.
                import threading

                occupied: list = []

                def occupy(benches: list) -> None:
                    slow = ServeClient(harness.socket_path,
                                       timeout=DRILL_TIMEOUT)
                    try:
                        slow.experiment(driver.exhibit, benches,
                                        scale=driver.scale)
                        occupied.append("ok")
                    except Exception as exc:
                        occupied.append(
                            f"{type(exc).__name__}: {exc}")
                    finally:
                        slow.close()

                occupiers = [
                    threading.Thread(
                        target=occupy, args=(benches,), daemon=True)
                    for benches in (list(driver.benchmarks),
                                    list(driver.benchmarks)[:1])
                ]
                occupiers[0].start()
                busy_by = time.monotonic() + 30.0
                while time.monotonic() < busy_by \
                        and probe.status().get("in_flight", 0) < 1:
                    time.sleep(0.01)
                occupiers[1].start()
                while time.monotonic() < busy_by \
                        and probe.status().get("queue_depth", 0) < 1:
                    time.sleep(0.01)
                before = probe.status()
                parked = before.get("in_flight", 0) >= 1 \
                    and before.get("queue_depth", 0) >= 1
                configs = ("Simple", "Constant", "Limit", "Perfect",
                           "Stride", "Gshare")
                plan = [("annotate",
                         {"bench": driver.benchmarks[
                             i % len(driver.benchmarks)],
                          "scale": driver.scale,
                          "config": configs[i % len(configs)],
                          "target": ("ppc", "alpha")[i // 6]})
                        for i in range(12)]
                fates = _serve_burst(harness.socket_path, plan,
                                     DRILL_TIMEOUT)
                for occupier in occupiers:
                    occupier.join(DRILL_TIMEOUT)
                shed = sum(1 for f in fates if f and f[0] == "shed")
                errors = [f[1] for f in fates
                          if f and f[0] == "error"]
                after = probe.status()
                checks += [
                    (parked, "occupiers never saturated the queue"),
                    (shed >= 1, "nothing was shed past a 1-deep queue"),
                    (occupied == ["ok", "ok"],
                     f"admitted work failed: {occupied}"),
                    (not errors, f"hard failures: {errors[:2]}"),
                    (after.get("shed", 0) >= shed,
                     "status does not count the shed requests"),
                    (not after.get("draining"),
                     "server wound up draining"),
                ]
            probe.close()
        finally:
            harness.stop()
        status, detail = _expect(checks)
        if status == PASS:
            detail = f"{shed}/12 shed cleanly, server stayed healthy"
    elif kind == "serve_deadline":
        from repro.errors import DeadlineExceededError
        from repro.serve.client import ServeClient
        harness = _ServeHarness(drill_dir, driver.scale)
        try:
            harness.start()
            client = ServeClient(harness.socket_path,
                                 timeout=DRILL_TIMEOUT)
            ready = client.wait_until_ready(30.0)
            checks = [(ready, "server never became ready")]
            if ready:
                expired = False
                try:
                    # 0.2s is below even the subprocess's interpreter
                    # start-up, so the deadline cannot be met.
                    client.experiment(driver.exhibit,
                                      list(driver.benchmarks),
                                      scale=driver.scale,
                                      deadline_s=0.2)
                except DeadlineExceededError:
                    expired = True
                except Exception as exc:
                    checks.append(
                        (False, f"wanted DeadlineExceededError, got "
                                f"{type(exc).__name__}: {exc}"))
                after = client.status()
                checks += [
                    (expired, "the 0.2s deadline did not expire"),
                    (after.get("deadline_expired", 0) >= 1,
                     "status does not count the expiry"),
                    (after.get("pending_resumes", 0) >= 1,
                     "expired run was not parked for resume"),
                ]
            client.close()
        finally:
            harness.stop()
        status, detail = _expect(checks)
        if status == PASS:
            detail = "deadline expired as 504, run parked, server alive"
    elif kind == "serve_coalesce":
        from repro.serve.client import ServeClient
        harness = _ServeHarness(drill_dir, driver.scale)
        try:
            harness.start()
            probe = ServeClient(harness.socket_path,
                                timeout=DRILL_TIMEOUT)
            ready = probe.wait_until_ready(30.0)
            checks = [(ready, "server never became ready")]
            if ready:
                plan = [("trace", {"bench": victim,
                                   "scale": driver.scale})] * 8
                fates = _serve_burst(harness.socket_path, plan,
                                     DRILL_TIMEOUT)
                ok = [f[1] for f in fates if f and f[0] == "ok"]
                import json as _json
                distinct = {_json.dumps(r, sort_keys=True) for r in ok}
                after = probe.status()
                shared = after.get("coalesced", 0) \
                    + after.get("cache_hits", 0)
                checks += [
                    (len(ok) == 8, f"only {len(ok)}/8 succeeded"),
                    (len(distinct) == 1,
                     f"{len(distinct)} distinct results for one key"),
                    (shared >= 4,
                     f"only {shared}/8 requests shared an execution"),
                ]
            probe.close()
        finally:
            harness.stop()
        status, detail = _expect(checks)
        if status == PASS:
            detail = "8 identical requests shared one execution"
    else:
        return ChaosOutcome(drill, FAIL, f"unknown drill kind {kind!r}")

    if status == FAIL:
        _keep_artifacts(drill_dir, locals())
    return ChaosOutcome(drill, status, detail)


def _keep_artifacts(drill_dir: pathlib.Path, scope: dict) -> None:
    """Persist every subprocess capture a failing drill produced."""
    for name in ("warm", "crashed", "resumed", "proc"):
        proc = scope.get(name)
        if proc is None:
            continue
        (drill_dir / f"{name}.stdout").write_text(proc.stdout)
        (drill_dir / f"{name}.stderr").write_text(proc.stderr)


# ---------------------------------------------------------------------------
# The campaign.
# ---------------------------------------------------------------------------
def run_chaos(seed: int = 0, drills: int = 20, exhibit: str = "fig6",
              scale: str = "tiny", benchmarks=("grep", "compress"),
              artifacts: Optional[str] = None,
              progress=None) -> ChaosReport:
    """Run a chaos campaign; returns the report (inspect ``report.ok``).

    *artifacts* names a directory to work under (kept afterwards);
    without it a temporary directory is used and deleted unless a
    drill fails, in which case the failing drills' captures survive
    and the report says where.
    """
    plan = plan_drills(seed, drills, benchmarks)
    ephemeral = artifacts is None
    workdir = pathlib.Path(
        tempfile.mkdtemp(prefix="repro-chaos-") if ephemeral else artifacts)
    workdir.mkdir(parents=True, exist_ok=True)
    driver = _Driver(workdir, exhibit, scale, benchmarks)
    if progress:
        progress(f"baseline: {' '.join(driver.command())}")
    driver.run_baseline()
    outcomes = []
    for drill in plan:
        drill_dir = workdir / f"drill-{drill.index:02d}-{drill.kind}"
        drill_dir.mkdir(parents=True, exist_ok=True)
        try:
            outcome = _run_drill(driver, drill, drill_dir)
        except subprocess.TimeoutExpired:
            outcome = ChaosOutcome(
                drill, FAIL, f"subprocess exceeded {DRILL_TIMEOUT:g}s")
        if progress:
            progress(f"  [{drill.index:02d}] {drill.kind}: "
                     f"{outcome.status} ({outcome.detail})")
        if outcome.status == PASS:
            shutil.rmtree(drill_dir, ignore_errors=True)
        outcomes.append(outcome)
    report = ChaosReport(seed, exhibit, scale, tuple(benchmarks),
                         outcomes, artifacts=str(workdir))
    if ephemeral and report.ok:
        shutil.rmtree(workdir, ignore_errors=True)
        report.artifacts = None
    return report
