"""Experiment harness: memoized sessions and the exhibit registry."""

from repro.harness.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
)
from repro.harness.cache import TraceCache
from repro.harness.session import Session

__all__ = ["EXPERIMENTS", "ExperimentResult", "run_experiment",
           "Session", "TraceCache"]
