"""Experiment harness: memoized sessions, the exhibit registry, and
the parallel experiment engine."""

from repro.harness.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
    run_experiments,
)
from repro.harness.bench import (
    BENCH_SCHEMA_ID,
    compare_bench,
    load_bench,
    render_bench,
    run_bench,
    validate_bench,
    write_bench,
)
from repro.harness.cache import TraceCache
from repro.harness.journal import RunJournal, find_run, new_run_id
from repro.harness.parallel import (
    EngineObserver,
    EngineReport,
    ParallelEngine,
    WorkUnit,
    default_workplan,
    jobs_from_env,
    unit_timeout_from_env,
    units_for_exhibits,
    warm_session,
)
from repro.harness.retry import RetryPolicy, call_with_retries
from repro.harness.session import Session

__all__ = ["BENCH_SCHEMA_ID", "EXPERIMENTS", "EngineObserver",
           "EngineReport", "ExperimentResult", "ParallelEngine",
           "RetryPolicy", "RunJournal", "Session", "TraceCache",
           "WorkUnit", "call_with_retries", "compare_bench",
           "default_workplan", "find_run", "jobs_from_env", "load_bench",
           "new_run_id", "render_bench", "run_bench", "run_experiment",
           "run_experiments", "unit_timeout_from_env",
           "units_for_exhibits", "validate_bench", "warm_session",
           "write_bench"]
