"""Experiment harness: memoized sessions, the exhibit registry, and
the parallel experiment engine."""

from repro.harness.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
    run_experiments,
)
from repro.harness.cache import TraceCache
from repro.harness.parallel import (
    EngineReport,
    ParallelEngine,
    WorkUnit,
    default_workplan,
    jobs_from_env,
    warm_session,
)
from repro.harness.session import Session

__all__ = ["EXPERIMENTS", "EngineReport", "ExperimentResult",
           "ParallelEngine", "Session", "TraceCache", "WorkUnit",
           "default_workplan", "jobs_from_env", "run_experiment",
           "run_experiments", "warm_session"]
