"""Write-ahead run journal: crash-safe, resumable experiment runs.

Every journaled ``repro experiment`` run owns a *run directory*::

    <runs-dir>/<run-id>/
        manifest.json        what was asked for (suite, scale, jobs...)
        journal.jsonl        append-only, fsync'd lifecycle records
        checkpoints/<b>.pkl  one completed benchmark's merge payload

The **manifest** pins everything needed to re-create the run:
library version, exhibit ids, input scale, benchmark list, worker
count, watchdog timeout, and a fingerprint over all of it.  The
**journal** is written ahead of the work it describes: a benchmark's
shard is recorded ``planned`` before any worker sees it, ``started``
when it is handed out, and ``done`` (with a checkpoint digest and
per-unit result digests) or ``failed`` only after its checkpoint is
durably on disk.  Each journal line carries a CRC-32 of its payload
and is written with a single ``write``+``fsync``, so a power cut can
at worst truncate the final line -- which replay tolerates.

``repro experiment --resume <run-id>`` replays the journal, loads the
checkpoint of every completed benchmark (re-hashing each one against
the digest the journal recorded, and cross-checking trace digests
against the shared :class:`~repro.harness.cache.TraceCache`), seeds
the parallel engine with those payloads, and re-executes only the
incomplete benchmarks.  A run killed mid-suite and resumed produces
byte-identical stdout to one that was never interrupted (the
differential suite in ``tests/harness/test_resume.py`` proves it,
SIGKILL included).

Chaos knob: ``REPRO_JOURNAL_CRASH_AFTER=<k>`` hard-exits the parent
process (``os._exit``) immediately after the *k*-th checkpoint is
journalled, simulating a mid-suite crash for the resume drill.
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import json
import os
import pathlib
import pickle
import sys
import time
import zlib
from typing import Optional

from repro.errors import (
    JournalError,
    ResourceExhaustedError,
    is_resource_exhaustion,
)
from repro.harness.parallel import (
    EngineObserver,
    _CachedTraceRef,
    _ShardResult,
    _ShardSpec,
)
from repro.obs.metrics import write_metrics

#: Where run directories live (created on demand).
RUNS_DIR_ENV = "REPRO_RUNS_DIR"
DEFAULT_RUNS_DIR = os.path.join(".repro", "runs")

#: How many finished run directories to retain (newest first).
RUNS_KEEP_ENV = "REPRO_RUNS_KEEP"
DEFAULT_RUNS_KEEP = 8

#: Chaos knob: crash the parent after the k-th checkpoint (resume drill).
CRASH_AFTER_ENV = "REPRO_JOURNAL_CRASH_AFTER"

_MANIFEST = "manifest.json"
_JOURNAL = "journal.jsonl"
_CHECKPOINTS = "checkpoints"

#: Pointer file naming the newest run (symlink-style, but a plain file
#: updated under an fcntl lock: atomic on every filesystem, and the
#: read side needs no readlink/stat race dance).
_LATEST = "LATEST"

try:
    import fcntl
except ImportError:  # non-POSIX: pointer updates fall back to unlocked
    fcntl = None  # type: ignore[assignment]


def _lock_fd(fd: int, shared: bool = False) -> None:
    if fcntl is not None:
        fcntl.flock(fd, fcntl.LOCK_SH if shared else fcntl.LOCK_EX)


def runs_dir_from_env(default: Optional[str] = None) -> pathlib.Path:
    """The configured runs directory (``REPRO_RUNS_DIR``)."""
    return pathlib.Path(
        os.environ.get(RUNS_DIR_ENV) or default or DEFAULT_RUNS_DIR)


#: Per-process run sequence: the timestamp below has second
#: granularity, so two runs created in the same second by one process
#: (exactly what a test suite or scripted sweep does) would otherwise
#: collide and share a run directory.
_RUN_SEQ = itertools.count()


def new_run_id() -> str:
    """A fresh, sortable run id.

    Timestamp + pid keeps concurrent sessions on one machine apart;
    the per-process sequence suffix keeps same-second runs from one
    process apart (the stamp alone is only second-granular).
    """
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{stamp}-{os.getpid()}-{next(_RUN_SEQ):03d}"


def publish_latest(runs_dir, run_id: str) -> None:
    """Advance the ``LATEST`` pointer to *run_id* (move-forward only).

    The read-modify-write runs under an exclusive ``fcntl`` lock, so
    two processes creating runs concurrently serialize instead of
    interleaving: the slower writer of an *older* run id cannot clobber
    a newer one (run ids sort lexicographically by creation time).  A
    pointer whose target has since been pruned is treated as absent and
    overwritten even by an older id.
    """
    runs_dir = pathlib.Path(runs_dir)
    runs_dir.mkdir(parents=True, exist_ok=True)
    fd = os.open(runs_dir / _LATEST, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        _lock_fd(fd)
        current = os.read(fd, 4096).decode("utf-8", "replace").strip()
        if current and current >= run_id \
                and (runs_dir / current / _MANIFEST).exists():
            return
        os.lseek(fd, 0, os.SEEK_SET)
        os.truncate(fd, 0)
        os.write(fd, (run_id + "\n").encode())
        with contextlib.suppress(OSError):
            os.fsync(fd)
    finally:
        os.close(fd)  # releases the lock


def _read_latest(runs_dir: pathlib.Path) -> Optional[pathlib.Path]:
    """The run directory the ``LATEST`` pointer names, if still valid."""
    try:
        fd = os.open(runs_dir / _LATEST, os.O_RDONLY)
    except OSError:
        return None
    try:
        _lock_fd(fd, shared=True)
        name = os.read(fd, 4096).decode("utf-8", "replace").strip()
    finally:
        os.close(fd)
    if name and os.sep not in name \
            and (runs_dir / name / _MANIFEST).exists():
        return runs_dir / name
    return None


def find_run(runs_dir, run_id: str) -> pathlib.Path:
    """Resolve *run_id* (or ``latest``) to an existing run directory."""
    runs_dir = pathlib.Path(runs_dir)
    if run_id == "latest":
        # The locked pointer is authoritative: a directory scan races
        # with concurrent run creation (a directory appears before its
        # manifest) and with pruning (an entry vanishes between iterdir
        # and the manifest check).  The scan remains as a fallback for
        # runs directories predating the pointer.
        pointed = _read_latest(runs_dir)
        if pointed is not None:
            return pointed
        candidates = sorted(
            (entry for entry in runs_dir.iterdir()
             if entry.is_dir() and (entry / _MANIFEST).exists()),
            key=lambda entry: entry.name,
        ) if runs_dir.is_dir() else []
        if not candidates:
            raise JournalError(f"no runs found under {runs_dir}")
        return candidates[-1]
    path = runs_dir / run_id
    if not (path / _MANIFEST).exists():
        raise JournalError(
            f"no run {run_id!r} under {runs_dir} (no manifest); "
            f"try 'latest' or list the directory")
    return path


def prune_runs(runs_dir, keep: Optional[int] = None,
               protect: Optional[str] = None) -> int:
    """Keep only the *keep* newest run directories; returns the number
    removed.  *protect* (a run id) is never pruned."""
    import shutil
    runs_dir = pathlib.Path(runs_dir)
    if keep is None:
        try:
            keep = max(1, int(os.environ[RUNS_KEEP_ENV]))
        except (KeyError, ValueError):
            keep = DEFAULT_RUNS_KEEP
    if not runs_dir.is_dir():
        return 0
    entries = sorted(
        (entry for entry in runs_dir.iterdir() if entry.is_dir()),
        key=lambda entry: entry.name,
        reverse=True,
    )
    removed = 0
    for stale in entries[keep:]:
        if protect is not None and stale.name == protect:
            continue
        with contextlib.suppress(OSError):
            shutil.rmtree(stale)
            removed += 1
    return removed


# ---------------------------------------------------------------------------
# Result digests.
# ---------------------------------------------------------------------------
def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def trace_digest(trace, cache=None) -> str:
    """sha256 over a trace's column bytes (the identity the TraceCache
    checksums protect, re-expressed as one stable digest).

    A zero-copy merge payload carries a
    :class:`~repro.harness.parallel._CachedTraceRef` instead of arrays;
    the digest then covers the cached bundle's actual column bytes
    (memory-mapped through *cache*, so nothing is copied).  A ref that
    cannot be resolved digests as its identity string: stable, so a
    checkpoint written while the bundle was missing still verifies --
    and distinct from any content digest, so if the bundle *reappears*
    the mismatch forces a clean re-run instead of trusting it.
    """
    import numpy as np
    from repro.trace.records import TRACE_COLUMNS
    if isinstance(trace, _CachedTraceRef):
        resolved = None
        if cache is not None:
            with contextlib.suppress(Exception):
                resolved = cache.load(trace.name, trace.target, trace.scale)
        if resolved is None:
            return _sha256(
                f"unresolved-ref:{trace.name}/{trace.target}/"
                f"{trace.scale}".encode())
        trace = resolved
    digest = hashlib.sha256()
    for key, _ in TRACE_COLUMNS:
        digest.update(np.ascontiguousarray(getattr(trace, key)).tobytes())
    return digest.hexdigest()


def shard_digests(shard: _ShardResult, cache=None) -> dict[str, str]:
    """Per-unit result digests for one benchmark's merge payload.

    Keys are stable unit labels; values identify the *result* (not the
    computation), so a resumed run can prove a checkpoint still holds
    exactly what the journal said it held.  *cache* resolves
    :class:`~repro.harness.parallel._CachedTraceRef` stubs in zero-copy
    payloads (see :func:`trace_digest`).
    """
    import numpy as np
    digests: dict[str, str] = {}
    for (name, target), trace in shard.traces.items():
        digests[f"trace/{name}/{target}"] = trace_digest(trace, cache)
    for (name, target, config), annotated in shard.annotated.items():
        digests[f"annotate/{name}/{target}/{config}"] = _sha256(
            np.ascontiguousarray(annotated.outcomes).tobytes())
    for (name, machine, lvp), result in shard.ppc_runs.items():
        digests[f"model/ppc/{name}/{machine}/{lvp or 'base'}"] = _sha256(
            repr((result.cycles, result.instructions)).encode())
    for (name, machine, lvp), result in shard.alpha_runs.items():
        digests[f"model/alpha/{name}/{machine}/{lvp or 'base'}"] = _sha256(
            repr((result.cycles, result.instructions)).encode())
    return digests


# ---------------------------------------------------------------------------
# Journal lines.
# ---------------------------------------------------------------------------
def _encode_record(record: dict) -> bytes:
    """One journal line: the record plus a CRC-32 of its canonical
    JSON, emitted as a single newline-terminated write."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(payload.encode()) & 0xFFFFFFFF
    return json.dumps({"rec": record, "crc": crc},
                      sort_keys=True, separators=(",", ":")).encode() + b"\n"


def _decode_line(line: bytes) -> Optional[dict]:
    """Parse + CRC-check one journal line (None = damaged)."""
    try:
        wrapper = json.loads(line)
        record = wrapper["rec"]
        payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
        if (zlib.crc32(payload.encode()) & 0xFFFFFFFF) != wrapper["crc"]:
            return None
        return record
    except (ValueError, KeyError, TypeError):
        return None


def replay_journal(path) -> list[dict]:
    """Every valid record in *path*, in order.

    A damaged **final** line is the signature of a crash mid-append and
    is silently dropped; a damaged line anywhere else means the file
    was tampered with or the disk is failing, and raises
    :class:`~repro.errors.JournalError`.
    """
    records: list[dict] = []
    try:
        raw = pathlib.Path(path).read_bytes()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    lines = raw.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    for index, line in enumerate(lines):
        record = _decode_line(line)
        if record is None:
            if index == len(lines) - 1:
                break  # truncated trailing line: tolerated
            raise JournalError(
                f"journal {path} is damaged at line {index + 1} "
                f"(not the trailing line; refusing to resume)")
        records.append(record)
    return records


# ---------------------------------------------------------------------------
# The journal itself.
# ---------------------------------------------------------------------------
class RunJournal(EngineObserver):
    """Write-ahead journal for one run directory.

    Doubles as the parallel engine's observer: shard lifecycle events
    are journalled as they happen, and a finished shard's payload is
    checkpointed to disk *before* its ``done`` record is appended
    (write-ahead order: the journal never claims more than the disk
    holds).
    """

    def __init__(self, directory, manifest: dict) -> None:
        self.directory = pathlib.Path(directory)
        self.manifest = manifest
        self._fd: Optional[int] = None
        self._cache_handle: Optional[tuple] = None
        self._checkpoints_done = 0
        self._crash_after = self._crash_after_from_env()
        #: Set when the disk filled up under a journal write: further
        #: appends become no-ops (the computation itself continues).
        self._degraded = False

    @staticmethod
    def _crash_after_from_env() -> Optional[int]:
        try:
            return max(1, int(os.environ[CRASH_AFTER_ENV]))
        except (KeyError, ValueError):
            return None

    # -- construction --------------------------------------------------------
    @classmethod
    def create(cls, runs_dir, run_id: str, manifest: dict) -> "RunJournal":
        """Start a fresh run directory (manifest + empty journal)."""
        directory = pathlib.Path(runs_dir) / run_id
        directory.mkdir(parents=True, exist_ok=True)
        (directory / _CHECKPOINTS).mkdir(exist_ok=True)
        manifest = dict(manifest, run_id=run_id,
                        fingerprint=cls.fingerprint(manifest))
        temporary = directory / (_MANIFEST + ".tmp")
        temporary.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        temporary.replace(directory / _MANIFEST)
        publish_latest(runs_dir, run_id)
        journal = cls(directory, manifest)
        journal._open()
        journal.append({"type": "run_started", "run_id": run_id})
        for benchmark in manifest.get("benchmarks", ()):
            journal.append({"type": "planned", "benchmark": benchmark})
        return journal

    @classmethod
    def open(cls, runs_dir, run_id: str) -> "RunJournal":
        """Open an existing run directory for resumption."""
        directory = find_run(runs_dir, run_id)
        try:
            manifest = json.loads((directory / _MANIFEST).read_text())
        except (OSError, ValueError) as exc:
            raise JournalError(
                f"unreadable manifest in {directory}: {exc}") from exc
        journal = cls(directory, manifest)
        journal.verify_manifest()
        journal._open()
        return journal

    @staticmethod
    def fingerprint(manifest: dict) -> str:
        """Stable digest of a manifest's identity-bearing fields."""
        identity = {key: manifest.get(key)
                    for key in ("version", "exhibits", "scale",
                                "benchmarks", "verify")}
        return _sha256(json.dumps(identity, sort_keys=True).encode())

    def verify_manifest(self) -> None:
        """Refuse to resume a run recorded by different code/config."""
        from repro import __version__
        recorded = self.manifest.get("version")
        if recorded != __version__:
            raise JournalError(
                f"run {self.run_id!r} was recorded by repro {recorded}, "
                f"this is {__version__}: results would not be comparable "
                f"(start a fresh run)")
        expected = self.manifest.get("fingerprint")
        if expected and expected != self.fingerprint(self.manifest):
            raise JournalError(
                f"manifest of run {self.run_id!r} does not match its "
                f"fingerprint (edited by hand?); refusing to resume")

    # -- plumbing ------------------------------------------------------------
    @property
    def run_id(self) -> str:
        return self.manifest.get("run_id", self.directory.name)

    @property
    def journal_path(self) -> pathlib.Path:
        return self.directory / _JOURNAL

    def _open(self) -> None:
        self._fd = os.open(self.journal_path,
                           os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)

    def close(self) -> None:
        if self._fd is not None:
            with contextlib.suppress(OSError):
                os.close(self._fd)
            self._fd = None

    def append(self, record: dict) -> None:
        """Append one fsync'd journal record.

        One ``os.write`` of the whole line keeps the append atomic with
        respect to signal handlers re-entering the journal (the
        ``interrupted`` record is written from a handler).

        A full disk (``ENOSPC``/``EDQUOT``) must never kill the run the
        journal only *describes*: the first such failure marks the
        journal degraded (all later appends are no-ops), prints a
        one-time resume hint to stderr, and returns.  The write-ahead
        invariant survives -- the journal simply stops early, claiming
        less than the run completed, and ``--resume`` re-runs whatever
        the journal could not attest.
        """
        if self._degraded:
            return
        if self._fd is None:
            self._open()
        line = _encode_record(record)
        try:
            os.write(self._fd, line)
        except OSError as exc:
            if is_resource_exhaustion(exc):
                self._mark_degraded(exc)
                return
            raise
        with contextlib.suppress(OSError):
            os.fsync(self._fd)

    def _mark_degraded(self, cause: BaseException) -> None:
        """Stop journalling (disk full) with a one-time resume hint."""
        if self._degraded:
            return
        self._degraded = True
        print(
            f"warning: run journal write failed ({cause}); journalling "
            f"for run {self.run_id} stops here.  The run continues, but "
            f"benchmarks finished from now on are not checkpointed: free "
            f"disk space and, if this run is interrupted, resume with:\n"
            f"  repro experiment --resume {self.run_id}",
            file=sys.stderr)

    def _trace_cache(self):
        """The TraceCache the manifest names (None when uncached) --
        needed to digest zero-copy payloads whose traces are refs."""
        if self._cache_handle is None:
            cache = None
            cache_dir = self.manifest.get("cache_dir")
            if cache_dir:
                from repro.harness.cache import TraceCache
                with contextlib.suppress(Exception):
                    cache = TraceCache(cache_dir)
            self._cache_handle = (cache,)
        return self._cache_handle[0]

    # -- engine observer hooks ----------------------------------------------
    def shard_started(self, spec: _ShardSpec) -> None:
        self.append({"type": "started", "benchmark": spec.benchmark,
                     "units": len(spec.units)})

    def shard_finished(self, spec: _ShardSpec, result: _ShardResult) -> None:
        try:
            digest = self._write_checkpoint(result)
        except ResourceExhaustedError as exc:
            # No checkpoint durably on disk, so no "done" record may
            # claim one (write-ahead order): note the skip and let the
            # in-memory merge proceed; --resume re-runs this benchmark.
            self.append({"type": "checkpoint_failed",
                         "benchmark": spec.benchmark,
                         "cause": str(exc)})
            return
        for demotion in getattr(result, "demotions", None) or ():
            self.append({"type": "demoted", **demotion.as_dict()})
        self.append({
            "type": "done",
            "benchmark": spec.benchmark,
            "checkpoint": digest,
            "failed": len(result.failed),
            "digests": shard_digests(result, cache=self._trace_cache()),
        })
        self._checkpoints_done += 1
        if (self._crash_after is not None
                and self._checkpoints_done >= self._crash_after):
            # Chaos drill: die the hardest way possible (no atexit, no
            # flush) right after the journal claims this checkpoint.
            # Pool workers are reaped first -- a real crash would leave
            # them to die on their broken queues, but the drill must
            # not leave orphans holding the caller's pipes open.
            import multiprocessing
            for child in multiprocessing.active_children():
                with contextlib.suppress(Exception):
                    child.terminate()
            os._exit(23)

    def shard_retry(self, benchmark: str, attempt: int, delay: float,
                    cause: BaseException) -> None:
        self.append({"type": "retry", "benchmark": benchmark,
                     "attempt": attempt, "delay": round(delay, 4),
                     "cause": f"{type(cause).__name__}: {cause}"})

    def shard_lost(self, benchmark: str, cause: BaseException) -> None:
        self.append({"type": "lost", "benchmark": benchmark,
                     "cause": f"{type(cause).__name__}: {cause}"})

    # -- lifecycle records ----------------------------------------------------
    def interrupted(self, signum: int) -> None:
        """Journal a clean interruption (called from a signal handler)."""
        self.append({"type": "interrupted", "signal": int(signum)})

    def finished(self, exit_code: int) -> None:
        self.append({"type": "run_finished", "exit": int(exit_code)})

    # -- checkpoints ----------------------------------------------------------
    def _checkpoint_path(self, benchmark: str) -> pathlib.Path:
        safe = benchmark.replace("/", "_")
        return self.directory / _CHECKPOINTS / f"{safe}.pkl"

    def _write_checkpoint(self, result: _ShardResult) -> str:
        """Durably persist one shard payload; returns its sha256.

        A full disk (or exhausted fd table) raises
        :class:`~repro.errors.ResourceExhaustedError` after removing
        the partial temp file, so the caller can skip the checkpoint
        without ever leaving a half-written ``.pkl`` behind.
        """
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        path = self._checkpoint_path(result.benchmark)
        temporary = path.with_suffix(".tmp")
        try:
            fd = os.open(temporary,
                         os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                os.write(fd, payload)
                os.fsync(fd)
            finally:
                os.close(fd)
            temporary.replace(path)
        except OSError as exc:
            with contextlib.suppress(OSError):
                temporary.unlink()
            if is_resource_exhaustion(exc):
                raise ResourceExhaustedError(
                    f"cannot checkpoint {result.benchmark}: {exc}") from exc
            raise
        return _sha256(payload)

    # -- resumption ------------------------------------------------------------
    def replay(self) -> list[dict]:
        """Valid journal records, tolerating a truncated final line."""
        if not self.journal_path.exists():
            return []
        return replay_journal(self.journal_path)

    def completed(self) -> dict[str, dict]:
        """Benchmark -> its latest ``done`` record."""
        done: dict[str, dict] = {}
        for record in self.replay():
            if record.get("type") == "done":
                done[record["benchmark"]] = record
        return done

    def load_checkpoints(self, cache=None) -> dict[str, _ShardResult]:
        """Verified merge payloads of every completed benchmark.

        Each checkpoint is re-hashed against the digest its ``done``
        record committed; a missing, unreadable, or mismatching
        checkpoint is dropped (that benchmark simply re-runs -- resume
        trades work for certainty, never the reverse).  When *cache* (a
        :class:`~repro.harness.cache.TraceCache`) is given, every
        checkpointed trace is cross-checked against the cache's copy
        and a disagreeing cache bundle is quarantined, so a resumed run
        cannot be poisoned by a cache that rotted while the run was
        down.
        """
        loaded: dict[str, _ShardResult] = {}
        for benchmark, record in self.completed().items():
            path = self._checkpoint_path(benchmark)
            try:
                payload = path.read_bytes()
            except OSError:
                continue
            if _sha256(payload) != record.get("checkpoint"):
                continue
            try:
                result = pickle.loads(payload)
            except Exception:
                continue
            if shard_digests(result, cache=cache) != record.get("digests"):
                continue
            loaded[benchmark] = result
        if cache is not None:
            self._cross_check_cache(loaded, cache)
        return loaded

    def _cross_check_cache(self, loaded: dict[str, _ShardResult],
                           cache) -> None:
        """Quarantine cache bundles that disagree with a verified
        checkpoint (the checkpoint is journal-attested; the cache is
        only an accelerator and may have rotted while the run was
        down)."""
        scale = self.manifest.get("scale", "small")
        for result in loaded.values():
            for (name, target), trace in result.traces.items():
                if isinstance(trace, _CachedTraceRef):
                    # A ref's bytes *are* the cache bundle (CRC-verified
                    # on every load): nothing independent to cross-check.
                    continue
                with contextlib.suppress(Exception):
                    cached = cache.load(name, target, scale)
                    if cached is not None and \
                            trace_digest(cached) != trace_digest(trace):
                        cache.discard(name, target, scale)


# ---------------------------------------------------------------------------
# Orchestration: journaled (and resumable) experiment runs.
# ---------------------------------------------------------------------------
def build_manifest(exhibits, session, jobs: int,
                   unit_timeout: float, profile: bool = False) -> dict:
    """The manifest for a fresh journaled run of *session*."""
    from repro import __version__
    return {
        "version": __version__,
        "exhibits": list(exhibits),
        "scale": session.scale,
        "benchmarks": list(session.benchmark_names),
        "verify": session.verify,
        "jobs": int(jobs),
        "unit_timeout": float(unit_timeout),
        "cache_dir": str(session.cache.directory) if session.cache else None,
        "metrics": session.metrics is not None,
        "profile": bool(profile),
    }


def write_run_profiles(directory, report, keep: int = 5) -> list:
    """Persist the *keep* hottest profiled units' pstats text into
    ``<run-dir>/profiles/``; returns the written paths.  "Hottest" is
    by measured unit wall time, so the capture a developer opens first
    is the one that dominated the run.
    """
    profile_dir = pathlib.Path(directory) / "profiles"
    profile_dir.mkdir(parents=True, exist_ok=True)
    seconds = {timing.unit.label: timing.seconds
               for timing in report.timings}
    hottest = sorted(report.profiles,
                     key=lambda label: -seconds.get(label, 0.0))[:keep]
    written = []
    for label in hottest:
        path = profile_dir / (label.replace("/", "_") + ".txt")
        path.write_text(report.profiles[label])
        written.append(path)
    return written


def run_journaled(exhibits, session, journal: RunJournal,
                  jobs: int = 1, unit_timeout: float = 0.0,
                  resume: bool = False, profile: bool = False):
    """Run *exhibits* under *journal*; returns ExperimentResult list.

    The workplan is the union of what the exhibits read (single-exhibit
    runs stay cheap); on *resume*, completed benchmarks are preloaded
    from verified checkpoints and only the remainder re-executes.  The
    rendered exhibits -- drawn from the merged session memos either way
    -- are byte-identical to an uninterrupted (or unjournaled) run.
    ``session.last_warm_report`` is set only for ``jobs > 1``, matching
    the unjournaled engine's stderr contract.

    When the session carries a :class:`~repro.obs.MetricsRegistry`,
    the merged metrics document is written as ``metrics.json`` into the
    run directory (``repro stats`` reads it); with *profile* the
    hottest units' cProfile captures land in ``profiles/`` beside it.
    """
    from repro.harness.experiments import run_experiment
    from repro.harness.parallel import ParallelEngine, units_for_exhibits
    preloaded = journal.load_checkpoints(cache=session.cache) \
        if resume else {}
    units = units_for_exhibits(exhibits, session.benchmark_names)
    engine = ParallelEngine(session, jobs=jobs, units=units,
                            unit_timeout=unit_timeout,
                            observer=journal, preloaded=preloaded,
                            profile=profile)
    report = engine.run()
    session.last_warm_report = report if jobs > 1 else None
    metrics = session.metrics
    results = []
    for exp_id in exhibits:
        span = contextlib.nullcontext() if metrics is None \
            else metrics.span(None, "report", exp_id)
        with span:
            results.append(run_experiment(exp_id, session))
    if metrics is not None:
        session.collect_run_counters()
        write_metrics(journal.directory,
                      metrics.to_document(run_id=journal.run_id,
                                          manifest=journal.manifest))
    if report.profiles:
        write_run_profiles(journal.directory, report)
    return results
