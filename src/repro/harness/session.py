"""Experiment session: memoized traces, annotations, and model runs.

Every paper exhibit draws on the same underlying runs (trace a
benchmark, annotate it with an LVP configuration, schedule it on a
machine model).  A :class:`Session` memoizes each stage so that, e.g.,
Figure 7's verification-latency histograms reuse the exact runs that
produced Figure 6's speedups -- just as the paper's numbers all come
from one set of simulations.

Failures are isolated per benchmark: an exception at any stage is
wrapped in a :class:`~repro.errors.BenchmarkFailure`, recorded on
``session.failures``, and re-raised; repeated requests for the same
failed stage re-raise the recorded failure without re-running the
broken benchmark.  The experiment runners catch these and render the
exhibit with the benchmark footnoted instead of aborting the run.

Transient failures -- anything deriving from
:class:`~repro.errors.RetryableError`, e.g. cache-lock contention or an
injected I/O fault -- are retried with exponential backoff
(:mod:`repro.harness.retry`) before a failure is recorded; terminal
errors are recorded on the first strike.

Chaos knobs (all exercising exactly the paths a real failure would):

* ``REPRO_SABOTAGE=<benchmark>[:<stage>]`` deliberately fails that
  benchmark at that stage (default ``trace``) with a terminal
  :class:`~repro.errors.FaultError`;
* ``REPRO_TRANSIENT=<benchmark>[:<stage>][:<fails>]`` fails the first
  *fails* attempts (default 2) with a retryable
  :class:`~repro.errors.TransientFaultError`, proving the backoff path;
* ``REPRO_PARALLEL_HANG=<benchmark>[:<stage>][:<seconds>]`` wedges the
  stage in a long sleep (default 300s) so the per-unit watchdog
  (``--unit-timeout``, see :mod:`repro.harness.parallel`) can be
  drilled.
"""

from __future__ import annotations

import contextlib
import os
import sys
import time
import zlib
from typing import Callable, Optional, Union

from repro.errors import (
    BenchmarkFailure,
    FaultError,
    ResourceExhaustedError,
    TransientFaultError,
)
from repro.harness.cache import TraceCache
from repro.harness.guard import TierGuard
from repro.harness.retry import RetryPolicy, call_with_retries
from repro.lvp.config import LVPConfig, SIMPLE
from repro.obs.metrics import MetricsRegistry, metrics_enabled_from_env
from repro.sim.functional import run_program, sim_counters
from repro.trace.annotate import AnnotatedTrace, annotate_trace
from repro.trace.records import Trace
from repro.trace.validate import validate_trace
from repro.uarch.axp21164.config import AXP21164Config
from repro.uarch.axp21164.model import AXP21164Model, AXP21164Result
from repro.uarch.ppc620.config import PPC620, PPC620Config
from repro.uarch.ppc620.model import PPC620Model, PPC620Result
from repro.workloads.suite import BENCHMARKS, get_benchmark

#: Chaos knob: wedge one benchmark's stage in a long sleep (watchdog
#: drill).  Format ``<benchmark>[:<stage>][:<seconds>]``.
HANG_ENV = "REPRO_PARALLEL_HANG"

#: Chaos knob: fail one benchmark's stage transiently for its first N
#: attempts.  Format ``<benchmark>[:<stage>][:<fails>]``.
TRANSIENT_ENV = "REPRO_TRANSIENT"

#: How often each (benchmark, stage) transient knob has fired in this
#: process.  Per-process on purpose: a retried stage re-attempts inside
#: the same worker, so the counter sees every attempt.
_TRANSIENT_FIRED: dict = {}


def _span_label(fail_key) -> str:
    """Flatten a stage's fail key into a readable span label, e.g.
    ``('annotate', ('grep', 'ppc', 'Simple'))`` -> ``annotate/grep/ppc/
    Simple`` (None components, like the no-LVP baseline, are elided)."""
    parts: list[str] = []

    def walk(value) -> None:
        if isinstance(value, tuple):
            for item in value:
                walk(item)
        elif value is not None:
            parts.append(str(value))

    walk(fail_key)
    return "/".join(parts)


def _parse_knob(knob: str, stages=("trace", "annotate", "model")):
    """Split ``<benchmark>[:<stage>][:<number>]`` (stage optional)."""
    parts = knob.split(":")
    victim = parts[0]
    stage = None
    number = None
    for part in parts[1:]:
        if part in stages and stage is None:
            stage = part
        else:
            try:
                number = float(part)
            except ValueError:
                pass
    return victim, stage or "trace", number


class Session:
    """Memoizing runner for one input scale.

    Parameters
    ----------
    scale:
        Input scale preset (``tiny``/``small``/``reference``).
    benchmarks:
        Benchmark names to run (defaults to the full 17-name suite).
    verify:
        When True (default), every functional run is checked against
        its Python reference computation before its trace is used.
    cache_dir:
        Optional directory for an on-disk trace cache (defaults to the
        ``REPRO_TRACE_CACHE`` environment variable; unset = no cache).
        Cached traces are checksummed on load and validated
        structurally before use; damaged bundles are quarantined and
        regenerated transparently.
    metrics:
        Observability (see ``docs/observability.md``).  ``None``
        (default) consults ``REPRO_METRICS`` (off unless set truthy);
        ``True`` attaches a fresh :class:`MetricsRegistry`; ``False``
        disables metrics regardless of the environment; an existing
        registry is adopted as-is.  When disabled (``session.metrics``
        is None) every instrumentation point is a single ``is None``
        test, so the session behaves byte-identically to an
        unobserved one.
    """

    def __init__(self, scale: str = "small",
                 benchmarks: Optional[tuple[str, ...]] = None,
                 verify: bool = True,
                 cache_dir: Optional[str] = None,
                 metrics: Union[None, bool, MetricsRegistry] = None,
                 unit_timeout: Optional[float] = None) -> None:
        self.scale = scale
        self.benchmark_names = tuple(
            benchmarks if benchmarks is not None
            else (b.name for b in BENCHMARKS)
        )
        self.verify = verify
        cache_dir = cache_dir or os.environ.get("REPRO_TRACE_CACHE")
        self.cache = TraceCache(cache_dir) if cache_dir else None
        if isinstance(metrics, MetricsRegistry):
            self.metrics: Optional[MetricsRegistry] = metrics
        elif metrics is None:
            self.metrics = MetricsRegistry() \
                if metrics_enabled_from_env() else None
        else:
            self.metrics = MetricsRegistry() if metrics else None
        self._traces: dict = {}
        self._annotated: dict = {}
        self._ppc_runs: dict = {}
        self._alpha_runs: dict = {}
        #: Every BenchmarkFailure recorded so far, in discovery order.
        self.failures: list[BenchmarkFailure] = []
        self._failed: dict = {}
        #: EngineReport of the most recent parallel warm (None = never
        #: warmed / serial).  Set by run_experiments and Session.warm
        #: callers that want the timing summary.
        self.last_warm_report = None
        if unit_timeout is None:
            from repro.harness.parallel import unit_timeout_from_env
            unit_timeout = unit_timeout_from_env()
        #: Watchdog seconds the guard re-arms around oracle retries
        #: after a fast-tier timeout (0 = disarmed).
        self.unit_timeout = float(unit_timeout)
        #: Every TierDemotion recorded so far (this session's own plus
        #: any merged back from parallel workers), in discovery order.
        self.demotions: list = []
        #: Divergence sentinels + degradation ladder (docs/resilience.md).
        self.guard = TierGuard(self)

    # ------------------------------------------------------------------
    def warm(self, jobs: int = 1, units=None, unit_timeout=None):
        """Precompute this session's runs with *jobs* worker processes.

        Shards the workplan (default: every trace/annotate/model run a
        full exhibit pass needs) across a process pool and merges the
        results -- and any :class:`BenchmarkFailure` -- back into this
        session's memos, ordered by benchmark name.  Subsequent exhibit
        runs are pure memo lookups and produce bit-identical output to
        a serial run (see ``docs/parallel.md``).  ``unit_timeout``
        (seconds; default ``REPRO_UNIT_TIMEOUT``) arms the per-unit
        watchdog against hung units.

        ``jobs <= 1`` is a no-op returning None (the lazy serial path).
        Otherwise returns the :class:`~repro.harness.parallel
        .EngineReport` with per-unit timings.
        """
        from repro.harness.parallel import warm_session
        return warm_session(self, jobs, units=units,
                            unit_timeout=unit_timeout)

    # ------------------------------------------------------------------
    def collect_run_counters(self) -> None:
        """Fold this process's trace-cache statistics into the metrics
        run scope.  Call once per process, just before the registry is
        shipped (worker) or persisted (parent): cache hit rates are
        scheduling-dependent, so they belong to the non-deterministic
        run scope, never the per-benchmark one.
        """
        if self.metrics is None or self.cache is None:
            return
        self.metrics.add_run_many("cache/", self.cache.counters.as_dict())

    # ------------------------------------------------------------------
    def _fail(self, name: str, stage: str, target: str, key,
              cause: BaseException) -> BenchmarkFailure:
        """Record one failure and return it for raising."""
        failure = BenchmarkFailure(name, stage, target, cause)
        self._failed[key] = failure
        self.failures.append(failure)
        return failure

    @staticmethod
    def _check_sabotage(name: str, stage: str) -> None:
        """Honour the REPRO_SABOTAGE chaos-testing knob."""
        knob = os.environ.get("REPRO_SABOTAGE")
        if not knob:
            return
        victim, _, victim_stage = knob.partition(":")
        if victim == name and (victim_stage or "trace") == stage:
            raise FaultError(
                f"deliberate sabotage of {name!r} at the {stage} stage "
                f"(REPRO_SABOTAGE={knob})"
            )

    @staticmethod
    def _check_hang(name: str, stage: str) -> None:
        """Honour the REPRO_PARALLEL_HANG chaos knob (watchdog drill)."""
        knob = os.environ.get(HANG_ENV)
        if not knob:
            return
        victim, victim_stage, seconds = _parse_knob(knob)
        if victim == name and victim_stage == stage:
            time.sleep(seconds if seconds is not None else 300.0)

    @staticmethod
    def _check_transient(name: str, stage: str) -> None:
        """Honour the REPRO_TRANSIENT chaos knob (retry drill)."""
        knob = os.environ.get(TRANSIENT_ENV)
        if not knob:
            return
        victim, victim_stage, fails = _parse_knob(knob)
        if victim != name or victim_stage != stage:
            return
        budget = int(fails) if fails is not None else 2
        fired = _TRANSIENT_FIRED.get((name, stage), 0)
        if fired < budget:
            _TRANSIENT_FIRED[(name, stage)] = fired + 1
            raise TransientFaultError(
                f"injected transient fault {fired + 1}/{budget} for "
                f"{name!r} at the {stage} stage (REPRO_TRANSIENT={knob})"
            )

    def _run_stage(self, name: str, stage: str, target: str, fail_key,
                   body: Callable):
        """Execute one stage body with chaos knobs, retry, and failure
        isolation.

        Transient errors (:class:`~repro.errors.RetryableError`) are
        retried with seeded exponential backoff; whatever still escapes
        is recorded as a :class:`BenchmarkFailure` under *fail_key* and
        re-raised, so subsequent requests fail fast via negative
        memoization.
        """

        def attempt():
            self._check_sabotage(name, stage)
            self._check_hang(name, stage)
            self._check_transient(name, stage)
            return body()

        # Seed the jitter per (benchmark, stage) so concurrent workers
        # that collide (e.g. on the cache lock) de-synchronize instead
        # of marching in lockstep -- while staying run-to-run
        # deterministic.
        policy = RetryPolicy.from_env(
            seed=zlib.crc32(f"{name}/{stage}/{target}".encode()))
        span = contextlib.nullcontext() if self.metrics is None \
            else self.metrics.span(name, stage, _span_label(fail_key))
        with span:
            try:
                return call_with_retries(attempt, policy)
            except BenchmarkFailure:
                raise
            except Exception as exc:
                raise self._fail(name, stage, target, fail_key, exc) from exc

    def _store_trace(self, trace: Trace) -> None:
        """Store a fresh trace in the cache, tolerating a full disk.

        The cache is an accelerator only: resource exhaustion while
        persisting (even after the cache's own LRU eviction made room
        and retried) must degrade to "this run just isn't cached", not
        fail the benchmark that already computed a good trace.
        """
        if self.cache is None:
            return
        try:
            self.cache.store(trace, self.scale)
        except ResourceExhaustedError as exc:
            if self.metrics is not None:
                self.metrics.inc_run("cache/store_failures")
            print(f"warning: trace cache store skipped: {exc}",
                  file=sys.stderr)

    def _cached_trace(self, name: str, target: str) -> Optional[Trace]:
        """Checksummed + validated trace from the on-disk cache."""
        if self.cache is None:
            return None
        cached = self.cache.load(name, target, self.scale)
        if cached is None:
            return None
        if validate_trace(cached):
            # Checksums passed but the contents violate trace
            # invariants (e.g. stale semantics): quarantine and
            # regenerate rather than feed a bad trace downstream.
            self.cache.discard(name, target, self.scale)
            return None
        return cached

    # ------------------------------------------------------------------
    def trace(self, name: str, target: str = "ppc") -> Trace:
        """Functional trace of one benchmark on one codegen target."""
        key = (name, target)
        if key in self._traces:
            return self._traces[key]
        fail_key = ("trace", key)
        if fail_key in self._failed:
            raise self._failed[fail_key]

        def body() -> Trace:
            cached = self._cached_trace(name, target)
            if cached is not None:
                return cached
            bench = get_benchmark(name)
            program = bench.build_program(target, self.scale)
            result = self.guard.run_trace(name, target, program)
            if self.verify:
                bench.verify(program, result, self.scale)
            self._store_trace(result.trace)
            return result.trace

        self._traces[key] = self._run_stage(name, "trace", target,
                                            fail_key, body)
        if self.metrics is not None:
            # Derived from the finished trace, so cache hits and fresh
            # simulations record identical values.
            self.metrics.add_many(name, f"sim/{target}/",
                                  sim_counters(self._traces[key]))
        return self._traces[key]

    def annotated(self, name: str, target: str,
                  config: LVPConfig) -> AnnotatedTrace:
        """Trace annotated with one LVP configuration's outcomes."""
        key = (name, target, config.name)
        if key in self._annotated:
            return self._annotated[key]
        fail_key = ("annotate", key)
        if fail_key in self._failed:
            raise self._failed[fail_key]
        trace = self.trace(name, target)
        self._annotated[key] = self._run_stage(
            name, "annotate", target, fail_key,
            lambda: self.guard.run_annotate(name, target, trace, config))
        if self.metrics is not None:
            self.metrics.add_many(
                name, f"lvp/{target}/{config.name}/",
                self._annotated[key].stats.counters())
        return self._annotated[key]

    # ------------------------------------------------------------------
    def ppc_result(self, name: str, machine: PPC620Config = PPC620,
                   lvp: Optional[LVPConfig] = None) -> PPC620Result:
        """620/620+ run of one benchmark (``lvp=None`` = no LVP)."""
        key = (name, machine.name, lvp.name if lvp else None)
        if key in self._ppc_runs:
            return self._ppc_runs[key]
        fail_key = ("model", "ppc", key)
        if fail_key in self._failed:
            raise self._failed[fail_key]
        annotated = self.annotated(name, "ppc", lvp or SIMPLE)
        label = f"{name}/model/ppc/{machine.name}/{lvp.name if lvp else 'base'}"
        self._ppc_runs[key] = self._run_stage(
            name, "model", "ppc", fail_key,
            lambda: self.guard.run_model(
                name, "ppc", label,
                lambda engine: PPC620Model(machine).run(
                    annotated, use_lvp=lvp is not None, engine=engine)))
        if self.metrics is not None:
            self.metrics.add_many(
                name,
                f"model/ppc/{machine.name}/{lvp.name if lvp else 'base'}/",
                self._ppc_runs[key].counters())
        return self._ppc_runs[key]

    def alpha_result(self, name: str,
                     lvp: Optional[LVPConfig] = None,
                     machine: Optional[AXP21164Config] = None,
                     ) -> AXP21164Result:
        """21164 run of one benchmark (``lvp=None`` = no LVP)."""
        machine = machine or AXP21164Config()
        key = (name, machine.name, lvp.name if lvp else None)
        if key in self._alpha_runs:
            return self._alpha_runs[key]
        fail_key = ("model", "alpha", key)
        if fail_key in self._failed:
            raise self._failed[fail_key]
        annotated = self.annotated(name, "alpha", lvp or SIMPLE)
        label = (f"{name}/model/alpha/{machine.name}/"
                 f"{lvp.name if lvp else 'base'}")
        self._alpha_runs[key] = self._run_stage(
            name, "model", "alpha", fail_key,
            lambda: self.guard.run_model(
                name, "alpha", label,
                lambda engine: AXP21164Model(machine).run(
                    annotated, use_lvp=lvp is not None, engine=engine)))
        if self.metrics is not None:
            self.metrics.add_many(
                name,
                f"model/alpha/{machine.name}/{lvp.name if lvp else 'base'}/",
                self._alpha_runs[key].counters())
        return self._alpha_runs[key]

    # ------------------------------------------------------------------
    def ppc_speedup(self, name: str, machine: PPC620Config,
                    lvp: LVPConfig) -> float:
        """Speedup of *lvp* over the no-LVP baseline on *machine*."""
        base = self.ppc_result(name, machine, None)
        with_lvp = self.ppc_result(name, machine, lvp)
        return base.cycles / with_lvp.cycles

    def alpha_speedup(self, name: str, lvp: LVPConfig) -> float:
        """Speedup of *lvp* over the no-LVP baseline on the 21164."""
        base = self.alpha_result(name, None)
        with_lvp = self.alpha_result(name, lvp)
        return base.cycles / with_lvp.cycles
