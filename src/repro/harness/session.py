"""Experiment session: memoized traces, annotations, and model runs.

Every paper exhibit draws on the same underlying runs (trace a
benchmark, annotate it with an LVP configuration, schedule it on a
machine model).  A :class:`Session` memoizes each stage so that, e.g.,
Figure 7's verification-latency histograms reuse the exact runs that
produced Figure 6's speedups -- just as the paper's numbers all come
from one set of simulations.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.harness.cache import TraceCache
from repro.lvp.config import LVPConfig, SIMPLE
from repro.sim.functional import run_program
from repro.trace.annotate import AnnotatedTrace, annotate_trace
from repro.trace.records import Trace
from repro.trace.validate import validate_trace
from repro.uarch.axp21164.config import AXP21164Config
from repro.uarch.axp21164.model import AXP21164Model, AXP21164Result
from repro.uarch.ppc620.config import PPC620, PPC620Config
from repro.uarch.ppc620.model import PPC620Model, PPC620Result
from repro.workloads.suite import BENCHMARKS, get_benchmark


class Session:
    """Memoizing runner for one input scale.

    Parameters
    ----------
    scale:
        Input scale preset (``tiny``/``small``/``reference``).
    benchmarks:
        Benchmark names to run (defaults to the full 17-name suite).
    verify:
        When True (default), every functional run is checked against
        its Python reference computation before its trace is used.
    cache_dir:
        Optional directory for an on-disk trace cache (defaults to the
        ``REPRO_TRACE_CACHE`` environment variable; unset = no cache).
        Cached traces are validated structurally before use.
    """

    def __init__(self, scale: str = "small",
                 benchmarks: Optional[tuple[str, ...]] = None,
                 verify: bool = True,
                 cache_dir: Optional[str] = None) -> None:
        self.scale = scale
        self.benchmark_names = tuple(
            benchmarks if benchmarks is not None
            else (b.name for b in BENCHMARKS)
        )
        self.verify = verify
        cache_dir = cache_dir or os.environ.get("REPRO_TRACE_CACHE")
        self.cache = TraceCache(cache_dir) if cache_dir else None
        self._traces: dict = {}
        self._annotated: dict = {}
        self._ppc_runs: dict = {}
        self._alpha_runs: dict = {}

    # ------------------------------------------------------------------
    def trace(self, name: str, target: str = "ppc") -> Trace:
        """Functional trace of one benchmark on one codegen target."""
        key = (name, target)
        if key not in self._traces:
            cached = (self.cache.load(name, target, self.scale)
                      if self.cache else None)
            if cached is not None and not validate_trace(cached):
                self._traces[key] = cached
                return cached
            bench = get_benchmark(name)
            program = bench.build_program(target, self.scale)
            result = run_program(program, name=name, target=target)
            if self.verify:
                bench.verify(program, result, self.scale)
            if self.cache is not None:
                self.cache.store(result.trace, self.scale)
            self._traces[key] = result.trace
        return self._traces[key]

    def annotated(self, name: str, target: str,
                  config: LVPConfig) -> AnnotatedTrace:
        """Trace annotated with one LVP configuration's outcomes."""
        key = (name, target, config.name)
        if key not in self._annotated:
            self._annotated[key] = annotate_trace(
                self.trace(name, target), config
            )
        return self._annotated[key]

    # ------------------------------------------------------------------
    def ppc_result(self, name: str, machine: PPC620Config = PPC620,
                   lvp: Optional[LVPConfig] = None) -> PPC620Result:
        """620/620+ run of one benchmark (``lvp=None`` = no LVP)."""
        key = (name, machine.name, lvp.name if lvp else None)
        if key not in self._ppc_runs:
            annotated = self.annotated(name, "ppc", lvp or SIMPLE)
            model = PPC620Model(machine)
            self._ppc_runs[key] = model.run(annotated,
                                            use_lvp=lvp is not None)
        return self._ppc_runs[key]

    def alpha_result(self, name: str,
                     lvp: Optional[LVPConfig] = None,
                     machine: Optional[AXP21164Config] = None,
                     ) -> AXP21164Result:
        """21164 run of one benchmark (``lvp=None`` = no LVP)."""
        machine = machine or AXP21164Config()
        key = (name, machine.name, lvp.name if lvp else None)
        if key not in self._alpha_runs:
            annotated = self.annotated(name, "alpha", lvp or SIMPLE)
            model = AXP21164Model(machine)
            self._alpha_runs[key] = model.run(annotated,
                                              use_lvp=lvp is not None)
        return self._alpha_runs[key]

    # ------------------------------------------------------------------
    def ppc_speedup(self, name: str, machine: PPC620Config,
                    lvp: LVPConfig) -> float:
        """Speedup of *lvp* over the no-LVP baseline on *machine*."""
        base = self.ppc_result(name, machine, None)
        with_lvp = self.ppc_result(name, machine, lvp)
        return base.cycles / with_lvp.cycles

    def alpha_speedup(self, name: str, lvp: LVPConfig) -> float:
        """Speedup of *lvp* over the no-LVP baseline on the 21164."""
        base = self.alpha_result(name, None)
        with_lvp = self.alpha_result(name, lvp)
        return base.cycles / with_lvp.cycles
