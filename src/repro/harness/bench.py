"""The tracked performance harness: ``repro bench`` (docs/performance.md).

Times every pipeline phase -- trace generation, trace-cache load, LVP
annotation, timing model -- once per engine (the slow reference path
and the tiered fast path), per benchmark, serially, and optionally a
cold end-to-end ``experiment all`` pass per engine tier.  The ``load``
phase measures warm cache reads: the slow side decompresses a legacy
v1 ``.npz`` bundle, the fast side memory-maps a v2 ``.rtc`` bundle
zero-copy (docs/cache.md).  The measurements are written
as a schema-validated ``BENCH_PERF.json`` so that perf claims are a
committed, diffable artifact instead of folklore, and later runs can be
compared against the committed baseline with a generous threshold
(``repro bench --check``; CI's perf-smoke job fails only on >2x
regressions).

Wall-clock phase attribution for the end-to-end pass reuses the
:mod:`repro.obs` span machinery: the benched session runs with a
:class:`~repro.obs.metrics.MetricsRegistry` attached and the document's
``e2e.phases`` section is that registry's summed span seconds.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time
from contextlib import contextmanager
from typing import Iterable, Mapping, Optional

from repro.lvp.config import SIMPLE
from repro.sim.functional import run_program
from repro.trace.annotate import annotate_trace
from repro.uarch.ppc620.config import PPC620
from repro.uarch.ppc620.model import PPC620Model
from repro.workloads.suite import BENCHMARKS, get_benchmark

#: Document format identifier (bump on incompatible layout changes).
#: v2 added the ``load`` phase (warm cache reads, v1 npz vs v2 mmap).
BENCH_SCHEMA_ID = "repro.bench/v2"

#: The committed baseline at the repository root.
BENCH_FILENAME = "BENCH_PERF.json"

#: Default regression gate: fail only when a fast-path phase total is
#: more than this many times slower than the committed baseline.
DEFAULT_THRESHOLD = 2.0

#: The benched phases, in pipeline order (``load`` is the warm
#: trace-cache read that replaces re-simulation on a cache hit).
PHASES = ("trace", "load", "annotate", "model")

#: CI's perf-smoke subset: two integer workloads and one FP workload.
QUICK_BENCHMARKS = ("compress", "eqntott", "tomcatv")

_ENGINE_ENVS = ("REPRO_ENGINE", "REPRO_ANNOTATE_KERNEL",
                "REPRO_MODEL_ENGINE")

#: Environment overrides pinning every tier to its slow reference path.
LEGACY_ENV = {"REPRO_ENGINE": "interp",
              "REPRO_ANNOTATE_KERNEL": "general",
              "REPRO_MODEL_ENGINE": "reference"}

#: Environment overrides pinning every tier to its fast path.  The
#: annotate knob is ``auto``, not ``vector``: exhibits also annotate
#: configs the fast kernels cannot take (deep history, perfect,
#: stride, gshare), and ``auto`` steps down the vector -> mono ->
#: general ladder there while forcing ``vector`` would refuse.
TIERED_ENV = {"REPRO_ENGINE": "compiled",
              "REPRO_ANNOTATE_KERNEL": "auto",
              "REPRO_MODEL_ENGINE": "fast"}


@contextmanager
def _engines(overrides: Mapping[str, str]):
    """Temporarily pin the engine-selection environment knobs."""
    saved = {name: os.environ.get(name) for name in _ENGINE_ENVS}
    os.environ.update(overrides)
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _speedup(slow: float, fast: float) -> float:
    return slow / fast if fast > 0 else 0.0


def _bench_load(trace, scale: str) -> tuple[float, float]:
    """Warm cache-load seconds for one trace: (v1 npz, v2 mmap).

    Each format gets its own temp directory (``load`` always resolves
    ``.rtc`` first, and a v2 store unlinks its npz sibling) and an
    untimed warm-up read so both timed loads see a hot page cache and
    pre-imported codepaths -- the steady state a cache hit actually
    runs in.
    """
    import tempfile
    from repro.harness.cache import TraceCache, write_v1_bundle

    with tempfile.TemporaryDirectory(prefix="repro-bench-load-") as tdir:
        v2_dir = pathlib.Path(tdir) / "v2"
        v1_dir = pathlib.Path(tdir) / "v1"
        v2_dir.mkdir()
        v1_dir.mkdir()
        v2_cache = TraceCache(v2_dir)
        v2_cache.store(trace, scale)
        v1_cache = TraceCache(v1_dir)
        write_v1_bundle(
            v1_cache.legacy_path(trace.name, trace.target, scale),
            trace, v1_cache.version)
        key = (trace.name, trace.target, scale)
        assert v1_cache.load(*key) is not None  # warm-up, untimed
        assert v2_cache.load(*key) is not None
        t0 = time.perf_counter()
        v1_cache.load(*key)
        slow = time.perf_counter() - t0
        t0 = time.perf_counter()
        v2_cache.load(*key)
        fast = time.perf_counter() - t0
    return slow, fast


def bench_phases(benchmarks: Optional[Iterable[str]] = None,
                 scale: str = "small", trials: int = 1,
                 progress=None) -> dict:
    """Per-benchmark cold phase timings for both engine tiers.

    Each trial rebuilds the program from scratch so the compiled
    engine's timing includes its ahead-of-time compile (the honest
    cold-start cost).  With ``trials > 1`` the minimum is kept, the
    conventional low-noise estimator.  *progress*, if given, is called
    with one line per finished benchmark.
    """
    names = list(benchmarks) if benchmarks is not None \
        else [b.name for b in BENCHMARKS]
    results: dict[str, dict] = {}
    for name in names:
        bench = get_benchmark(name)
        times = {phase: {"slow": [], "fast": []} for phase in PHASES}
        for _ in range(max(1, trials)):
            # Trace: fresh Program per engine so both starts are cold.
            program = bench.build_program("ppc", scale)
            t0 = time.perf_counter()
            run_program(program, name=name, engine="interp")
            times["trace"]["slow"].append(time.perf_counter() - t0)

            program = bench.build_program("ppc", scale)
            t0 = time.perf_counter()
            result = run_program(program, name=name, engine="compiled")
            times["trace"]["fast"].append(time.perf_counter() - t0)
            trace = result.trace

            slow_load, fast_load = _bench_load(trace, scale)
            times["load"]["slow"].append(slow_load)
            times["load"]["fast"].append(fast_load)

            t0 = time.perf_counter()
            annotate_trace(trace, SIMPLE, kernel="general")
            times["annotate"]["slow"].append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            annotated = annotate_trace(trace, SIMPLE, kernel="vector")
            times["annotate"]["fast"].append(time.perf_counter() - t0)

            model = PPC620Model(PPC620)
            t0 = time.perf_counter()
            model.run(annotated, engine="reference")
            times["model"]["slow"].append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            model.run(annotated, engine="fast")
            times["model"]["fast"].append(time.perf_counter() - t0)

        record = {}
        for phase in PHASES:
            slow = min(times[phase]["slow"])
            fast = min(times[phase]["fast"])
            record[phase] = {
                "slow_s": round(slow, 6),
                "fast_s": round(fast, 6),
                "speedup": round(_speedup(slow, fast), 3),
            }
        results[name] = record
        if progress is not None:
            progress(f"  {name:10s} "
                     + "  ".join(f"{phase} {record[phase]['speedup']:5.2f}x"
                                 for phase in PHASES))
    return results


def _experiment_texts(scale: str,
                      benchmarks: Optional[tuple[str, ...]]) -> tuple:
    """One cold serial ``experiment all``; returns (seconds, stdout
    text, obs phase totals)."""
    from repro.harness.experiments import EXPERIMENTS, run_experiments
    from repro.harness.session import Session

    session = Session(scale=scale, benchmarks=benchmarks, metrics=True)
    t0 = time.perf_counter()
    results = run_experiments(list(EXPERIMENTS), session, jobs=1)
    seconds = time.perf_counter() - t0
    text = "\n\n".join(result.text for result in results)
    phases: dict[str, float] = {}
    for scope in session.metrics.phase_seconds().values():
        for phase, value in scope.items():
            phases[phase] = phases.get(phase, 0.0) + value
    return seconds, text, {k: round(v, 6) for k, v in sorted(phases.items())}


def bench_e2e(scale: str = "small",
              benchmarks: Optional[tuple[str, ...]] = None) -> dict:
    """Cold serial ``experiment all`` under each engine tier.

    Runs the full exhibit pass twice -- every tier pinned to its slow
    reference path, then to its fast path -- and also checks the two
    passes rendered byte-identical exhibit text (the tiered engine's
    core promise).
    """
    with _engines(LEGACY_ENV):
        slow_s, slow_text, slow_phases = _experiment_texts(scale, benchmarks)
    with _engines(TIERED_ENV):
        fast_s, fast_text, fast_phases = _experiment_texts(scale, benchmarks)
    return {
        "legacy_s": round(slow_s, 6),
        "tiered_s": round(fast_s, 6),
        "speedup": round(_speedup(slow_s, fast_s), 3),
        "identical_exhibits": slow_text == fast_text,
        "legacy_phases": slow_phases,
        "tiered_phases": fast_phases,
    }


def _totals(per_benchmark: Mapping[str, Mapping]) -> dict:
    totals: dict[str, dict] = {}
    for phase in PHASES:
        slow = sum(rec[phase]["slow_s"] for rec in per_benchmark.values())
        fast = sum(rec[phase]["fast_s"] for rec in per_benchmark.values())
        totals[phase] = {
            "slow_s": round(slow, 6),
            "fast_s": round(fast, 6),
            "speedup": round(_speedup(slow, fast), 3),
        }
    return totals


def run_bench(benchmarks: Optional[Iterable[str]] = None,
              scale: str = "small", trials: int = 1, e2e: bool = True,
              progress=None) -> dict:
    """Measure everything and assemble the ``BENCH_PERF.json`` document."""
    per_benchmark = bench_phases(benchmarks, scale=scale, trials=trials,
                                 progress=progress)
    document = {
        "schema": BENCH_SCHEMA_ID,
        "scale": scale,
        "trials": max(1, trials),
        "benchmarks": per_benchmark,
        "totals": _totals(per_benchmark),
        "e2e": None,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    if e2e:
        names = tuple(per_benchmark) if benchmarks is not None else None
        document["e2e"] = bench_e2e(scale=scale, benchmarks=names)
    return document


# ---------------------------------------------------------------------------
# Schema validation and baseline comparison
# ---------------------------------------------------------------------------

def validate_bench(document) -> list[str]:
    """Structural validation of a bench document; returns error strings."""
    errors: list[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("schema") != BENCH_SCHEMA_ID:
        errors.append(
            f"schema is {document.get('schema')!r}, "
            f"expected {BENCH_SCHEMA_ID!r}")
    if not isinstance(document.get("scale"), str):
        errors.append("scale must be a string")
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        errors.append("benchmarks must be a non-empty object")
        benchmarks = {}
    for name, record in benchmarks.items():
        for phase in PHASES:
            entry = record.get(phase) if isinstance(record, dict) else None
            if not isinstance(entry, dict):
                errors.append(f"benchmarks.{name}.{phase} missing")
                continue
            for field in ("slow_s", "fast_s", "speedup"):
                value = entry.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(
                        f"benchmarks.{name}.{phase}.{field} must be a "
                        "non-negative number")
    totals = document.get("totals")
    if not isinstance(totals, dict):
        errors.append("totals must be an object")
    else:
        for phase in PHASES:
            if phase not in totals:
                errors.append(f"totals.{phase} missing")
    e2e = document.get("e2e")
    if e2e is not None:
        if not isinstance(e2e, dict):
            errors.append("e2e must be an object or null")
        else:
            for field in ("legacy_s", "tiered_s", "speedup"):
                value = e2e.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(
                        f"e2e.{field} must be a non-negative number")
    return errors


def compare_bench(current: Mapping, baseline: Mapping,
                  threshold: float = DEFAULT_THRESHOLD,
                  noise_floor: float = 0.1) -> list[str]:
    """Regressions of *current* against *baseline*; returns messages.

    The gate is deliberately generous -- fail only when a fast-path
    time is more than ``threshold`` times slower than the committed
    baseline AND more than ``noise_floor`` seconds slower in absolute
    terms -- so that machine-to-machine noise never trips it; only a
    real loss of the tiered engines would.  Per-benchmark times are
    compared over the benchmarks both documents measured; the totals
    and end-to-end times are compared only when both measured the same
    benchmark set (CI's quick subset vs the full committed baseline
    would otherwise be meaningless).
    """
    def regressed(base, now):
        return (base and now is not None and now > base * threshold
                and now - base > noise_floor)

    regressions: list[str] = []
    base_benchmarks = baseline.get("benchmarks", {})
    now_benchmarks = current.get("benchmarks", {})
    for name in sorted(set(base_benchmarks) & set(now_benchmarks)):
        for phase in PHASES:
            base = base_benchmarks[name].get(phase, {}).get("fast_s")
            now = now_benchmarks[name].get(phase, {}).get("fast_s")
            if regressed(base, now):
                regressions.append(
                    f"{name}/{phase}: fast path took {now:.3f}s vs "
                    f"baseline {base:.3f}s (> {threshold:g}x)")
    if set(base_benchmarks) == set(now_benchmarks):
        for phase in PHASES:
            base = baseline.get("totals", {}).get(phase, {}).get("fast_s")
            now = current.get("totals", {}).get(phase, {}).get("fast_s")
            if regressed(base, now):
                regressions.append(
                    f"{phase}: fast-path total took {now:.3f}s vs "
                    f"baseline {base:.3f}s (> {threshold:g}x)")
        base_e2e = (baseline.get("e2e") or {}).get("tiered_s")
        now_e2e = (current.get("e2e") or {}).get("tiered_s")
        if regressed(base_e2e, now_e2e):
            regressions.append(
                f"e2e: tiered pass took {now_e2e:.3f}s vs baseline "
                f"{base_e2e:.3f}s (> {threshold:g}x)")
    return regressions


def render_bench(document: Mapping) -> str:
    """Human-readable summary of a bench document."""
    lines = [f"repro bench (scale={document['scale']}, "
             f"trials={document['trials']})"]
    lines.append(f"  {'benchmark':10s} "
                 + "  ".join(f"{phase:>14s}" for phase in PHASES))
    for name, record in document["benchmarks"].items():
        cells = []
        for phase in PHASES:
            entry = record[phase]
            cells.append(f"{entry['fast_s']:7.3f}s {entry['speedup']:4.1f}x")
        lines.append(f"  {name:10s} " + "  ".join(cells))
    totals = document["totals"]
    cells = []
    for phase in PHASES:
        entry = totals[phase]
        cells.append(f"{entry['fast_s']:7.3f}s {entry['speedup']:4.1f}x")
    lines.append(f"  {'TOTAL':10s} " + "  ".join(cells))
    e2e = document.get("e2e")
    if e2e:
        identical = "byte-identical" if e2e.get("identical_exhibits") \
            else "DIFFERENT (bug!)"
        lines.append(
            f"  experiment all: {e2e['legacy_s']:.1f}s legacy -> "
            f"{e2e['tiered_s']:.1f}s tiered ({e2e['speedup']:.2f}x, "
            f"exhibits {identical})")
    return "\n".join(lines)


def write_bench(document: Mapping, path) -> pathlib.Path:
    """Atomically write a bench document as JSON."""
    path = pathlib.Path(path)
    temporary = path.with_suffix(path.suffix + ".tmp")
    temporary.write_text(json.dumps(document, indent=2, sort_keys=True)
                         + "\n")
    temporary.replace(path)
    return path


def load_bench(path) -> dict:
    """Read a bench document (OSError if missing, ValueError on damage)."""
    return json.loads(pathlib.Path(path).read_text())
