"""Experiment registry: one entry per paper table/figure.

Each ``run_*`` function reproduces one exhibit of the paper's
evaluation and returns an :class:`ExperimentResult` whose ``data``
holds the raw numbers and whose ``text`` prints the same rows/series
the paper reports.  ``EXPERIMENTS`` maps exhibit ids (``fig1``,
``tab3``, ...) to their runners; ``run_experiment`` dispatches by id.

Runners degrade gracefully: a benchmark that fails at any stage (its
:class:`~repro.errors.BenchmarkFailure` is recorded by the session) is
dropped from that exhibit and footnoted in the rendered text instead
of aborting the run, so ``experiment all`` always produces every
exhibit it can.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import BenchmarkFailure
from repro.isa.opcodes import ValueKind
from repro.lvp.config import CONSTANT, LIMIT, PERFECT, SIMPLE
from repro.lvp.locality import measure_locality_by_kind, measure_value_locality
from repro.analysis.reference import render_table2, render_table5
from repro.analysis.report import (
    TextTable,
    format_percent,
    format_speedup,
    geometric_mean,
)
from repro.harness.session import Session
from repro.trace.stats import compute_stats
from repro.uarch.ppc620.config import PPC620, PPC620_PLUS
from repro.uarch.ppc620.model import FU_NAMES, VERIFY_BUCKETS
from repro.workloads.suite import get_benchmark


@dataclass
class ExperimentResult:
    """One reproduced exhibit: id, title, raw data, rendered text.

    ``failures`` lists the benchmarks omitted from this exhibit (the
    rendered text carries matching footnotes).
    """

    exp_id: str
    title: str
    data: dict
    text: str
    failures: tuple = field(default=())


# ---------------------------------------------------------------------------
# Failure isolation helpers.
# ---------------------------------------------------------------------------
def _per_benchmark(session: Session, fn):
    """Run ``fn(name)`` per benchmark, isolating failures.

    Returns ``(rows, failures)``: *rows* maps each succeeding
    benchmark to ``fn``'s result, in suite order; *failures* collects
    the :class:`BenchmarkFailure` of each benchmark that did not.
    """
    rows: dict = {}
    failures: list[BenchmarkFailure] = []
    for name in session.benchmark_names:
        try:
            rows[name] = fn(name)
        except BenchmarkFailure as failure:
            failures.append(failure)
    return rows, failures


def _footnotes(failures) -> str:
    """Footnote block naming each omitted benchmark (empty if none)."""
    if not failures:
        return ""
    lines = ["", "Footnotes:"]
    for failure in failures:
        cause = f"{type(failure.cause).__name__}: {failure.cause}"
        if len(cause) > 72:
            cause = cause[:69] + "..."
        lines.append(f"  + {failure.benchmark} [{failure.target}] "
                     f"omitted -- {failure.stage} stage failed ({cause})")
    return "\n" + "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 1: benchmark descriptions and dynamic instruction counts.
# ---------------------------------------------------------------------------
def run_tab1(session: Session) -> ExperimentResult:
    """Reproduce Table 1 (benchmark suite summary)."""

    def fn(name):
        stats_p = compute_stats(session.trace(name, "ppc"))
        stats_a = compute_stats(session.trace(name, "alpha"))
        return {
            "ppc_instructions": stats_p.instructions,
            "alpha_instructions": stats_a.instructions,
            "ppc_loads": stats_p.loads,
            "alpha_loads": stats_a.loads,
        }

    data, failures = _per_benchmark(session, fn)
    table = TextTable(
        ["benchmark", "description", "instrs (PPC)", "instrs (Alpha)",
         "paper PPC", "paper Alpha"],
        title="Table 1: Benchmark Descriptions",
    )
    for name, row in data.items():
        bench = get_benchmark(name)
        table.add_row([
            name, bench.description, row["ppc_instructions"],
            row["alpha_instructions"],
            bench.paper_instructions.get("ppc", "-"),
            bench.paper_instructions.get("alpha", "-"),
        ])
    return ExperimentResult("tab1", "Benchmark Descriptions", data,
                            table.render() + _footnotes(failures),
                            tuple(failures))


# ---------------------------------------------------------------------------
# Tables 2 and 5: configuration tables (no simulation; rendered from the
# live configuration objects so they cannot drift from the code).
# ---------------------------------------------------------------------------
def run_tab2(session: Session) -> ExperimentResult:
    """Reproduce Table 2 (LVP unit configurations)."""
    text = render_table2()
    return ExperimentResult("tab2", "LVP Unit Configurations",
                            {"text": text}, text)


def run_tab5(session: Session) -> ExperimentResult:
    """Reproduce Table 5 (instruction latencies)."""
    text = render_table5()
    return ExperimentResult("tab5", "Instruction Latencies",
                            {"text": text}, text)


# ---------------------------------------------------------------------------
# Figure 1: load value locality per benchmark, depth 1 and 16.
# ---------------------------------------------------------------------------
def run_fig1(session: Session) -> ExperimentResult:
    """Reproduce Figure 1 (value locality, Alpha and PowerPC)."""

    def fn(name):
        per_target = {}
        for target in ("alpha", "ppc"):
            trace = session.trace(name, target)
            per_target[target] = (
                measure_value_locality(trace, depth=1).percent,
                measure_value_locality(trace, depth=16).percent,
            )
        return per_target

    rows, failures = _per_benchmark(session, fn)
    data: dict = {"alpha": {}, "ppc": {}}
    for name, per_target in rows.items():
        for target in ("alpha", "ppc"):
            data[target][name] = per_target[target]
    lines = []
    for target, label in (("alpha", "Alpha AXP"), ("ppc", "PowerPC")):
        table = TextTable(["benchmark", "depth 1", "depth 16"],
                          title=f"Figure 1: Load Value Locality ({label})")
        for name, (d1, d16) in data[target].items():
            table.add_row([name, f"{d1:.1f}%", f"{d16:.1f}%"])
        lines.append(table.render())
    return ExperimentResult("fig1", "Load Value Locality", data,
                            "\n\n".join(lines) + _footnotes(failures),
                            tuple(failures))


# ---------------------------------------------------------------------------
# Figure 2: PowerPC value locality by data type.
# ---------------------------------------------------------------------------
_KIND_LABELS = {
    ValueKind.FP_DATA: "FP Data",
    ValueKind.INT_DATA: "Integer Data",
    ValueKind.INSTR_ADDR: "Instruction Addresses",
    ValueKind.DATA_ADDR: "Data Addresses",
}


def run_fig2(session: Session) -> ExperimentResult:
    """Reproduce Figure 2 (PowerPC value locality by data type)."""

    def fn(name):
        trace = session.trace(name, "ppc")
        by_kind_1 = measure_locality_by_kind(trace, depth=1)
        by_kind_16 = measure_locality_by_kind(trace, depth=16)
        return {
            kind.name: (by_kind_1[kind].percent, by_kind_16[kind].percent,
                        by_kind_1[kind].total_loads)
            for kind in ValueKind
        }

    rows, failures = _per_benchmark(session, fn)
    data: dict = {kind.name: {} for kind in ValueKind}
    for name, per_kind in rows.items():
        for kind in ValueKind:
            data[kind.name][name] = per_kind[kind.name]
    lines = []
    for kind in (ValueKind.FP_DATA, ValueKind.INT_DATA,
                 ValueKind.INSTR_ADDR, ValueKind.DATA_ADDR):
        table = TextTable(
            ["benchmark", "depth 1", "depth 16", "loads"],
            title=f"Figure 2: PowerPC Value Locality - {_KIND_LABELS[kind]}",
        )
        for name, (d1, d16, loads) in data[kind.name].items():
            table.add_row([
                name,
                f"{d1:.1f}%" if loads else "-",
                f"{d16:.1f}%" if loads else "-",
                loads,
            ])
        lines.append(table.render())
    return ExperimentResult("fig2", "Value Locality by Data Type", data,
                            "\n\n".join(lines) + _footnotes(failures),
                            tuple(failures))


# ---------------------------------------------------------------------------
# Table 3: LCT hit rates.
# ---------------------------------------------------------------------------
def run_tab3(session: Session) -> ExperimentResult:
    """Reproduce Table 3 (LCT classification hit rates)."""
    combos = (
        ("ppc", SIMPLE), ("ppc", LIMIT), ("alpha", SIMPLE), ("alpha", LIMIT),
    )

    def fn(name):
        per_combo = {}
        for target, config in combos:
            stats = session.annotated(name, target, config).stats
            per_combo[f"{target}/{config.name}"] = (
                stats.unpredictable_identified,
                stats.predictable_identified,
            )
        return per_combo

    data, failures = _per_benchmark(session, fn)
    table = TextTable(
        ["benchmark",
         "PPC/S unpred", "PPC/S pred", "PPC/L unpred", "PPC/L pred",
         "AXP/S unpred", "AXP/S pred", "AXP/L unpred", "AXP/L pred"],
        title="Table 3: LCT Hit Rates",
    )
    per_column: dict = {combo: ([], []) for combo in combos}
    for name, per_combo in data.items():
        row = [name]
        for target, config in combos:
            unpred, pred = per_combo[f"{target}/{config.name}"]
            per_column[(target, config)][0].append(unpred)
            per_column[(target, config)][1].append(pred)
            row.extend([format_percent(unpred, 0), format_percent(pred, 0)])
        table.add_row(row)
    if data:
        table.add_separator()
        gm_row = ["GM"]
        for combo in combos:
            unpreds, preds = per_column[combo]
            gm_row.extend([
                format_percent(geometric_mean(unpreds), 0),
                format_percent(geometric_mean(preds), 0),
            ])
        table.add_row(gm_row)
    return ExperimentResult("tab3", "LCT Hit Rates", data,
                            table.render() + _footnotes(failures),
                            tuple(failures))


# ---------------------------------------------------------------------------
# Table 4: constant identification rates.
# ---------------------------------------------------------------------------
def run_tab4(session: Session) -> ExperimentResult:
    """Reproduce Table 4 (constant loads as a share of dynamic loads)."""
    combos = (
        ("ppc", SIMPLE), ("ppc", CONSTANT),
        ("alpha", SIMPLE), ("alpha", CONSTANT),
    )

    def fn(name):
        return {
            f"{target}/{config.name}":
                session.annotated(name, target, config).stats.constant_fraction
            for target, config in combos
        }

    data, failures = _per_benchmark(session, fn)
    table = TextTable(
        ["benchmark", "PPC Simple", "PPC Constant",
         "AXP Simple", "AXP Constant"],
        title="Table 4: Successful Constant Identification Rates",
    )
    for name, per_combo in data.items():
        table.add_row([name] + [
            format_percent(per_combo[f"{target}/{config.name}"], 0)
            for target, config in combos
        ])
    return ExperimentResult("tab4", "Constant Identification Rates", data,
                            table.render() + _footnotes(failures),
                            tuple(failures))


# ---------------------------------------------------------------------------
# Figure 6: base machine model speedups.
# ---------------------------------------------------------------------------
def run_fig6(session: Session) -> ExperimentResult:
    """Reproduce Figure 6 (speedups on the base 620 and 21164)."""
    ppc_configs = (SIMPLE, CONSTANT, LIMIT, PERFECT)
    alpha_configs = (SIMPLE, LIMIT, PERFECT)

    def fn(name):
        return {
            "620": {config.name: session.ppc_speedup(name, PPC620, config)
                    for config in ppc_configs},
            "21164": {config.name: session.alpha_speedup(name, config)
                      for config in alpha_configs},
        }

    rows, failures = _per_benchmark(session, fn)
    data: dict = {
        "620": {c.name: {} for c in ppc_configs},
        "21164": {c.name: {} for c in alpha_configs},
    }
    for name, per_machine in rows.items():
        for machine, per_config in per_machine.items():
            for config_name, speedup in per_config.items():
                data[machine][config_name][name] = speedup
    lines = []
    for machine, configs in (("21164", alpha_configs),
                             ("620", ppc_configs)):
        label = ("Alpha AXP 21164" if machine == "21164"
                 else "PowerPC 620")
        table = TextTable(
            ["benchmark"] + [c.name for c in configs],
            title=f"Figure 6: Base Machine Model Speedups ({label})",
        )
        for name in rows:
            table.add_row([name] + [
                format_speedup(data[machine][c.name][name]) for c in configs
            ])
        if rows:
            table.add_separator()
            table.add_row(["GM"] + [
                format_speedup(geometric_mean(data[machine][c.name].values()))
                for c in configs
            ])
        lines.append(table.render())
    return ExperimentResult("fig6", "Base Machine Model Speedups", data,
                            "\n\n".join(lines) + _footnotes(failures),
                            tuple(failures))


# ---------------------------------------------------------------------------
# Table 6: 620+ speedups.
# ---------------------------------------------------------------------------
def run_tab6(session: Session) -> ExperimentResult:
    """Reproduce Table 6 (620+ and additional LVP speedups)."""
    configs = (SIMPLE, CONSTANT, LIMIT, PERFECT)

    def fn(name):
        base_620 = session.ppc_result(name, PPC620, None)
        base_plus = session.ppc_result(name, PPC620_PLUS, None)
        row = {"620+": base_620.cycles / base_plus.cycles,
               "instructions": base_620.instructions}
        for config in configs:
            row[config.name] = session.ppc_speedup(name, PPC620_PLUS, config)
        return row

    data, failures = _per_benchmark(session, fn)
    table = TextTable(
        ["benchmark", "instructions", "620+",
         "Simple", "Constant", "Limit", "Perfect"],
        title="Table 6: PowerPC 620+ Speedups",
    )
    keys = ("620+",) + tuple(c.name for c in configs)
    columns: dict = {key: [] for key in keys}
    for name, row in data.items():
        for key in keys:
            columns[key].append(row[key])
        table.add_row([name, row["instructions"],
                       format_speedup(row["620+"])] +
                      [format_speedup(row[c.name]) for c in configs])
    if data:
        table.add_separator()
        table.add_row(["GM", ""] + [
            format_speedup(geometric_mean(columns[key])) for key in keys
        ])
        data["GM"] = {key: geometric_mean(columns[key]) for key in columns}
    return ExperimentResult("tab6", "PowerPC 620+ Speedups", data,
                            table.render() + _footnotes(failures),
                            tuple(failures))


# ---------------------------------------------------------------------------
# Figure 7: load verification latency distribution.
# ---------------------------------------------------------------------------
def run_fig7(session: Session) -> ExperimentResult:
    """Reproduce Figure 7 (verification-latency distributions)."""
    configs = (SIMPLE, CONSTANT, LIMIT, PERFECT)
    machines = (PPC620, PPC620_PLUS)

    def fn(name):
        return {
            machine.name: {
                config.name:
                    session.ppc_result(name, machine, config).verify_histogram
                for config in configs
            }
            for machine in machines
        }

    rows, failures = _per_benchmark(session, fn)
    data: dict = {}
    lines = []
    for machine in machines:
        table = TextTable(
            ["latency"] + [c.name for c in configs],
            title=f"Figure 7: Load Verification Latency ({machine.name})",
        )
        histograms = {}
        for config in configs:
            total_hist = {bucket: 0 for bucket in VERIFY_BUCKETS}
            for per_machine in rows.values():
                for bucket, count in \
                        per_machine[machine.name][config.name].items():
                    total_hist[bucket] += count
            total = sum(total_hist.values()) or 1
            histograms[config.name] = {
                bucket: count / total for bucket, count in total_hist.items()
            }
        data[machine.name] = histograms
        for bucket in VERIFY_BUCKETS:
            table.add_row([bucket] + [
                format_percent(histograms[c.name][bucket])
                for c in configs
            ])
        lines.append(table.render())
    return ExperimentResult("fig7", "Load Verification Latency Distribution",
                            data, "\n\n".join(lines) + _footnotes(failures),
                            tuple(failures))


# ---------------------------------------------------------------------------
# Figure 8: data dependency resolution latencies.
# ---------------------------------------------------------------------------
def run_fig8(session: Session) -> ExperimentResult:
    """Reproduce Figure 8 (average RS operand-wait time by FU type,
    normalized to the no-LVP baseline)."""
    configs = (SIMPLE, CONSTANT, LIMIT, PERFECT)
    machines = (PPC620, PPC620_PLUS)

    def fn(name):
        per_machine = {}
        for machine in machines:
            waits = {"base": session.ppc_result(name, machine, None).fu_wait}
            for config in configs:
                waits[config.name] = \
                    session.ppc_result(name, machine, config).fu_wait
            per_machine[machine.name] = waits
        return per_machine

    rows, failures = _per_benchmark(session, fn)
    data: dict = {}
    lines = []
    for machine in machines:
        def _mean_waits(variant):
            per_fu = {fu: [0, 0] for fu in FU_NAMES}
            for per_machine in rows.values():
                for fu in FU_NAMES:
                    total, count = per_machine[machine.name][variant][fu]
                    per_fu[fu][0] += total
                    per_fu[fu][1] += count
            return per_fu

        base_sums = _mean_waits("base")
        baseline = {
            fu: (sums[0] / sums[1] if sums[1] else 0.0)
            for fu, sums in base_sums.items()
        }
        normalized: dict = {}
        for config in configs:
            per_fu = _mean_waits(config.name)
            normalized[config.name] = {
                fu: ((sums[0] / sums[1]) / baseline[fu]
                     if sums[1] and baseline[fu] else 1.0)
                for fu, sums in per_fu.items()
            }
        data[machine.name] = {"baseline": baseline, **normalized}
        table = TextTable(
            ["FU type", "base (cycles)"] + [c.name for c in configs],
            title=("Figure 8: Normalized RS Operand Wait Time "
                   f"({machine.name})"),
        )
        for fu in FU_NAMES:
            table.add_row(
                [fu, f"{baseline[fu]:.2f}"]
                + [format_percent(normalized[c.name][fu], 0)
                   for c in configs]
            )
        lines.append(table.render())
    return ExperimentResult("fig8", "Data Dependency Resolution Latencies",
                            data, "\n\n".join(lines) + _footnotes(failures),
                            tuple(failures))


# ---------------------------------------------------------------------------
# Figure 9: bank conflicts.
# ---------------------------------------------------------------------------
def run_fig9(session: Session) -> ExperimentResult:
    """Reproduce Figure 9 (fraction of cycles with bank conflicts)."""
    variants = (("base", None), ("Simple", SIMPLE), ("Constant", CONSTANT))
    machines = (PPC620, PPC620_PLUS)

    def fn(name):
        per_machine = {}
        for machine in machines:
            per_variant = {}
            for label, config in variants:
                result = session.ppc_result(name, machine, config)
                per_variant[label] = (
                    result.bank_conflict_cycle_fraction,
                    result.bank_conflict_cycles,
                    result.cycles,
                )
            per_machine[machine.name] = per_variant
        return per_machine

    rows, failures = _per_benchmark(session, fn)
    data: dict = {}
    lines = []
    for machine in machines:
        table = TextTable(
            ["benchmark"] + [label for label, _ in variants],
            title=f"Figure 9: Cycles with Bank Conflicts ({machine.name})",
        )
        fractions: dict = {label: {} for label, _ in variants}
        for name, per_machine in rows.items():
            row = [name]
            for label, _ in variants:
                fraction = per_machine[machine.name][label][0]
                fractions[label][name] = fraction
                row.append(format_percent(fraction, 2))
            table.add_row(row)
        data[machine.name] = fractions
        # Aggregate (conflict cycles over all cycles, as the paper's
        # "overall" numbers).
        if rows:
            table.add_separator()
            agg_row = ["ALL"]
            for label, _ in variants:
                conflict = sum(per_machine[machine.name][label][1]
                               for per_machine in rows.values())
                cycles = sum(per_machine[machine.name][label][2]
                             for per_machine in rows.values())
                data[machine.name].setdefault("ALL", {})[label] = \
                    conflict / cycles if cycles else 0.0
                agg_row.append(format_percent(
                    conflict / cycles if cycles else 0.0, 2))
            table.add_row(agg_row)
        lines.append(table.render())
    return ExperimentResult("fig9", "Bank Conflict Cycles", data,
                            "\n\n".join(lines) + _footnotes(failures),
                            tuple(failures))


#: Exhibit id -> runner.
EXPERIMENTS: dict[str, Callable[[Session], ExperimentResult]] = {
    "tab1": run_tab1,
    "tab2": run_tab2,
    "tab5": run_tab5,
    "fig1": run_fig1,
    "fig2": run_fig2,
    "tab3": run_tab3,
    "tab4": run_tab4,
    "fig6": run_fig6,
    "tab6": run_tab6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
}


def run_experiment(exp_id: str, session: Session) -> ExperimentResult:
    """Run one exhibit by id (``fig1``, ``tab3``, ...).

    Any tier demotions the session's :class:`~repro.harness.guard
    .TierGuard` recorded while computing this exhibit are appended to
    the rendered text as a ``Tier notes:`` block -- an additive
    footnote (strippable with :func:`~repro.harness.guard
    .strip_tier_notes`) so degraded runs stay honest without changing
    the numbers above it.
    """
    try:
        runner = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    result = runner(session)
    demotions = getattr(session, "demotions", None)
    if demotions:
        from repro.harness.guard import tier_notes
        result.text += tier_notes(demotions)
    return result


def run_experiments(exp_ids, session: Session,
                    jobs: int = 1) -> list[ExperimentResult]:
    """Run several exhibits, optionally warming the session in parallel.

    With ``jobs > 1`` the session's workplan is precomputed by the
    parallel engine (:meth:`Session.warm`) before the exhibits render
    from the warmed memos; the rendered output is bit-identical to a
    ``jobs=1`` run.  The warm's :class:`~repro.harness.parallel
    .EngineReport` (per-unit timings), if any, is left on
    ``session.last_warm_report`` for callers that want to print it.
    """
    session.last_warm_report = session.warm(jobs)
    metrics = session.metrics
    if metrics is None:
        return [run_experiment(exp_id, session) for exp_id in exp_ids]
    results = []
    for exp_id in exp_ids:
        with metrics.span(None, "report", exp_id):
            results.append(run_experiment(exp_id, session))
    return results
