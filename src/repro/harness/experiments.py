"""Experiment registry: one entry per paper table/figure.

Each ``run_*`` function reproduces one exhibit of the paper's
evaluation and returns an :class:`ExperimentResult` whose ``data``
holds the raw numbers and whose ``text`` prints the same rows/series
the paper reports.  ``EXPERIMENTS`` maps exhibit ids (``fig1``,
``tab3``, ...) to their runners; ``run_experiment`` dispatches by id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.isa.opcodes import ValueKind
from repro.lvp.config import CONSTANT, LIMIT, PERFECT, SIMPLE
from repro.lvp.locality import measure_locality_by_kind, measure_value_locality
from repro.analysis.reference import render_table2, render_table5
from repro.analysis.report import (
    TextTable,
    format_percent,
    format_speedup,
    geometric_mean,
)
from repro.harness.session import Session
from repro.trace.stats import compute_stats
from repro.uarch.ppc620.config import PPC620, PPC620_PLUS
from repro.uarch.ppc620.model import FU_NAMES, VERIFY_BUCKETS
from repro.workloads.suite import get_benchmark


@dataclass
class ExperimentResult:
    """One reproduced exhibit: id, title, raw data, rendered text."""

    exp_id: str
    title: str
    data: dict
    text: str


# ---------------------------------------------------------------------------
# Table 1: benchmark descriptions and dynamic instruction counts.
# ---------------------------------------------------------------------------
def run_tab1(session: Session) -> ExperimentResult:
    """Reproduce Table 1 (benchmark suite summary)."""
    table = TextTable(
        ["benchmark", "description", "instrs (PPC)", "instrs (Alpha)",
         "paper PPC", "paper Alpha"],
        title="Table 1: Benchmark Descriptions",
    )
    data = {}
    for name in session.benchmark_names:
        bench = get_benchmark(name)
        stats_p = compute_stats(session.trace(name, "ppc"))
        stats_a = compute_stats(session.trace(name, "alpha"))
        data[name] = {
            "ppc_instructions": stats_p.instructions,
            "alpha_instructions": stats_a.instructions,
            "ppc_loads": stats_p.loads,
            "alpha_loads": stats_a.loads,
        }
        table.add_row([
            name, bench.description, stats_p.instructions,
            stats_a.instructions,
            bench.paper_instructions.get("ppc", "-"),
            bench.paper_instructions.get("alpha", "-"),
        ])
    return ExperimentResult("tab1", "Benchmark Descriptions", data,
                            table.render())


# ---------------------------------------------------------------------------
# Tables 2 and 5: configuration tables (no simulation; rendered from the
# live configuration objects so they cannot drift from the code).
# ---------------------------------------------------------------------------
def run_tab2(session: Session) -> ExperimentResult:
    """Reproduce Table 2 (LVP unit configurations)."""
    text = render_table2()
    return ExperimentResult("tab2", "LVP Unit Configurations",
                            {"text": text}, text)


def run_tab5(session: Session) -> ExperimentResult:
    """Reproduce Table 5 (instruction latencies)."""
    text = render_table5()
    return ExperimentResult("tab5", "Instruction Latencies",
                            {"text": text}, text)


# ---------------------------------------------------------------------------
# Figure 1: load value locality per benchmark, depth 1 and 16.
# ---------------------------------------------------------------------------
def run_fig1(session: Session) -> ExperimentResult:
    """Reproduce Figure 1 (value locality, Alpha and PowerPC)."""
    data: dict = {"alpha": {}, "ppc": {}}
    for target in ("alpha", "ppc"):
        for name in session.benchmark_names:
            trace = session.trace(name, target)
            data[target][name] = (
                measure_value_locality(trace, depth=1).percent,
                measure_value_locality(trace, depth=16).percent,
            )
    lines = []
    for target, label in (("alpha", "Alpha AXP"), ("ppc", "PowerPC")):
        table = TextTable(["benchmark", "depth 1", "depth 16"],
                          title=f"Figure 1: Load Value Locality ({label})")
        for name in session.benchmark_names:
            d1, d16 = data[target][name]
            table.add_row([name, f"{d1:.1f}%", f"{d16:.1f}%"])
        lines.append(table.render())
    return ExperimentResult("fig1", "Load Value Locality", data,
                            "\n\n".join(lines))


# ---------------------------------------------------------------------------
# Figure 2: PowerPC value locality by data type.
# ---------------------------------------------------------------------------
_KIND_LABELS = {
    ValueKind.FP_DATA: "FP Data",
    ValueKind.INT_DATA: "Integer Data",
    ValueKind.INSTR_ADDR: "Instruction Addresses",
    ValueKind.DATA_ADDR: "Data Addresses",
}


def run_fig2(session: Session) -> ExperimentResult:
    """Reproduce Figure 2 (PowerPC value locality by data type)."""
    data: dict = {kind.name: {} for kind in ValueKind}
    for name in session.benchmark_names:
        trace = session.trace(name, "ppc")
        by_kind_1 = measure_locality_by_kind(trace, depth=1)
        by_kind_16 = measure_locality_by_kind(trace, depth=16)
        for kind in ValueKind:
            r1, r16 = by_kind_1[kind], by_kind_16[kind]
            data[kind.name][name] = (
                r1.percent, r16.percent, r1.total_loads,
            )
    lines = []
    for kind in (ValueKind.FP_DATA, ValueKind.INT_DATA,
                 ValueKind.INSTR_ADDR, ValueKind.DATA_ADDR):
        table = TextTable(
            ["benchmark", "depth 1", "depth 16", "loads"],
            title=f"Figure 2: PowerPC Value Locality - {_KIND_LABELS[kind]}",
        )
        for name in session.benchmark_names:
            d1, d16, loads = data[kind.name][name]
            table.add_row([
                name,
                f"{d1:.1f}%" if loads else "-",
                f"{d16:.1f}%" if loads else "-",
                loads,
            ])
        lines.append(table.render())
    return ExperimentResult("fig2", "Value Locality by Data Type", data,
                            "\n\n".join(lines))


# ---------------------------------------------------------------------------
# Table 3: LCT hit rates.
# ---------------------------------------------------------------------------
def run_tab3(session: Session) -> ExperimentResult:
    """Reproduce Table 3 (LCT classification hit rates)."""
    combos = (
        ("ppc", SIMPLE), ("ppc", LIMIT), ("alpha", SIMPLE), ("alpha", LIMIT),
    )
    data: dict = {}
    table = TextTable(
        ["benchmark",
         "PPC/S unpred", "PPC/S pred", "PPC/L unpred", "PPC/L pred",
         "AXP/S unpred", "AXP/S pred", "AXP/L unpred", "AXP/L pred"],
        title="Table 3: LCT Hit Rates",
    )
    per_column: dict = {combo: ([], []) for combo in combos}
    for name in session.benchmark_names:
        row = [name]
        data[name] = {}
        for target, config in combos:
            stats = session.annotated(name, target, config).stats
            unpred = stats.unpredictable_identified
            pred = stats.predictable_identified
            data[name][f"{target}/{config.name}"] = (unpred, pred)
            per_column[(target, config)][0].append(unpred)
            per_column[(target, config)][1].append(pred)
            row.extend([format_percent(unpred, 0), format_percent(pred, 0)])
        table.add_row(row)
    table.add_separator()
    gm_row = ["GM"]
    for combo in combos:
        unpreds, preds = per_column[combo]
        gm_row.extend([
            format_percent(geometric_mean(unpreds), 0),
            format_percent(geometric_mean(preds), 0),
        ])
    table.add_row(gm_row)
    return ExperimentResult("tab3", "LCT Hit Rates", data, table.render())


# ---------------------------------------------------------------------------
# Table 4: constant identification rates.
# ---------------------------------------------------------------------------
def run_tab4(session: Session) -> ExperimentResult:
    """Reproduce Table 4 (constant loads as a share of dynamic loads)."""
    combos = (
        ("ppc", SIMPLE), ("ppc", CONSTANT),
        ("alpha", SIMPLE), ("alpha", CONSTANT),
    )
    data: dict = {}
    table = TextTable(
        ["benchmark", "PPC Simple", "PPC Constant",
         "AXP Simple", "AXP Constant"],
        title="Table 4: Successful Constant Identification Rates",
    )
    for name in session.benchmark_names:
        row = [name]
        data[name] = {}
        for target, config in combos:
            stats = session.annotated(name, target, config).stats
            fraction = stats.constant_fraction
            data[name][f"{target}/{config.name}"] = fraction
            row.append(format_percent(fraction, 0))
        table.add_row(row)
    return ExperimentResult("tab4", "Constant Identification Rates", data,
                            table.render())


# ---------------------------------------------------------------------------
# Figure 6: base machine model speedups.
# ---------------------------------------------------------------------------
def run_fig6(session: Session) -> ExperimentResult:
    """Reproduce Figure 6 (speedups on the base 620 and 21164)."""
    ppc_configs = (SIMPLE, CONSTANT, LIMIT, PERFECT)
    alpha_configs = (SIMPLE, LIMIT, PERFECT)
    data: dict = {"620": {}, "21164": {}}
    for config in ppc_configs:
        data["620"][config.name] = {
            name: session.ppc_speedup(name, PPC620, config)
            for name in session.benchmark_names
        }
    for config in alpha_configs:
        data["21164"][config.name] = {
            name: session.alpha_speedup(name, config)
            for name in session.benchmark_names
        }
    lines = []
    for machine, configs in (("21164", alpha_configs),
                             ("620", ppc_configs)):
        label = ("Alpha AXP 21164" if machine == "21164"
                 else "PowerPC 620")
        table = TextTable(
            ["benchmark"] + [c.name for c in configs],
            title=f"Figure 6: Base Machine Model Speedups ({label})",
        )
        for name in session.benchmark_names:
            table.add_row([name] + [
                format_speedup(data[machine][c.name][name]) for c in configs
            ])
        table.add_separator()
        table.add_row(["GM"] + [
            format_speedup(geometric_mean(data[machine][c.name].values()))
            for c in configs
        ])
        lines.append(table.render())
    return ExperimentResult("fig6", "Base Machine Model Speedups", data,
                            "\n\n".join(lines))


# ---------------------------------------------------------------------------
# Table 6: 620+ speedups.
# ---------------------------------------------------------------------------
def run_tab6(session: Session) -> ExperimentResult:
    """Reproduce Table 6 (620+ and additional LVP speedups)."""
    configs = (SIMPLE, CONSTANT, LIMIT, PERFECT)
    data: dict = {}
    table = TextTable(
        ["benchmark", "instructions", "620+",
         "Simple", "Constant", "Limit", "Perfect"],
        title="Table 6: PowerPC 620+ Speedups",
    )
    columns: dict = {key: [] for key in ("620+",) + tuple(
        c.name for c in configs)}
    for name in session.benchmark_names:
        base_620 = session.ppc_result(name, PPC620, None)
        base_plus = session.ppc_result(name, PPC620_PLUS, None)
        plus_speedup = base_620.cycles / base_plus.cycles
        data[name] = {"620+": plus_speedup,
                      "instructions": base_620.instructions}
        columns["620+"].append(plus_speedup)
        row = [name, base_620.instructions, format_speedup(plus_speedup)]
        for config in configs:
            speedup = session.ppc_speedup(name, PPC620_PLUS, config)
            data[name][config.name] = speedup
            columns[config.name].append(speedup)
            row.append(format_speedup(speedup))
        table.add_row(row)
    table.add_separator()
    table.add_row(["GM", ""] + [
        format_speedup(geometric_mean(columns[key]))
        for key in ("620+", "Simple", "Constant", "Limit", "Perfect")
    ])
    data["GM"] = {key: geometric_mean(columns[key]) for key in columns}
    return ExperimentResult("tab6", "PowerPC 620+ Speedups", data,
                            table.render())


# ---------------------------------------------------------------------------
# Figure 7: load verification latency distribution.
# ---------------------------------------------------------------------------
def run_fig7(session: Session) -> ExperimentResult:
    """Reproduce Figure 7 (verification-latency distributions)."""
    configs = (SIMPLE, CONSTANT, LIMIT, PERFECT)
    data: dict = {}
    lines = []
    for machine in (PPC620, PPC620_PLUS):
        data[machine.name] = {}
        table = TextTable(
            ["latency"] + [c.name for c in configs],
            title=f"Figure 7: Load Verification Latency ({machine.name})",
        )
        histograms = {}
        for config in configs:
            total_hist = {bucket: 0 for bucket in VERIFY_BUCKETS}
            for name in session.benchmark_names:
                result = session.ppc_result(name, machine, config)
                for bucket, count in result.verify_histogram.items():
                    total_hist[bucket] += count
            total = sum(total_hist.values()) or 1
            histograms[config.name] = {
                bucket: count / total for bucket, count in total_hist.items()
            }
        data[machine.name] = histograms
        for bucket in VERIFY_BUCKETS:
            table.add_row([bucket] + [
                format_percent(histograms[c.name][bucket])
                for c in configs
            ])
        lines.append(table.render())
    return ExperimentResult("fig7", "Load Verification Latency Distribution",
                            data, "\n\n".join(lines))


# ---------------------------------------------------------------------------
# Figure 8: data dependency resolution latencies.
# ---------------------------------------------------------------------------
def run_fig8(session: Session) -> ExperimentResult:
    """Reproduce Figure 8 (average RS operand-wait time by FU type,
    normalized to the no-LVP baseline)."""
    configs = (SIMPLE, CONSTANT, LIMIT, PERFECT)
    data: dict = {}
    lines = []
    for machine in (PPC620, PPC620_PLUS):
        per_fu_base = {fu: [0, 0] for fu in FU_NAMES}
        for name in session.benchmark_names:
            result = session.ppc_result(name, machine, None)
            for fu in FU_NAMES:
                total, count = result.fu_wait[fu]
                per_fu_base[fu][0] += total
                per_fu_base[fu][1] += count
        baseline = {
            fu: (sums[0] / sums[1] if sums[1] else 0.0)
            for fu, sums in per_fu_base.items()
        }
        normalized: dict = {}
        for config in configs:
            per_fu = {fu: [0, 0] for fu in FU_NAMES}
            for name in session.benchmark_names:
                result = session.ppc_result(name, machine, config)
                for fu in FU_NAMES:
                    total, count = result.fu_wait[fu]
                    per_fu[fu][0] += total
                    per_fu[fu][1] += count
            normalized[config.name] = {
                fu: ((sums[0] / sums[1]) / baseline[fu]
                     if sums[1] and baseline[fu] else 1.0)
                for fu, sums in per_fu.items()
            }
        data[machine.name] = {"baseline": baseline, **normalized}
        table = TextTable(
            ["FU type", "base (cycles)"] + [c.name for c in configs],
            title=("Figure 8: Normalized RS Operand Wait Time "
                   f"({machine.name})"),
        )
        for fu in FU_NAMES:
            table.add_row(
                [fu, f"{baseline[fu]:.2f}"]
                + [format_percent(normalized[c.name][fu], 0)
                   for c in configs]
            )
        lines.append(table.render())
    return ExperimentResult("fig8", "Data Dependency Resolution Latencies",
                            data, "\n\n".join(lines))


# ---------------------------------------------------------------------------
# Figure 9: bank conflicts.
# ---------------------------------------------------------------------------
def run_fig9(session: Session) -> ExperimentResult:
    """Reproduce Figure 9 (fraction of cycles with bank conflicts)."""
    variants = (("base", None), ("Simple", SIMPLE), ("Constant", CONSTANT))
    data: dict = {}
    lines = []
    for machine in (PPC620, PPC620_PLUS):
        data[machine.name] = {}
        table = TextTable(
            ["benchmark"] + [label for label, _ in variants],
            title=f"Figure 9: Cycles with Bank Conflicts ({machine.name})",
        )
        fractions: dict = {label: {} for label, _ in variants}
        for name in session.benchmark_names:
            row = [name]
            for label, config in variants:
                result = session.ppc_result(name, machine, config)
                fraction = result.bank_conflict_cycle_fraction
                fractions[label][name] = fraction
                row.append(format_percent(fraction, 2))
            table.add_row(row)
        data[machine.name] = fractions
        # Aggregate (conflict cycles over all cycles, as the paper's
        # "overall" numbers).
        table.add_separator()
        agg_row = ["ALL"]
        for label, config in variants:
            conflict = sum(
                session.ppc_result(n, machine, config).bank_conflict_cycles
                for n in session.benchmark_names)
            cycles = sum(
                session.ppc_result(n, machine, config).cycles
                for n in session.benchmark_names)
            data[machine.name].setdefault("ALL", {})[label] = \
                conflict / cycles if cycles else 0.0
            agg_row.append(format_percent(conflict / cycles, 2))
        table.add_row(agg_row)
        lines.append(table.render())
    return ExperimentResult("fig9", "Bank Conflict Cycles", data,
                            "\n\n".join(lines))


#: Exhibit id -> runner.
EXPERIMENTS: dict[str, Callable[[Session], ExperimentResult]] = {
    "tab1": run_tab1,
    "tab2": run_tab2,
    "tab5": run_tab5,
    "fig1": run_fig1,
    "fig2": run_fig2,
    "tab3": run_tab3,
    "tab4": run_tab4,
    "fig6": run_fig6,
    "tab6": run_tab6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
}


def run_experiment(exp_id: str, session: Session) -> ExperimentResult:
    """Run one exhibit by id (``fig1``, ``tab3``, ...)."""
    try:
        runner = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(session)
