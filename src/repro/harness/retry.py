"""Bounded retry with exponential backoff and deterministic jitter.

The harness distinguishes *transient* failures -- cache-lock
contention, a worker process lost to a crash, an injected I/O fault --
from terminal ones via the :class:`~repro.errors.RetryableError` split
in :mod:`repro.errors`.  Transient failures are retried a bounded
number of times with exponentially growing, jittered delays; terminal
failures are recorded immediately.

Jitter is *seeded*, never wall-clock random: two runs with the same
policy sleep the same schedule, so a retried run is as reproducible as
an untried one (the journal records each retry either way).
"""

from __future__ import annotations

import os
import random
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import RetryableError

#: Environment knobs honoured by :meth:`RetryPolicy.from_env`.
ATTEMPTS_ENV = "REPRO_RETRIES"
BASE_ENV = "REPRO_RETRY_BASE"


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to back off in between.

    ``delays()`` yields ``attempts - 1`` delays: the wait *after* each
    failed attempt except the last (which raises).  Delay ``i`` is
    ``base * multiplier**i`` stretched by up to ``jitter`` (a fraction,
    seeded) so that colliding processes de-synchronize, then clamped to
    ``cap`` -- the cap bounds the *actual* sleep, jitter included.
    """

    attempts: int = 3
    base: float = 0.05
    multiplier: float = 2.0
    cap: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base < 0 or self.cap < 0 or self.jitter < 0:
            raise ValueError("base, cap, and jitter must be >= 0")

    @classmethod
    def from_env(cls, seed: int = 0) -> "RetryPolicy":
        """Policy with ``REPRO_RETRIES`` / ``REPRO_RETRY_BASE`` applied.

        A malformed value falls back to the default -- loudly, via a
        :class:`RuntimeWarning` naming the variable and the bad value,
        so a typo'd knob cannot silently run with default retries.
        """
        kwargs: dict = {"seed": seed}
        for env, key, convert in ((ATTEMPTS_ENV, "attempts", int),
                                  (BASE_ENV, "base", float)):
            raw = os.environ.get(env)
            if raw is None:
                continue
            try:
                value = convert(raw)
            except ValueError:
                warnings.warn(
                    f"ignoring malformed {env}={raw!r} "
                    f"(expected {'an integer' if convert is int else 'a number'}); "
                    f"using the default", RuntimeWarning, stacklevel=2)
                continue
            kwargs[key] = max(1, value) if key == "attempts" \
                else max(0.0, value)
        return cls(**kwargs)

    def delays(self) -> list[float]:
        """The full backoff schedule (deterministic for one policy).

        The cap is applied *after* jitter: it is a hard upper bound on
        the sleep itself, not on the pre-jitter base (which would let
        sleeps exceed the cap by up to the jitter fraction).
        """
        rng = random.Random(self.seed)
        schedule = []
        for i in range(max(0, self.attempts - 1)):
            raw = self.base * self.multiplier ** i
            schedule.append(
                min(self.cap, raw * (1.0 + self.jitter * rng.random())))
        return schedule


def call_with_retries(fn: Callable, policy: RetryPolicy,
                      on_retry: Optional[Callable] = None,
                      sleep: Callable[[float], None] = time.sleep):
    """Call ``fn()``, retrying :class:`RetryableError` per *policy*.

    ``on_retry(attempt, delay, exc)`` is invoked before each backoff
    sleep (the journal uses it to record the retry).  The final attempt
    re-raises the transient error unchanged; non-retryable exceptions
    propagate immediately.
    """
    schedule = policy.delays()
    for attempt in range(1, policy.attempts + 1):
        try:
            return fn()
        except RetryableError as exc:
            if attempt >= policy.attempts:
                raise
            delay = schedule[attempt - 1]
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            sleep(delay)
