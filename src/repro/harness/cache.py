"""On-disk trace cache.

Trace generation (functional simulation) dominates harness start-up
time.  A :class:`TraceCache` persists traces as ``.npz`` column bundles
keyed by (benchmark, target, scale) and stamped with the library
version: bump ``repro.__version__`` (or delete the directory) whenever
workload definitions change and stale traces invalidate themselves.

Enable it by passing ``cache_dir`` to :class:`repro.harness.Session`
or by setting the ``REPRO_TRACE_CACHE`` environment variable.
"""

from __future__ import annotations

import pathlib
from typing import Optional

import numpy as np

from repro.trace.records import TRACE_COLUMNS, Trace


class TraceCache:
    """Load/store traces under a directory, versioned by the library."""

    def __init__(self, directory) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        from repro import __version__
        self.version = __version__

    def _path(self, name: str, target: str, scale: str) -> pathlib.Path:
        safe = name.replace("/", "_")
        return self.directory / f"{safe}-{target}-{scale}.npz"

    def load(self, name: str, target: str,
             scale: str) -> Optional[Trace]:
        """Return the cached trace, or None on miss/version mismatch."""
        path = self._path(name, target, scale)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as bundle:
                if str(bundle["version"]) != self.version:
                    return None
                columns = {key: bundle[key] for key, _ in TRACE_COLUMNS}
        except (OSError, KeyError, ValueError):
            return None
        return Trace(columns, name=name, target=target)

    def store(self, trace: Trace, scale: str) -> None:
        """Persist *trace* (atomically: write then rename)."""
        path = self._path(trace.name, trace.target, scale)
        temporary = path.with_suffix(".tmp.npz")
        arrays = {key: getattr(trace, key) for key, _ in TRACE_COLUMNS}
        np.savez_compressed(temporary, version=self.version, **arrays)
        temporary.replace(path)

    def clear(self) -> int:
        """Delete every cached trace; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.npz"):
            path.unlink()
            removed += 1
        return removed
