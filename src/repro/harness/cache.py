"""On-disk trace cache.

Trace generation (functional simulation) dominates harness start-up
time.  A :class:`TraceCache` persists traces keyed by (benchmark,
target, scale) and stamped with the library version: bump
``repro.__version__`` (or delete the directory) whenever workload
definitions change and stale traces invalidate themselves.

Enable it by passing ``cache_dir`` to :class:`repro.harness.Session`
or by setting the ``REPRO_TRACE_CACHE`` environment variable.

**Format v2** (``.rtc``) is the native layout: an uncompressed,
page-aligned per-column file that :meth:`TraceCache.load` opens with
``np.memmap`` read-only -- zero-copy, lazily paged by the OS, and
physically shared across every process mapping the same bundle.  The
layout is::

    offset 0   magic ``RTRACE02``
    offset 8   u4 little-endian header length
    offset 12  JSON header: format/version/name/target, a column table
               ({name, dtype, count, offset, nbytes, crc32} per column,
               in TRACE_COLUMNS order), and ``data_end``
    ...        each column's raw little-endian bytes at a 4096-aligned
               offset (the gap after the header is zero padding)
    data_end   footer ``RTCFOOT1`` + u4 CRC-32 of the header JSON

The footer doubles as the truncation detector: a bundle whose file is
shorter than ``data_end + 12`` or whose footer CRC disagrees with the
header never existed atomically.  Legacy **v1** ``.npz`` bundles are
still read transparently (and :meth:`TraceCache.migrate` rewrites them
in place -- ``repro cache migrate``); a v2 store drops any superseded
v1 sibling.

The cache is hardened against on-disk corruption:

* every column is stored with a CRC-32 checksum, verified on load
  (streamed in chunks, so verification never copies a column);
* a bundle that fails to open, parse, or checksum is treated as a
  cache miss and *quarantined* (moved into a ``quarantine/``
  subdirectory) so it can be inspected but never re-read;
* interrupted writes leave no debris -- stores write a ``.tmp.rtc``
  then rename, unlink the temporary on any failure, and stale
  temporaries from crashed processes are swept on construction;
* stores and loads take an advisory file lock (where the platform
  offers ``fcntl``) so concurrent sessions sharing one
  ``REPRO_TRACE_CACHE`` directory do not race; lock acquisition is
  bounded (``REPRO_LOCK_TIMEOUT``, default 60s) and raises a retryable
  :class:`~repro.errors.CacheLockTimeout` instead of blocking forever
  behind a wedged holder.  (Replacement and eviction are rename/unlink
  based, so a bundle another process has already mapped stays readable
  through its original inode.);
* ``quarantine/`` growth is capped (``REPRO_QUARANTINE_KEEP``, default
  16 newest bundles) so repeated corruption drills cannot fill the
  disk;
* the main store is capped too (``REPRO_CACHE_BUDGET``, total bytes;
  0 = unlimited) with least-recently-*used* eviction -- loads touch a
  bundle's mtime, so the bundle evicted first is the one no session
  has read for longest;
* resource exhaustion (``ENOSPC``/``EDQUOT``/``EMFILE``/``ENFILE``) is
  never mistaken for corruption: a store that hits a full disk evicts
  and retries once, then raises a retryable
  :class:`~repro.errors.ResourceExhaustedError` (which the session
  degrades to "this trace just isn't cached"); a load that cannot even
  open its file for resource reasons raises the same instead of
  quarantining a perfectly healthy bundle.

Traces loaded from a v2 bundle carry **read-only** columns (they alias
the shared page cache); call :meth:`~repro.trace.records.Trace.materialize`
for a private writable copy before mutating.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import time
import zipfile
import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import (
    CacheLockTimeout,
    ResourceExhaustedError,
    is_resource_exhaustion,
)
from repro.trace.records import TRACE_COLUMNS, Trace

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None


class _CorruptBundle(Exception):
    """Internal: a cached bundle failed a structural or checksum check."""


#: Exceptions that mean "this file is damaged", not "this is a bug".
_CORRUPTION_ERRORS = (OSError, KeyError, ValueError, EOFError,
                      zlib.error, zipfile.BadZipFile, _CorruptBundle)

#: v2 bundle framing.
MAGIC_V2 = b"RTRACE02"
FOOTER_MAGIC = b"RTCFOOT1"
#: Column data is aligned to this many bytes (one page) so mapped
#: columns start on page boundaries and padding stays sparse-friendly.
ALIGNMENT = 4096
#: Largest header we will attempt to parse (structural sanity bound).
_MAX_HEADER = 1 << 20

#: CRC streaming chunk (bytes): bounds the working set of a checksum
#: pass over an arbitrarily large (possibly memory-mapped) column.
_CRC_CHUNK = 1 << 20

_EXPECTED_DTYPES = {name: np.dtype("<" + code).str
                    for name, code in TRACE_COLUMNS}


def _column_crc(array: np.ndarray) -> int:
    """CRC-32 of a column's raw bytes (dtype-stable: columns are
    always stored little-endian, see TRACE_COLUMNS).

    Streams over memoryview chunks so checksumming a large (or
    memory-mapped) column never materialises a contiguous copy of it.
    """
    data = memoryview(np.ascontiguousarray(array)).cast("B")
    crc = 0
    for start in range(0, len(data), _CRC_CHUNK):
        crc = zlib.crc32(data[start:start + _CRC_CHUNK], crc)
    return crc & 0xFFFFFFFF


def _align_up(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _float_env(name: str, default: float) -> float:
    """A float environment knob (malformed values use the default)."""
    try:
        return float(os.environ[name])
    except (KeyError, ValueError):
        return default


def _int_env(name: str, default: int) -> int:
    """An int environment knob (malformed values use the default)."""
    try:
        return int(os.environ[name])
    except (KeyError, ValueError):
        return default


def write_v1_bundle(path: pathlib.Path, trace: Trace,
                    version: str) -> None:
    """Write a legacy v1 ``.npz`` bundle directly (no locking).

    Kept for the migration tests and the bench harness's v1-vs-v2
    load-phase comparison; production stores always write v2.
    """
    arrays = {key: np.asarray(getattr(trace, key))
              for key, _ in TRACE_COLUMNS}
    checksums = {
        f"crc_{key}": np.uint32(_column_crc(column))
        for key, column in arrays.items()
    }
    np.savez_compressed(path, version=version, **arrays, **checksums)


@dataclass
class CacheCounters:
    """Observability counters for one process's cache instance.

    These are per-process and scheduling-dependent (which worker warms
    the cache first is a race), so they surface in the metrics
    document's run scope, never the deterministic benchmark scope.
    """

    hits: int = 0
    misses: int = 0  # absent, version-stale, or corrupt bundles
    stores: int = 0
    quarantined: int = 0
    evictions: int = 0  # bundles removed to honour the size budget
    lock_waits: int = 0  # acquisitions that found the lock contended
    lock_wait_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "evictions": self.evictions,
            "lock_waits": self.lock_waits,
            "lock_wait_seconds": self.lock_wait_seconds,
        }


class TraceCache:
    """Load/store traces under a directory, versioned by the library.

    ``lock_timeout`` bounds how long a load/store waits for the
    directory's advisory lock (default ``REPRO_LOCK_TIMEOUT`` or 60s;
    ``<= 0`` = try once, never wait).  ``quarantine_keep`` caps how
    many quarantined bundles are retained (default
    ``REPRO_QUARANTINE_KEEP`` or 16), newest first.  ``budget`` caps
    the main store's total bytes (default ``REPRO_CACHE_BUDGET``;
    ``0`` = unlimited): after each store, least-recently-used bundles
    are evicted until the directory fits.
    """

    def __init__(self, directory, lock_timeout: Optional[float] = None,
                 quarantine_keep: Optional[int] = None,
                 budget: Optional[int] = None) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        from repro import __version__
        self.version = __version__
        self.lock_timeout = lock_timeout if lock_timeout is not None \
            else _float_env("REPRO_LOCK_TIMEOUT", 60.0)
        self.quarantine_keep = quarantine_keep if quarantine_keep is not None \
            else max(1, _int_env("REPRO_QUARANTINE_KEEP", 16))
        self.budget = budget if budget is not None \
            else max(0, _int_env("REPRO_CACHE_BUDGET", 0))
        self.counters = CacheCounters()
        self._sweep_temporaries()

    def _path(self, name: str, target: str, scale: str) -> pathlib.Path:
        safe = name.replace("/", "_")
        return self.directory / f"{safe}-{target}-{scale}.rtc"

    def path_for(self, name: str, target: str, scale: str) -> pathlib.Path:
        """The on-disk bundle path for one key (for tools and tests)."""
        return self._path(name, target, scale)

    def legacy_path(self, name: str, target: str,
                    scale: str) -> pathlib.Path:
        """The legacy v1 ``.npz`` path for one key."""
        return self._path(name, target, scale).with_suffix(".npz")

    # -- concurrency ---------------------------------------------------------
    @contextlib.contextmanager
    def _locked(self, shared: bool = False):
        """Advisory lock over the cache directory (no-op without fcntl).

        Acquisition is non-blocking with a bounded spin so a wedged
        lock holder surfaces as a retryable
        :class:`~repro.errors.CacheLockTimeout` instead of hanging the
        whole run (the session's retry-with-backoff then re-attempts
        the stage).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = self.directory / ".lock"
        operation = fcntl.LOCK_SH if shared else fcntl.LOCK_EX
        with open(lock_path, "a") as handle:
            started = time.monotonic()
            deadline = started + max(0.0, self.lock_timeout)
            contended = False
            while True:
                try:
                    fcntl.flock(handle, operation | fcntl.LOCK_NB)
                    break
                except OSError:
                    contended = True
                    if time.monotonic() >= deadline:
                        self.counters.lock_waits += 1
                        self.counters.lock_wait_seconds += \
                            time.monotonic() - started
                        raise CacheLockTimeout(
                            f"could not lock trace cache {self.directory} "
                            f"within {self.lock_timeout:.0f}s "
                            f"(REPRO_LOCK_TIMEOUT)") from None
                    time.sleep(0.02)
            if contended:
                self.counters.lock_waits += 1
                self.counters.lock_wait_seconds += time.monotonic() - started
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    # -- hygiene -------------------------------------------------------------
    def _sweep_temporaries(self) -> int:
        """Remove ``.tmp.rtc``/``.tmp.npz`` files left by interrupted
        stores.

        Takes the exclusive lock: stores write-then-rename their
        temporary entirely under that lock, so any temporary visible
        once we hold it is guaranteed stale debris -- sweeping without
        the lock could delete the temporary of a store in flight in
        another process (between its write and its rename).
        """
        removed = 0
        with self._locked():
            for pattern in ("*.tmp.rtc", "*.tmp.npz"):
                for stale in self.directory.glob(pattern):
                    with contextlib.suppress(OSError):
                        stale.unlink()
                        removed += 1
        return removed

    def quarantine(self, path: pathlib.Path) -> Optional[pathlib.Path]:
        """Move a damaged bundle into ``quarantine/``; returns its new
        path (None if the file vanished, e.g. another session won)."""
        qdir = self.directory / "quarantine"
        qdir.mkdir(exist_ok=True)
        destination = qdir / path.name
        suffix = 0
        while destination.exists():
            suffix += 1
            destination = qdir / f"{path.name}.{suffix}"
        try:
            path.replace(destination)
        except OSError:
            return None
        self.counters.quarantined += 1
        self._prune_quarantine(qdir)
        return destination

    def _prune_quarantine(self, qdir: pathlib.Path) -> int:
        """Keep only the ``quarantine_keep`` newest quarantined bundles
        so repeated corruption (or a corruption drill in a loop) cannot
        fill the disk; returns the number pruned."""
        try:
            entries = sorted(
                (entry for entry in qdir.iterdir() if entry.is_file()),
                key=lambda entry: entry.stat().st_mtime,
                reverse=True,
            )
        except OSError:
            return 0
        pruned = 0
        for stale in entries[self.quarantine_keep:]:
            with contextlib.suppress(OSError):
                stale.unlink()
                pruned += 1
        return pruned

    def discard(self, name: str, target: str, scale: str) -> None:
        """Quarantine the bundle(s) for one key (used when a loaded
        trace fails semantic validation downstream of the checksum
        layer)."""
        candidates = (self._path(name, target, scale),
                      self.legacy_path(name, target, scale))
        if any(path.exists() for path in candidates):
            with self._locked():
                for path in candidates:
                    if path.exists():
                        self.quarantine(path)

    # -- load/store ----------------------------------------------------------
    def load(self, name: str, target: str,
             scale: str) -> Optional[Trace]:
        """Return the cached trace, or None on miss/version mismatch.

        A v2 bundle maps zero-copy: the returned trace's columns are
        read-only views over the file's pages (checksums are still
        verified up front, streaming).  A bundle that is corrupt
        (unreadable, truncated, structurally wrong, or failing a column
        checksum) is quarantined and reported as a miss, so callers
        regenerate transparently.  Legacy v1 ``.npz`` bundles load the
        slow (decompressing) way.
        """
        path = self._path(name, target, scale)
        if path.exists():
            reader = self._read_v2
        else:
            path = self.legacy_path(name, target, scale)
            reader = self._read_v1
            if not path.exists():
                self.counters.misses += 1
                return None
        try:
            with self._locked(shared=True):
                trace = reader(path, name, target)
            if trace is None:
                self.counters.misses += 1
                return None  # stale, not damaged: store() overwrites
            self.counters.hits += 1
            # LRU recency: a read bundle is the *last* eviction victim.
            with contextlib.suppress(OSError):
                os.utime(path, None)
            return trace
        except _CORRUPTION_ERRORS as exc:
            if is_resource_exhaustion(exc):
                # Out of descriptors/space is not corruption: don't
                # quarantine a healthy bundle, surface it retryably.
                raise ResourceExhaustedError(
                    f"cannot read trace cache bundle {path.name}: "
                    f"{exc}") from exc
            self.counters.misses += 1
            with self._locked():
                self.quarantine(path)
            return None

    def _read_v1(self, path: pathlib.Path, name: str,
                 target: str) -> Optional[Trace]:
        """Read a legacy v1 ``.npz`` bundle (None = version-stale)."""
        with np.load(path, allow_pickle=False) as bundle:
            if str(bundle["version"]) != self.version:
                return None
            columns = {}
            for key, _ in TRACE_COLUMNS:
                column = bundle[key]
                expected = int(bundle[f"crc_{key}"])
                if _column_crc(column) != expected:
                    raise _CorruptBundle(
                        f"checksum mismatch in column {key!r}")
                columns[key] = column
        return Trace(columns, name=name, target=target)

    def _read_v2(self, path: pathlib.Path, name: str,
                 target: str) -> Optional[Trace]:
        """Map a v2 ``.rtc`` bundle read-only (None = version-stale).

        Structural damage, truncation (missing/mismatched footer), or
        a column checksum failure raises :class:`_CorruptBundle`.  The
        returned columns are ``np.frombuffer`` views over one shared
        read-only ``np.memmap``; the mapping lives as long as any
        column does (each view holds it via ``.base``).
        """
        with open(path, "rb") as handle:
            prefix = handle.read(12)
            if len(prefix) < 12 or prefix[:8] != MAGIC_V2:
                raise _CorruptBundle("bad v2 magic")
            header_len = int.from_bytes(prefix[8:12], "little")
            if not 0 < header_len <= _MAX_HEADER:
                raise _CorruptBundle(
                    f"implausible header length {header_len}")
            header_bytes = handle.read(header_len)
            if len(header_bytes) != header_len:
                raise _CorruptBundle("truncated header")
            header = json.loads(header_bytes.decode("utf-8"))
            data_end = int(header["data_end"])
            file_size = os.fstat(handle.fileno()).st_size
            if file_size < data_end + len(FOOTER_MAGIC) + 4:
                raise _CorruptBundle(
                    f"truncated bundle ({file_size} bytes, footer "
                    f"expected at {data_end})")
            handle.seek(data_end)
            footer = handle.read(len(FOOTER_MAGIC) + 4)
        if footer[:len(FOOTER_MAGIC)] != FOOTER_MAGIC:
            raise _CorruptBundle("bad footer magic")
        header_crc = zlib.crc32(header_bytes) & 0xFFFFFFFF
        if int.from_bytes(footer[len(FOOTER_MAGIC):], "little") != header_crc:
            raise _CorruptBundle("footer CRC disagrees with header")
        if str(header.get("version")) != self.version:
            return None

        specs = header["columns"]
        if [spec["name"] for spec in specs] != \
                [key for key, _ in TRACE_COLUMNS]:
            raise _CorruptBundle("column table does not match "
                                 "TRACE_COLUMNS")
        mapped = np.memmap(path, dtype=np.uint8, mode="r")
        columns = {}
        for spec in specs:
            key = spec["name"]
            dtype = np.dtype(str(spec["dtype"]))
            if dtype.str != _EXPECTED_DTYPES[key]:
                raise _CorruptBundle(
                    f"column {key!r} has dtype {dtype.str}, "
                    f"expected {_EXPECTED_DTYPES[key]}")
            count = int(spec["count"])
            offset = int(spec["offset"])
            nbytes = int(spec["nbytes"])
            if count < 0 or nbytes != count * dtype.itemsize:
                raise _CorruptBundle(f"column {key!r} extent inconsistent")
            if offset < 0 or offset + nbytes > data_end:
                raise _CorruptBundle(f"column {key!r} outside data region")
            column = np.frombuffer(mapped, dtype=dtype, count=count,
                                   offset=offset)
            if _column_crc(column) != int(spec["crc32"]):
                raise _CorruptBundle(f"checksum mismatch in column {key!r}")
            columns[key] = column
        return Trace(columns, name=name, target=target)

    def store(self, trace: Trace, scale: str) -> None:
        """Persist *trace* as a v2 bundle (atomically: write then
        rename).

        The temporary file is unlinked on any write failure so crashed
        or interrupted stores never leave partial bundles behind.  A
        superseded legacy v1 bundle for the same key is dropped so the
        key can never resolve to stale v1 bytes.
        """
        path = self._path(trace.name, trace.target, scale)
        temporary = path.with_suffix(".tmp.rtc")
        with self._locked():
            try:
                try:
                    self._write_bundle(temporary, path, trace)
                except OSError as exc:
                    if not is_resource_exhaustion(exc):
                        raise
                    # Disk full: make room (drop the quarantine and
                    # every other bundle -- the cache is an accelerator
                    # and a full disk is an emergency) and retry once.
                    with contextlib.suppress(OSError):
                        temporary.unlink()
                    self._evict_for_space(exclude=path)
                    try:
                        self._write_bundle(temporary, path, trace)
                    except OSError as retry_exc:
                        if is_resource_exhaustion(retry_exc):
                            raise ResourceExhaustedError(
                                f"cannot store trace cache bundle "
                                f"{path.name} even after eviction: "
                                f"{retry_exc}") from retry_exc
                        raise
            finally:
                with contextlib.suppress(OSError):
                    temporary.unlink()
            legacy = self.legacy_path(trace.name, trace.target, scale)
            with contextlib.suppress(OSError):
                legacy.unlink()
            if self.budget:
                self._enforce_budget(exclude=path)

    def _pack_v2(self, trace: Trace):
        """Lay out one trace's v2 bundle: header bytes + column plan.

        The header embeds each column's absolute file offset, and the
        first offset must clear the header itself -- so the layout is
        computed as a (terminating: the candidate start only ever
        grows, by whole pages, and offset digit counts are bounded)
        fixpoint over the aligned header size.
        """
        arrays = []
        crcs = {}
        for key, code in TRACE_COLUMNS:
            column = np.ascontiguousarray(
                getattr(trace, key), dtype=np.dtype("<" + code))
            arrays.append((key, column))
            crcs[key] = _column_crc(column)
        data_start = ALIGNMENT
        while True:
            specs = []
            offset = data_start
            for key, column in arrays:
                specs.append({
                    "name": key,
                    "dtype": column.dtype.str,
                    "count": int(column.size),
                    "offset": offset,
                    "nbytes": int(column.nbytes),
                    "crc32": crcs[key],
                })
                offset = _align_up(offset + column.nbytes)
            data_end = specs[-1]["offset"] + specs[-1]["nbytes"]
            header = {
                "format": "repro.trace-cache/v2",
                "version": self.version,
                "name": trace.name,
                "target": trace.target,
                "columns": specs,
                "data_end": data_end,
            }
            header_bytes = json.dumps(
                header, sort_keys=True, separators=(",", ":")).encode()
            needed = _align_up(len(MAGIC_V2) + 4 + len(header_bytes))
            if needed <= data_start:
                return header_bytes, arrays, specs, data_end
            data_start = needed

    def _write_bundle(self, temporary: pathlib.Path, path: pathlib.Path,
                      trace: Trace) -> None:
        """One atomic write-then-rename attempt (caller holds the lock)."""
        header_bytes, arrays, specs, data_end = self._pack_v2(trace)
        with open(temporary, "wb") as handle:
            handle.write(MAGIC_V2)
            handle.write(len(header_bytes).to_bytes(4, "little"))
            handle.write(header_bytes)
            for (key, column), spec in zip(arrays, specs):
                if column.nbytes:
                    handle.seek(spec["offset"])
                    handle.write(memoryview(column).cast("B"))
            handle.seek(data_end)
            handle.write(FOOTER_MAGIC)
            handle.write(
                (zlib.crc32(header_bytes) & 0xFFFFFFFF).to_bytes(
                    4, "little"))
        temporary.replace(path)
        self.counters.stores += 1

    # -- migration -----------------------------------------------------------
    def migrate(self) -> dict[str, int]:
        """Rewrite every legacy v1 ``.npz`` bundle as a v2 ``.rtc``.

        Returns ``{"migrated": n, "skipped": n, "failed": n}``:
        version-stale bundles and files whose names do not parse as a
        cache key are skipped (regeneration overwrites them anyway),
        corrupt bundles are quarantined and counted as failed.
        """
        migrated = skipped = failed = 0
        with self._locked():
            for legacy in sorted(self.directory.glob("*.npz")):
                if legacy.name.endswith(".tmp.npz"):
                    continue
                parts = legacy.stem.rsplit("-", 2)
                if len(parts) != 3:
                    skipped += 1
                    continue
                name, target, scale = parts
                try:
                    trace = self._read_v1(legacy, name, target)
                except _CORRUPTION_ERRORS as exc:
                    if is_resource_exhaustion(exc):
                        raise ResourceExhaustedError(
                            f"cannot migrate trace cache bundle "
                            f"{legacy.name}: {exc}") from exc
                    self.quarantine(legacy)
                    failed += 1
                    continue
                if trace is None:
                    skipped += 1
                    continue
                path = self._path(name, target, scale)
                temporary = path.with_suffix(".tmp.rtc")
                try:
                    try:
                        self._write_bundle(temporary, path, trace)
                    finally:
                        with contextlib.suppress(OSError):
                            temporary.unlink()
                except OSError as exc:
                    if is_resource_exhaustion(exc):
                        raise ResourceExhaustedError(
                            f"cannot migrate trace cache bundle "
                            f"{legacy.name}: {exc}") from exc
                    raise
                with contextlib.suppress(OSError):
                    legacy.unlink()
                migrated += 1
        return {"migrated": migrated, "skipped": skipped, "failed": failed}

    # -- budget/eviction -----------------------------------------------------
    def _bundle_files(self, exclude: Optional[pathlib.Path] = None):
        """Every cached bundle (both formats), temporaries excluded."""
        entries = []
        for pattern in ("*.rtc", "*.npz"):
            for entry in self.directory.glob(pattern):
                if entry == exclude or entry.name.endswith(
                        (".tmp.rtc", ".tmp.npz")):
                    continue
                entries.append(entry)
        return entries

    def _bundles_by_age(self, exclude: Optional[pathlib.Path] = None):
        """Cached bundles, least recently used first (mtime, then name
        for determinism when mtimes tie)."""
        try:
            return sorted(
                self._bundle_files(exclude=exclude),
                key=lambda entry: (entry.stat().st_mtime, entry.name))
        except OSError:
            return []

    def _enforce_budget(self, exclude: Optional[pathlib.Path] = None) -> int:
        """Evict LRU bundles until the directory fits the byte budget
        (the just-written *exclude* is never evicted); returns the
        number evicted."""
        bundles = self._bundles_by_age(exclude=exclude)
        total = 0
        with contextlib.suppress(OSError):
            if exclude is not None and exclude.exists():
                total += exclude.stat().st_size
        sizes = {}
        for entry in bundles:
            with contextlib.suppress(OSError):
                sizes[entry] = entry.stat().st_size
                total += sizes[entry]
        evicted = 0
        for entry in bundles:
            if total <= self.budget:
                break
            with contextlib.suppress(OSError):
                entry.unlink()
                total -= sizes.get(entry, 0)
                evicted += 1
                self.counters.evictions += 1
        return evicted

    def _evict_for_space(self, exclude: Optional[pathlib.Path] = None) -> int:
        """Emergency eviction after ENOSPC: drop every quarantined file
        and every bundle but *exclude*; returns the number removed."""
        removed = 0
        qdir = self.directory / "quarantine"
        if qdir.is_dir():
            for entry in qdir.iterdir():
                with contextlib.suppress(OSError):
                    entry.unlink()
                    removed += 1
        for entry in self._bundles_by_age(exclude=exclude):
            with contextlib.suppress(OSError):
                entry.unlink()
                removed += 1
                self.counters.evictions += 1
        return removed

    def clear(self) -> int:
        """Delete every cached trace; returns the number removed."""
        removed = 0
        with self._locked():
            for path in self._bundle_files():
                path.unlink()
                removed += 1
        return removed
