"""On-disk trace cache.

Trace generation (functional simulation) dominates harness start-up
time.  A :class:`TraceCache` persists traces as ``.npz`` column bundles
keyed by (benchmark, target, scale) and stamped with the library
version: bump ``repro.__version__`` (or delete the directory) whenever
workload definitions change and stale traces invalidate themselves.

Enable it by passing ``cache_dir`` to :class:`repro.harness.Session`
or by setting the ``REPRO_TRACE_CACHE`` environment variable.

The cache is hardened against on-disk corruption:

* every column is stored with a CRC-32 checksum, verified on load;
* a bundle that fails to open, parse, or checksum is treated as a
  cache miss and *quarantined* (moved into a ``quarantine/``
  subdirectory) so it can be inspected but never re-read;
* interrupted writes leave no debris -- stores write a ``.tmp.npz``
  then rename, unlink the temporary on any failure, and stale
  temporaries from crashed processes are swept on construction;
* stores and loads take an advisory file lock (where the platform
  offers ``fcntl``) so concurrent sessions sharing one
  ``REPRO_TRACE_CACHE`` directory do not race; lock acquisition is
  bounded (``REPRO_LOCK_TIMEOUT``, default 60s) and raises a retryable
  :class:`~repro.errors.CacheLockTimeout` instead of blocking forever
  behind a wedged holder;
* ``quarantine/`` growth is capped (``REPRO_QUARANTINE_KEEP``, default
  16 newest bundles) so repeated corruption drills cannot fill the
  disk;
* the main store is capped too (``REPRO_CACHE_BUDGET``, total bytes;
  0 = unlimited) with least-recently-*used* eviction -- loads touch a
  bundle's mtime, so the bundle evicted first is the one no session
  has read for longest;
* resource exhaustion (``ENOSPC``/``EDQUOT``/``EMFILE``/``ENFILE``) is
  never mistaken for corruption: a store that hits a full disk evicts
  and retries once, then raises a retryable
  :class:`~repro.errors.ResourceExhaustedError` (which the session
  degrades to "this trace just isn't cached"); a load that cannot even
  open its file for resource reasons raises the same instead of
  quarantining a perfectly healthy bundle.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import time
import zipfile
import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import (
    CacheLockTimeout,
    ResourceExhaustedError,
    is_resource_exhaustion,
)
from repro.trace.records import TRACE_COLUMNS, Trace

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None


class _CorruptBundle(Exception):
    """Internal: a cached bundle failed a structural or checksum check."""


#: Exceptions that mean "this file is damaged", not "this is a bug".
_CORRUPTION_ERRORS = (OSError, KeyError, ValueError, EOFError,
                      zlib.error, zipfile.BadZipFile, _CorruptBundle)


def _column_crc(array: np.ndarray) -> int:
    """CRC-32 of a column's raw bytes (dtype-stable: columns are
    always stored little-endian, see TRACE_COLUMNS)."""
    return zlib.crc32(np.ascontiguousarray(array).tobytes()) & 0xFFFFFFFF


def _float_env(name: str, default: float) -> float:
    """A float environment knob (malformed values use the default)."""
    try:
        return float(os.environ[name])
    except (KeyError, ValueError):
        return default


def _int_env(name: str, default: int) -> int:
    """An int environment knob (malformed values use the default)."""
    try:
        return int(os.environ[name])
    except (KeyError, ValueError):
        return default


@dataclass
class CacheCounters:
    """Observability counters for one process's cache instance.

    These are per-process and scheduling-dependent (which worker warms
    the cache first is a race), so they surface in the metrics
    document's run scope, never the deterministic benchmark scope.
    """

    hits: int = 0
    misses: int = 0  # absent, version-stale, or corrupt bundles
    stores: int = 0
    quarantined: int = 0
    evictions: int = 0  # bundles removed to honour the size budget
    lock_waits: int = 0  # acquisitions that found the lock contended
    lock_wait_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "evictions": self.evictions,
            "lock_waits": self.lock_waits,
            "lock_wait_seconds": self.lock_wait_seconds,
        }


class TraceCache:
    """Load/store traces under a directory, versioned by the library.

    ``lock_timeout`` bounds how long a load/store waits for the
    directory's advisory lock (default ``REPRO_LOCK_TIMEOUT`` or 60s;
    ``<= 0`` = try once, never wait).  ``quarantine_keep`` caps how
    many quarantined bundles are retained (default
    ``REPRO_QUARANTINE_KEEP`` or 16), newest first.  ``budget`` caps
    the main store's total bytes (default ``REPRO_CACHE_BUDGET``;
    ``0`` = unlimited): after each store, least-recently-used bundles
    are evicted until the directory fits.
    """

    def __init__(self, directory, lock_timeout: Optional[float] = None,
                 quarantine_keep: Optional[int] = None,
                 budget: Optional[int] = None) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        from repro import __version__
        self.version = __version__
        self.lock_timeout = lock_timeout if lock_timeout is not None \
            else _float_env("REPRO_LOCK_TIMEOUT", 60.0)
        self.quarantine_keep = quarantine_keep if quarantine_keep is not None \
            else max(1, _int_env("REPRO_QUARANTINE_KEEP", 16))
        self.budget = budget if budget is not None \
            else max(0, _int_env("REPRO_CACHE_BUDGET", 0))
        self.counters = CacheCounters()
        self._sweep_temporaries()

    def _path(self, name: str, target: str, scale: str) -> pathlib.Path:
        safe = name.replace("/", "_")
        return self.directory / f"{safe}-{target}-{scale}.npz"

    def path_for(self, name: str, target: str, scale: str) -> pathlib.Path:
        """The on-disk bundle path for one key (for tools and tests)."""
        return self._path(name, target, scale)

    # -- concurrency ---------------------------------------------------------
    @contextlib.contextmanager
    def _locked(self, shared: bool = False):
        """Advisory lock over the cache directory (no-op without fcntl).

        Acquisition is non-blocking with a bounded spin so a wedged
        lock holder surfaces as a retryable
        :class:`~repro.errors.CacheLockTimeout` instead of hanging the
        whole run (the session's retry-with-backoff then re-attempts
        the stage).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = self.directory / ".lock"
        operation = fcntl.LOCK_SH if shared else fcntl.LOCK_EX
        with open(lock_path, "a") as handle:
            started = time.monotonic()
            deadline = started + max(0.0, self.lock_timeout)
            contended = False
            while True:
                try:
                    fcntl.flock(handle, operation | fcntl.LOCK_NB)
                    break
                except OSError:
                    contended = True
                    if time.monotonic() >= deadline:
                        self.counters.lock_waits += 1
                        self.counters.lock_wait_seconds += \
                            time.monotonic() - started
                        raise CacheLockTimeout(
                            f"could not lock trace cache {self.directory} "
                            f"within {self.lock_timeout:.0f}s "
                            f"(REPRO_LOCK_TIMEOUT)") from None
                    time.sleep(0.02)
            if contended:
                self.counters.lock_waits += 1
                self.counters.lock_wait_seconds += time.monotonic() - started
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    # -- hygiene -------------------------------------------------------------
    def _sweep_temporaries(self) -> int:
        """Remove ``.tmp.npz`` files left by interrupted stores.

        Takes the exclusive lock: stores write-then-rename their
        temporary entirely under that lock, so any temporary visible
        once we hold it is guaranteed stale debris -- sweeping without
        the lock could delete the temporary of a store in flight in
        another process (between its write and its rename).
        """
        removed = 0
        with self._locked():
            for stale in self.directory.glob("*.tmp.npz"):
                with contextlib.suppress(OSError):
                    stale.unlink()
                    removed += 1
        return removed

    def quarantine(self, path: pathlib.Path) -> Optional[pathlib.Path]:
        """Move a damaged bundle into ``quarantine/``; returns its new
        path (None if the file vanished, e.g. another session won)."""
        qdir = self.directory / "quarantine"
        qdir.mkdir(exist_ok=True)
        destination = qdir / path.name
        suffix = 0
        while destination.exists():
            suffix += 1
            destination = qdir / f"{path.name}.{suffix}"
        try:
            path.replace(destination)
        except OSError:
            return None
        self.counters.quarantined += 1
        self._prune_quarantine(qdir)
        return destination

    def _prune_quarantine(self, qdir: pathlib.Path) -> int:
        """Keep only the ``quarantine_keep`` newest quarantined bundles
        so repeated corruption (or a corruption drill in a loop) cannot
        fill the disk; returns the number pruned."""
        try:
            entries = sorted(
                (entry for entry in qdir.iterdir() if entry.is_file()),
                key=lambda entry: entry.stat().st_mtime,
                reverse=True,
            )
        except OSError:
            return 0
        pruned = 0
        for stale in entries[self.quarantine_keep:]:
            with contextlib.suppress(OSError):
                stale.unlink()
                pruned += 1
        return pruned

    def discard(self, name: str, target: str, scale: str) -> None:
        """Quarantine the bundle for one key (used when a loaded trace
        fails semantic validation downstream of the checksum layer)."""
        path = self._path(name, target, scale)
        if path.exists():
            with self._locked():
                self.quarantine(path)

    # -- load/store ----------------------------------------------------------
    def load(self, name: str, target: str,
             scale: str) -> Optional[Trace]:
        """Return the cached trace, or None on miss/version mismatch.

        A bundle that is corrupt (unreadable, missing columns, or
        failing a column checksum) is quarantined and reported as a
        miss, so callers regenerate transparently.
        """
        path = self._path(name, target, scale)
        if not path.exists():
            self.counters.misses += 1
            return None
        try:
            with self._locked(shared=True), \
                    np.load(path, allow_pickle=False) as bundle:
                if str(bundle["version"]) != self.version:
                    self.counters.misses += 1
                    return None  # stale, not damaged: store() overwrites
                columns = {}
                for key, _ in TRACE_COLUMNS:
                    column = bundle[key]
                    expected = int(bundle[f"crc_{key}"])
                    if _column_crc(column) != expected:
                        raise _CorruptBundle(
                            f"checksum mismatch in column {key!r}")
                    columns[key] = column
            self.counters.hits += 1
            # LRU recency: a read bundle is the *last* eviction victim.
            with contextlib.suppress(OSError):
                os.utime(path, None)
            return Trace(columns, name=name, target=target)
        except _CORRUPTION_ERRORS as exc:
            if is_resource_exhaustion(exc):
                # Out of descriptors/space is not corruption: don't
                # quarantine a healthy bundle, surface it retryably.
                raise ResourceExhaustedError(
                    f"cannot read trace cache bundle {path.name}: "
                    f"{exc}") from exc
            self.counters.misses += 1
            with self._locked():
                self.quarantine(path)
            return None

    def store(self, trace: Trace, scale: str) -> None:
        """Persist *trace* (atomically: write then rename).

        The temporary file is unlinked on any write failure so crashed
        or interrupted stores never leave partial bundles behind.
        """
        path = self._path(trace.name, trace.target, scale)
        temporary = path.with_suffix(".tmp.npz")
        arrays = {key: getattr(trace, key) for key, _ in TRACE_COLUMNS}
        checksums = {
            f"crc_{key}": np.uint32(_column_crc(column))
            for key, column in arrays.items()
        }
        with self._locked():
            try:
                try:
                    self._write_bundle(temporary, path, arrays, checksums)
                except OSError as exc:
                    if not is_resource_exhaustion(exc):
                        raise
                    # Disk full: make room (drop the quarantine and
                    # every other bundle -- the cache is an accelerator
                    # and a full disk is an emergency) and retry once.
                    with contextlib.suppress(OSError):
                        temporary.unlink()
                    self._evict_for_space(exclude=path)
                    try:
                        self._write_bundle(temporary, path, arrays,
                                           checksums)
                    except OSError as retry_exc:
                        if is_resource_exhaustion(retry_exc):
                            raise ResourceExhaustedError(
                                f"cannot store trace cache bundle "
                                f"{path.name} even after eviction: "
                                f"{retry_exc}") from retry_exc
                        raise
            finally:
                with contextlib.suppress(OSError):
                    temporary.unlink()
            if self.budget:
                self._enforce_budget(exclude=path)

    def _write_bundle(self, temporary: pathlib.Path, path: pathlib.Path,
                      arrays: dict, checksums: dict) -> None:
        """One atomic write-then-rename attempt (caller holds the lock)."""
        np.savez_compressed(temporary, version=self.version,
                            **arrays, **checksums)
        temporary.replace(path)
        self.counters.stores += 1

    def _bundles_by_age(self, exclude: Optional[pathlib.Path] = None):
        """Cached bundles, least recently used first (mtime, then name
        for determinism when mtimes tie)."""
        try:
            entries = [
                entry for entry in self.directory.glob("*.npz")
                if entry != exclude and not entry.name.endswith(".tmp.npz")
            ]
            return sorted(
                entries,
                key=lambda entry: (entry.stat().st_mtime, entry.name))
        except OSError:
            return []

    def _enforce_budget(self, exclude: Optional[pathlib.Path] = None) -> int:
        """Evict LRU bundles until the directory fits the byte budget
        (the just-written *exclude* is never evicted); returns the
        number evicted."""
        bundles = self._bundles_by_age(exclude=exclude)
        total = 0
        with contextlib.suppress(OSError):
            if exclude is not None and exclude.exists():
                total += exclude.stat().st_size
        sizes = {}
        for entry in bundles:
            with contextlib.suppress(OSError):
                sizes[entry] = entry.stat().st_size
                total += sizes[entry]
        evicted = 0
        for entry in bundles:
            if total <= self.budget:
                break
            with contextlib.suppress(OSError):
                entry.unlink()
                total -= sizes.get(entry, 0)
                evicted += 1
                self.counters.evictions += 1
        return evicted

    def _evict_for_space(self, exclude: Optional[pathlib.Path] = None) -> int:
        """Emergency eviction after ENOSPC: drop every quarantined file
        and every bundle but *exclude*; returns the number removed."""
        removed = 0
        qdir = self.directory / "quarantine"
        if qdir.is_dir():
            for entry in qdir.iterdir():
                with contextlib.suppress(OSError):
                    entry.unlink()
                    removed += 1
        for entry in self._bundles_by_age(exclude=exclude):
            with contextlib.suppress(OSError):
                entry.unlink()
                removed += 1
                self.counters.evictions += 1
        return removed

    def clear(self) -> int:
        """Delete every cached trace; returns the number removed."""
        removed = 0
        with self._locked():
            for path in self.directory.glob("*.npz"):
                path.unlink()
                removed += 1
        return removed
