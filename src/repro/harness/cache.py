"""On-disk trace cache.

Trace generation (functional simulation) dominates harness start-up
time.  A :class:`TraceCache` persists traces as ``.npz`` column bundles
keyed by (benchmark, target, scale) and stamped with the library
version: bump ``repro.__version__`` (or delete the directory) whenever
workload definitions change and stale traces invalidate themselves.

Enable it by passing ``cache_dir`` to :class:`repro.harness.Session`
or by setting the ``REPRO_TRACE_CACHE`` environment variable.

The cache is hardened against on-disk corruption:

* every column is stored with a CRC-32 checksum, verified on load;
* a bundle that fails to open, parse, or checksum is treated as a
  cache miss and *quarantined* (moved into a ``quarantine/``
  subdirectory) so it can be inspected but never re-read;
* interrupted writes leave no debris -- stores write a ``.tmp.npz``
  then rename, unlink the temporary on any failure, and stale
  temporaries from crashed processes are swept on construction;
* stores and loads take an advisory file lock (where the platform
  offers ``fcntl``) so concurrent sessions sharing one
  ``REPRO_TRACE_CACHE`` directory do not race.
"""

from __future__ import annotations

import contextlib
import pathlib
import zipfile
import zlib
from typing import Optional

import numpy as np

from repro.trace.records import TRACE_COLUMNS, Trace

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None


class _CorruptBundle(Exception):
    """Internal: a cached bundle failed a structural or checksum check."""


#: Exceptions that mean "this file is damaged", not "this is a bug".
_CORRUPTION_ERRORS = (OSError, KeyError, ValueError, EOFError,
                      zlib.error, zipfile.BadZipFile, _CorruptBundle)


def _column_crc(array: np.ndarray) -> int:
    """CRC-32 of a column's raw bytes (dtype-stable: columns are
    always stored little-endian, see TRACE_COLUMNS)."""
    return zlib.crc32(np.ascontiguousarray(array).tobytes()) & 0xFFFFFFFF


class TraceCache:
    """Load/store traces under a directory, versioned by the library."""

    def __init__(self, directory) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        from repro import __version__
        self.version = __version__
        self._sweep_temporaries()

    def _path(self, name: str, target: str, scale: str) -> pathlib.Path:
        safe = name.replace("/", "_")
        return self.directory / f"{safe}-{target}-{scale}.npz"

    def path_for(self, name: str, target: str, scale: str) -> pathlib.Path:
        """The on-disk bundle path for one key (for tools and tests)."""
        return self._path(name, target, scale)

    # -- concurrency ---------------------------------------------------------
    @contextlib.contextmanager
    def _locked(self, shared: bool = False):
        """Advisory lock over the cache directory (no-op without fcntl)."""
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = self.directory / ".lock"
        with open(lock_path, "a") as handle:
            fcntl.flock(handle, fcntl.LOCK_SH if shared else fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    # -- hygiene -------------------------------------------------------------
    def _sweep_temporaries(self) -> int:
        """Remove ``.tmp.npz`` files left by interrupted stores.

        Takes the exclusive lock: stores write-then-rename their
        temporary entirely under that lock, so any temporary visible
        once we hold it is guaranteed stale debris -- sweeping without
        the lock could delete the temporary of a store in flight in
        another process (between its write and its rename).
        """
        removed = 0
        with self._locked():
            for stale in self.directory.glob("*.tmp.npz"):
                with contextlib.suppress(OSError):
                    stale.unlink()
                    removed += 1
        return removed

    def quarantine(self, path: pathlib.Path) -> Optional[pathlib.Path]:
        """Move a damaged bundle into ``quarantine/``; returns its new
        path (None if the file vanished, e.g. another session won)."""
        qdir = self.directory / "quarantine"
        qdir.mkdir(exist_ok=True)
        destination = qdir / path.name
        suffix = 0
        while destination.exists():
            suffix += 1
            destination = qdir / f"{path.name}.{suffix}"
        try:
            path.replace(destination)
        except OSError:
            return None
        return destination

    def discard(self, name: str, target: str, scale: str) -> None:
        """Quarantine the bundle for one key (used when a loaded trace
        fails semantic validation downstream of the checksum layer)."""
        path = self._path(name, target, scale)
        if path.exists():
            with self._locked():
                self.quarantine(path)

    # -- load/store ----------------------------------------------------------
    def load(self, name: str, target: str,
             scale: str) -> Optional[Trace]:
        """Return the cached trace, or None on miss/version mismatch.

        A bundle that is corrupt (unreadable, missing columns, or
        failing a column checksum) is quarantined and reported as a
        miss, so callers regenerate transparently.
        """
        path = self._path(name, target, scale)
        if not path.exists():
            return None
        try:
            with self._locked(shared=True), \
                    np.load(path, allow_pickle=False) as bundle:
                if str(bundle["version"]) != self.version:
                    return None  # stale, not damaged: store() overwrites
                columns = {}
                for key, _ in TRACE_COLUMNS:
                    column = bundle[key]
                    expected = int(bundle[f"crc_{key}"])
                    if _column_crc(column) != expected:
                        raise _CorruptBundle(
                            f"checksum mismatch in column {key!r}")
                    columns[key] = column
            return Trace(columns, name=name, target=target)
        except _CORRUPTION_ERRORS:
            with self._locked():
                self.quarantine(path)
            return None

    def store(self, trace: Trace, scale: str) -> None:
        """Persist *trace* (atomically: write then rename).

        The temporary file is unlinked on any write failure so crashed
        or interrupted stores never leave partial bundles behind.
        """
        path = self._path(trace.name, trace.target, scale)
        temporary = path.with_suffix(".tmp.npz")
        arrays = {key: getattr(trace, key) for key, _ in TRACE_COLUMNS}
        checksums = {
            f"crc_{key}": np.uint32(_column_crc(column))
            for key, column in arrays.items()
        }
        with self._locked():
            try:
                np.savez_compressed(temporary, version=self.version,
                                    **arrays, **checksums)
                temporary.replace(path)
            finally:
                with contextlib.suppress(OSError):
                    temporary.unlink()

    def clear(self) -> int:
        """Delete every cached trace; returns the number removed."""
        removed = 0
        with self._locked():
            for path in self.directory.glob("*.npz"):
                path.unlink()
                removed += 1
        return removed
