"""One-pass design-space sweep engine (``repro sweep``).

One ``annotate_trace`` call evaluates one LVP configuration and pays
the full trace walk for it.  A design-space sweep wants *hundreds* of
configurations over the same trace, and almost all of the per-config
work is redundant: the trace decode is identical, the value-predictor
pass is shared by every configuration that sizes the predictor the
same way, and the classifier pass is shared by every configuration
that additionally sizes the LCT the same way.  This module evaluates a
whole grid against one in-memory decode by factoring the annotation
data flow into three stages:

* **Stage A** (one run per distinct *predictor key*): replay the load
  stream through the value predictor, recording for every dynamic load
  whether the prediction would have been correct (``would_hit``) and
  the LVPT index at event time (the CVU pair key's second half --
  snapshotted per event, which matters for gshare indexing where the
  index moves with the branch history).  Predictor training is
  unconditional and independent of the LCT/CVU, so this stream is
  exact for every configuration sharing the predictor shape.
* **Stage B** (one run per distinct predictor x LCT key): evolve the
  LCT's saturating counters from the ``would_hit`` stream, recording
  each load's classification.  The LCT trains on ground truth alone,
  so its evolution is independent of the CVU.
* **Stage C** (one run per configuration): simulate the CVU CAM over
  the constant-classified loads interleaved with the store stream, and
  assemble the full per-load outcomes and
  :class:`~repro.lvp.unit.LVPStats` -- bit-identical to a standalone
  :func:`~repro.trace.annotate.annotate_trace` run of that
  configuration (the differential suite in
  ``tests/harness/test_sweep.py`` holds this cell by cell).

Stage A has inlined fast paths for the common predictor shapes (the
same trick, and the same differential obligation, as the monomorphic
annotation kernel): depth-1 last-value prediction is fully vectorized,
and the stride/FCM/last-N/hybrid families run as flat loops over table
lists instead of per-load method dispatch.  Unusual shapes (tagged,
gshare) fall back to the real predictor objects via
:func:`~repro.lvp.unit.build_predictor`, which also guarantees any
future family works unoptimized before it works fast.

The stage machinery itself lives in :mod:`repro.trace.kernels` (shared
with the standard ``annotate_trace`` path's ``vector`` kernel); this
module keeps the grid planning, sharding, journalling, and exhibit
rendering on top of it.

Chunks of the grid shard across worker processes exactly like the
parallel experiment engine (grouped so stage-A/B work is amortized
within a chunk, merged back in deterministic grid order), and every
chunk is journalled write-ahead under ``.repro/sweeps/<run-id>/`` so
an interrupted sweep resumes with ``repro sweep --resume`` without
recomputing finished chunks (same manifest/journal/checkpoint pattern
as :mod:`repro.harness.journal`, JSON checkpoints instead of pickles).

``run_sweep_bench`` measures the shared-decode speedup against
per-configuration :func:`annotate_trace` runs of the same grid and
writes/validates/compares the committed ``BENCH_SWEEP.json`` baseline
(see ``docs/sweep.md``).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import ConfigError, JournalError
from repro.harness.journal import (
    CRASH_AFTER_ENV,
    _encode_record,
    _sha256,
    new_run_id,
    replay_journal,
    trace_digest,
)
from repro.lvp.config import LVPConfig
from repro.lvp.unit import LVPStats
from repro.trace.kernels import (
    LctContext,
    SweepEvents,
    decode_events,
    pc_indices,
    run_stage_a,
    run_stage_b,
    run_stage_c,
)
from repro.trace.records import Trace

#: Backwards-compatible private aliases: the stage kernels were hoisted
#: into :mod:`repro.trace.kernels` so the ``vector`` annotation tier
#: shares them; the sweep's call sites (and older callers) keep the
#: original names.
_pc_indices = pc_indices
_run_stage_a = run_stage_a
_run_stage_b = run_stage_b
_LctContext = LctContext

#: Sweep document schema identifier.
SWEEP_SCHEMA_ID = "repro.sweep/v1"
#: Sweep benchmark (BENCH_SWEEP.json) schema identifier.
SWEEP_BENCH_SCHEMA_ID = "repro.sweep-bench/v1"

#: Where sweep run directories live (separate from experiment runs so
#: the two LATEST pointers and pruning policies never interact).
SWEEP_RUNS_DIR_ENV = "REPRO_SWEEP_RUNS_DIR"
DEFAULT_SWEEP_RUNS_DIR = os.path.join(".repro", "sweeps")

#: Default configurations per worker chunk.
DEFAULT_CHUNK_SIZE = 16

_MANIFEST = "manifest.json"
_JOURNAL = "journal.jsonl"
_CHECKPOINTS = "checkpoints"

_U64 = (1 << 64) - 1


def sweep_runs_dir_from_env(default: Optional[str] = None) -> pathlib.Path:
    """The configured sweep-runs directory (``REPRO_SWEEP_RUNS_DIR``)."""
    return pathlib.Path(
        os.environ.get(SWEEP_RUNS_DIR_ENV) or default
        or DEFAULT_SWEEP_RUNS_DIR)


# ---------------------------------------------------------------------------
# Stage keys.
# ---------------------------------------------------------------------------
def predictor_key(config: LVPConfig) -> tuple:
    """The stage-A sharing key: fields the value predictor depends on.

    Canonicalized so configurations differing only in fields their
    predictor family ignores (selection for stride, say) share one
    stage-A pass.
    """
    if config.predictor == "history":
        if config.index_mode == "gshare":
            return ("history", config.lvpt_entries, config.history_depth,
                    config.selection, config.lvpt_tagged, "gshare",
                    config.ghr_bits)
        # At depth 1 the selection policy is irrelevant (a one-element
        # history makes "any stored value" and "the MRU value" the
        # same predicate), so both policies share one pass.
        selection = "mru" if config.history_depth == 1 else config.selection
        return ("history", config.lvpt_entries, config.history_depth,
                selection, config.lvpt_tagged, "pc", 0)
    depth = config.history_depth \
        if config.predictor in ("fcm", "lastn") else 1
    return (config.predictor, config.lvpt_entries, depth,
            "mru", False, "pc", 0)


def lct_key(config: LVPConfig) -> tuple:
    """The stage-B sharing key: predictor key + LCT shape."""
    return predictor_key(config) + (config.lct_entries, config.lct_bits)


# ---------------------------------------------------------------------------
# Stage C: the CVU pass + stats assembly.
# ---------------------------------------------------------------------------
@dataclass
class SweepCell:
    """One configuration's complete sweep result."""

    config: LVPConfig
    stats: LVPStats
    outcome_digest: str
    #: Full per-record outcome array (kept only on request: the
    #: differential suite compares it against annotate_trace).
    outcomes: Optional[np.ndarray] = None

    def as_dict(self) -> dict:
        """The JSON-able cell record the sweep document carries."""
        config = self.config
        return {
            "name": config.name,
            "predictor": config.predictor,
            "lvpt_entries": config.lvpt_entries,
            "history_depth": config.history_depth,
            "selection": config.selection,
            "lct_entries": config.lct_entries,
            "lct_bits": config.lct_bits,
            "cvu_entries": config.cvu_entries,
            "index_mode": config.index_mode,
            "ghr_bits": config.ghr_bits,
            "lvpt_tagged": config.lvpt_tagged,
            "outcome_digest": self.outcome_digest,
            "accuracy": round(self.stats.prediction_accuracy, 6),
            "constant_fraction": round(self.stats.constant_fraction, 6),
            "predictable_identified":
                round(self.stats.predictable_identified, 6),
            "unpredictable_identified":
                round(self.stats.unpredictable_identified, 6),
            "counters": self.stats.counters(),
        }


def _stage_c(events: SweepEvents, hits, hit_list: list,
             idxs: list, context: LctContext, config: LVPConfig,
             keep_outcomes: bool) -> SweepCell:
    """Simulate the CVU and assemble one configuration's cell."""
    full, stats = run_stage_c(events, hits, hit_list, idxs, context,
                              config)
    digest = _sha256(np.ascontiguousarray(full).tobytes())
    return SweepCell(config=config, stats=stats, outcome_digest=digest,
                     outcomes=full if keep_outcomes else None)


# ---------------------------------------------------------------------------
# The batched evaluator.
# ---------------------------------------------------------------------------
def evaluate_configs(trace: Trace, configs: Sequence[LVPConfig],
                     keep_outcomes: bool = False,
                     events: Optional[SweepEvents] = None,
                     ) -> list[SweepCell]:
    """Evaluate every configuration in *configs* over one trace decode.

    Returns cells in *configs* order, each bit-identical (outcomes and
    statistics) to ``annotate_trace(trace, config)``.  Perfect-oracle
    and profile-filtered configurations are outside the sweep's factored
    data flow and are rejected.
    """
    for config in configs:
        if config.perfect or config.profile_filter is not None:
            raise ConfigError(
                f"{config.name}: perfect/profile-filtered configurations "
                "cannot be swept (use annotate_trace)")
    if events is None:
        needs_branches = any(c.index_mode == "gshare" for c in configs)
        events = decode_events(trace, branches=needs_branches)
    stage_a: dict[tuple, tuple[np.ndarray, list, list]] = {}
    stage_b: dict[tuple, _LctContext] = {}
    lct_indices: dict[int, np.ndarray] = {}
    cells: list[SweepCell] = []
    for config in configs:
        akey = predictor_key(config)
        a_entry = stage_a.get(akey)
        if a_entry is None:
            hits, idxs = _run_stage_a(events, config)
            a_entry = stage_a[akey] = (hits, idxs, hits.tolist())
        hits, idxs, hit_list = a_entry
        bkey = lct_key(config)
        context = stage_b.get(bkey)
        if context is None:
            lidx = lct_indices.get(config.lct_entries)
            if lidx is None:
                lidx = lct_indices[config.lct_entries] = _pc_indices(
                    events.load_pcs_np, config.lct_entries)
            classes = _run_stage_b(events, hit_list, config.lct_entries,
                                   config.lct_bits, lidx, hits_np=hits)
            context = stage_b[bkey] = _LctContext(hits, classes)
        cells.append(_stage_c(events, hits, hit_list, idxs, context,
                              config, keep_outcomes))
    return cells


# ---------------------------------------------------------------------------
# Sharding across worker processes.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _SweepChunkSpec:
    """Everything a worker needs to evaluate one chunk of the grid."""

    chunk_id: int
    bench: str
    target: str
    scale: str
    cache_dir: Optional[str]
    configs: tuple[LVPConfig, ...]


def _run_sweep_chunk(spec: _SweepChunkSpec) -> list[dict]:
    """Worker entry point: one chunk's cells as JSON-able dicts."""
    from repro.harness.session import Session
    session = Session(scale=spec.scale, benchmarks=(spec.bench,),
                      cache_dir=spec.cache_dir, metrics=False)
    trace = session.trace(spec.bench, spec.target)
    return [cell.as_dict()
            for cell in evaluate_configs(trace, spec.configs)]


def plan_chunks(configs: Sequence[LVPConfig],
                chunk_size: int = DEFAULT_CHUNK_SIZE) -> list[tuple[int, ...]]:
    """Partition grid indices into worker chunks.

    Configurations are grouped by stage-B key before splitting, so a
    chunk's members share stage-A/B passes instead of scattering one
    predictor family across every worker.  Returns tuples of indices
    into *configs*; deterministic for a given grid (the sweep journal
    records the plan and resume verifies it).
    """
    order = sorted(range(len(configs)),
                   key=lambda i: (lct_key(configs[i]), i))
    size = max(1, int(chunk_size))
    return [tuple(order[start:start + size])
            for start in range(0, len(order), size)]


class SweepObserver:
    """Parent-side progress hooks (the sweep journal implements these)."""

    def chunk_started(self, spec: _SweepChunkSpec) -> None:
        """*spec* was handed to a worker (or the in-process runner)."""

    def chunk_finished(self, spec: _SweepChunkSpec,
                       cells: list[dict]) -> None:
        """*spec* completed; *cells* is its full payload."""


def run_sweep(bench: str, configs: Sequence[LVPConfig], *,
              target: str = "ppc", scale: str = "small",
              jobs: int = 1, cache_dir: Optional[str] = None,
              chunk_size: int = DEFAULT_CHUNK_SIZE,
              observer: Optional[SweepObserver] = None,
              preloaded: Optional[dict] = None,
              progress: Optional[Callable[[str], None]] = None) -> dict:
    """Evaluate *configs* over *bench*'s trace; returns the sweep document.

    ``jobs > 1`` shards grid chunks across a process pool (each worker
    decodes the trace once -- a cache hit after the first -- and
    evaluates its whole chunk against that decode); results merge in
    grid order, so the document is bit-identical to a serial run.
    ``preloaded`` maps chunk ids to already-computed cell payloads
    (from a resumed sweep journal): those chunks are not re-run.
    """
    observer = observer or SweepObserver()
    preloaded = dict(preloaded or {})
    chunks = plan_chunks(configs, chunk_size)
    specs = [
        _SweepChunkSpec(chunk_id=i, bench=bench, target=target,
                        scale=scale, cache_dir=cache_dir,
                        configs=tuple(configs[j] for j in indices))
        for i, indices in enumerate(chunks)
    ]
    todo = [spec for spec in specs if spec.chunk_id not in preloaded]
    payloads: dict[int, list[dict]] = dict(preloaded)
    start = time.perf_counter()

    def _note(message: str) -> None:
        if progress is not None:
            progress(message)

    if jobs <= 1 or len(todo) <= 1:
        for spec in todo:
            observer.chunk_started(spec)
            cells = _run_sweep_chunk(spec)
            payloads[spec.chunk_id] = cells
            observer.chunk_finished(spec, cells)
            _note(f"chunk {spec.chunk_id + 1}/{len(specs)}: "
                  f"{len(cells)} configs")
    else:
        from concurrent.futures import ProcessPoolExecutor, as_completed
        workers = min(jobs, len(todo))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for spec in todo:
                observer.chunk_started(spec)
                futures[pool.submit(_run_sweep_chunk, spec)] = spec
            for future in as_completed(futures):
                spec = futures[future]
                cells = future.result()
                payloads[spec.chunk_id] = cells
                observer.chunk_finished(spec, cells)
                _note(f"chunk {spec.chunk_id + 1}/{len(specs)}: "
                      f"{len(cells)} configs")

    # Merge back into grid order (never completion order).
    by_index: dict[int, dict] = {}
    for chunk_id, indices in enumerate(chunks):
        cells = payloads[chunk_id]
        for j, cell in zip(indices, cells):
            by_index[j] = cell
    return {
        "schema": SWEEP_SCHEMA_ID,
        "bench": bench,
        "target": target,
        "scale": scale,
        "configs": len(configs),
        "jobs": int(jobs),
        "wall_s": round(time.perf_counter() - start, 4),
        "cells": [by_index[i] for i in range(len(configs))],
    }


# ---------------------------------------------------------------------------
# The sweep journal (write-ahead, resumable).
# ---------------------------------------------------------------------------
class SweepJournal(SweepObserver):
    """Write-ahead journal for one sweep run directory.

    Same contract as :class:`~repro.harness.journal.RunJournal`, scoped
    to sweep chunks: a chunk is recorded ``planned`` before any worker
    sees it, ``started`` when handed out, and ``done`` only after its
    cell payload is durably checkpointed (JSON, digest-verified on
    resume).  ``REPRO_JOURNAL_CRASH_AFTER=<k>`` hard-exits the parent
    after the k-th checkpoint, same chaos knob as experiment runs.
    """

    def __init__(self, directory, manifest: dict) -> None:
        self.directory = pathlib.Path(directory)
        self.manifest = manifest
        self._checkpoints_done = 0
        try:
            self._crash_after: Optional[int] = max(
                1, int(os.environ[CRASH_AFTER_ENV]))
        except (KeyError, ValueError):
            self._crash_after = None

    @classmethod
    def create(cls, runs_dir, run_id: str, manifest: dict) -> "SweepJournal":
        directory = pathlib.Path(runs_dir) / run_id
        directory.mkdir(parents=True, exist_ok=True)
        (directory / _CHECKPOINTS).mkdir(exist_ok=True)
        manifest = dict(manifest, run_id=run_id,
                        fingerprint=cls.fingerprint(manifest))
        temporary = directory / (_MANIFEST + ".tmp")
        temporary.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        temporary.replace(directory / _MANIFEST)
        journal = cls(directory, manifest)
        journal.append({"type": "run_started", "run_id": run_id})
        for chunk_id in range(manifest.get("chunks", 0)):
            journal.append({"type": "planned", "chunk": chunk_id})
        return journal

    @classmethod
    def open(cls, runs_dir, run_id: str) -> "SweepJournal":
        runs_dir = pathlib.Path(runs_dir)
        if run_id == "latest":
            candidates = sorted(
                entry for entry in runs_dir.iterdir()
                if entry.is_dir() and (entry / _MANIFEST).exists()
            ) if runs_dir.is_dir() else []
            if not candidates:
                raise JournalError(f"no sweep runs under {runs_dir}")
            directory = candidates[-1]
        else:
            directory = runs_dir / run_id
            if not (directory / _MANIFEST).exists():
                raise JournalError(
                    f"no sweep run {run_id!r} under {runs_dir} "
                    "(no manifest); try 'latest'")
        try:
            manifest = json.loads((directory / _MANIFEST).read_text())
        except (OSError, ValueError) as exc:
            raise JournalError(
                f"unreadable manifest in {directory}: {exc}") from exc
        journal = cls(directory, manifest)
        journal.verify_manifest()
        return journal

    @staticmethod
    def fingerprint(manifest: dict) -> str:
        identity = {key: manifest.get(key)
                    for key in ("version", "bench", "target", "scale",
                                "config_names", "chunks", "chunk_size")}
        return _sha256(json.dumps(identity, sort_keys=True).encode())

    def verify_manifest(self) -> None:
        from repro import __version__
        recorded = self.manifest.get("version")
        if recorded != __version__:
            raise JournalError(
                f"sweep run {self.run_id!r} was recorded by repro "
                f"{recorded}, this is {__version__}: start a fresh sweep")
        expected = self.manifest.get("fingerprint")
        if expected and expected != self.fingerprint(self.manifest):
            raise JournalError(
                f"manifest of sweep run {self.run_id!r} does not match "
                "its fingerprint (edited by hand?); refusing to resume")

    @property
    def run_id(self) -> str:
        return self.manifest.get("run_id", self.directory.name)

    @property
    def journal_path(self) -> pathlib.Path:
        return self.directory / _JOURNAL

    def append(self, record: dict) -> None:
        line = _encode_record(record)
        fd = os.open(self.journal_path,
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line)
            try:
                os.fsync(fd)
            except OSError:
                pass
        finally:
            os.close(fd)

    # -- observer hooks ------------------------------------------------------
    def chunk_started(self, spec: _SweepChunkSpec) -> None:
        self.append({"type": "started", "chunk": spec.chunk_id,
                     "configs": len(spec.configs)})

    def chunk_finished(self, spec: _SweepChunkSpec,
                       cells: list[dict]) -> None:
        path = self.directory / _CHECKPOINTS / f"chunk-{spec.chunk_id}.json"
        payload = json.dumps(cells, sort_keys=True,
                             separators=(",", ":")).encode()
        temporary = path.with_suffix(".tmp")
        fd = os.open(temporary, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, payload)
            try:
                os.fsync(fd)
            except OSError:
                pass
        finally:
            os.close(fd)
        temporary.replace(path)
        self.append({"type": "done", "chunk": spec.chunk_id,
                     "digest": _sha256(payload)})
        self._checkpoints_done += 1
        if (self._crash_after is not None
                and self._checkpoints_done >= self._crash_after):
            import contextlib
            import multiprocessing
            for child in multiprocessing.active_children():
                with contextlib.suppress(Exception):
                    child.terminate()
            os._exit(23)

    def finished(self, exit_code: int) -> None:
        self.append({"type": "run_finished", "exit": int(exit_code)})

    def interrupted(self, signum: int) -> None:
        self.append({"type": "interrupted", "signal": int(signum)})

    # -- resumption ----------------------------------------------------------
    def load_checkpoints(self) -> dict[int, list[dict]]:
        """Verified cell payloads of every completed chunk."""
        done: dict[int, str] = {}
        if self.journal_path.exists():
            for record in replay_journal(self.journal_path):
                if record.get("type") == "done":
                    done[int(record["chunk"])] = record.get("digest", "")
        loaded: dict[int, list[dict]] = {}
        for chunk_id, digest in done.items():
            path = self.directory / _CHECKPOINTS / f"chunk-{chunk_id}.json"
            try:
                payload = path.read_bytes()
            except OSError:
                continue
            if _sha256(payload) != digest:
                continue
            try:
                loaded[chunk_id] = json.loads(payload)
            except ValueError:
                continue
        return loaded


def build_sweep_manifest(bench: str, target: str, scale: str,
                         configs: Sequence[LVPConfig],
                         chunk_size: int, jobs: int,
                         cache_dir: Optional[str] = None) -> dict:
    """The manifest for a fresh journaled sweep."""
    from repro import __version__
    return {
        "version": __version__,
        "kind": "sweep",
        "bench": bench,
        "target": target,
        "scale": scale,
        "config_names": [config.name for config in configs],
        "chunks": len(plan_chunks(configs, chunk_size)),
        "chunk_size": int(chunk_size),
        "jobs": int(jobs),
        "cache_dir": cache_dir,
    }


def run_journaled_sweep(bench: str, configs: Sequence[LVPConfig], *,
                        journal: SweepJournal, target: str = "ppc",
                        scale: str = "small", jobs: int = 1,
                        cache_dir: Optional[str] = None,
                        resume: bool = False,
                        progress: Optional[Callable[[str], None]] = None,
                        ) -> dict:
    """Run (or resume) one journaled sweep; returns the sweep document."""
    manifest = journal.manifest
    if resume:
        names = [config.name for config in configs]
        if names != manifest.get("config_names"):
            raise JournalError(
                f"sweep run {journal.run_id!r} was recorded over a "
                "different grid; start a fresh sweep")
    preloaded = journal.load_checkpoints() if resume else {}
    document = run_sweep(
        bench, configs, target=target, scale=scale, jobs=jobs,
        cache_dir=cache_dir,
        chunk_size=int(manifest.get("chunk_size", DEFAULT_CHUNK_SIZE)),
        observer=journal, preloaded=preloaded, progress=progress)
    document["run_id"] = journal.run_id
    return document


# ---------------------------------------------------------------------------
# Sweep document validation + exhibits.
# ---------------------------------------------------------------------------
def validate_sweep(document: dict) -> list[str]:
    """Schema violations in a sweep document (empty = valid)."""
    errors: list[str] = []
    if document.get("schema") != SWEEP_SCHEMA_ID:
        errors.append(f"schema must be {SWEEP_SCHEMA_ID!r}, got "
                      f"{document.get('schema')!r}")
    cells = document.get("cells")
    if not isinstance(cells, list) or not cells:
        errors.append("cells must be a non-empty list")
        return errors
    if document.get("configs") != len(cells):
        errors.append(f"configs={document.get('configs')} does not match "
                      f"{len(cells)} cells")
    for i, cell in enumerate(cells):
        for key in ("name", "predictor", "lvpt_entries", "lct_entries",
                    "lct_bits", "cvu_entries", "outcome_digest",
                    "counters"):
            if key not in cell:
                errors.append(f"cell {i} is missing {key!r}")
                break
    return errors


def _family(cell: dict) -> str:
    if cell["index_mode"] == "gshare":
        return "gshare"
    if cell.get("selection") == "perfect":
        return "history/oracle"
    return cell["predictor"]


def render_sweep(document: dict, top: int = 10) -> str:
    """Human-readable sweep summary: headline + the best cells."""
    from repro.analysis.report import TextTable
    cells = document["cells"]
    # No wall time or job count here: sweep stdout must stay
    # byte-identical across serial, parallel, and resumed runs (the
    # timing goes to stderr, like experiment runs).
    lines = [
        f"sweep of {document['bench']} ({document['target']}, "
        f"{document['scale']}): {document['configs']} configurations"
    ]
    table = TextTable(
        ["config", "family", "accuracy", "const frac", "no-pred"],
        title=f"Top {min(top, len(cells))} configurations by accuracy")
    ranked = sorted(cells, key=lambda c: (-c["accuracy"], c["name"]))
    for cell in ranked[:top]:
        counters = cell["counters"]
        loads = counters["loads"] or 1
        table.add_row([
            cell["name"], _family(cell),
            f"{cell['accuracy']:.4f}",
            f"{cell['constant_fraction']:.4f}",
            f"{counters['no_prediction'] / loads:.4f}",
        ])
    lines.append(table.render())
    return "\n".join(lines)


def render_table3_family(document: dict) -> str:
    """Paper Table 3 family: LCT identification rates across LCT shapes.

    One row per (predictor family, LCT entries, LCT bits), averaged
    over the grid cells sharing that classifier shape.
    """
    from repro.analysis.report import TextTable
    groups: dict[tuple, list[dict]] = {}
    for cell in document["cells"]:
        key = (_family(cell), cell["lct_entries"], cell["lct_bits"])
        groups.setdefault(key, []).append(cell)
    table = TextTable(
        ["family", "LCT entries", "bits", "pred. identified",
         "unpred. identified", "cells"],
        title="LCT classification accuracy by classifier shape "
              "(Table 3 family)")
    for key in sorted(groups):
        cells = groups[key]
        pred = sum(c["predictable_identified"] for c in cells)
        unpred = sum(c["unpredictable_identified"] for c in cells)
        family, entries, bits = key
        table.add_row([
            family, entries, bits,
            f"{pred / len(cells):.4f}",
            f"{unpred / len(cells):.4f}",
            len(cells),
        ])
    return table.render()


def render_table4_family(document: dict) -> str:
    """Paper Table 4 family: constant fraction across CVU capacities."""
    from repro.analysis.report import TextTable
    groups: dict[tuple, list[dict]] = {}
    for cell in document["cells"]:
        key = (_family(cell), cell["lct_bits"], cell["cvu_entries"])
        groups.setdefault(key, []).append(cell)
    table = TextTable(
        ["family", "LCT bits", "CVU entries", "constant fraction",
         "stale hits", "cells"],
        title="Constant-load fraction by CVU capacity (Table 4 family)")
    for key in sorted(groups):
        cells = groups[key]
        fraction = sum(c["constant_fraction"] for c in cells) / len(cells)
        stale = sum(c["counters"]["cvu_stale_hits"] for c in cells)
        family, bits, cvu = key
        table.add_row([family, bits, cvu, f"{fraction:.4f}", stale,
                       len(cells)])
    return table.render()


def render_figure6_family(document: dict) -> str:
    """Paper Figure 6 family: accuracy versus LVPT capacity per family."""
    from repro.analysis.report import TextTable
    groups: dict[tuple, list[dict]] = {}
    for cell in document["cells"]:
        key = (_family(cell), cell["history_depth"], cell["lvpt_entries"])
        groups.setdefault(key, []).append(cell)
    table = TextTable(
        ["family", "depth", "LVPT entries", "accuracy", "coverage",
         "cells"],
        title="Prediction accuracy by LVPT capacity (Figure 6 family)")
    for key in sorted(groups):
        cells = groups[key]
        accuracy = sum(c["accuracy"] for c in cells) / len(cells)
        attempted = loads = 0
        for cell in cells:
            counters = cell["counters"]
            attempted += (counters["predicted_correct"]
                          + counters["constant_loads"]
                          + counters["mispredicts"])
            loads += counters["loads"]
        family, depth, entries = key
        table.add_row([
            family, depth, entries, f"{accuracy:.4f}",
            f"{attempted / loads:.4f}" if loads else "0.0000",
            len(cells),
        ])
    return table.render()


def render_exhibits(document: dict) -> str:
    """All three paperlike sensitivity exhibits."""
    return "\n\n".join([
        render_figure6_family(document),
        render_table3_family(document),
        render_table4_family(document),
    ])


# ---------------------------------------------------------------------------
# BENCH_SWEEP.json: the shared-decode speedup benchmark.
# ---------------------------------------------------------------------------
def run_sweep_bench(bench: str = "compress", scale: str = "tiny",
                    target: str = "ppc", configs: int = 100,
                    baseline_sample: int = 20,
                    progress: Optional[Callable[[str], None]] = None,
                    ) -> dict:
    """Measure the sweep's shared-decode speedup; returns the document.

    The baseline is per-configuration :func:`annotate_trace` over the
    same trace (each call re-decoding and re-walking everything).  To
    keep the benchmark affordable the baseline times a deterministic
    sample of the grid and scales to the full count; the sweep side
    always evaluates the full grid.  Differential equality of every
    timed cell against its standalone run is asserted while measuring
    -- a fast sweep that drifted would be worthless.
    """
    from repro.harness.session import Session
    from repro.lvp.grid import sensitivity_grid
    from repro.trace.annotate import annotate_trace

    def _note(message: str) -> None:
        if progress is not None:
            progress(message)

    grid = sensitivity_grid()[:configs]
    if len(grid) < configs:
        raise ConfigError(
            f"sensitivity grid has only {len(grid)} configurations; "
            f"{configs} requested")
    session = Session(scale=scale, benchmarks=(bench,), metrics=False)
    trace = session.trace(bench, target)
    _note(f"trace ready: {bench}/{target}/{scale} "
          f"({len(trace):,} records)")

    sweep_start = time.perf_counter()
    cells = evaluate_configs(trace, grid)
    sweep_s = time.perf_counter() - sweep_start
    _note(f"sweep: {len(grid)} configs in {sweep_s:.2f}s")

    # Deterministic sample: every k-th config covers all families.
    step = max(1, len(grid) // max(1, baseline_sample))
    sample = list(range(0, len(grid), step))[:baseline_sample]
    base_start = time.perf_counter()
    for index in sample:
        annotated = annotate_trace(trace, grid[index])
        digest = _sha256(
            np.ascontiguousarray(annotated.outcomes).tobytes())
        if digest != cells[index].outcome_digest:
            raise AssertionError(
                f"sweep cell {grid[index].name} diverged from "
                "annotate_trace while benchmarking")
    sampled_s = time.perf_counter() - base_start
    baseline_s = sampled_s * (len(grid) / len(sample))
    _note(f"baseline: {len(sample)} standalone annotates in "
          f"{sampled_s:.2f}s (x{len(grid) / len(sample):.1f} scaled)")

    return {
        "schema": SWEEP_BENCH_SCHEMA_ID,
        "bench": bench,
        "target": target,
        "scale": scale,
        "configs": len(grid),
        "baseline_sample": len(sample),
        "baseline_s": round(baseline_s, 4),
        "sweep_s": round(sweep_s, 4),
        "speedup": round(baseline_s / sweep_s, 4) if sweep_s else 0.0,
        "trace_digest": trace_digest(trace),
    }


#: The minimum shared-decode speedup the acceptance gate requires.
SWEEP_SPEEDUP_FLOOR = 3.0


def validate_sweep_bench(document: dict) -> list[str]:
    """Schema violations in a BENCH_SWEEP document (empty = valid)."""
    errors: list[str] = []
    if document.get("schema") != SWEEP_BENCH_SCHEMA_ID:
        errors.append(f"schema must be {SWEEP_BENCH_SCHEMA_ID!r}, got "
                      f"{document.get('schema')!r}")
    for key in ("bench", "scale", "configs", "baseline_s", "sweep_s",
                "speedup"):
        if key not in document:
            errors.append(f"missing key {key!r}")
    configs = document.get("configs")
    if isinstance(configs, int) and configs < 100:
        errors.append(f"configs must be >= 100, got {configs}")
    for key in ("baseline_s", "sweep_s", "speedup"):
        value = document.get(key)
        if value is not None and (
                not isinstance(value, (int, float)) or value <= 0):
            errors.append(f"{key} must be a positive number, got {value!r}")
    return errors


def compare_sweep_bench(document: dict, baseline: dict,
                        threshold: float = 2.0,
                        floor: float = SWEEP_SPEEDUP_FLOOR) -> list[str]:
    """Regressions of *document* against *baseline* (empty = pass).

    Two gates: the absolute speedup floor (the acceptance criterion --
    shared decode must stay >= *floor* x per-config annotation), and a
    relative gate against the committed baseline's speedup (a drop by
    more than *threshold* x fails even above the floor).
    """
    regressions: list[str] = []
    speedup = float(document.get("speedup", 0.0))
    if speedup < floor:
        regressions.append(
            f"shared-decode speedup {speedup:.2f}x is below the "
            f"{floor:g}x floor")
    recorded = float(baseline.get("speedup", 0.0))
    if recorded and speedup * threshold < recorded:
        regressions.append(
            f"shared-decode speedup {speedup:.2f}x regressed more than "
            f"{threshold:g}x against the recorded {recorded:.2f}x")
    return regressions


def render_sweep_bench(document: dict) -> str:
    """One-paragraph summary of a BENCH_SWEEP document."""
    return (
        f"sweep bench: {document['configs']} configs over "
        f"{document['bench']}/{document['scale']}: "
        f"sweep {document['sweep_s']:.2f}s vs per-config annotate "
        f"{document['baseline_s']:.2f}s (sampled x"
        f"{document.get('baseline_sample', 0)}) -> "
        f"{document['speedup']:.2f}x shared-decode speedup")


def write_sweep_bench(document: dict, path) -> None:
    """Atomically write a BENCH_SWEEP document."""
    path = pathlib.Path(path)
    temporary = path.with_suffix(path.suffix + ".tmp")
    temporary.write_text(json.dumps(document, indent=2, sort_keys=True)
                         + "\n")
    temporary.replace(path)


def load_sweep_bench(path) -> dict:
    """Read a BENCH_SWEEP document (OSError/ValueError propagate)."""
    return json.loads(pathlib.Path(path).read_text())
