"""Guarded tier execution: divergence sentinels + degradation ladder.

PR 5 made the fast tiers (compiled VRISC blocks, the monomorphic
annotate kernel, the fast timing loops) the default, with their
original implementations kept as differential oracles.  This module
puts those oracles to work *at run time*:

**Divergence sentinels.**  A seeded, label-keyed sampler re-executes a
configurable fraction of work units (``REPRO_SENTINEL_RATE``, default
5%) on the oracle tier and compares the results field-for-field.  A
mismatch raises :class:`~repro.errors.TierDivergenceError` -- which the
guard immediately catches itself, because the right response to a
wrong fast tier is not a failed benchmark but a *demotion*.

**Degradation ladder.**  On divergence, any fault, or a watchdog
timeout inside a fast tier, the guard demotes the unit's (benchmark,
stage, target) one rung down its ladder -- compiled→interp,
vector→mono→general, fast-model→reference -- retries in place, and
records a :class:`TierDemotion`: counted in the ``repro.obs``
benchmark scope (``tier/<stage>/...``), journalled by the run journal,
and rendered as a "Tier notes" block under the exhibit.  The demotion
is sticky for the session, so a bad compiled block cannot keep
corrupting its benchmark's later units; a key demoted mid-ladder
(vector→mono) keeps the remaining rungs guarded, so a later divergence
can walk it the rest of the way to the oracle.

Sampling is keyed by ``crc32(seed:label)`` on the unit's stable label,
never by call order, so serial and parallel runs sample (and demote)
identically and the byte-identical-stdout contract holds.

When a tier is *pinned* via its environment knob (``REPRO_ENGINE``,
``REPRO_ANNOTATE_KERNEL``, ``REPRO_MODEL_ENGINE``) the guard steps
aside entirely: an explicitly requested tier is what the user measures
(the differential CI jobs rely on this), and pinning the oracle tier
is exactly how one produces the demotion-free comparison run.

Chaos knob: ``REPRO_TIER_FAULT=<benchmark>[:<stage>]`` deterministically
corrupts that benchmark's fast-tier result (via
:func:`repro.faults.inject.inject_tier_fault`) and forces the sentinel
to sample the unit, so the detect→demote→retry path can be drilled at
any sampling rate.
"""

from __future__ import annotations

import dataclasses
import os
import warnings
import zlib
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import (
    BenchmarkFailure,
    RetryableError,
    TierDivergenceError,
    UnitTimeoutError,
)
from repro.trace.records import TRACE_COLUMNS

#: Fraction of units the sentinel re-executes on the oracle tier.
SENTINEL_RATE_ENV = "REPRO_SENTINEL_RATE"
DEFAULT_SENTINEL_RATE = 0.05

#: Seed mixed into the per-label sampling hash.
SENTINEL_SEED_ENV = "REPRO_SENTINEL_SEED"

#: Chaos knob: corrupt one benchmark's fast-tier result at one stage
#: (default ``trace``) and force the sentinel to check that unit.
TIER_FAULT_ENV = "REPRO_TIER_FAULT"

#: stage -> (fastest tier, ..., oracle tier): the degradation ladder.
#: Demotions step one rung at a time; the last entry is the oracle.
TIER_LADDER = {
    "trace": ("compiled", "interp"),
    "annotate": ("vector", "mono", "general"),
    "model": ("fast", "reference"),
}

#: stage -> the env knob that pins its tier (guard steps aside if set).
_PIN_ENVS = {
    "trace": "REPRO_ENGINE",
    "annotate": "REPRO_ANNOTATE_KERNEL",
    "model": "REPRO_MODEL_ENGINE",
}


def sentinel_rate() -> float:
    """The configured sampling fraction, clamped to [0, 1].

    A malformed ``REPRO_SENTINEL_RATE`` warns (naming the bad value)
    and falls back to the default rather than silently disarming the
    sentinels -- the same contract as
    :meth:`~repro.harness.retry.RetryPolicy.from_env`.
    """
    raw = os.environ.get(SENTINEL_RATE_ENV)
    if raw is None:
        return DEFAULT_SENTINEL_RATE
    try:
        rate = float(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed {SENTINEL_RATE_ENV}={raw!r} "
            f"(expected a number); using the default",
            RuntimeWarning, stacklevel=2)
        return DEFAULT_SENTINEL_RATE
    return min(1.0, max(0.0, rate))


def sentinel_seed() -> int:
    try:
        return int(os.environ[SENTINEL_SEED_ENV])
    except (KeyError, ValueError):
        return 0


def sentinel_samples(label: str) -> bool:
    """Deterministic per-unit sampling decision.

    Keyed on the unit's stable label (never call order), so the same
    units are checked no matter how work is scheduled across workers.
    """
    rate = sentinel_rate()
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    digest = zlib.crc32(f"{sentinel_seed()}:{label}".encode()) & 0xFFFFFFFF
    return digest / 2**32 < rate


def tier_fault_matches(benchmark: str, stage: str) -> bool:
    """Does ``REPRO_TIER_FAULT`` target this benchmark's stage?"""
    knob = os.environ.get(TIER_FAULT_ENV)
    if not knob:
        return False
    victim, _, victim_stage = knob.partition(":")
    return victim == benchmark and (victim_stage or "trace") == stage


@dataclass(frozen=True)
class TierDemotion:
    """One unit demoted from a fast tier to its oracle tier."""

    benchmark: str
    stage: str
    target: str
    unit: str  #: stable unit label, e.g. ``grep/annotate/ppc/Simple``
    from_tier: str
    to_tier: str
    reason: str

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    @property
    def note(self) -> str:
        """One exhibit-footnote line for this demotion."""
        reason = self.reason
        if len(reason) > 72:
            reason = reason[:69] + "..."
        return (f"  ~ {self.benchmark} [{self.target}] {self.stage} tier "
                f"demoted {self.from_tier} -> {self.to_tier} ({reason})")


#: The exhibit-text block header demotions render under.
_NOTES_HEADER = "\n\nTier notes:"


def tier_notes(demotions) -> str:
    """The "Tier notes" exhibit block (empty string if no demotions).

    Lines are de-duplicated and sorted so the block is identical no
    matter which scheduling order discovered the demotions.
    """
    if not demotions:
        return ""
    lines = sorted({d.note for d in demotions})
    return _NOTES_HEADER + "\n" + "\n".join(lines)


def strip_tier_notes(text: str) -> str:
    """Remove any "Tier notes" block from exhibit text.

    The block is strictly additive, so stripping it from a degraded
    run's output must yield the oracle-only run's bytes -- the property
    the chaos drills and the differential tests assert.
    """
    import re
    return re.sub(r"\n\nTier notes:(?:\n  ~ [^\n]*)+", "", text)


# ---------------------------------------------------------------------------
# Field-for-field comparators (one per stage).
# ---------------------------------------------------------------------------
def _diff_values(name: str, fast, oracle, problems: list) -> None:
    """Append a difference line if two field values disagree.

    numpy-aware: array fields compare element-wise; everything else
    falls back to ``==`` (dataclasses, dicts of ints, scalars).
    """
    if isinstance(fast, np.ndarray) or isinstance(oracle, np.ndarray):
        if not np.array_equal(fast, oracle):
            problems.append(f"field {name!r} differs")
        return
    try:
        equal = bool(fast == oracle)
    except Exception:
        equal = repr(fast) == repr(oracle)
    if not equal:
        problems.append(f"field {name!r} differs: {fast!r} != {oracle!r}")


def diff_executions(fast, oracle) -> list[str]:
    """Differences between two functional-sim ExecutionResults."""
    problems: list[str] = []
    _diff_values("instruction_count", fast.instruction_count,
                 oracle.instruction_count, problems)
    _diff_values("registers", list(fast.registers), list(oracle.registers),
                 problems)
    if len(fast.trace) != len(oracle.trace):
        problems.append(
            f"trace length differs: {len(fast.trace)} != "
            f"{len(oracle.trace)}")
        return problems
    for key, _ in TRACE_COLUMNS:
        if not np.array_equal(getattr(fast.trace, key),
                              getattr(oracle.trace, key)):
            problems.append(f"trace column {key!r} differs")
    return problems


def diff_annotations(fast, oracle) -> list[str]:
    """Differences between two AnnotatedTraces (outcomes + stats)."""
    problems: list[str] = []
    if not np.array_equal(fast.outcomes, oracle.outcomes):
        problems.append("per-load outcomes differ")
    for field in dataclasses.fields(fast.stats):
        _diff_values(f"stats.{field.name}",
                     getattr(fast.stats, field.name),
                     getattr(oracle.stats, field.name), problems)
    return problems


def diff_model_results(fast, oracle) -> list[str]:
    """Differences between two timing-model results, every field."""
    problems: list[str] = []
    for name in sorted(set(vars(fast)) | set(vars(oracle))):
        _diff_values(name, vars(fast).get(name), vars(oracle).get(name),
                     problems)
    return problems


_DIFFERS = {
    "trace": diff_executions,
    "annotate": diff_annotations,
    "model": diff_model_results,
}


# ---------------------------------------------------------------------------
# The guard.
# ---------------------------------------------------------------------------
class TierGuard:
    """Per-session sentinel + ladder for the three guarded stages.

    Holds the sticky demotion table: once a (benchmark, stage, target)
    is demoted, every later unit of that key runs straight on the
    oracle tier.
    """

    def __init__(self, session) -> None:
        self.session = session
        #: (benchmark, stage, target) -> TierDemotion
        self._demoted: dict = {}

    # -- public stage runners ------------------------------------------------
    def run_trace(self, name: str, target: str, program):
        """Functional simulation with the compiled→interp ladder."""
        from repro.sim.functional import run_program

        def run(engine: str):
            return run_program(program, name=name, target=target,
                               engine=engine)

        return self._guarded(name, "trace", target,
                             f"{name}/trace/{target}", run)

    def run_annotate(self, name: str, target: str, trace, config):
        """Annotation with the vector→mono→general ladder.

        The ladder is filtered to the config's eligible kernels: deep
        histories drop the ``vector`` rung, and configurations the
        monomorphic kernel cannot handle either (Perfect, stride, ...)
        resolve to the general path anyway, so the guard runs them
        directly -- there is no faster tier to verify.
        """
        from repro.trace.annotate import (
            annotate_trace,
            mono_eligible,
            vector_eligible,
        )

        def run(kernel: str):
            return annotate_trace(trace, config, kernel=kernel)

        tiers = ["general"]
        if mono_eligible(config):
            tiers.insert(0, "mono")
            if vector_eligible(config):
                tiers.insert(0, "vector")
        if len(tiers) == 1:
            return self._pinned(name, "annotate", run, None)
        return self._guarded(name, "annotate", target,
                             f"{name}/annotate/{target}/{config.name}", run,
                             tiers=tuple(tiers))

    def run_model(self, name: str, target: str, label: str,
                  runner: Callable):
        """Timing model with the fast→reference ladder.

        *runner* is called as ``runner(engine)`` and must build a fresh
        model each time (models are cheap config holders; their state
        lives inside ``run``).
        """
        return self._guarded(name, "model", target, label, runner)

    @property
    def demotions(self) -> list:
        return list(self._demoted.values())

    # -- internals -----------------------------------------------------------
    def _pinned(self, name: str, stage: str, run: Callable, pinned):
        """Run outside the guard (tier pinned by env or ineligible)."""
        return run(pinned)

    def _guarded(self, name: str, stage: str, target: str, label: str,
                 run: Callable, tiers: Optional[tuple] = None):
        if tiers is None:
            tiers = TIER_LADDER[stage]
        if os.environ.get(_PIN_ENVS[stage]):
            # An explicitly pinned tier is what the user asked to
            # measure: no sentinel, no ladder.  (This is also how the
            # oracle-only comparison run is produced.)
            return self._pinned(name, stage, run, None)
        key = (name, stage, target)
        demotion = self._demoted.get(key)
        if demotion is not None:
            # Sticky: resume the ladder at the rung the key was demoted
            # to (the remaining rungs stay guarded against the oracle).
            if demotion.to_tier in tiers:
                tiers = tiers[tiers.index(demotion.to_tier):]
            else:
                tiers = tiers[-1:]
        return self._run_ladder(key, label, run, tuple(tiers))

    def _run_ladder(self, key, label: str, run: Callable, tiers: tuple):
        """Run one unit on the fastest rung of *tiers*, sentinel-checked
        against the oracle (the last rung); demote one rung and retry in
        place on fault or divergence."""
        name, stage, target = key
        fast_tier = tiers[0]
        oracle_tier = tiers[-1]
        if len(tiers) == 1:
            return run(oracle_tier)
        forced = tier_fault_matches(name, stage)
        try:
            result = run(fast_tier)
        except (BenchmarkFailure, RetryableError,
                KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            # Fault or watchdog timeout inside the fast tier: demote
            # one rung and retry in place down the remaining ladder.
            # An oracle failure propagates normally (footnoted like
            # any failure).
            self._demote(key, label, fast_tier, tiers[1],
                         f"{type(exc).__name__}: {exc}")
            if isinstance(exc, UnitTimeoutError):
                # The watchdog alarm fired and was consumed -- re-arm
                # it around the retry so a unit that genuinely hangs
                # still stays bounded.
                return self._rearmed(
                    lambda: self._run_ladder(key, label, run, tiers[1:]),
                    name, stage, target)
            return self._run_ladder(key, label, run, tiers[1:])
        if forced:
            from repro.faults.inject import inject_tier_fault
            result = inject_tier_fault(stage, result)
        if forced or sentinel_samples(label):
            self._count(name, stage, "sentinel_checks")
            oracle = run(oracle_tier)
            try:
                differences = _DIFFERS[stage](result, oracle)
                if differences:
                    raise TierDivergenceError(stage, label, differences)
            except TierDivergenceError as exc:
                self._count(name, stage, "divergences")
                self._demote(key, label, fast_tier, tiers[1], str(exc))
                return oracle  # already computed; the demotion is sticky
        return result

    def _rearmed(self, thunk: Callable, name: str, stage: str,
                 target: str):
        """Run *thunk* under a fresh unit watchdog (the previous alarm
        has already fired and been consumed)."""
        from repro.harness.parallel import WorkUnit, _unit_watchdog
        seconds = float(getattr(self.session, "unit_timeout", 0.0) or 0.0)
        unit = WorkUnit(name, stage, target)
        with _unit_watchdog(seconds, unit):
            return thunk()

    def _demote(self, key, label: str, from_tier: str, to_tier: str,
                reason: str) -> None:
        name, stage, target = key
        demotion = TierDemotion(
            benchmark=name, stage=stage, target=target, unit=label,
            from_tier=from_tier, to_tier=to_tier, reason=reason)
        self._demoted[key] = demotion
        self.session.demotions.append(demotion)
        self._count(name, stage, "demotions")

    def _count(self, name: str, stage: str, counter: str) -> None:
        metrics = getattr(self.session, "metrics", None)
        if metrics is not None:
            # Benchmark scope: sampling is label-keyed, so these are
            # scheduling-independent (the serial/parallel metrics
            # equality the obs suite asserts).
            metrics.inc(name, f"tier/{stage}/{counter}")
