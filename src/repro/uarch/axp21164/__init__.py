"""Alpha AXP 21164 in-order timing model."""

from repro.uarch.axp21164.config import AXP21164, AXP21164Config
from repro.uarch.axp21164.model import AXP21164Model, AXP21164Result

__all__ = ["AXP21164", "AXP21164Config", "AXP21164Model", "AXP21164Result"]
