"""Trace-driven timing model of the Alpha AXP 21164 (paper Section 4.2).

A strictly in-order, 4-wide issue model ("speed demon"):

* per-cycle slotting limits: 2 integer pipes, 2 FP pipes, a dual-ported
  L1 (2 loads), 1 store, 1 branch;
* issue is in order -- a stalled instruction blocks everything younger;
* no MAF: an L1 miss blocks issue until serviced (the paper removes the
  miss address file from both baseline and LVP configurations);
* 2-bit BHT branch prediction with a 4-cycle misprediction penalty.

LVP behaviour follows the paper:

* predicted loads forward their value at issue -- a "zero-cycle load" --
  so dependents issue without waiting for the cache;
* loads that miss the L1 cannot be predicted; the machine returns to
  the non-speculative state before the miss is serviced, so there is no
  penalty (the load simply behaves unpredicted) -- **except** loads the
  CVU verifies as constants, which proceed despite the miss and skip
  the memory system entirely;
* a value misprediction squashes every in-flight instruction (the whole
  dispatch group and younger) and redispatches from the reissue buffer
  with a single-cycle penalty beyond the compare stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode, OpClass
from repro.isa.registers import NUM_REGS
from repro.lvp.unit import LoadOutcome
from repro.trace.annotate import NOT_A_LOAD, AnnotatedTrace
from repro.uarch.axp21164.config import AXP21164Config
from repro.uarch.components.branch import BranchPredictor, BranchStats
from repro.uarch.components.cache import Cache, CacheStats, MemoryHierarchy
from repro.uarch.components.latencies import AXP21164_LATENCY
from repro.uarch.engine import (
    BRANCH_KIND,
    latency_arrays,
    resolve_model_engine,
)

# Flat lookup tables for the fast scheduling loop.
_LAT_ISSUE, _LAT_RESULT = latency_arrays(AXP21164_LATENCY)
_OP_HALT = int(Opcode.HALT)


def _slot_kinds() -> list[int]:
    """Per-opclass issue-slot category: int/fp/load/store/branch."""
    kinds = [4] * (max(int(c) for c in OpClass) + 1)
    for cls in OpClass:
        if cls in (OpClass.SIMPLE_INT, OpClass.COMPLEX_INT):
            kinds[int(cls)] = 0
        elif cls in (OpClass.FP_SIMPLE, OpClass.FP_COMPLEX):
            kinds[int(cls)] = 1
        elif cls is OpClass.LOAD:
            kinds[int(cls)] = 2
        elif cls is OpClass.STORE:
            kinds[int(cls)] = 3
    return kinds


_SLOT_KIND = _slot_kinds()


@dataclass
class AXP21164Result:
    """Measurements of one 21164 run."""

    config_name: str
    lvp_name: str
    instructions: int
    cycles: int
    l1_stats: CacheStats
    branch_stats: BranchStats
    loads: int = 0
    load_outcomes: dict = field(default_factory=dict)
    constant_past_miss: int = 0  # CVU saves across an L1 miss
    value_mispredicts: int = 0

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_miss_rate_per_instruction(self) -> float:
        """L1 misses per instruction (the paper quotes this metric)."""
        if not self.instructions:
            return 0.0
        return self.l1_stats.misses / self.instructions

    def counters(self) -> dict[str, int]:
        """Observability counters (see docs/observability.md)."""
        l1 = self.l1_stats
        branches = self.branch_stats
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "loads": self.loads,
            "l1_accesses": l1.accesses,
            "l1_misses": l1.misses,
            "l1_hits": l1.accesses - l1.misses,
            "branches": branches.conditional + branches.indirect,
            "branch_mispredicts": branches.mispredicts,
            "value_mispredicts": self.value_mispredicts,
            "constant_past_miss": self.constant_past_miss,
        }


class AXP21164Model:
    """In-order 21164 pipeline model with optional LVP annotations."""

    def __init__(self, config: AXP21164Config = AXP21164Config()) -> None:
        self.config = config

    def run(self, annotated: AnnotatedTrace, use_lvp: bool = True,
            engine: str | None = None) -> AXP21164Result:
        """Schedule the whole trace; returns the run's measurements.

        ``engine`` selects the scheduling loop: ``"reference"`` is the
        original component-object implementation, ``"fast"`` inlines
        the same arithmetic (bit-identical; held so by the differential
        suite in ``tests/uarch``), and ``"auto"`` (default) picks the
        fast loop.  ``REPRO_MODEL_ENGINE`` overrides.
        """
        if resolve_model_engine(engine) == "fast":
            return self._run_fast(annotated, use_lvp)
        return self._run_reference(annotated, use_lvp)

    def _run_reference(self, annotated: AnnotatedTrace,
                       use_lvp: bool = True) -> AXP21164Result:
        """The original scheduling loop (the oracle for ``fast``)."""
        config = self.config
        trace = annotated.trace
        opcodes = trace.opcode.tolist()
        opclasses = trace.opclass.tolist()
        dsts = trace.dst.tolist()
        src1s = trace.src1.tolist()
        src2s = trace.src2.tolist()
        addrs = trace.addr.tolist()
        takens = trace.taken.tolist()
        pcs = trace.pc.tolist()
        outcome_list = annotated.outcomes.tolist()
        count = len(opcodes)

        latency = AXP21164_LATENCY
        opcode_enum = [Opcode(o) for o in range(1, len(Opcode) + 1)]

        hierarchy = MemoryHierarchy(
            Cache(config.l1_size, config.l1_assoc, config.l1_line),
            Cache(config.l2_size, config.l2_assoc, config.l1_line),
            l2_latency=config.l2_latency,
            memory_latency=config.memory_latency,
        )
        icache = (Cache(config.icache_size, config.icache_assoc,
                        config.l1_line)
                  if config.icache_size else None)
        predictor = BranchPredictor()

        reg_ready: dict[int, int] = {}
        store_ready: dict[int, int] = {}

        cycle = 0  # current issue cycle
        slots_total = 0
        slots_int = 0
        slots_fp = 0
        slots_load = 0
        slots_store = 0
        slots_branch = 0
        stall_until = 0  # blocking miss / squash / branch redirect
        last_issue = 0
        last_result = 0

        outcome_counts = {o: 0 for o in LoadOutcome}
        num_loads = 0
        constant_past_miss = 0
        value_mispredicts = 0

        INT_CLASSES = (int(OpClass.SIMPLE_INT), int(OpClass.COMPLEX_INT))
        FP_CLASSES = (int(OpClass.FP_SIMPLE), int(OpClass.FP_COMPLEX))

        for i in range(count):
            opclass = opclasses[i]
            opcode = opcode_enum[opcodes[i] - 1]
            lat = latency[opcode]

            # operand readiness (dependents of predicted loads see the
            # forwarded value "at zero cycles", handled at the producer)
            ready = 0
            for src in (src1s[i], src2s[i]):
                if src > 0:
                    ready = max(ready, reg_ready.get(src, 0))
            if opclass == int(OpClass.LOAD):
                dep = store_ready.get(addrs[i] & ~7, 0)
                ready = max(ready, dep)

            candidate = max(cycle, ready, stall_until, last_issue)
            if icache is not None and not icache.access(pcs[i]):
                # Instruction-cache miss: the in-order front end stalls.
                candidate += config.l2_latency
            # in-order slotting
            while True:
                if candidate > cycle:
                    cycle = candidate
                    slots_total = slots_int = slots_fp = 0
                    slots_load = slots_store = slots_branch = 0
                full = slots_total >= config.issue_width
                if not full:
                    if opclass in INT_CLASSES:
                        full = slots_int >= config.int_per_cycle
                    elif opclass in FP_CLASSES:
                        full = slots_fp >= config.fp_per_cycle
                    elif opclass == int(OpClass.LOAD):
                        full = slots_load >= config.loads_per_cycle
                    elif opclass == int(OpClass.STORE):
                        full = slots_store >= config.stores_per_cycle
                    else:
                        full = slots_branch >= config.branches_per_cycle
                if not full:
                    break
                candidate += 1
            issue = candidate
            slots_total += 1
            if opclass in INT_CLASSES:
                slots_int += 1
            elif opclass in FP_CLASSES:
                slots_fp += 1
            elif opclass == int(OpClass.LOAD):
                slots_load += 1
            elif opclass == int(OpClass.STORE):
                slots_store += 1
            else:
                slots_branch += 1
            last_issue = issue

            # ---- execute ----------------------------------------------------
            result_time = issue + lat.result
            if opclass == int(OpClass.LOAD):
                num_loads += 1
                outcome = outcome_list[i]
                if use_lvp and outcome == int(LoadOutcome.CONSTANT):
                    # CVU-verified: skip the memory system; proceed even
                    # if the line is absent.  (Bandwidth benefit.)
                    if not hierarchy.l1.probe(addrs[i]):
                        constant_past_miss += 1
                    result_time = issue  # zero-cycle load
                    outcome_counts[LoadOutcome.CONSTANT] += 1
                else:
                    penalty = hierarchy.load_penalty(addrs[i])
                    if penalty:
                        # Miss: prediction abandoned with no penalty.
                        # Without a MAF (the paper's modification) the
                        # whole pipeline stalls; with one, only
                        # dependents wait for the returning line.
                        result_time = issue + lat.result + penalty
                        if not config.maf:
                            stall_until = max(stall_until, result_time)
                        if use_lvp and outcome != NOT_A_LOAD:
                            outcome_counts[LoadOutcome.NO_PREDICTION] += 1
                    elif use_lvp and outcome == int(LoadOutcome.CORRECT):
                        result_time = issue  # zero-cycle load
                        outcome_counts[LoadOutcome.CORRECT] += 1
                    elif use_lvp and outcome == int(LoadOutcome.INCORRECT):
                        # Squash everything in flight; redispatch after
                        # the compare stage with a one-cycle penalty.
                        value_mispredicts += 1
                        restart = (issue + lat.result
                                   + config.value_mispredict_penalty)
                        stall_until = max(stall_until, restart)
                        result_time = issue + lat.result
                        outcome_counts[LoadOutcome.INCORRECT] += 1
                    elif use_lvp and outcome != NOT_A_LOAD:
                        outcome_counts[LoadOutcome(outcome)] += 1
            elif opclass == int(OpClass.STORE):
                hierarchy.store_access(addrs[i])
                store_ready[addrs[i] & ~7] = issue + lat.result
            elif opclass == int(OpClass.BRANCH) and opcode != Opcode.HALT:
                target = pcs[i + 1] if i + 1 < count else 0
                correct = predictor.predict_and_update(
                    opcode, pcs[i], bool(takens[i]), target)
                if not correct:
                    stall_until = max(
                        stall_until,
                        issue + 1 + config.mispredict_penalty,
                    )

            dst = dsts[i]
            if dst > 0:
                reg_ready[dst] = result_time
            last_result = max(last_result, result_time)
            if len(store_ready) > 4096:
                store_ready.clear()

        # drain the pipe (writeback stages)
        cycles = max(last_issue, last_result) + 4
        return AXP21164Result(
            config_name=config.name,
            lvp_name=annotated.config.name if use_lvp else "none",
            instructions=count,
            cycles=cycles,
            l1_stats=hierarchy.l1.stats,
            branch_stats=predictor.stats,
            loads=num_loads,
            load_outcomes=outcome_counts,
            constant_past_miss=constant_past_miss,
            value_mispredicts=value_mispredicts,
        )

    def _run_fast(self, annotated: AnnotatedTrace,
                  use_lvp: bool = True) -> AXP21164Result:
        """The inlined scheduling loop (bit-identical to ``reference``).

        Same arithmetic as :meth:`_run_reference`, with latency and
        slot-category lookups flattened to lists, the register
        scoreboard as a list, and the cache and branch-predictor state
        inlined as local variables.
        """
        config = self.config
        trace = annotated.trace
        opcodes = trace.opcode.tolist()
        opclasses = trace.opclass.tolist()
        dsts = trace.dst.tolist()
        src1s = trace.src1.tolist()
        src2s = trace.src2.tolist()
        addrs = trace.addr.tolist()
        takens = trace.taken.tolist()
        pcs = trace.pc.tolist()
        outcome_list = annotated.outcomes.tolist()
        count = len(opcodes)

        lat_result = _LAT_RESULT
        slot_kind = _SLOT_KIND
        branch_kind = BRANCH_KIND
        op_halt = _OP_HALT
        cls_branch = int(OpClass.BRANCH)

        l1 = Cache(config.l1_size, config.l1_assoc, config.l1_line)
        l2 = Cache(config.l2_size, config.l2_assoc, config.l1_line)
        l1_sets, l1_nsets, l1_assoc = l1._sets, l1.num_sets, l1.assoc
        l2_sets, l2_nsets, l2_assoc = l2._sets, l2.num_sets, l2.assoc
        line_size = config.l1_line
        l2_latency = config.l2_latency
        miss_penalty = l2_latency + config.memory_latency
        l1_acc = l1_miss = l1_store_acc = 0
        if config.icache_size:
            icache = Cache(config.icache_size, config.icache_assoc,
                           config.l1_line)
            icache_sets, icache_nsets = icache._sets, icache.num_sets
            icache_assoc = icache.assoc
        else:
            icache_sets = None

        bht = [1] * 2048
        bht_mask = 2047
        btb: dict = {}
        btb_get = btb.get
        n_cond = n_cond_misp = n_ind = n_ind_misp = 0

        reg_ready = [0] * NUM_REGS
        store_ready: dict[int, int] = {}
        store_get = store_ready.get

        cycle = 0
        slots_total = 0
        slots_int = 0
        slots_fp = 0
        slots_load = 0
        slots_store = 0
        slots_branch = 0
        stall_until = 0
        last_issue = 0
        last_result = 0

        oc = [0, 0, 0, 0]
        num_loads = 0
        constant_past_miss = 0
        value_mispredicts = 0

        issue_width = config.issue_width
        int_per_cycle = config.int_per_cycle
        fp_per_cycle = config.fp_per_cycle
        loads_per_cycle = config.loads_per_cycle
        stores_per_cycle = config.stores_per_cycle
        branches_per_cycle = config.branches_per_cycle
        mispredict_penalty = config.mispredict_penalty
        vm_penalty = config.value_mispredict_penalty
        maf = config.maf

        for i in range(count):
            opclass = opclasses[i]
            opv = opcodes[i]
            kind = slot_kind[opclass]

            ready = 0
            s = src1s[i]
            if s > 0:
                v = reg_ready[s]
                if v > ready:
                    ready = v
            s = src2s[i]
            if s > 0:
                v = reg_ready[s]
                if v > ready:
                    ready = v
            if kind == 2:
                dep = store_get(addrs[i] & ~7, 0)
                if dep > ready:
                    ready = dep

            candidate = cycle
            if ready > candidate:
                candidate = ready
            if stall_until > candidate:
                candidate = stall_until
            if last_issue > candidate:
                candidate = last_issue
            if icache_sets is not None:
                line = pcs[i] // line_size
                lru = icache_sets[line % icache_nsets]
                if line in lru:
                    lru.remove(line)
                    lru.append(line)
                else:
                    lru.append(line)
                    if len(lru) > icache_assoc:
                        lru.pop(0)
                    candidate += l2_latency
            while True:
                if candidate > cycle:
                    cycle = candidate
                    slots_total = slots_int = slots_fp = 0
                    slots_load = slots_store = slots_branch = 0
                full = slots_total >= issue_width
                if not full:
                    if kind == 0:
                        full = slots_int >= int_per_cycle
                    elif kind == 1:
                        full = slots_fp >= fp_per_cycle
                    elif kind == 2:
                        full = slots_load >= loads_per_cycle
                    elif kind == 3:
                        full = slots_store >= stores_per_cycle
                    else:
                        full = slots_branch >= branches_per_cycle
                if not full:
                    break
                candidate += 1
            issue = candidate
            slots_total += 1
            if kind == 0:
                slots_int += 1
            elif kind == 1:
                slots_fp += 1
            elif kind == 2:
                slots_load += 1
            elif kind == 3:
                slots_store += 1
            else:
                slots_branch += 1
            last_issue = issue

            # ---- execute -----------------------------------------------
            lr = lat_result[opv]
            result_time = issue + lr
            if kind == 2:
                num_loads += 1
                outcome = outcome_list[i]
                addr = addrs[i]
                line = addr // line_size
                if use_lvp and outcome == 3:  # CONSTANT: skip memory
                    if line not in l1_sets[line % l1_nsets]:
                        constant_past_miss += 1
                    result_time = issue
                    oc[3] += 1
                else:
                    lru = l1_sets[line % l1_nsets]
                    l1_acc += 1
                    if line in lru:
                        lru.remove(line)
                        lru.append(line)
                        penalty = 0
                    else:
                        l1_miss += 1
                        lru.append(line)
                        if len(lru) > l1_assoc:
                            lru.pop(0)
                        lru = l2_sets[line % l2_nsets]
                        l2.stats.accesses += 1
                        if line in lru:
                            lru.remove(line)
                            lru.append(line)
                            penalty = l2_latency
                        else:
                            l2.stats.misses += 1
                            lru.append(line)
                            if len(lru) > l2_assoc:
                                lru.pop(0)
                            penalty = miss_penalty
                    if penalty:
                        result_time = issue + lr + penalty
                        if not maf and result_time > stall_until:
                            stall_until = result_time
                        if use_lvp and outcome != NOT_A_LOAD:
                            oc[0] += 1
                    elif use_lvp and outcome == 2:  # CORRECT
                        result_time = issue
                        oc[2] += 1
                    elif use_lvp and outcome == 1:  # INCORRECT
                        value_mispredicts += 1
                        restart = issue + lr + vm_penalty
                        if restart > stall_until:
                            stall_until = restart
                        result_time = issue + lr
                        oc[1] += 1
                    elif use_lvp and outcome != NOT_A_LOAD:
                        oc[outcome] += 1
            elif kind == 3:
                addr = addrs[i]
                line = addr // line_size
                lru = l1_sets[line % l1_nsets]
                l1_store_acc += 1
                if line in lru:
                    lru.remove(line)
                    lru.append(line)
                lru = l2_sets[line % l2_nsets]
                l2.stats.store_accesses += 1
                if line in lru:
                    lru.remove(line)
                    lru.append(line)
                store_ready[addr & ~7] = issue + lr
            elif opclass == cls_branch and opv != op_halt:
                bk = branch_kind[opv]
                if bk == 1:
                    bidx = (pcs[i] >> 2) & bht_mask
                    ctr = bht[bidx]
                    if takens[i]:
                        if ctr < 3:
                            bht[bidx] = ctr + 1
                        correct = ctr >= 2
                    else:
                        if ctr > 0:
                            bht[bidx] = ctr - 1
                        correct = ctr < 2
                    n_cond += 1
                    if not correct:
                        n_cond_misp += 1
                elif bk == 2:
                    target = pcs[i + 1] if i + 1 < count else 0
                    bidx = (pcs[i] >> 2) & 255
                    correct = btb_get(bidx) == target
                    btb[bidx] = target
                    n_ind += 1
                    if not correct:
                        n_ind_misp += 1
                else:
                    correct = True
                if not correct:
                    v = issue + 1 + mispredict_penalty
                    if v > stall_until:
                        stall_until = v

            dst = dsts[i]
            if dst > 0:
                reg_ready[dst] = result_time
            if result_time > last_result:
                last_result = result_time
            if len(store_ready) > 4096:
                store_ready.clear()

        cycles = (last_issue if last_issue >= last_result
                  else last_result) + 4
        l1.stats.accesses = l1_acc
        l1.stats.misses = l1_miss
        l1.stats.store_accesses = l1_store_acc
        return AXP21164Result(
            config_name=config.name,
            lvp_name=annotated.config.name if use_lvp else "none",
            instructions=count,
            cycles=cycles,
            l1_stats=l1.stats,
            branch_stats=BranchStats(
                conditional=n_cond,
                conditional_mispredicts=n_cond_misp,
                indirect=n_ind,
                indirect_mispredicts=n_ind_misp,
            ),
            loads=num_loads,
            load_outcomes={o: oc[int(o)] for o in LoadOutcome},
            constant_past_miss=constant_past_miss,
            value_mispredicts=value_mispredicts,
        )
