"""Alpha AXP 21164 machine configuration (paper Section 4.2).

The paper's three modifications to the real 21164 are reflected here:
the MAF is omitted (L1 misses block), LVP configurations add a compare
stage before writeback, and a reissue buffer allows whole-group squash
and redispatch with a single-cycle penalty on a value misprediction.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AXP21164Config:
    """Resource parameters of the 21164 pipeline model."""

    name: str = "21164"
    issue_width: int = 4
    int_per_cycle: int = 2  # E0 + E1
    fp_per_cycle: int = 2  # FA + FM
    loads_per_cycle: int = 2  # true dual-ported L1
    stores_per_cycle: int = 1
    branches_per_cycle: int = 1
    # Memory hierarchy: the real 21164 has an 8KB direct-mapped L1 and
    # a 96KB on-chip L2; scaled down with the workload inputs (keeping
    # the 620:21164 capacity ratio and the direct-mapped geometry) to
    # preserve the paper's miss-rate regime.  See DESIGN.md.
    l1_size: int = 1024
    l1_assoc: int = 1
    l1_line: int = 32
    # Instruction cache (real 21164: 8KB direct-mapped, like the D-cache).
    icache_size: int = 1024
    icache_assoc: int = 1
    l2_size: int = 8 * 1024
    l2_assoc: int = 4
    l2_latency: int = 8
    memory_latency: int = 40
    mispredict_penalty: int = 4
    #: Extra cycles after the compared value returns before redispatch
    #: (the single-cycle reissue-buffer penalty past the compare stage).
    value_mispredict_penalty: int = 1
    #: The real 21164 has a miss address file (MAF) that makes L1
    #: misses non-blocking; the paper removes it "to accentuate the
    #: in-order aspects".  Set True to restore it (an ablation): misses
    #: then stall only their dependents, not the whole pipeline.
    maf: bool = False


#: The baseline (MAF-less) 21164.
AXP21164 = AXP21164Config()
