"""PowerPC 620 and 620+ machine configurations (paper Section 4.1).

The 620+ is the paper's "aggressive next-generation" 620: it doubles
the reservation stations, GPR/FPR rename buffers, and completion buffer
entries; adds a second load/store unit without an extra cache port; and
relaxes dispatch to allow two memory operations per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PPC620Config:
    """Resource parameters of the 620 pipeline model."""

    name: str = "620"
    fetch_width: int = 4
    dispatch_width: int = 4
    complete_width: int = 4
    instruction_buffer: int = 8
    completion_buffer: int = 16
    gpr_rename: int = 8
    fpr_rename: int = 8
    # Reservation-station entries per unit pool.
    rs_scfx: int = 4  # two single-cycle integer units, 2 entries each
    rs_mcfx: int = 2
    rs_fpu: int = 2
    rs_lsu: int = 3
    rs_bru: int = 4
    # Functional-unit instance counts.
    num_scfx: int = 2
    num_mcfx: int = 1
    num_fpu: int = 1
    num_lsu: int = 1
    num_bru: int = 1
    #: Loads/stores that may dispatch (and issue) per cycle.
    mem_per_cycle: int = 1
    # Memory hierarchy.  The real 620 has a 32KB 8-way L1 and a large
    # off-chip L2; this reproduction scales its workload inputs down by
    # roughly three orders of magnitude, so the caches shrink with them
    # to keep the cache:working-set ratio (and hence the miss-rate
    # regime the paper operates in).  Geometry (8-way, dual-banked,
    # 32-byte lines) is preserved.  See DESIGN.md.
    l1_size: int = 4 * 1024
    l1_assoc: int = 8
    l1_line: int = 32
    l1_banks: int = 2
    # Instruction cache (real 620: 32KB 8-way; scaled like the D-cache).
    icache_size: int = 4 * 1024
    icache_assoc: int = 8
    l2_size: int = 32 * 1024
    l2_assoc: int = 4
    l2_latency: int = 8
    memory_latency: int = 40
    mispredict_penalty: int = 1
    #: Paper Section 4.1: dependents of predicted loads retain their
    #: reservation stations until verification (and a correct
    #: prediction can therefore still cost structural hazards).  Set
    #: False to idealize release-at-issue (an ablation).
    rs_retention: bool = True


#: The baseline PowerPC 620.
PPC620 = PPC620Config()

#: The paper's enhanced 620+ (Figure 4's "8/16" style doublings).
PPC620_PLUS = replace(
    PPC620,
    name="620+",
    completion_buffer=32,
    gpr_rename=16,
    fpr_rename=16,
    rs_scfx=8,
    rs_mcfx=4,
    rs_fpu=4,
    rs_lsu=6,
    rs_bru=8,
    num_lsu=2,
    mem_per_cycle=2,
    instruction_buffer=16,
)
