"""PowerPC 620 / 620+ out-of-order timing model."""

from repro.uarch.ppc620.config import PPC620, PPC620_PLUS, PPC620Config
from repro.uarch.ppc620.model import FU_NAMES, PPC620Model, PPC620Result

__all__ = ["PPC620", "PPC620_PLUS", "PPC620Config", "FU_NAMES",
           "PPC620Model", "PPC620Result"]
