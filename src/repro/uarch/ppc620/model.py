"""Trace-driven timing model of the PowerPC 620 / 620+ (paper Section 4.1).

The model is an *analytic scheduler*: it walks the annotated trace in
program order and computes, for every instruction, its fetch, dispatch,
issue, execute-done, verification, and completion times, subject to all
the machine's constraints:

* 4-wide fetch into a small instruction buffer, stalled by branch
  mispredictions (2-bit BHT + last-target BTB),
* 4-wide in-order dispatch gated by reservation-station, rename-buffer,
  and completion-buffer availability,
* out-of-order issue per functional-unit pool with per-instance
  occupancy (non-pipelined MCFX divide and FPU divide),
* non-blocking loads through a banked L1/L2 hierarchy with
  store-to-load forwarding and load/store bank-conflict retries,
* in-order completion, 4 per cycle.

Load value prediction follows the paper exactly: predicted values
forward at dispatch; dependents may issue speculatively but hold their
reservation stations and cannot complete until the load verifies (one
cycle after the actual value returns); a misprediction makes dependents
that issued early reissue one cycle *later* than they would have
executed with no prediction; CVU-verified constant loads never access
the cache at all.

Scheduling each instruction in program order (rather than simulating
every cycle) keeps the model fast enough to sweep 17 benchmarks times
ten configurations in pure Python; every constraint above is enforced
through explicit time arithmetic, so the model remains cycle-accurate
with respect to its own machine definition.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode, OpClass
from repro.lvp.unit import LoadOutcome
from repro.trace.annotate import NOT_A_LOAD, AnnotatedTrace
from repro.uarch.components.branch import BranchPredictor, BranchStats
from repro.uarch.components.cache import (
    BankTracker,
    Cache,
    CacheStats,
    MemoryHierarchy,
)
from repro.uarch.components.latencies import PPC620_LATENCY
from repro.uarch.ppc620.config import PPC620Config

#: Functional-unit pool ids.
FU_SCFX = 0
FU_MCFX = 1
FU_FPU = 2
FU_LSU = 3
FU_BRU = 4

FU_NAMES = ("SCFX", "MCFX", "FPU", "LSU", "BRU")

_FU_OF_CLASS = {
    int(OpClass.SIMPLE_INT): FU_SCFX,
    int(OpClass.COMPLEX_INT): FU_MCFX,
    int(OpClass.FP_SIMPLE): FU_FPU,
    int(OpClass.FP_COMPLEX): FU_FPU,
    int(OpClass.LOAD): FU_LSU,
    int(OpClass.STORE): FU_LSU,
    int(OpClass.BRANCH): FU_BRU,
}

#: Figure 7 verification-latency buckets.
VERIFY_BUCKETS = ("<4", "4", "5", "6", "7", ">7")


@dataclass
class PPC620Result:
    """Everything the paper's 620 experiments measure, for one run."""

    config_name: str
    lvp_name: str
    instructions: int
    cycles: int
    l1_stats: CacheStats
    branch_stats: BranchStats
    bank_conflicts: int
    bank_conflict_cycles: int
    #: Correct-prediction verification-latency histogram (Figure 7).
    verify_histogram: dict[str, int]
    #: Per-FU (sum of operand wait cycles, instruction count) (Figure 8).
    fu_wait: dict[str, tuple[int, int]]
    loads: int = 0
    load_outcomes: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def bank_conflict_cycle_fraction(self) -> float:
        """Fraction of all cycles with a bank conflict (Figure 9)."""
        return self.bank_conflict_cycles / self.cycles if self.cycles else 0.0

    def average_wait(self, fu_name: str) -> float:
        """Average reservation-station operand wait for one FU class."""
        total, count = self.fu_wait[fu_name]
        return total / count if count else 0.0

    def counters(self) -> dict[str, int]:
        """Observability counters (see docs/observability.md)."""
        l1 = self.l1_stats
        branches = self.branch_stats
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "loads": self.loads,
            "l1_accesses": l1.accesses,
            "l1_misses": l1.misses,
            "l1_hits": l1.accesses - l1.misses,
            "branches": branches.conditional + branches.indirect,
            "branch_mispredicts": branches.mispredicts,
            "bank_conflicts": self.bank_conflicts,
            "bank_conflict_cycles": self.bank_conflict_cycles,
            "rs_wait_cycles": sum(total for total, _ in
                                  self.fu_wait.values()),
        }


class _Pool:
    """A reservation-station pool: bounded slots with release times."""

    __slots__ = ("size", "releases")

    def __init__(self, size: int) -> None:
        self.size = size
        self.releases: list[int] = []

    def earliest_slot(self, candidate: int) -> int:
        """Earliest cycle >= candidate at which a slot is free."""
        releases = self.releases
        if len(releases) < self.size:
            return candidate
        # Slot frees when the oldest-releasing occupant leaves.
        bound = sorted(releases)[len(releases) - self.size]
        return max(candidate, bound)

    def allocate(self, release: int, now: int) -> None:
        """Occupy a slot until *release*, dropping entries freed by *now*."""
        self.releases = [r for r in self.releases if r > now]
        self.releases.append(release)


class _Units:
    """Functional-unit instances with per-instance next-free times."""

    __slots__ = ("free",)

    def __init__(self, count: int) -> None:
        self.free = [0] * count

    def issue_at(self, candidate: int, occupancy: int) -> int:
        """Issue on the earliest-free instance; returns the issue cycle."""
        best = min(range(len(self.free)), key=lambda i: self.free[i])
        cycle = max(candidate, self.free[best])
        self.free[best] = cycle + occupancy
        return cycle


class PPC620Model:
    """Cycle-level model of the 620/620+ with optional LVP annotations."""

    def __init__(self, config: PPC620Config) -> None:
        self.config = config

    def run(self, annotated: AnnotatedTrace,
            use_lvp: bool = True) -> PPC620Result:
        """Schedule the whole trace; returns the run's measurements."""
        config = self.config
        trace = annotated.trace
        outcomes = annotated.outcomes

        opcodes = trace.opcode.tolist()
        opclasses = trace.opclass.tolist()
        dsts = trace.dst.tolist()
        src1s = trace.src1.tolist()
        src2s = trace.src2.tolist()
        addrs = trace.addr.tolist()
        takens = trace.taken.tolist()
        pcs = trace.pc.tolist()
        outcome_list = outcomes.tolist()
        count = len(opcodes)

        latency = PPC620_LATENCY
        opcode_enum = [Opcode(o) for o in range(1, len(Opcode) + 1)]

        hierarchy = MemoryHierarchy(
            Cache(config.l1_size, config.l1_assoc, config.l1_line),
            Cache(config.l2_size, config.l2_assoc, config.l1_line),
            l2_latency=config.l2_latency,
            memory_latency=config.memory_latency,
        )
        banks = BankTracker(config.l1_banks, config.l1_line)
        # icache_size=0 models a perfect front end (used by unit tests
        # that pin down scheduling arithmetic).
        icache = (Cache(config.icache_size, config.icache_assoc,
                        config.l1_line)
                  if config.icache_size else None)
        predictor = BranchPredictor()

        pools = {
            FU_SCFX: _Pool(config.rs_scfx),
            FU_MCFX: _Pool(config.rs_mcfx),
            FU_FPU: _Pool(config.rs_fpu),
            FU_LSU: _Pool(config.rs_lsu),
            FU_BRU: _Pool(config.rs_bru),
        }
        units = {
            FU_SCFX: _Units(config.num_scfx),
            FU_MCFX: _Units(config.num_mcfx),
            FU_FPU: _Units(config.num_fpu),
            FU_LSU: _Units(config.num_lsu),
            FU_BRU: _Units(config.num_bru),
        }

        # Per-architectural-register producer state:
        #   avail_spec: earliest a dependent may consume (possibly a
        #       speculative predicted value),
        #   avail_real: when the true value is available,
        #   spec_until: verification time the consumer inherits,
        #   mispredicted: consumer must reissue if it consumed early.
        reg_spec = {}
        reg_real = {}
        reg_verify = {}
        reg_misp = {}

        # Store-to-load memory dependences (word granularity).
        store_ready: dict[int, int] = {}

        # In-order machine state.
        fetch_cycle = 0
        fetch_count = 0
        fetch_blocked_until = 0
        dispatch_cycle = 0
        dispatch_count = 0
        mem_dispatch_count = 0
        complete_cycle = 0
        complete_count = 0
        last_completion = 0
        # Ring buffers for structural resources freed at completion.
        dispatch_window: deque = deque()  # completion times, len <= cbuf
        gpr_ring: deque = deque()
        fpr_ring: deque = deque()
        # Instruction-buffer: dispatch times of last `ibuf` instructions.
        ibuf_ring: deque = deque()

        verify_hist = {bucket: 0 for bucket in VERIFY_BUCKETS}
        store_commits: list[tuple[int, int]] = []
        fu_wait_sum = [0, 0, 0, 0, 0]
        fu_wait_count = [0, 0, 0, 0, 0]
        outcome_counts = {o: 0 for o in LoadOutcome}
        num_loads = 0

        mispredict_penalty = config.mispredict_penalty

        for i in range(count):
            opcode_value = opcodes[i]
            opcode = opcode_enum[opcode_value - 1]
            opclass = opclasses[i]
            fu = _FU_OF_CLASS[opclass]
            lat = latency[opcode]

            # ---- fetch -------------------------------------------------
            candidate = max(fetch_cycle, fetch_blocked_until)
            if candidate == fetch_cycle and fetch_count >= config.fetch_width:
                candidate += 1
            if len(ibuf_ring) >= config.instruction_buffer:
                candidate = max(candidate, ibuf_ring[0])
            if icache is not None and not icache.access(pcs[i]):
                # Instruction-cache miss: fetch stalls for the L2 trip.
                candidate += config.l2_latency
            if candidate != fetch_cycle:
                fetch_cycle = candidate
                fetch_count = 0
            fetch_time = fetch_cycle
            fetch_count += 1

            # ---- dispatch ----------------------------------------------
            candidate = max(fetch_time + 1, dispatch_cycle)
            is_mem = fu == FU_LSU
            while True:
                if candidate > dispatch_cycle:
                    width_used = 0
                    mem_used = 0
                else:
                    width_used = dispatch_count
                    mem_used = mem_dispatch_count
                if width_used >= config.dispatch_width or (
                        is_mem and mem_used >= config.mem_per_cycle):
                    candidate += 1
                    continue
                break
            # Completion buffer slot (freed at completion).
            if len(dispatch_window) >= config.completion_buffer:
                candidate = max(candidate, dispatch_window[0])
                while (len(dispatch_window) >= config.completion_buffer
                        and dispatch_window[0] <= candidate):
                    dispatch_window.popleft()
            # Rename buffer for the destination register.
            dst = dsts[i]
            ring = None
            if dst > 0:
                if dst < 32:
                    ring = gpr_ring
                    limit = config.gpr_rename
                elif dst < 64:
                    ring = fpr_ring
                    limit = config.fpr_rename
            if ring is not None and len(ring) >= limit:
                candidate = max(candidate, ring[0])
                while len(ring) >= limit and ring[0] <= candidate:
                    ring.popleft()
            # Reservation-station slot.
            pool = pools[fu]
            candidate = pool.earliest_slot(candidate)
            if candidate > dispatch_cycle:
                dispatch_cycle = candidate
                dispatch_count = 0
                mem_dispatch_count = 0
            dispatch_time = dispatch_cycle
            dispatch_count += 1
            if is_mem:
                mem_dispatch_count += 1
            ibuf_ring.append(dispatch_time)
            if len(ibuf_ring) > config.instruction_buffer:
                ibuf_ring.popleft()

            # ---- operands ------------------------------------------------
            ready_spec = dispatch_time
            ready_real = dispatch_time
            spec_until = 0
            has_misp_source = False
            for src in (src1s[i], src2s[i]):
                if src <= 0:
                    continue
                ready_spec = max(ready_spec, reg_spec.get(src, 0))
                ready_real = max(ready_real, reg_real.get(src, 0))
                spec_until = max(spec_until, reg_verify.get(src, 0))
                if reg_misp.get(src, False):
                    has_misp_source = True

            wait = max(0, ready_spec - dispatch_time)
            fu_wait_sum[fu] += wait
            fu_wait_count[fu] += 1

            # Mispredicted-load sources: if this instruction would have
            # issued speculatively before the true value returned, it
            # reissues one cycle after the value comes back (the paper's
            # worst-case one-cycle penalty); otherwise no penalty.
            operand_time = ready_spec
            if has_misp_source:
                would_issue = max(dispatch_time + 1, ready_spec)
                if would_issue < ready_real:
                    operand_time = ready_real + 1
                else:
                    operand_time = ready_real

            # ---- issue / execute ------------------------------------------
            issue_candidate = max(dispatch_time + 1, operand_time)
            issue_time = units[fu].issue_at(issue_candidate, lat.issue)

            verify_time = 0
            outcome = outcome_list[i] if opclass == int(OpClass.LOAD) \
                else NOT_A_LOAD
            if opclass == int(OpClass.LOAD):
                num_loads += 1
                addr = addrs[i]
                word = addr & ~7
                # store-to-load dependence (forwarding at no extra cost)
                dep = store_ready.get(word, 0)
                if dep > issue_time:
                    issue_time = units[fu].issue_at(dep, lat.issue)
                if use_lvp and outcome == int(LoadOutcome.CONSTANT):
                    # CVU-verified: no cache access at all.
                    exec_done = issue_time + lat.result
                    verify_time = exec_done
                else:
                    access_cycle = issue_time + 1
                    banks.access(access_cycle, addr, can_defer=False)
                    penalty = hierarchy.load_penalty(addr)
                    exec_done = issue_time + lat.result + penalty
                    # Only loads whose value was actually forwarded
                    # need the extra value-comparison stage.
                    if use_lvp and outcome in (int(LoadOutcome.CORRECT),
                                               int(LoadOutcome.INCORRECT)):
                        verify_time = exec_done + 1
                if use_lvp and outcome != NOT_A_LOAD:
                    outcome_counts[LoadOutcome(outcome)] += 1
            elif opclass == int(OpClass.STORE):
                # Stores enter the store queue at execute and access the
                # cache banks when they commit; a committing store that
                # collides with a load's bank must retry (Section 6.5).
                addr = addrs[i]
                hierarchy.store_access(addr)
                exec_done = issue_time + lat.result
                store_ready[addr & ~7] = exec_done
            else:
                exec_done = issue_time + lat.result

            # ---- branches --------------------------------------------------
            if opclass == int(OpClass.BRANCH) and opcode != Opcode.HALT:
                target = pcs[i + 1] if i + 1 < count else 0
                correct = predictor.predict_and_update(
                    opcode, pcs[i], bool(takens[i]), target)
                if not correct:
                    fetch_blocked_until = max(
                        fetch_blocked_until,
                        exec_done + mispredict_penalty,
                    )

            # ---- producer bookkeeping ---------------------------------------
            is_load = opclass == int(OpClass.LOAD)
            predicted = (
                use_lvp and is_load and outcome in (
                    int(LoadOutcome.CORRECT), int(LoadOutcome.CONSTANT))
            )
            mispredicted = (
                use_lvp and is_load and outcome == int(LoadOutcome.INCORRECT)
            )
            if predicted:
                avail_spec = dispatch_time  # forwarded at dispatch
                avail_real = dispatch_time
                my_verify = max(spec_until, verify_time)
                bucket = verify_time - dispatch_time
                if bucket < 4:
                    verify_hist["<4"] += 1
                elif bucket > 7:
                    verify_hist[">7"] += 1
                else:
                    verify_hist[str(bucket)] += 1
            elif mispredicted:
                avail_spec = exec_done  # consumers wait for the real value
                avail_real = exec_done
                my_verify = max(spec_until, verify_time)
            else:
                avail_spec = exec_done
                avail_real = exec_done
                my_verify = spec_until

            if dst > 0:
                reg_spec[dst] = avail_spec
                reg_real[dst] = avail_real
                reg_verify[dst] = my_verify
                reg_misp[dst] = mispredicted

            # ---- reservation-station release ---------------------------------
            # Normal: the RS frees the cycle after issue.  Speculative
            # consumers hold theirs until their sources verify; loads
            # hold until their own verification (paper Section 4.1).
            if config.rs_retention:
                rs_release = max(issue_time + 1, spec_until, verify_time)
            else:
                rs_release = issue_time + 1
            pool.allocate(rs_release, dispatch_time)

            # ---- in-order completion -------------------------------------------
            finish = max(exec_done, my_verify, verify_time)
            candidate = max(finish + 1, last_completion)
            if candidate == complete_cycle:
                if complete_count >= config.complete_width:
                    candidate += 1
            if candidate > complete_cycle:
                complete_cycle = candidate
                complete_count = 0
            completion = complete_cycle
            complete_count += 1
            last_completion = completion
            if opclass == int(OpClass.STORE):
                store_commits.append((completion, addrs[i]))
            dispatch_window.append(completion)
            if ring is not None:
                ring.append(completion)

            # Keep the store-dependence map bounded.
            if len(store_ready) > 4096:
                store_ready.clear()

        # Stores commit against the full load bank-usage ledger: a
        # committing store that finds its bank busy (with a load from
        # either side of it in program order) retries next cycle.
        for commit_cycle, addr in store_commits:
            banks.access(commit_cycle, addr, can_defer=True)

        cycles = last_completion
        return PPC620Result(
            config_name=config.name,
            lvp_name=annotated.config.name if use_lvp else "none",
            instructions=count,
            cycles=cycles,
            l1_stats=hierarchy.l1.stats,
            branch_stats=predictor.stats,
            bank_conflicts=banks.conflicts,
            bank_conflict_cycles=banks.conflict_cycle_count,
            verify_histogram=verify_hist,
            fu_wait={
                FU_NAMES[f]: (fu_wait_sum[f], fu_wait_count[f])
                for f in range(5)
            },
            loads=num_loads,
            load_outcomes=outcome_counts,
        )
